#include "device/mosfet_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace tfetsram::device {

namespace {
/// EKV inversion-charge function F(x) = ln^2(1 + exp(x / 2vt)) and its
/// derivative, computed without overflow.
struct EkvF {
    double f;
    double df;
};
EkvF ekv_f(double x, double vt) {
    const double z = x / (2.0 * vt);
    double lg = 0.0;
    double sg = 0.0;
    if (z > 30.0) {
        lg = z;
        sg = 1.0;
    } else if (z < -30.0) {
        lg = std::exp(z);
        sg = lg;
    } else {
        const double ez = std::exp(z);
        lg = std::log1p(ez);
        sg = ez / (1.0 + ez);
    }
    return {lg * lg, lg * sg / vt};
}
} // namespace

MosfetModel::MosfetModel(const MosfetParams& params) : params_(params) {
    TFET_EXPECTS(params.i_spec > 0.0);
    TFET_EXPECTS(params.slope_n >= 1.0);
    TFET_EXPECTS(params.temperature > 0.0);
    constexpr double kBoltzmannOverQ = 8.617333e-5; // V/K
    vt_ = kBoltzmannOverQ * params.temperature;
    vth_eff_ = params.vth + params.vth_tc * (params.temperature - 300.0);
    i_spec_eff_ =
        params.i_spec * std::pow(params.temperature / 300.0,
                                 params.mobility_exp) *
        (vt_ * vt_) / (0.02585 * 0.02585); // Is ~ 2 n mu Cox vt^2
}

spice::IvSample MosfetModel::iv_forward(double vgs, double vds) const {
    TFET_EXPECTS(vds >= 0.0);
    const double vp = (vgs - vth_eff_) / params_.slope_n;
    const EkvF fwd = ekv_f(vp, vt_);
    const EkvF rev = ekv_f(vp - vds, vt_);
    const double is = i_spec_eff_;
    spice::IvSample s;
    s.ids = is * (fwd.f - rev.f);
    s.gm = is * (fwd.df - rev.df) / params_.slope_n;
    s.gds = is * rev.df;
    return s;
}

spice::IvSample MosfetModel::iv(double vgs, double vds) const {
    if (vds >= 0.0)
        return iv_forward(vgs, vds);
    // Source/drain swap: the device conducts identically with the terminals
    // exchanged (no body effect modeled).
    const spice::IvSample m = iv_forward(vgs - vds, -vds);
    spice::IvSample s;
    s.ids = -m.ids;
    // Chain rule through vgs' = vgs - vds, vds' = -vds. Note gm < 0 here:
    // more gate drive makes the (negative) current more negative.
    s.gm = -m.gm;
    s.gds = m.gm + m.gds;
    return s;
}

spice::CvSample MosfetModel::cv(double vgs, double vds) const {
    // Single smooth expression for all biases. It must be continuous at
    // vds = 0 and satisfy the terminal-swap identity
    // cv(vgs, -vds) == swap(cv(vgs - vds, vds)) exactly: a discontinuity
    // there makes the Newton iteration limit-cycle when a node hovers at
    // the other terminal's potential.
    auto sigmoid = [](double z) {
        if (z > 30.0)
            return 1.0;
        if (z < -30.0)
            return 0.0;
        return 1.0 / (1.0 + std::exp(-z));
    };
    // Gate drive relative to the lower of the two channel ends (smoothly):
    // softplus(-vds) ~ 0 for vds > 0 and ~ -vds for vds < 0.
    const double s = 0.05;
    const double z = -vds / s;
    const double softplus_neg =
        z > 30.0 ? -vds : (z < -30.0 ? 0.0 : s * std::log1p(std::exp(z)));
    const double vg_eff = vgs + softplus_neg;
    const double ch = sigmoid((vg_eff - params_.vth) / 0.1);
    // Saturation steers the channel charge toward the source end (2/3 Cox
    // classically); split is odd in vds so the swap identity holds.
    const double split = std::tanh(vds / 0.1);
    const double c0 = params_.c_gate;
    const double cgs = c0 * (0.15 + 0.3 * ch * (1.0 + 0.5 * split));
    const double cgd = c0 * (0.15 + 0.3 * ch * (1.0 - 0.5 * split));
    return {cgs, cgd};
}

} // namespace tfetsram::device
