#pragma once
// Named device-model families ("model sets") the cell zoo draws from. A
// ModelSetSpec bundles the TFET calibration of one technology flavor with
// a cache version tag; make_model_set_at instantiates it at a corner
// (temperature, oxide-thickness scale). The registry ships the paper's
// standard Si TFET calibration plus a CNTFET-flavored variant with the
// higher drive / higher leakage / lower gate capacitance characteristic of
// carbon-nanotube devices.

#include <string>
#include <vector>

#include "device/models.hpp"

namespace tfetsram::device {

/// One named technology flavor.
struct ModelSetSpec {
    std::string name;    ///< registry key, e.g. "tfet-std"
    std::string version; ///< cache tag; bump when the calibration changes
    TfetParams tfet;     ///< calibration the TFET pair is built from
};

/// Every registered model set, stable order (static storage).
const std::vector<ModelSetSpec>& model_zoo();

/// Look up a model set by name; throws std::invalid_argument when unknown.
const ModelSetSpec& find_model_set(const std::string& name);

/// Instantiate a model-set spec at a corner. `tox_scale` multiplies the
/// gate-oxide thickness (the Tox corner axis: > 1 is a thick/slow oxide);
/// the MOSFET baseline pair tracks the temperature only. TFETs are
/// tabulated when `tabulated` is true (the standard flow).
ModelSet make_model_set_at(const ModelSetSpec& spec, double temperature,
                           double tox_scale = 1.0, bool tabulated = true);

} // namespace tfetsram::device
