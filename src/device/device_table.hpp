#pragma once
// Lookup-table transistor model — the circuit-simulation flow of the paper:
// "the I-V and C-V TFET data are stored in two-dimensional lookup tables,
// which are then used by Verilog-A to implement a lookup table based model"
// (Sec. 2).
//
// Storage uses output-function factorization: the raw current I(vgs, vds)
// spans ~13 decades and, worse, passes through zero along vds = 0 with a
// near-logarithmic cliff that no polynomial interpolant can follow. The
// table therefore stores
//     T(vgs, vds) = asinh( I / (F(vds) * i_ref) ),
// where F(vds) = sign(vds) * (1 - exp(-|vds|/v0)) is a fixed, device-
// independent output shape that absorbs the linear zero crossing. T is
// smooth through vds = 0 (its value there is the channel conductance times
// v0, asinh-compressed), so
//     I  = F * i_ref * sinh(T)
// reconstructs with high relative accuracy everywhere, and the chain-rule
// derivatives of this expression are *exactly* the derivatives of the
// interpolant — Newton sees a consistent C1 system.

#include <string>

#include "device/grid2d.hpp"
#include "spice/transistor_model.hpp"

namespace tfetsram::device {

/// Grid extent/resolution of an extracted device table.
struct TableSpec {
    double v_min = -1.5;     ///< lower bias bound on both axes [V]
    double v_max = 1.5;      ///< upper bias bound on both axes [V]
    std::size_t points = 241; ///< samples per axis (odd => vds = 0 on-grid)
    double i_ref = 1e-18;    ///< asinh compression reference current [A/um]
    double v_out = 0.15;     ///< output-shape voltage scale v0 [V]
};

/// Tabulated TransistorModel. Construct via build_table() in
/// table_builder.hpp. x-axis = vgs, y-axis = vds.
class DeviceTable final : public spice::TransistorModel {
public:
    DeviceTable(std::string name, const TableSpec& spec);

    [[nodiscard]] spice::IvSample iv(double vgs, double vds) const override;
    [[nodiscard]] spice::CvSample cv(double vgs, double vds) const override;
    [[nodiscard]] const char* name() const override { return name_.c_str(); }

    /// Fused batched I-V: one structure-of-arrays interpolation sweep over
    /// the T grid followed by the sinh/cosh reconstruction, bitwise equal
    /// to n scalar iv() calls. This is the array-scale hot loop the
    /// DeviceEvalBatch drives once per Newton iterate.
    void iv_many(const double* vgs, const double* vds, std::size_t n,
                 spice::IvSample* out) const override;

    [[nodiscard]] const TableSpec& spec() const { return spec_; }

    /// Raw grids, exposed for the builder and for tests.
    [[nodiscard]] Grid2d& t_grid() { return t_grid_; }
    [[nodiscard]] Grid2d& cgs_grid() { return cgs_grid_; }
    [[nodiscard]] Grid2d& cgd_grid() { return cgd_grid_; }

    /// The fixed output shape F(vds) and its derivative.
    struct OutputShape {
        double f;
        double df;
    };
    [[nodiscard]] OutputShape output_shape(double vds) const;

    /// Compression used at build time: T = asinh(ratio / i_ref).
    [[nodiscard]] double compress_ratio(double ratio) const;

private:
    std::string name_;
    TableSpec spec_;
    Grid2d t_grid_;
    Grid2d cgs_grid_;
    Grid2d cgd_grid_;
};

} // namespace tfetsram::device
