#pragma once
// Extraction of a DeviceTable from any TransistorModel — the analogue of
// sweeping the TCAD deck over bias and dumping I-V / C-V tables.

#include <memory>

#include "device/device_table.hpp"

namespace tfetsram::device {

/// Sample `source` over the spec's bias grid into a new DeviceTable.
std::shared_ptr<const DeviceTable> build_table(
    const spice::TransistorModel& source, const TableSpec& spec = {});

} // namespace tfetsram::device
