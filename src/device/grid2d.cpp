#include "device/grid2d.hpp"

#include <algorithm>
#include <cmath>

namespace tfetsram::device {

namespace {
/// Monotone (Fritsch-Carlson) cubic Hermite interpolation of p0..p3 at
/// fractional position t in [0,1] between p1 and p2; returns value and
/// d/dt. Node slopes are the harmonic mean of adjacent secants (zero at
/// local extrema), which guarantees no overshoot — essential where the
/// asinh-compressed current crosses its near-logarithmic cliff at vds = 0 —
/// while staying C1 across cells and reproducing linear data exactly.
struct Cubic {
    double f;
    double dfdt;
};
Cubic monotone_hermite(double p0, double p1, double p2, double p3, double t) {
    const double s0 = p1 - p0;
    const double s1 = p2 - p1;
    const double s2 = p3 - p2;
    const auto limited = [](double a, double b) {
        if (a * b <= 0.0)
            return 0.0;
        return 2.0 * a * b / (a + b);
    };
    const double m1 = limited(s0, s1);
    const double m2 = limited(s1, s2);
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double f = (2.0 * t3 - 3.0 * t2 + 1.0) * p1 +
                     (t3 - 2.0 * t2 + t) * m1 +
                     (-2.0 * t3 + 3.0 * t2) * p2 + (t3 - t2) * m2;
    const double dfdt = (6.0 * t2 - 6.0 * t) * p1 +
                        (3.0 * t2 - 4.0 * t + 1.0) * m1 +
                        (-6.0 * t2 + 6.0 * t) * p2 + (3.0 * t2 - 2.0 * t) * m2;
    return {f, dfdt};
}
} // namespace

Grid2d::Grid2d(double x0, double x1, std::size_t nx, double y0, double y1,
               std::size_t ny)
    : x0_(x0), x1_(x1), y0_(y0), y1_(y1), nx_(nx), ny_(ny),
      data_(nx * ny, 0.0) {
    TFET_EXPECTS(nx >= 4 && ny >= 4);
    TFET_EXPECTS(x1 > x0 && y1 > y0);
    hx_ = (x1 - x0) / static_cast<double>(nx - 1);
    hy_ = (y1 - y0) / static_cast<double>(ny - 1);
}

double Grid2d::x_at(std::size_t ix) const {
    TFET_EXPECTS(ix < nx_);
    return x0_ + hx_ * static_cast<double>(ix);
}

double Grid2d::y_at(std::size_t iy) const {
    TFET_EXPECTS(iy < ny_);
    return y0_ + hy_ * static_cast<double>(iy);
}

double& Grid2d::at(std::size_t ix, std::size_t iy) {
    TFET_EXPECTS(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
}

double Grid2d::at(std::size_t ix, std::size_t iy) const {
    TFET_EXPECTS(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
}

Grid2d::Sample Grid2d::eval_inside(double x, double y) const {
    // Locate the cell; clamp so the upper edge evaluates in the last cell.
    const double fx_pos = (x - x0_) / hx_;
    const double fy_pos = (y - y0_) / hy_;
    const auto ix = std::min(static_cast<std::size_t>(std::max(fx_pos, 0.0)),
                             nx_ - 2);
    const auto iy = std::min(static_cast<std::size_t>(std::max(fy_pos, 0.0)),
                             ny_ - 2);
    const double tx = fx_pos - static_cast<double>(ix);
    const double ty = fy_pos - static_cast<double>(iy);

    // Fetch with linear extrapolation one sample beyond each edge, so the
    // stencil reproduces linear surfaces exactly at the boundary (clamped
    // padding would flatten them).
    auto fetch = [this](std::ptrdiff_t gx, std::ptrdiff_t gy) {
        const auto nxi = static_cast<std::ptrdiff_t>(nx_);
        const auto nyi = static_cast<std::ptrdiff_t>(ny_);
        double wx0 = 1.0;
        double wx1 = 0.0;
        std::ptrdiff_t gx0 = gx;
        std::ptrdiff_t gx1 = gx;
        if (gx < 0) {
            gx0 = 0;
            gx1 = 1;
            wx0 = 2.0;
            wx1 = -1.0;
        } else if (gx >= nxi) {
            gx0 = nxi - 1;
            gx1 = nxi - 2;
            wx0 = 2.0;
            wx1 = -1.0;
        }
        double wy0 = 1.0;
        double wy1 = 0.0;
        std::ptrdiff_t gy0 = gy;
        std::ptrdiff_t gy1 = gy;
        if (gy < 0) {
            gy0 = 0;
            gy1 = 1;
            wy0 = 2.0;
            wy1 = -1.0;
        } else if (gy >= nyi) {
            gy0 = nyi - 1;
            gy1 = nyi - 2;
            wy0 = 2.0;
            wy1 = -1.0;
        }
        auto v = [this](std::ptrdiff_t a, std::ptrdiff_t b) {
            return at(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
        };
        return wx0 * (wy0 * v(gx0, gy0) + wy1 * v(gx0, gy1)) +
               wx1 * (wy0 * v(gx1, gy0) + wy1 * v(gx1, gy1));
    };

    // Interpolate 4 rows along x, then the results along y.
    double row_f[4];
    double row_fx[4];
    for (int r = 0; r < 4; ++r) {
        const auto gy = static_cast<std::ptrdiff_t>(iy) + r - 1;
        const auto gx = static_cast<std::ptrdiff_t>(ix);
        const double p0 = fetch(gx - 1, gy);
        const double p1 = fetch(gx, gy);
        const double p2 = fetch(gx + 1, gy);
        const double p3 = fetch(gx + 2, gy);
        const Cubic c = monotone_hermite(p0, p1, p2, p3, tx);
        row_f[r] = c.f;
        row_fx[r] = c.dfdt / hx_;
    }
    const Cubic cy = monotone_hermite(row_f[0], row_f[1], row_f[2], row_f[3], ty);
    const Cubic cx = monotone_hermite(row_fx[0], row_fx[1], row_fx[2], row_fx[3], ty);
    return {cy.f, cx.f, cy.dfdt / hy_};
}

Grid2d::Sample Grid2d::eval(double x, double y) const {
    const double xc = std::clamp(x, x0_, x1_);
    const double yc = std::clamp(y, y0_, y1_);
    Sample s = eval_inside(xc, yc);
    // Linear extension beyond the table keeps Newton iterates finite.
    if (x != xc || y != yc) {
        s.f += s.fx * (x - xc) + s.fy * (y - yc);
    }
    return s;
}

} // namespace tfetsram::device
