#include "device/grid2d.hpp"

#include <algorithm>
#include <cmath>

namespace tfetsram::device {

namespace {
/// Monotone (Fritsch-Carlson) cubic Hermite interpolation of p0..p3 at
/// fractional position t in [0,1] between p1 and p2; returns value and
/// d/dt. Node slopes are the harmonic mean of adjacent secants (zero at
/// local extrema), which guarantees no overshoot — essential where the
/// asinh-compressed current crosses its near-logarithmic cliff at vds = 0 —
/// while staying C1 across cells and reproducing linear data exactly.
struct Cubic {
    double f;
    double dfdt;
};
inline Cubic monotone_hermite(double p0, double p1, double p2, double p3,
                              double t) {
    const double s0 = p1 - p0;
    const double s1 = p2 - p1;
    const double s2 = p3 - p2;
    const auto limited = [](double a, double b) {
        if (a * b <= 0.0)
            return 0.0;
        return 2.0 * a * b / (a + b);
    };
    const double m1 = limited(s0, s1);
    const double m2 = limited(s1, s2);
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double f = (2.0 * t3 - 3.0 * t2 + 1.0) * p1 +
                     (t3 - 2.0 * t2 + t) * m1 +
                     (-2.0 * t3 + 3.0 * t2) * p2 + (t3 - t2) * m2;
    const double dfdt = (6.0 * t2 - 6.0 * t) * p1 +
                        (3.0 * t2 - 4.0 * t + 1.0) * m1 +
                        (-6.0 * t2 + 6.0 * t) * p2 + (3.0 * t2 - 2.0 * t) * m2;
    return {f, dfdt};
}

/// The same interpolant with the partial derivatives of its value with
/// respect to the four data points. The cross derivative of the surface
/// needs them: f = H(row_f(tx); ty), so df/dtx = sum_r dH/dq_r * row_f'_r —
/// the harmonic-mean limiter makes H nonlinear in its data, and
/// re-limiting the already-differentiated row slopes (the scheme this
/// replaced) yields a different, inconsistent derivative.
struct CubicW {
    double f;
    double dfdt;
    double dq0, dq1, dq2, dq3;     ///< d f / d p_r at fixed t
    double ddq0, ddq1, ddq2, ddq3; ///< d^2 f / (dt dp_r): the cross
                                   ///< derivative of the surface needs
                                   ///< these for d fx / dy
};
inline CubicW monotone_hermite_weights(double p0, double p1, double p2,
                                       double p3, double t) {
    const double s0 = p1 - p0;
    const double s1 = p2 - p1;
    const double s2 = p3 - p2;
    // L(a, b) = 2ab/(a+b) on a*b > 0, else 0; its partials on the smooth
    // branch are dL/da = 2 b^2/(a+b)^2 and dL/db = 2 a^2/(a+b)^2 (both 0
    // on the clamped branch, matching the zero slope there).
    double m1 = 0.0, la1 = 0.0, lb1 = 0.0;
    if (s0 * s1 > 0.0) {
        const double d = s0 + s1;
        m1 = 2.0 * s0 * s1 / d;
        la1 = 2.0 * s1 * s1 / (d * d);
        lb1 = 2.0 * s0 * s0 / (d * d);
    }
    double m2 = 0.0, la2 = 0.0, lb2 = 0.0;
    if (s1 * s2 > 0.0) {
        const double d = s1 + s2;
        m2 = 2.0 * s1 * s2 / d;
        la2 = 2.0 * s2 * s2 / (d * d);
        lb2 = 2.0 * s1 * s1 / (d * d);
    }
    const double t2 = t * t;
    const double t3 = t2 * t;
    const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    const double h10 = t3 - 2.0 * t2 + t;
    const double h01 = -2.0 * t3 + 3.0 * t2;
    const double h11 = t3 - t2;
    CubicW w;
    w.f = h00 * p1 + h10 * m1 + h01 * p2 + h11 * m2;
    w.dfdt = (6.0 * t2 - 6.0 * t) * p1 + (3.0 * t2 - 4.0 * t + 1.0) * m1 +
             (-6.0 * t2 + 6.0 * t) * p2 + (3.0 * t2 - 2.0 * t) * m2;
    // Chain rule through m1(p0,p1,p2) and m2(p1,p2,p3): s0 = p1-p0 etc.
    w.dq0 = h10 * (-la1);
    w.dq1 = h00 + h10 * (la1 - lb1) + h11 * (-la2);
    w.dq2 = h01 + h10 * lb1 + h11 * (la2 - lb2);
    w.dq3 = h11 * lb2;
    // t-derivatives of the weights (la/lb do not depend on t): these give
    // d/dt of df/dp_r, i.e. the mixed partial the 2-D cross derivative is
    // assembled from.
    const double h00p = 6.0 * t2 - 6.0 * t;
    const double h10p = 3.0 * t2 - 4.0 * t + 1.0;
    const double h01p = -6.0 * t2 + 6.0 * t;
    const double h11p = 3.0 * t2 - 2.0 * t;
    w.ddq0 = h10p * (-la1);
    w.ddq1 = h00p + h10p * (la1 - lb1) + h11p * (-la2);
    w.ddq2 = h01p + h10p * lb1 + h11p * (la2 - lb2);
    w.ddq3 = h11p * lb2;
    return w;
}
} // namespace

Grid2d::Grid2d(double x0, double x1, std::size_t nx, double y0, double y1,
               std::size_t ny)
    : x0_(x0), x1_(x1), y0_(y0), y1_(y1), nx_(nx), ny_(ny),
      data_(nx * ny, 0.0) {
    TFET_EXPECTS(nx >= 4 && ny >= 4);
    TFET_EXPECTS(x1 > x0 && y1 > y0);
    hx_ = (x1 - x0) / static_cast<double>(nx - 1);
    hy_ = (y1 - y0) / static_cast<double>(ny - 1);
    inv_hx_ = 1.0 / hx_;
    inv_hy_ = 1.0 / hy_;
}

double Grid2d::x_at(std::size_t ix) const {
    TFET_EXPECTS(ix < nx_);
    return x0_ + hx_ * static_cast<double>(ix);
}

double Grid2d::y_at(std::size_t iy) const {
    TFET_EXPECTS(iy < ny_);
    return y0_ + hy_ * static_cast<double>(iy);
}

double& Grid2d::at(std::size_t ix, std::size_t iy) {
    TFET_EXPECTS(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
}

double Grid2d::at(std::size_t ix, std::size_t iy) const {
    TFET_EXPECTS(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
}

Grid2d::InnerSample Grid2d::eval_inside(double x, double y) const {
    // Locate the cell; clamp so the upper edge evaluates in the last cell.
    // Multiplying by the precomputed reciprocal steps keeps hardware
    // divides out of the per-iterate device-evaluation hot loop.
    const double fx_pos = (x - x0_) * inv_hx_;
    const double fy_pos = (y - y0_) * inv_hy_;
    const auto ix = std::min(static_cast<std::size_t>(std::max(fx_pos, 0.0)),
                             nx_ - 2);
    const auto iy = std::min(static_cast<std::size_t>(std::max(fy_pos, 0.0)),
                             ny_ - 2);
    const double tx = fx_pos - static_cast<double>(ix);
    const double ty = fy_pos - static_cast<double>(iy);

    double row_f[4];
    double row_fx[4];
    if (ix >= 1 && ix + 2 < nx_ && iy >= 1 && iy + 2 < ny_) {
        // Interior fast path: the whole 4x4 stencil is on-grid, so the
        // samples read straight out of the row-major store. This is the
        // branch the device tables take almost always (241x241 grids) and
        // the one the batched evaluator leans on.
        const double* base = data_.data() + (iy - 1) * nx_ + (ix - 1);
        for (int r = 0; r < 4; ++r) {
            const double* p = base + static_cast<std::size_t>(r) * nx_;
            const Cubic c = monotone_hermite(p[0], p[1], p[2], p[3], tx);
            row_f[r] = c.f;
            row_fx[r] = c.dfdt * inv_hx_;
        }
    } else {
        // Fetch with linear extrapolation one sample beyond each edge, so
        // the stencil reproduces linear surfaces exactly at the boundary
        // (clamped padding would flatten them).
        auto fetch = [this](std::ptrdiff_t gx, std::ptrdiff_t gy) {
            const auto nxi = static_cast<std::ptrdiff_t>(nx_);
            const auto nyi = static_cast<std::ptrdiff_t>(ny_);
            double wx0 = 1.0;
            double wx1 = 0.0;
            std::ptrdiff_t gx0 = gx;
            std::ptrdiff_t gx1 = gx;
            if (gx < 0) {
                gx0 = 0;
                gx1 = 1;
                wx0 = 2.0;
                wx1 = -1.0;
            } else if (gx >= nxi) {
                gx0 = nxi - 1;
                gx1 = nxi - 2;
                wx0 = 2.0;
                wx1 = -1.0;
            }
            double wy0 = 1.0;
            double wy1 = 0.0;
            std::ptrdiff_t gy0 = gy;
            std::ptrdiff_t gy1 = gy;
            if (gy < 0) {
                gy0 = 0;
                gy1 = 1;
                wy0 = 2.0;
                wy1 = -1.0;
            } else if (gy >= nyi) {
                gy0 = nyi - 1;
                gy1 = nyi - 2;
                wy0 = 2.0;
                wy1 = -1.0;
            }
            auto v = [this](std::ptrdiff_t a, std::ptrdiff_t b) {
                return at(static_cast<std::size_t>(a),
                          static_cast<std::size_t>(b));
            };
            return wx0 * (wy0 * v(gx0, gy0) + wy1 * v(gx0, gy1)) +
                   wx1 * (wy0 * v(gx1, gy0) + wy1 * v(gx1, gy1));
        };
        for (int r = 0; r < 4; ++r) {
            const auto gy = static_cast<std::ptrdiff_t>(iy) + r - 1;
            const auto gx = static_cast<std::ptrdiff_t>(ix);
            const double p0 = fetch(gx - 1, gy);
            const double p1 = fetch(gx, gy);
            const double p2 = fetch(gx + 1, gy);
            const double p3 = fetch(gx + 2, gy);
            const Cubic c = monotone_hermite(p0, p1, p2, p3, tx);
            row_f[r] = c.f;
            row_fx[r] = c.dfdt * inv_hx_;
        }
    }

    // y-pass with data partials: f = H(row_f; ty), so the exact surface
    // partials are df/dy = dH/dt / hy and df/dx = sum_r dH/drow_f[r] *
    // row_fx[r] — the derivatives of the same interpolant the value comes
    // from, which is what keeps the Newton Jacobian consistent with the
    // residual.
    const CubicW cy =
        monotone_hermite_weights(row_f[0], row_f[1], row_f[2], row_f[3], ty);
    const double fx = cy.dq0 * row_fx[0] + cy.dq1 * row_fx[1] +
                      cy.dq2 * row_fx[2] + cy.dq3 * row_fx[3];
    const double fxy = (cy.ddq0 * row_fx[0] + cy.ddq1 * row_fx[1] +
                        cy.ddq2 * row_fx[2] + cy.ddq3 * row_fx[3]) *
                       inv_hy_;
    return {cy.f, fx, cy.dfdt * inv_hy_, fxy};
}

Grid2d::Sample Grid2d::eval(double x, double y) const {
    const double xc = std::clamp(x, x0_, x1_);
    const double yc = std::clamp(y, y0_, y1_);
    const InnerSample s = eval_inside(xc, yc);
    if (x == xc && y == yc)
        return {s.f, s.fx, s.fy};
    // Bilinear extension beyond the table keeps Newton iterates finite.
    // The boundary slope varies along the edge, so the cross term is what
    // makes the reported fx/fy the exact partials of this extension — a
    // pure f += fx*dx + fy*dy continuation would hand Newton a Jacobian
    // inconsistent with the residual beside the table edges.
    const double dx = x - xc;
    const double dy = y - yc;
    return {s.f + s.fx * dx + s.fy * dy + s.fxy * dx * dy,
            s.fx + s.fxy * dy, s.fy + s.fxy * dx};
}

void Grid2d::eval_many(const double* xs, const double* ys, std::size_t n,
                       Sample* out) const {
    // One tight pass over structure-of-arrays inputs: shared clamp +
    // cell-locate + fused value/derivative evaluation per point, identical
    // arithmetic to eval() (the batched device path depends on bitwise
    // agreement with the scalar path).
    for (std::size_t i = 0; i < n; ++i)
        out[i] = eval(xs[i], ys[i]);
}

} // namespace tfetsram::device
