#pragma once
// Uniform 2-D grid with C1 (Catmull-Rom bicubic) interpolation and analytic
// gradients. This is the numerical core of the lookup-table device model:
// Newton iteration needs continuous first derivatives, which bilinear
// interpolation cannot provide.

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace tfetsram::device {

class Grid2d {
public:
    /// Grid over [x0, x1] x [y0, y1] with nx * ny samples (nx, ny >= 4).
    Grid2d(double x0, double x1, std::size_t nx, double y0, double y1,
           std::size_t ny);

    [[nodiscard]] std::size_t nx() const { return nx_; }
    [[nodiscard]] std::size_t ny() const { return ny_; }
    [[nodiscard]] double x_at(std::size_t ix) const;
    [[nodiscard]] double y_at(std::size_t iy) const;

    double& at(std::size_t ix, std::size_t iy);
    [[nodiscard]] double at(std::size_t ix, std::size_t iy) const;

    /// Interpolated value and gradient.
    struct Sample {
        double f;
        double fx;
        double fy;
    };

    /// Evaluate at (x, y). Outside the domain the surface continues
    /// linearly along the boundary gradient, so Newton excursions beyond
    /// the table stay well-behaved. fx/fy are the exact partial
    /// derivatives of the interpolated surface f — Newton's Jacobian must
    /// differentiate the same function the residual evaluates.
    [[nodiscard]] Sample eval(double x, double y) const;

    /// Batched evaluation: out[i] = eval(xs[i], ys[i]) for i in [0, n).
    /// One structure-of-arrays pass (shared cell-locate, fused
    /// value+derivative) — the per-iterate hot loop of array-scale device
    /// evaluation. Bitwise-identical to n scalar eval() calls.
    void eval_many(const double* xs, const double* ys, std::size_t n,
                   Sample* out) const;

private:
    /// Sample plus the cross second derivative d2f/dxdy at the same point.
    /// The linear extension beyond the table needs it: the boundary slope
    /// varies along the edge, so without the cross term the reported
    /// gradient would not be the derivative of the extended surface.
    struct InnerSample {
        double f;
        double fx;
        double fy;
        double fxy;
    };
    [[nodiscard]] InnerSample eval_inside(double x, double y) const;

    double x0_, x1_, y0_, y1_;
    std::size_t nx_, ny_;
    double hx_, hy_;
    double inv_hx_, inv_hy_; ///< reciprocals: the hot path multiplies
    std::vector<double> data_; // row-major: [iy * nx + ix]
};

} // namespace tfetsram::device
