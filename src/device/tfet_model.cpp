#include "device/tfet_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace tfetsram::device {

namespace {

/// Numerically safe softplus s*ln(1+exp(v/s)) and its derivative (sigmoid).
struct Softplus {
    double value;
    double slope;
};
Softplus softplus(double v, double s) {
    const double z = v / s;
    if (z > 30.0)
        return {v, 1.0};
    if (z < -30.0)
        return {0.0, 0.0};
    const double ez = std::exp(z);
    return {s * std::log1p(ez), ez / (1.0 + ez)};
}

double sigmoid(double z) {
    if (z > 30.0)
        return 1.0;
    if (z < -30.0)
        return 0.0;
    return 1.0 / (1.0 + std::exp(-z));
}

} // namespace

TfetModel::TfetModel(const TfetParams& params) : params_(params) {
    TFET_EXPECTS(params.i_on > params.i_off && params.i_off > 0.0);
    TFET_EXPECTS(params.e0 > 0.0 && params.e1 > 0.0);
    TFET_EXPECTS(params.v_sat > 0.0 && params.tox > 0.0);

    tox_field_scale_ =
        std::pow(params.tox_nom / params.tox, params.tox_exponent);

    // Temperature factors (calibration anchors are defined at 300 K).
    TFET_EXPECTS(params.temperature > 0.0);
    btbt_temp_factor_ =
        std::max(0.1, 1.0 + params.btbt_tc * (params.temperature - 300.0));
    constexpr double kBoltzmannEv = 8.617333e-5; // eV/K
    pin_is_eff_ = params.pin_is *
                  std::exp(params.pin_eg / kBoltzmannEv *
                           (1.0 / 300.0 - 1.0 / params.temperature));

    // Calibrate the Kane parameters so that at nominal tox the device meets
    // the paper's anchors: I(v_cal, v_cal) = i_on and I(0, v_cal) = i_off.
    const double e_on =
        params.e0 + params.e1 * softplus(params.v_cal, params.vgs_smoothing).value;
    const double e_off =
        params.e0 + params.e1 * softplus(0.0, params.vgs_smoothing).value;
    TFET_ASSERT(e_on > e_off);

    const double log_ratio = std::log(params.i_on / params.i_off);
    kane_b_ = (log_ratio - 2.0 * std::log(e_on / e_off)) /
              (1.0 / e_off - 1.0 / e_on);
    TFET_ENSURES(kane_b_ > 0.0);

    const double f_out = (1.0 - std::exp(-params.v_cal / params.v_sat)) *
                         (1.0 + params.lambda * params.v_cal);
    kane_k_ = params.i_on /
              (e_on * e_on * std::exp(-kane_b_ / e_on) * f_out);
    TFET_ENSURES(kane_k_ > 0.0);
}

TfetModel::Kernel TfetModel::kernel(double vgs) const {
    const Softplus sp = softplus(vgs, params_.vgs_smoothing);
    const double e = (params_.e0 + params_.e1 * sp.value) * tox_field_scale_;
    const double de_dvgs = params_.e1 * sp.slope * tox_field_scale_;
    const double expo = std::exp(-kane_b_ / e);
    const double k_eff = kane_k_ * btbt_temp_factor_;
    const double i = k_eff * e * e * expo;
    // d/dE [K E^2 exp(-B/E)] = K exp(-B/E) (2E + B)
    const double di_de = k_eff * expo * (2.0 * e + kane_b_);
    return {i, di_de * de_dvgs};
}

spice::IvSample TfetModel::iv(double vgs, double vds) const {
    const Kernel k = kernel(vgs);

    // Output factor: exponential-onset saturation (forward), weak mirrored
    // saturating branch for the gated reverse tunneling. Slopes match at
    // vds = 0, so the composite is C1 there.
    double fo = 0.0;
    double dfo = 0.0;
    if (vds >= 0.0) {
        const double ex = std::exp(-vds / params_.v_sat);
        const double clm = 1.0 + params_.lambda * vds;
        fo = (1.0 - ex) * clm;
        dfo = ex / params_.v_sat * clm + (1.0 - ex) * params_.lambda;
    } else {
        const double a = params_.r_rev * params_.v_sat;
        const double ex = std::exp(vds / a); // vds < 0 -> ex in (0,1)
        fo = -params_.r_rev * (1.0 - ex);
        dfo = params_.r_rev / a * ex;
    }

    double ids = k.i * fo;
    double gm = k.di_dvgs * fo;
    double gds = k.i * dfo;

    // p-i-n body diode under reverse bias (vds < 0): current flows source to
    // drain, i.e. negative in the drain->source convention. Linearized past
    // pin_vcrit so Newton cannot overflow the exponential.
    if (vds < 0.0) {
        const double u = -vds;
        double i_pin = 0.0;
        double g_pin = 0.0;
        if (u <= params_.pin_vcrit) {
            const double e_u = std::exp(u / params_.pin_vdec);
            i_pin = pin_is_eff_ * (e_u - 1.0);
            g_pin = pin_is_eff_ / params_.pin_vdec * e_u;
        } else {
            const double e_c = std::exp(params_.pin_vcrit / params_.pin_vdec);
            const double i_c = pin_is_eff_ * (e_c - 1.0);
            const double g_c = pin_is_eff_ / params_.pin_vdec * e_c;
            i_pin = i_c + g_c * (u - params_.pin_vcrit);
            g_pin = g_c;
        }
        ids -= i_pin;
        gds += g_pin;
    }

    return {ids, gm, gds};
}

spice::CvSample TfetModel::cv(double vgs, double vds) const {
    // TFET gate capacitance is famously drain-dominated in saturation: the
    // source side is tunnel-limited, so the channel charge communicates
    // with the drain (the enhanced Miller capacitance TFET circuits see).
    // Near vds = 0 the channel charge splits roughly evenly between the
    // terminals, as in a triode MOSFET.
    const double ch = sigmoid((vgs - params_.cv_vth) / params_.cv_slope);
    const double sat = sigmoid((vds - 0.3) / 0.1);
    const double c0 = params_.c_gate;
    const double cgd = c0 * (0.10 + ch * (0.35 + 0.35 * sat));
    const double cgs = c0 * (0.10 + ch * 0.35 * (1.0 - sat));
    return {cgs, cgd};
}

} // namespace tfetsram::device
