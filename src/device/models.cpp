#include "device/models.hpp"

#include "device/table_builder.hpp"

namespace tfetsram::device {

MirrorModel::MirrorModel(spice::TransistorModelPtr inner, std::string name)
    : inner_(std::move(inner)), name_(std::move(name)) {
    TFET_EXPECTS(inner_ != nullptr);
}

spice::IvSample MirrorModel::iv(double vgs, double vds) const {
    const spice::IvSample m = inner_->iv(-vgs, -vds);
    // I_p(vgs,vds) = -I_n(-vgs,-vds):
    //   dI_p/dvgs = -dI_n/dvgs_n * (-1) = +gm_n, and likewise for gds.
    return {-m.ids, m.gm, m.gds};
}

spice::CvSample MirrorModel::cv(double vgs, double vds) const {
    return inner_->cv(-vgs, -vds);
}

void MirrorModel::iv_many(const double* vgs, const double* vds, std::size_t n,
                          spice::IvSample* out) const {
    thread_local std::vector<double> neg_vgs;
    thread_local std::vector<double> neg_vds;
    if (neg_vgs.size() < n) {
        neg_vgs.resize(n);
        neg_vds.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        neg_vgs[i] = -vgs[i];
        neg_vds[i] = -vds[i];
    }
    inner_->iv_many(neg_vgs.data(), neg_vds.data(), n, out);
    // Same transform as the scalar iv(): current negates, derivatives keep
    // their sign (two chain-rule negations cancel).
    for (std::size_t i = 0; i < n; ++i)
        out[i].ids = -out[i].ids;
}

spice::TransistorModelPtr make_ntfet(const TfetParams& params) {
    return std::make_shared<TfetModel>(params);
}

spice::TransistorModelPtr make_ptfet(const TfetParams& params) {
    return std::make_shared<MirrorModel>(make_ntfet(params), "pTFET");
}

spice::TransistorModelPtr make_nmos(const MosfetParams& params) {
    return std::make_shared<MosfetModel>(params);
}

MosfetParams pmos_defaults() {
    MosfetParams p;
    p.i_spec = 1.0e-5; // hole mobility deficit vs. the 2e-5 nMOS default
    return p;
}

spice::TransistorModelPtr make_pmos(const MosfetParams& params) {
    return std::make_shared<MirrorModel>(
        std::make_shared<MosfetModel>(params), "pMOS");
}

ModelSet make_model_set(const TfetParams& tfet_params, bool tabulated,
                        const TableSpec& spec) {
    ModelSet set;
    set.ntfet = make_ntfet(tfet_params);
    set.ptfet = make_ptfet(tfet_params);
    if (tabulated) {
        set.ntfet = build_table(*set.ntfet, spec);
        set.ptfet = build_table(*set.ptfet, spec);
    }
    set.nmos = make_nmos();
    set.pmos = make_pmos();
    return set;
}

} // namespace tfetsram::device
