#pragma once
// Analytic Si TFET model. This plays the role Sentaurus TCAD played in the
// paper: it is the source of I-V and C-V data, calibrated to the anchors the
// paper reports, from which lookup tables are extracted for circuit
// simulation (Sec. 2 of the paper).
//
// Physics summary (n-type; the p-type device is a mirror):
//  * Forward (vds > 0): Kane band-to-band tunneling. The tunneling
//    generation rate ~ E^2 exp(-B/E) where the junction field E rises
//    roughly linearly with gate overdrive. This produces the hallmark TFET
//    transfer curve: extremely steep swing near threshold that gradually
//    flattens at high vgs, with on/off ratios of ~13 decades.
//  * Output (vds): early, exponential-onset saturation plus weak channel
//    length modulation.
//  * Reverse (vds < 0): two paths in parallel. (a) The gated junction still
//    tunnels, but weakly (fraction r_rev of the forward kernel, saturating
//    symmetrically). (b) The p-i-n body diode forward-biases; calibrated so
//    reverse current is ~1e-12 A/um at 0.6 V, ~1e-8 at 0.8 V, and
//    comparable to the on-current only near 1 V — the "unidirectional
//    conduction" behaviour of Fig. 2(b) and the 5-/9-order static-power
//    penalty of outward access transistors in Sec. 3.
//
// All currents are per micron of width; all capacitances per micron.

#include "spice/transistor_model.hpp"

namespace tfetsram::device {

/// Geometry/calibration parameters of the Si TFET (defaults per the paper:
/// L = 32 nm, 2 nm HfO2 gate insulator, 2 nm underlap).
struct TfetParams {
    // Calibration anchors (paper Sec. 2).
    double i_on = 1e-4;   ///< A/um at vgs = vds = 1 V
    double i_off = 1e-17; ///< A/um at vgs = 0, vds = 1 V
    double v_cal = 1.0;   ///< calibration gate/drain voltage [V]

    // Tunneling-field shape: E(vgs) = (e0 + e1 * softplus(vgs)) * tox_nom/tox.
    // Defaults give the paper's transfer-curve shape: ~29 mV/dec near
    // threshold, flattening past 0.5 V (Fig. 2a).
    double e0 = 0.04;
    double e1 = 0.46;
    double vgs_smoothing = 0.05; ///< softplus sharpness [V]

    // Output characteristic.
    double v_sat = 0.15;  ///< saturation voltage scale [V]
    double lambda = 0.05; ///< channel-length modulation [1/V]

    // Reverse conduction. The gated branch saturates at r_rev of the
    // forward kernel (Fig. 2b: reverse comparable to forward only near
    // vds = 0 and |vds| = 1 V); the p-i-n branch is calibrated so the
    // outward-access hold penalty lands at the paper's ~5 / ~9 orders of
    // magnitude at 0.6 / 0.8 V.
    double r_rev = 0.4;     ///< gated reverse-tunneling fraction
    double pin_is = 1e-23;  ///< p-i-n diode scale current [A/um]
    double pin_vdec = 0.05 / 2.302585092994046; ///< 50 mV/decade slope [V]
    double pin_vcrit = 0.85; ///< linearize the diode beyond this bias [V]

    // Gate stack (for C-V and process variation). A thinner insulator both
    // raises the junction field and tightens electrostatic control, so the
    // effective field scales as (tox_nom/tox)^tox_exponent.
    double tox = 2e-9;      ///< gate insulator thickness [m]
    double tox_nom = 2e-9;  ///< nominal thickness the calibration assumed [m]
    double tox_exponent = 2.0; ///< field sensitivity to thickness
    double c_gate = 0.15e-15; ///< total gate capacitance scale [F/um]

    // C-V shape.
    double cv_vth = 0.4;   ///< channel-formation voltage [V]
    double cv_slope = 0.12;

    // Temperature. Band-to-band tunneling is nearly temperature
    // independent (a weak linear increase from bandgap narrowing) — the
    // TFET's second selling point after the steep swing — while the p-i-n
    // diode saturation current is thermally activated like any junction.
    double temperature = 300.0; ///< device temperature [K]
    double btbt_tc = 2e-3;      ///< kernel multiplier slope [1/K]
    double pin_eg = 1.12;       ///< p-i-n activation energy [eV]
};

/// Analytic n-type TFET. Thread-compatible and immutable after construction.
class TfetModel final : public spice::TransistorModel {
public:
    explicit TfetModel(const TfetParams& params);

    [[nodiscard]] spice::IvSample iv(double vgs, double vds) const override;
    [[nodiscard]] spice::CvSample cv(double vgs, double vds) const override;
    [[nodiscard]] const char* name() const override { return "nTFET"; }

    [[nodiscard]] const TfetParams& params() const { return params_; }

    /// Kane prefactor resolved by calibration.
    [[nodiscard]] double kane_k() const { return kane_k_; }
    /// Kane exponent resolved by calibration.
    [[nodiscard]] double kane_b() const { return kane_b_; }

    /// The gate-controlled tunneling kernel K E^2 exp(-B/E) and its vgs
    /// derivative (per um). Exposed for tests and table diagnostics.
    struct Kernel {
        double i;
        double di_dvgs;
    };
    [[nodiscard]] Kernel kernel(double vgs) const;

private:
    TfetParams params_;
    double kane_k_ = 0.0;
    double kane_b_ = 0.0;
    double tox_field_scale_ = 1.0; ///< (tox_nom/tox)^exp: thinner oxide -> higher field
    double btbt_temp_factor_ = 1.0; ///< weak tunneling temperature factor
    double pin_is_eff_ = 1e-23;     ///< thermally activated diode current
};

} // namespace tfetsram::device
