#pragma once
// EKV-style single-piece MOSFET model, standing in for the 32 nm low-power
// PTM model the paper uses as its CMOS baseline. One smooth expression
// covers weak through strong inversion, and the source/drain-swap identity
// I(vgs, vds < 0) = -I(vgs - vds, -vds) provides the bidirectional
// conduction that distinguishes MOSFET access transistors from TFETs.

#include "spice/transistor_model.hpp"

namespace tfetsram::device {

/// Parameters of the n-channel EKV model (per micron of width). Defaults
/// approximate a 32 nm low-power process at 300 K: |VT| ~ 0.5 V, swing
/// ~ 78 mV/dec, Ioff ~ 7e-12 A/um and Ion ~ 4e-4 A/um at 0.8 V.
///
/// Temperature enters through the thermal voltage kT/q (subthreshold
/// swing), a linear threshold-voltage coefficient, and a T^-1.5 mobility
/// factor — the standard MOSFET temperature behaviour whose leakage
/// penalty TFETs escape.
struct MosfetParams {
    double vth = 0.5;        ///< threshold voltage at 300 K [V]
    double slope_n = 1.3;    ///< subthreshold slope factor
    double i_spec = 2e-5;    ///< specific current Is at 300 K [A/um]
    double c_gate = 1.0e-15;  ///< gate capacitance scale [F/um]
    double temperature = 300.0; ///< device temperature [K]
    double vth_tc = -1.0e-3; ///< threshold temperature coefficient [V/K]
    double mobility_exp = -1.5; ///< mobility ~ (T/300)^mobility_exp
};

/// Analytic n-channel MOSFET. Immutable after construction.
class MosfetModel final : public spice::TransistorModel {
public:
    explicit MosfetModel(const MosfetParams& params);

    [[nodiscard]] spice::IvSample iv(double vgs, double vds) const override;
    [[nodiscard]] spice::CvSample cv(double vgs, double vds) const override;
    [[nodiscard]] const char* name() const override { return "nMOS"; }

    [[nodiscard]] const MosfetParams& params() const { return params_; }

    /// Thermal voltage kT/q at the device temperature [V].
    [[nodiscard]] double thermal_voltage() const { return vt_; }

private:
    [[nodiscard]] spice::IvSample iv_forward(double vgs, double vds) const;

    MosfetParams params_;
    double vt_ = 0.02585;      ///< kT/q at the device temperature
    double vth_eff_ = 0.5;     ///< temperature-shifted threshold
    double i_spec_eff_ = 2e-5; ///< mobility-scaled specific current
};

} // namespace tfetsram::device
