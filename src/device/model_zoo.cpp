#include "device/model_zoo.hpp"

#include <stdexcept>

#include "device/table_builder.hpp"

namespace tfetsram::device {

namespace {

ModelSetSpec make_std_spec() {
    ModelSetSpec s;
    s.name = "tfet-std";
    s.version = kModelSetVersion;
    s.tfet = TfetParams{}; // the paper's Si calibration
    return s;
}

ModelSetSpec make_cntfet_spec() {
    ModelSetSpec s;
    s.name = "cntfet";
    s.version = "cntfet-2026.1";
    // CNTFET flavor: ballistic transport buys ~4x the drive at the same
    // footprint, the small-bandgap tube leaks two orders worse, and the
    // wrap-gate geometry roughly halves the gate capacitance. The band-to-
    // band kernel shape (swing, saturation) is kept from the Si anchors.
    s.tfet.i_on = 4e-4;
    s.tfet.i_off = 1e-15;
    s.tfet.c_gate = 0.08e-15;
    return s;
}

} // namespace

const std::vector<ModelSetSpec>& model_zoo() {
    static const std::vector<ModelSetSpec> zoo = {make_std_spec(),
                                                  make_cntfet_spec()};
    return zoo;
}

const ModelSetSpec& find_model_set(const std::string& name) {
    for (const ModelSetSpec& s : model_zoo())
        if (s.name == name)
            return s;
    throw std::invalid_argument("find_model_set: unknown model set '" + name +
                                "'");
}

ModelSet make_model_set_at(const ModelSetSpec& spec, double temperature,
                           double tox_scale, bool tabulated) {
    TFET_EXPECTS(tox_scale > 0.0);
    TfetParams tp = spec.tfet;
    tp.temperature = temperature;
    tp.tox = spec.tfet.tox * tox_scale;

    MosfetParams nmos;
    nmos.temperature = temperature;
    MosfetParams pmos = pmos_defaults();
    pmos.temperature = temperature;

    ModelSet set;
    set.ntfet = make_ntfet(tp);
    set.ptfet = make_ptfet(tp);
    if (tabulated) {
        set.ntfet = build_table(*set.ntfet);
        set.ptfet = build_table(*set.ptfet);
    }
    set.nmos = make_nmos(nmos);
    set.pmos = make_pmos(pmos);
    return set;
}

} // namespace tfetsram::device
