#include "device/device_table.hpp"

#include <algorithm>
#include <cmath>

namespace tfetsram::device {

DeviceTable::DeviceTable(std::string name, const TableSpec& spec)
    : name_(std::move(name)), spec_(spec),
      t_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
              spec.points),
      cgs_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
                spec.points),
      cgd_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
                spec.points) {
    TFET_EXPECTS(spec.i_ref > 0.0);
    TFET_EXPECTS(spec.v_out > 0.0);
    TFET_EXPECTS(spec.points >= 5);
}

DeviceTable::OutputShape DeviceTable::output_shape(double vds) const {
    const double a = std::fabs(vds) / spec_.v_out;
    const double e = std::exp(-std::min(a, 700.0));
    const double mag = 1.0 - e;
    return {vds >= 0.0 ? mag : -mag, e / spec_.v_out};
}

double DeviceTable::compress_ratio(double ratio) const {
    return std::asinh(ratio / spec_.i_ref);
}

spice::IvSample DeviceTable::iv(double vgs, double vds) const {
    const Grid2d::Sample t = t_grid_.eval(vgs, vds);
    const OutputShape out = output_shape(vds);
    // Guard the exponentials against pathological extrapolation far
    // off-grid. sinh and cosh come from a single exp (one libm call per
    // sample instead of two — this pair is the per-transistor arithmetic
    // of the Newton hot loop).
    const double tc = std::clamp(t.f, -600.0, 600.0);
    const double ex = std::exp(tc);
    const double exi = 1.0 / ex;
    const double sh = 0.5 * (ex - exi);
    const double ch = 0.5 * (ex + exi);
    const double ir = spec_.i_ref;
    spice::IvSample s;
    s.ids = out.f * ir * sh;
    // Exact derivatives of the reconstruction: Newton sees the same
    // surface it is solving.
    s.gm = out.f * ir * ch * t.fx;
    s.gds = out.df * ir * sh + out.f * ir * ch * t.fy;
    return s;
}

void DeviceTable::iv_many(const double* vgs, const double* vds, std::size_t n,
                          spice::IvSample* out) const {
    // Scratch per thread: models are shared across worker threads, and the
    // batch path must stay allocation-free in the Newton hot loop.
    thread_local std::vector<Grid2d::Sample> t_scratch;
    if (t_scratch.size() < n)
        t_scratch.resize(n);
    t_grid_.eval_many(vgs, vds, n, t_scratch.data());
    const double ir = spec_.i_ref;
    for (std::size_t i = 0; i < n; ++i) {
        // Same arithmetic as iv(), in the same order — the differential
        // suites assert bitwise agreement between the paths.
        const Grid2d::Sample& t = t_scratch[i];
        const OutputShape out_shape = output_shape(vds[i]);
        const double tc = std::clamp(t.f, -600.0, 600.0);
        const double ex = std::exp(tc);
        const double exi = 1.0 / ex;
        const double sh = 0.5 * (ex - exi);
        const double ch = 0.5 * (ex + exi);
        out[i].ids = out_shape.f * ir * sh;
        out[i].gm = out_shape.f * ir * ch * t.fx;
        out[i].gds = out_shape.df * ir * sh + out_shape.f * ir * ch * t.fy;
    }
}

spice::CvSample DeviceTable::cv(double vgs, double vds) const {
    const double cgs = cgs_grid_.eval(vgs, vds).f;
    const double cgd = cgd_grid_.eval(vgs, vds).f;
    // Interpolation undershoot must not produce a negative capacitance.
    return {std::max(cgs, 1e-18), std::max(cgd, 1e-18)};
}

} // namespace tfetsram::device
