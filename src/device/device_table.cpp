#include "device/device_table.hpp"

#include <algorithm>
#include <cmath>

namespace tfetsram::device {

DeviceTable::DeviceTable(std::string name, const TableSpec& spec)
    : name_(std::move(name)), spec_(spec),
      t_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
              spec.points),
      cgs_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
                spec.points),
      cgd_grid_(spec.v_min, spec.v_max, spec.points, spec.v_min, spec.v_max,
                spec.points) {
    TFET_EXPECTS(spec.i_ref > 0.0);
    TFET_EXPECTS(spec.v_out > 0.0);
    TFET_EXPECTS(spec.points >= 5);
}

DeviceTable::OutputShape DeviceTable::output_shape(double vds) const {
    const double a = std::fabs(vds) / spec_.v_out;
    const double e = std::exp(-std::min(a, 700.0));
    const double mag = 1.0 - e;
    return {vds >= 0.0 ? mag : -mag, e / spec_.v_out};
}

double DeviceTable::compress_ratio(double ratio) const {
    return std::asinh(ratio / spec_.i_ref);
}

spice::IvSample DeviceTable::iv(double vgs, double vds) const {
    const Grid2d::Sample t = t_grid_.eval(vgs, vds);
    const OutputShape out = output_shape(vds);
    // Guard sinh/cosh against pathological extrapolation far off-grid.
    const double tc = std::clamp(t.f, -600.0, 600.0);
    const double sh = std::sinh(tc);
    const double ch = std::cosh(tc);
    const double ir = spec_.i_ref;
    spice::IvSample s;
    s.ids = out.f * ir * sh;
    // Exact derivatives of the reconstruction: Newton sees the same
    // surface it is solving.
    s.gm = out.f * ir * ch * t.fx;
    s.gds = out.df * ir * sh + out.f * ir * ch * t.fy;
    return s;
}

spice::CvSample DeviceTable::cv(double vgs, double vds) const {
    const double cgs = cgs_grid_.eval(vgs, vds).f;
    const double cgd = cgd_grid_.eval(vgs, vds).f;
    // Interpolation undershoot must not produce a negative capacitance.
    return {std::max(cgs, 1e-18), std::max(cgd, 1e-18)};
}

} // namespace tfetsram::device
