#pragma once
// Factory functions assembling the device zoo the paper's experiments use:
// n/p TFETs (analytic or tabulated) and n/p MOSFETs for the 32 nm CMOS
// baseline. P-type devices are polarity mirrors of the n-type physics.

#include "device/device_table.hpp"
#include "device/mosfet_model.hpp"
#include "device/tfet_model.hpp"

namespace tfetsram::device {

/// Polarity mirror: I_p(vgs, vds) = -I_n(-vgs, -vds) with matching
/// derivative transforms and mirrored capacitances.
class MirrorModel final : public spice::TransistorModel {
public:
    MirrorModel(spice::TransistorModelPtr inner, std::string name);

    [[nodiscard]] spice::IvSample iv(double vgs, double vds) const override;
    [[nodiscard]] spice::CvSample cv(double vgs, double vds) const override;
    [[nodiscard]] const char* name() const override { return name_.c_str(); }

    /// Batched mirror: negate the bias arrays once, run the inner model's
    /// (possibly fused) batch sweep, then apply the polarity transform —
    /// keeps p-type tables on the structure-of-arrays fast path.
    void iv_many(const double* vgs, const double* vds, std::size_t n,
                 spice::IvSample* out) const override;

private:
    spice::TransistorModelPtr inner_;
    std::string name_;
};

/// Analytic n-type TFET.
spice::TransistorModelPtr make_ntfet(const TfetParams& params = {});

/// Analytic p-type TFET (mirror of the n-type).
spice::TransistorModelPtr make_ptfet(const TfetParams& params = {});

/// Analytic n-channel MOSFET (32 nm LP defaults).
spice::TransistorModelPtr make_nmos(const MosfetParams& params = {});

/// Defaults used by make_pmos: specific current derated to the usual
/// hole-mobility deficit.
MosfetParams pmos_defaults();

/// Analytic p-channel MOSFET.
spice::TransistorModelPtr make_pmos(const MosfetParams& params = pmos_defaults());

/// Version tag for the standard model set built by make_model_set with
/// default parameters. Cache keys include it so that a deliberate change
/// to the device physics invalidates every cached sweep point; bump it
/// whenever the default models' I-V/C-V behavior changes.
inline constexpr const char* kModelSetVersion = "std-2011.2";

/// The four models every SRAM experiment consumes.
struct ModelSet {
    spice::TransistorModelPtr ntfet;
    spice::TransistorModelPtr ptfet;
    spice::TransistorModelPtr nmos;
    spice::TransistorModelPtr pmos;
};

/// Build the standard model set. When `tabulated` is true (the default, and
/// the paper's flow) the TFETs are extracted into lookup tables first; the
/// MOSFETs always stay analytic (the paper simulates CMOS with PTM, not
/// tables).
ModelSet make_model_set(const TfetParams& tfet_params = {},
                        bool tabulated = true,
                        const TableSpec& spec = {});

} // namespace tfetsram::device
