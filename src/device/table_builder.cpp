#include "device/table_builder.hpp"

#include <cmath>

namespace tfetsram::device {

std::shared_ptr<const DeviceTable> build_table(
    const spice::TransistorModel& source, const TableSpec& spec) {
    auto table = std::make_shared<DeviceTable>(
        std::string(source.name()) + "[tab]", spec);
    Grid2d& tg = table->t_grid();
    Grid2d& cgs = table->cgs_grid();
    Grid2d& cgd = table->cgd_grid();
    for (std::size_t iy = 0; iy < tg.ny(); ++iy) {
        const double vds = tg.y_at(iy);
        const DeviceTable::OutputShape out = table->output_shape(vds);
        for (std::size_t ix = 0; ix < tg.nx(); ++ix) {
            const double vgs = tg.x_at(ix);
            const spice::IvSample s = source.iv(vgs, vds);
            double ratio = 0.0;
            if (std::fabs(out.f) > 1e-9) {
                ratio = s.ids / out.f;
            } else {
                // At (and numerically near) vds = 0 the current and the
                // output shape both vanish; the ratio limit is the channel
                // conductance divided by F'(0) = 1/v_out.
                ratio = s.gds / out.df;
            }
            tg.at(ix, iy) = table->compress_ratio(ratio);
            const spice::CvSample c = source.cv(vgs, vds);
            cgs.at(ix, iy) = c.cgs;
            cgd.at(ix, iy) = c.cgd;
        }
    }
    return table;
}

} // namespace tfetsram::device
