#pragma once
// Topology-as-data: a cell topology is a declarative CellSpec — an ordered
// netlist template with declared ports, parameter bindings (beta, w_access,
// vdd, ...), per-device model slots, and the behavioral flags the operation
// programmer dispatches on — instead of hand-wired C++ in build_cell. The
// four legacy CellKinds are built-in specs whose instantiated circuits are
// bitwise-identical to the historical hand-coded ones (tests/test_cell_zoo
// proves it differentially); new topologies (8T read-port, the 9T
// near-threshold cell) are just more data. Specs can also be loaded from
// .sp decks via src/netlist, with the deck's .ports directive supplying the
// port contract (docs/CELLZOO.md).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sram/assist.hpp"
#include "sram/cell.hpp"

namespace tfetsram::netlist {
class Netlist;
} // namespace tfetsram::netlist

namespace tfetsram::sram {

/// How a spec's read operation is sensed (operations.cpp dispatches on
/// this instead of a CellKind switch).
enum class ReadStyle {
    kDifferential,   ///< WL pulse, both bitlines precharged, sense BL
    kReadPort,       ///< decoupled read stack: RWL pulse, sense RBL
    kSingleSidedBlb, ///< asymmetric cell: WL pulse, sense BLB only
};

/// Which configured model a spec transistor resolves to. The kCore slots
/// follow CellSpec::tfet_core (TFET core -> TFETs, CMOS core -> MOSFETs);
/// the explicit slots pin a model regardless of the core flavor.
enum class ModelSlot {
    kCoreN, ///< tfet_core ? models.ntfet : models.nmos
    kCoreP, ///< tfet_core ? models.ptfet : models.pmos
    kNTfet,
    kPTfet,
    kNMos,
    kPMos,
};

/// Width binding of a spec transistor: a named config parameter scaled by
/// a constant, or a literal width in um.
struct WidthExpr {
    enum class Base {
        kPullDown, ///< beta * w_access
        kAccess,   ///< w_access
        kPullUp,   ///< w_pullup
        kLiteral,  ///< scale itself is the width [um]
    };
    Base base = Base::kAccess;
    double scale = 1.0;

    [[nodiscard]] double resolve(const CellConfig& config) const;
};

/// One emission step of a spec. Steps run in order; the instantiated
/// circuit's node numbering and stamp sequence are exactly the emission
/// order (which is what makes legacy specs bitwise-identical to the old
/// hand-wired builder).
struct SpecElement {
    enum class Kind {
        kNode,         ///< create node `a`
        kRail,         ///< V<label> driving node `a` at level_frac * vdd
        kBitline,      ///< driver infra on existing node `a`: node a_drv,
                       ///< V<a>, SW<a> (r_precharge/1e12), C<a> (c_bitline)
        kWordline,     ///< V<label> on `a`; DC level = wl inactive level
        kReadWordline, ///< V<label> on `a`; DC level = rwl inactive level
        kTransistor,   ///< add_transistor(label, slot, a=d, b=g, c=s, width)
        kAccess,       ///< access device between bitline `a` and store `b`;
                       ///< orientation from config.access unless pinned
        kCapacitor,    ///< C to ground on `a` (c_node, c_bitline or literal)
        kResistor,     ///< R<label> between `a` and `b`, value ohms
    };
    enum class CapKind { kNode, kBitline, kLiteral };

    Kind kind = Kind::kNode;
    std::string label;
    std::string a, b, c; ///< node names (meaning depends on kind)
    ModelSlot slot = ModelSlot::kCoreN;
    WidthExpr width{};
    double level_frac = 0.0; ///< kRail: level as a fraction of vdd
    /// kAccess: pinned orientation; nullopt defers to config.access.
    std::optional<AccessDevice> orientation = std::nullopt;
    CapKind cap_kind = CapKind::kNode;
    double value = 0.0; ///< kCapacitor kLiteral [F] / kResistor [ohm]
};

/// A declarative cell topology. Immutable after registration; consumers
/// hold pointers into the built-in registry (static storage) or own the
/// spec themselves (deck-loaded specs).
struct CellSpec {
    std::string id;           ///< registry key, e.g. "tfet8t"
    std::string display_name; ///< report name, e.g. "8T TFET SRAM"
    /// Legacy enum this spec corresponds to (the built-in four); new
    /// topologies reuse the nearest kind but are never dispatched on it.
    CellKind kind = CellKind::kTfet6T;

    // ---- Behavioral contract (what operations.cpp dispatches on) ----
    ReadStyle read_style = ReadStyle::kDifferential;
    bool tfet_core = true;
    /// Wordline polarity follows the access-device choice (only the
    /// configurable 6T TFET cell; everything else is active-high).
    bool wl_follows_access = false;
    /// Write-bitline hold level as a fraction of vdd. Read-port cells
    /// clamp their write bitlines low (0.0) so outward access devices
    /// never see reverse bias during hold.
    double bl_hold_frac = 1.0;
    /// Read-wordline active level as a fraction of vdd (read-port specs
    /// only). The inactive level is (1 - rwl_active_frac) * vdd: the 7T
    /// cell's source-side read buffer asserts low, the 8T/9T stacks
    /// assert high.
    double rwl_active_frac = 0.0;
    /// Writes are single-sided with a fixed polarity (the asymmetric
    /// cell); preferred_write is the only polarity such a spec can write.
    bool single_sided_write = false;
    bool preferred_write = true;
    /// Assist baked into the topology's write operation (kNone for most).
    Assist implicit_write_assist = Assist::kNone;
    bool wlcrit_defined = true;

    // ---- Port contract ----
    std::string port_q = "q";
    std::string port_qb = "qb";
    std::string port_bl = "bl";
    std::string port_blb = "blb";
    std::string port_wl = "wl";
    std::string port_vdd = "vdd";
    std::string port_vss = "vss";
    std::string port_rbl; ///< empty when the spec has no read port
    std::string port_rwl;
    /// All declared ports, in declaration order (reports, examples).
    std::vector<std::string> declared_ports;

    // ---- Template body (built-in specs) ----
    /// Nodes created up front, in order (port nodes first — their ids are
    /// part of the bitwise-identity contract).
    std::vector<std::string> nodes;
    std::vector<SpecElement> elements;

    /// Deck-backed specs instantiate by building this netlist instead of
    /// emitting `elements` (see load_cell_spec).
    std::shared_ptr<const netlist::Netlist> deck;

    [[nodiscard]] bool has_read_port() const { return !port_rbl.empty(); }
};

/// The built-in spec for a legacy CellKind (static storage).
const CellSpec& builtin_spec(CellKind kind);

/// Every built-in spec: the legacy four plus the 8T read-port and 9T
/// near-threshold topologies (static storage, stable order).
const std::vector<CellSpec>& builtin_specs();

/// Look up a built-in spec by id ("tfet6t", "tfet8t", ...); throws
/// std::invalid_argument for unknown ids.
const CellSpec& find_spec(const std::string& id);

/// Instantiate a spec into a ready-to-operate cell. config.spec is set to
/// `spec`; for built-in specs config.kind is aligned with the spec's.
SramCell instantiate_spec(const CellSpec& spec, const CellConfig& config,
                          const spice::SimContext* sim = nullptr);

/// Load a deck-backed spec from a .sp file. The deck must declare its
/// ports (.ports directive) including at least q and qb; the conventional
/// names q/qb/bl/blb/wl/vdd/vss/rbl/rwl bind the SramCell handles, and a
/// declared rbl port marks the spec as read-port style. Deck specs carry
/// no variable-device list (Monte-Carlo needs a built-in spec).
CellSpec load_cell_spec(const std::string& path);

/// The spec governing a built cell: config.spec when set, otherwise the
/// built-in spec of config.kind (so legacy-built cells keep working).
const CellSpec& spec_of(const SramCell& cell);

} // namespace tfetsram::sram
