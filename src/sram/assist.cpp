#include "sram/assist.hpp"

#include "util/contracts.hpp"

namespace tfetsram::sram {

bool is_write_assist(Assist a) {
    switch (a) {
    case Assist::kWaVddLowering:
    case Assist::kWaGndRaising:
    case Assist::kWaWordlineLowering:
    case Assist::kWaBitlineRaising:
        return true;
    default:
        return false;
    }
}

bool is_read_assist(Assist a) {
    switch (a) {
    case Assist::kRaVddRaising:
    case Assist::kRaGndLowering:
    case Assist::kRaWordlineRaising:
    case Assist::kRaBitlineLowering:
        return true;
    default:
        return false;
    }
}

const char* to_string(Assist a) {
    switch (a) {
    case Assist::kNone:
        return "none";
    case Assist::kWaVddLowering:
        return "VDD lowering WA";
    case Assist::kWaGndRaising:
        return "GND raising WA";
    case Assist::kWaWordlineLowering:
        return "wordline lowering WA";
    case Assist::kWaBitlineRaising:
        return "bitline raising WA";
    case Assist::kRaVddRaising:
        return "VDD raising RA";
    case Assist::kRaGndLowering:
        return "GND lowering RA";
    case Assist::kRaWordlineRaising:
        return "wordline raising RA";
    case Assist::kRaBitlineLowering:
        return "bitline lowering RA";
    }
    return "?";
}

AssistLevels assist_levels(double vdd, double wl_active, Assist a,
                           double fraction) {
    TFET_EXPECTS(vdd > 0.0);
    TFET_EXPECTS(fraction >= 0.0 && fraction < 1.0);
    const double delta = fraction * vdd;
    // Overdriving past the active level strengthens the access device;
    // backing off toward the inactive level weakens it. For an active-low
    // wordline (p-type access) "strengthen" means lower, matching the
    // paper's naming of the techniques.
    const bool active_low = wl_active < vdd / 2.0;
    const double wl_strengthen = active_low ? wl_active - delta : wl_active + delta;
    const double wl_weaken = active_low ? wl_active + delta : wl_active - delta;

    AssistLevels lv{vdd, 0.0, wl_active, vdd, 0.0};
    switch (a) {
    case Assist::kNone:
        break;
    case Assist::kWaVddLowering:
        lv.vdd = vdd - delta;
        break;
    case Assist::kWaGndRaising:
        lv.vss = delta;
        break;
    case Assist::kWaWordlineLowering:
        lv.wl_active = wl_strengthen;
        break;
    case Assist::kWaBitlineRaising:
        lv.bl_high = vdd + delta;
        break;
    case Assist::kRaVddRaising:
        lv.vdd = vdd + delta;
        break;
    case Assist::kRaGndLowering:
        lv.vss = -delta;
        break;
    case Assist::kRaWordlineRaising:
        lv.wl_active = wl_weaken;
        break;
    case Assist::kRaBitlineLowering:
        lv.bl_high = vdd - delta;
        break;
    }
    return lv;
}

} // namespace tfetsram::sram
