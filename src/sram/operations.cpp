#include "sram/operations.hpp"

#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"

namespace tfetsram::sram {

namespace {

using spice::Waveform;

/// Base level until t_on, ramp to `active` over `edge`, hold until t_off,
/// ramp back. Collapses to DC when the levels coincide.
Waveform excursion(double base, double active, double t_on, double t_off,
                   double edge) {
    if (base == active)
        return Waveform::dc(base);
    TFET_EXPECTS(t_off >= t_on + edge);
    return Waveform::pwl({{t_on, base},
                          {t_on + edge, active},
                          {t_off, active},
                          {t_off + edge, base}});
}

/// Hold level of the write bitlines for a topology: the 7T cell of [14]
/// clamps its write bitlines low precisely to keep its outward access
/// devices out of reverse bias.
double bitline_hold_level(const SramCell& cell) {
    return cell.config.kind == CellKind::kTfet7T ? 0.0 : cell.config.vdd;
}

/// Switch control that opens (1 -> 0) shortly before t_open.
Waveform open_before(double t_open) {
    const double lead = 4e-12;
    TFET_EXPECTS(t_open > lead);
    return Waveform::pwl({{t_open - lead, 1.0}, {t_open - lead / 2.0, 0.0}});
}

} // namespace

bool preferred_write_value(CellKind kind) {
    // The asymmetric cell's outward access device can only discharge q, so
    // it writes 0 natively; every other topology is exercised writing 1.
    return kind != CellKind::kTfetAsym6T;
}

void program_hold(SramCell& cell) {
    const double vdd = cell.config.vdd;
    cell.v_vdd->set_waveform(Waveform::dc(vdd));
    cell.v_vss->set_waveform(Waveform::dc(0.0));
    cell.v_wl->set_waveform(Waveform::dc(cell.wl_inactive_level()));
    cell.v_bl->set_waveform(Waveform::dc(bitline_hold_level(cell)));
    cell.v_blb->set_waveform(Waveform::dc(bitline_hold_level(cell)));
    cell.sw_bl->set_control(Waveform::dc(1.0));
    cell.sw_blb->set_control(Waveform::dc(1.0));
    if (cell.config.kind == CellKind::kTfet7T) {
        cell.v_rwl->set_waveform(Waveform::dc(vdd));
        cell.v_rbl->set_waveform(Waveform::dc(vdd));
        cell.sw_rbl->set_control(Waveform::dc(1.0));
    }
}

OperationWindow program_write(SramCell& cell, bool value, double pulse_width,
                              Assist assist, double fraction,
                              const OperationTiming& timing) {
    TFET_EXPECTS(pulse_width > 0.0);
    TFET_EXPECTS(assist == Assist::kNone || is_write_assist(assist));
    program_hold(cell);

    const CellConfig& cfg = cell.config;
    // The asymmetric cell of [15] has a raising write-assist built into its
    // operation; writes always use it.
    if (cfg.kind == CellKind::kTfetAsym6T && assist == Assist::kNone)
        assist = Assist::kWaGndRaising;
    if (cfg.kind == CellKind::kTfetAsym6T)
        TFET_EXPECTS(value == preferred_write_value(cfg.kind));

    const double wl_active = cell.wl_active_level();
    const double wl_inactive = cell.wl_inactive_level();
    const AssistLevels lv = assist_levels(cfg.vdd, wl_active, assist, fraction);

    OperationWindow w;
    const double ta_on = timing.t_settle;
    w.wl_start = ta_on + timing.assist_edge + timing.assist_lead;
    w.wl_mid = w.wl_start + timing.wl_edge / 2.0;
    const double wl_fall_start = w.wl_start + timing.wl_edge + pulse_width;
    w.wl_end = wl_fall_start + timing.wl_edge;
    const double ta_off = w.wl_end + timing.assist_lag;
    w.t_end = w.wl_end + timing.t_post;

    cell.v_vdd->set_waveform(
        excursion(cfg.vdd, lv.vdd, ta_on, ta_off, timing.assist_edge));
    cell.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, timing.assist_edge));
    cell.v_wl->set_waveform(
        excursion(wl_inactive, lv.wl_active, w.wl_start, wl_fall_start,
                  timing.wl_edge));

    const double hold = bitline_hold_level(cell);
    const double high_target = lv.bl_high;
    const double low_target = lv.bl_low;
    // Bitlines switch to write levels alongside the assist and return after.
    if (value) {
        cell.v_bl->set_waveform(
            excursion(hold, high_target, ta_on, ta_off, timing.assist_edge));
        cell.v_blb->set_waveform(
            excursion(hold, low_target, ta_on, ta_off, timing.assist_edge));
    } else {
        cell.v_bl->set_waveform(
            excursion(hold, low_target, ta_on, ta_off, timing.assist_edge));
        cell.v_blb->set_waveform(
            excursion(hold, high_target, ta_on, ta_off, timing.assist_edge));
    }
    return w;
}

ReadSetup program_read(SramCell& cell, double read_duration, Assist assist,
                       double fraction, const OperationTiming& timing,
                       bool float_bitlines) {
    TFET_EXPECTS(read_duration > 0.0);
    TFET_EXPECTS(assist == Assist::kNone || is_read_assist(assist));
    program_hold(cell);

    const CellConfig& cfg = cell.config;
    const double wl_active = cell.wl_active_level();
    const double wl_inactive = cell.wl_inactive_level();
    const AssistLevels lv = assist_levels(cfg.vdd, wl_active, assist, fraction);

    ReadSetup setup;
    OperationWindow& w = setup.window;
    const double ta_on = timing.t_settle;
    w.wl_start = ta_on + timing.assist_edge + timing.assist_lead;
    w.wl_mid = w.wl_start + timing.wl_edge / 2.0;
    const double wl_fall_start = w.wl_start + timing.wl_edge + read_duration;
    w.wl_end = wl_fall_start + timing.wl_edge;
    const double ta_off = w.wl_end + timing.assist_lag;
    w.t_end = w.wl_end + timing.t_post;

    cell.v_vdd->set_waveform(
        excursion(cfg.vdd, lv.vdd, ta_on, ta_off, timing.assist_edge));
    cell.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, timing.assist_edge));

    setup.precharge_level = lv.bl_high;

    switch (cfg.kind) {
    case CellKind::kCmos6T:
    case CellKind::kTfet6T: {
        cell.v_wl->set_waveform(excursion(wl_inactive, lv.wl_active,
                                          w.wl_start, wl_fall_start,
                                          timing.wl_edge));
        // Both bitlines precharged (possibly to a lowered level per the
        // bitline-lowering RA).
        cell.v_bl->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                          timing.assist_edge));
        cell.v_blb->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines) {
            cell.sw_bl->set_control(open_before(w.wl_start));
            cell.sw_blb->set_control(open_before(w.wl_start));
        }
        // Disturb side: the node storing 0 gets pulled up through its
        // access device. Initialize q = 0.
        setup.q_high_init = false;
        setup.disturb_node = cell.q;
        setup.safe_node = cell.qb;
        setup.sense_node = cell.bl;
        break;
    }
    case CellKind::kTfet7T: {
        // Write wordline stays off; the read wordline drops to turn on the
        // read buffer's source path.
        cell.v_rwl->set_waveform(excursion(cfg.vdd, 0.0, w.wl_start,
                                           wl_fall_start, timing.wl_edge));
        cell.v_rbl->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines)
            cell.sw_rbl->set_control(open_before(w.wl_start));
        // qb = 1 turns the read buffer on; the storage nodes are decoupled,
        // so the "disturb" node only sees capacitive kick.
        setup.q_high_init = false;
        setup.disturb_node = cell.q;
        setup.safe_node = cell.qb;
        setup.sense_node = cell.rbl;
        break;
    }
    case CellKind::kTfetAsym6T: {
        cell.v_wl->set_waveform(excursion(wl_inactive, lv.wl_active,
                                          w.wl_start, wl_fall_start,
                                          timing.wl_edge));
        // Read through the inward device on BLB: it pulls qb (storing 0)
        // up while BLB droops.
        cell.v_blb->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines)
            cell.sw_blb->set_control(open_before(w.wl_start));
        setup.q_high_init = true;
        setup.disturb_node = cell.qb;
        setup.safe_node = cell.q;
        setup.sense_node = cell.blb;
        break;
    }
    }
    return setup;
}

HoldState solve_hold_state(SramCell& cell, bool q_high,
                           const spice::SolverOptions& opts,
                           la::Vector* cold_guess) {
    // A cell pinned to an explicit context runs under it (no-op when the
    // cell carries none — the caller's ambient context then applies).
    const spice::ScopedContext bind(cell.sim);
    HoldState hs;
    const double vdd = cell.config.vdd;
    const std::size_t n = cell.circuit.num_unknowns();

    // First let every rail settle from a cold start (the cell lands in an
    // arbitrary state), then override the storage nodes with the intended
    // state and re-solve inside that basin of attraction. The cold solve
    // depends only on the programmed source levels at t = 0, so callers
    // iterating at fixed bias (WLcrit bisection, both-state retention
    // checks) pass `cold_guess` to solve it once and reuse it; when it is
    // actually solved, cell.dc_seed — the nominal-sample solution the MC
    // driver plants — warm-starts it.
    la::Vector guess;
    if (cold_guess != nullptr && cold_guess->size() == n) {
        guess = *cold_guess;
    } else {
        const la::Vector* seed =
            cell.dc_seed.size() == n ? &cell.dc_seed : nullptr;
        spice::DcResult d0 = spice::solve_dc(cell.circuit, opts, 0.0, seed);
        guess = d0.converged ? std::move(d0.x) : la::Vector(n, 0.0);
        if (cold_guess != nullptr)
            *cold_guess = guess;
    }
    TFET_ASSERT(cell.q >= 1 && cell.qb >= 1);
    guess[cell.q - 1] = q_high ? vdd : 0.0;
    guess[cell.qb - 1] = q_high ? 0.0 : vdd;

    auto check = [&](const la::Vector& x) {
        const double diff = spice::branch_voltage(x, cell.q, cell.qb);
        return q_high ? diff > 0.4 * vdd : diff < -0.4 * vdd;
    };

    spice::DcResult d1 = spice::solve_dc(cell.circuit, opts, 0.0, &guess);
    hs.converged = d1.converged;
    hs.x = std::move(d1.x);
    hs.state_ok = hs.converged && check(hs.x);

    if (!hs.state_ok) {
        // The Newton path can wander out of the intended basin into the
        // metastable saddle. Retry with a tight update limit: small steps
        // from the forced guess stay inside the basin.
        spice::SolverOptions crawl = opts;
        crawl.dv_limit = 0.05;
        spice::DcResult d2 = spice::solve_dc(cell.circuit, crawl, 0.0, &guess);
        if (d2.converged && check(d2.x)) {
            hs.converged = true;
            hs.x = std::move(d2.x);
            hs.state_ok = true;
        }
    }
    return hs;
}

} // namespace tfetsram::sram
