#include "sram/operations.hpp"

#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "sram/cell_spec.hpp"

namespace tfetsram::sram {

namespace {

using spice::Waveform;

/// Base level until t_on, ramp to `active` over `edge`, hold until t_off,
/// ramp back. Collapses to DC when the levels coincide.
Waveform excursion(double base, double active, double t_on, double t_off,
                   double edge) {
    if (base == active)
        return Waveform::dc(base);
    TFET_EXPECTS(t_off >= t_on + edge);
    return Waveform::pwl({{t_on, base},
                          {t_on + edge, active},
                          {t_off, active},
                          {t_off + edge, base}});
}

/// Hold level of the write bitlines, from the spec's contract: read-port
/// topologies ([14]'s 7T, the 8T/9T stacks) clamp their write bitlines low
/// precisely to keep their outward access devices out of reverse bias.
double bitline_hold_level(const SramCell& cell) {
    return spec_of(cell).bl_hold_frac * cell.config.vdd;
}

/// Switch control that opens (1 -> 0) shortly before t_open.
Waveform open_before(double t_open) {
    const double lead = 4e-12;
    TFET_EXPECTS(t_open > lead);
    return Waveform::pwl({{t_open - lead, 1.0}, {t_open - lead / 2.0, 0.0}});
}

} // namespace

bool preferred_write_value(CellKind kind) {
    return builtin_spec(kind).preferred_write;
}

bool preferred_write_value(const SramCell& cell) {
    // The asymmetric cell's outward access device can only discharge q, so
    // it writes 0 natively; every other topology is exercised writing 1.
    return spec_of(cell).preferred_write;
}

void program_hold(SramCell& cell) {
    const CellSpec& spec = spec_of(cell);
    const double vdd = cell.config.vdd;
    // Deck-built cells may omit individual drivers (a deck that ties VSS
    // straight to ground has no Vvss) — program whatever handles exist.
    if (cell.v_vdd != nullptr)
        cell.v_vdd->set_waveform(Waveform::dc(vdd));
    if (cell.v_vss != nullptr)
        cell.v_vss->set_waveform(Waveform::dc(0.0));
    if (cell.v_wl != nullptr)
        cell.v_wl->set_waveform(Waveform::dc(cell.wl_inactive_level()));
    if (cell.v_bl != nullptr)
        cell.v_bl->set_waveform(Waveform::dc(bitline_hold_level(cell)));
    if (cell.v_blb != nullptr)
        cell.v_blb->set_waveform(Waveform::dc(bitline_hold_level(cell)));
    if (cell.sw_bl != nullptr)
        cell.sw_bl->set_control(Waveform::dc(1.0));
    if (cell.sw_blb != nullptr)
        cell.sw_blb->set_control(Waveform::dc(1.0));
    if (spec.has_read_port()) {
        if (cell.v_rwl != nullptr)
            cell.v_rwl->set_waveform(
                Waveform::dc((1.0 - spec.rwl_active_frac) * vdd));
        if (cell.v_rbl != nullptr)
            cell.v_rbl->set_waveform(Waveform::dc(vdd));
        if (cell.sw_rbl != nullptr)
            cell.sw_rbl->set_control(Waveform::dc(1.0));
    }
}

OperationWindow program_write(SramCell& cell, bool value, double pulse_width,
                              Assist assist, double fraction,
                              const OperationTiming& timing) {
    TFET_EXPECTS(pulse_width > 0.0);
    TFET_EXPECTS(assist == Assist::kNone || is_write_assist(assist));
    program_hold(cell);

    const CellConfig& cfg = cell.config;
    const CellSpec& spec = spec_of(cell);
    // Some topologies (the asymmetric cell of [15]) bake an assist into
    // their write operation; writes always use it.
    if (spec.implicit_write_assist != Assist::kNone && assist == Assist::kNone)
        assist = spec.implicit_write_assist;
    if (spec.single_sided_write)
        TFET_EXPECTS(value == spec.preferred_write);

    const double wl_active = cell.wl_active_level();
    const double wl_inactive = cell.wl_inactive_level();
    const AssistLevels lv = assist_levels(cfg.vdd, wl_active, assist, fraction);

    OperationWindow w;
    const double ta_on = timing.t_settle;
    w.wl_start = ta_on + timing.assist_edge + timing.assist_lead;
    w.wl_mid = w.wl_start + timing.wl_edge / 2.0;
    const double wl_fall_start = w.wl_start + timing.wl_edge + pulse_width;
    w.wl_end = wl_fall_start + timing.wl_edge;
    const double ta_off = w.wl_end + timing.assist_lag;
    w.t_end = w.wl_end + timing.t_post;

    cell.v_vdd->set_waveform(
        excursion(cfg.vdd, lv.vdd, ta_on, ta_off, timing.assist_edge));
    cell.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, timing.assist_edge));
    cell.v_wl->set_waveform(
        excursion(wl_inactive, lv.wl_active, w.wl_start, wl_fall_start,
                  timing.wl_edge));

    const double hold = bitline_hold_level(cell);
    const double high_target = lv.bl_high;
    const double low_target = lv.bl_low;
    // Bitlines switch to write levels alongside the assist and return after.
    if (value) {
        cell.v_bl->set_waveform(
            excursion(hold, high_target, ta_on, ta_off, timing.assist_edge));
        cell.v_blb->set_waveform(
            excursion(hold, low_target, ta_on, ta_off, timing.assist_edge));
    } else {
        cell.v_bl->set_waveform(
            excursion(hold, low_target, ta_on, ta_off, timing.assist_edge));
        cell.v_blb->set_waveform(
            excursion(hold, high_target, ta_on, ta_off, timing.assist_edge));
    }
    return w;
}

ReadSetup program_read(SramCell& cell, double read_duration, Assist assist,
                       double fraction, const OperationTiming& timing,
                       bool float_bitlines) {
    TFET_EXPECTS(read_duration > 0.0);
    TFET_EXPECTS(assist == Assist::kNone || is_read_assist(assist));
    program_hold(cell);

    const CellConfig& cfg = cell.config;
    const double wl_active = cell.wl_active_level();
    const double wl_inactive = cell.wl_inactive_level();
    const AssistLevels lv = assist_levels(cfg.vdd, wl_active, assist, fraction);

    ReadSetup setup;
    OperationWindow& w = setup.window;
    const double ta_on = timing.t_settle;
    w.wl_start = ta_on + timing.assist_edge + timing.assist_lead;
    w.wl_mid = w.wl_start + timing.wl_edge / 2.0;
    const double wl_fall_start = w.wl_start + timing.wl_edge + read_duration;
    w.wl_end = wl_fall_start + timing.wl_edge;
    const double ta_off = w.wl_end + timing.assist_lag;
    w.t_end = w.wl_end + timing.t_post;

    cell.v_vdd->set_waveform(
        excursion(cfg.vdd, lv.vdd, ta_on, ta_off, timing.assist_edge));
    cell.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, timing.assist_edge));

    setup.precharge_level = lv.bl_high;

    switch (spec_of(cell).read_style) {
    case ReadStyle::kDifferential: {
        cell.v_wl->set_waveform(excursion(wl_inactive, lv.wl_active,
                                          w.wl_start, wl_fall_start,
                                          timing.wl_edge));
        // Both bitlines precharged (possibly to a lowered level per the
        // bitline-lowering RA).
        cell.v_bl->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                          timing.assist_edge));
        cell.v_blb->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines) {
            cell.sw_bl->set_control(open_before(w.wl_start));
            cell.sw_blb->set_control(open_before(w.wl_start));
        }
        // Disturb side: the node storing 0 gets pulled up through its
        // access device. Initialize q = 0.
        setup.q_high_init = false;
        setup.disturb_node = cell.q;
        setup.safe_node = cell.qb;
        setup.sense_node = cell.bl;
        break;
    }
    case ReadStyle::kReadPort: {
        // Write wordline stays off; the read wordline swings to its active
        // level — low for the 7T's source-side read buffer
        // (rwl_active_frac = 0), high for the 8T/9T gated stacks.
        const CellSpec& spec = spec_of(cell);
        const double rwl_idle = (1.0 - spec.rwl_active_frac) * cfg.vdd;
        const double rwl_active = spec.rwl_active_frac * cfg.vdd;
        cell.v_rwl->set_waveform(excursion(rwl_idle, rwl_active, w.wl_start,
                                           wl_fall_start, timing.wl_edge));
        cell.v_rbl->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines)
            cell.sw_rbl->set_control(open_before(w.wl_start));
        // qb = 1 turns the read buffer on; the storage nodes are decoupled,
        // so the "disturb" node only sees capacitive kick.
        setup.q_high_init = false;
        setup.disturb_node = cell.q;
        setup.safe_node = cell.qb;
        setup.sense_node = cell.rbl;
        break;
    }
    case ReadStyle::kSingleSidedBlb: {
        cell.v_wl->set_waveform(excursion(wl_inactive, lv.wl_active,
                                          w.wl_start, wl_fall_start,
                                          timing.wl_edge));
        // Read through the inward device on BLB: it pulls qb (storing 0)
        // up while BLB droops.
        cell.v_blb->set_waveform(excursion(cfg.vdd, lv.bl_high, ta_on, ta_off,
                                           timing.assist_edge));
        if (float_bitlines)
            cell.sw_blb->set_control(open_before(w.wl_start));
        setup.q_high_init = true;
        setup.disturb_node = cell.qb;
        setup.safe_node = cell.q;
        setup.sense_node = cell.blb;
        break;
    }
    }
    return setup;
}

HoldState solve_hold_state(SramCell& cell, bool q_high,
                           const spice::SolverOptions& opts,
                           la::Vector* cold_guess) {
    // A cell pinned to an explicit context runs under it (no-op when the
    // cell carries none — the caller's ambient context then applies).
    const spice::ScopedContext bind(cell.sim);
    HoldState hs;
    const double vdd = cell.config.vdd;
    const std::size_t n = cell.circuit.num_unknowns();

    // First let every rail settle from a cold start (the cell lands in an
    // arbitrary state), then override the storage nodes with the intended
    // state and re-solve inside that basin of attraction. The cold solve
    // depends only on the programmed source levels at t = 0, so callers
    // iterating at fixed bias (WLcrit bisection, both-state retention
    // checks) pass `cold_guess` to solve it once and reuse it; when it is
    // actually solved, cell.dc_seed — the nominal-sample solution the MC
    // driver plants — warm-starts it.
    la::Vector guess;
    if (cold_guess != nullptr && cold_guess->size() == n) {
        guess = *cold_guess;
    } else {
        const la::Vector* seed =
            cell.dc_seed.size() == n ? &cell.dc_seed : nullptr;
        spice::DcResult d0 = spice::solve_dc(cell.circuit, opts, 0.0, seed);
        guess = d0.converged ? std::move(d0.x) : la::Vector(n, 0.0);
        if (cold_guess != nullptr)
            *cold_guess = guess;
    }
    TFET_ASSERT(cell.q >= 1 && cell.qb >= 1);
    guess[cell.q - 1] = q_high ? vdd : 0.0;
    guess[cell.qb - 1] = q_high ? 0.0 : vdd;

    auto check = [&](const la::Vector& x) {
        const double diff = spice::branch_voltage(x, cell.q, cell.qb);
        return q_high ? diff > 0.4 * vdd : diff < -0.4 * vdd;
    };

    spice::DcResult d1 = spice::solve_dc(cell.circuit, opts, 0.0, &guess);
    hs.converged = d1.converged;
    hs.x = std::move(d1.x);
    hs.state_ok = hs.converged && check(hs.x);

    if (!hs.state_ok) {
        // The Newton path can wander out of the intended basin into the
        // metastable saddle. Retry with a tight update limit: small steps
        // from the forced guess stay inside the basin.
        spice::SolverOptions crawl = opts;
        crawl.dv_limit = 0.05;
        spice::DcResult d2 = spice::solve_dc(cell.circuit, crawl, 0.0, &guess);
        if (d2.converged && check(d2.x)) {
            hs.converged = true;
            hs.x = std::move(d2.x);
            hs.state_ok = true;
        }
    }
    return hs;
}

} // namespace tfetsram::sram
