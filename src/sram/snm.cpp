#include "sram/snm.hpp"

#include <algorithm>
#include <cmath>

#include "sram/operations.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"

namespace tfetsram::sram {

namespace {

/// Program the static bias condition on a built cell.
void program_static_bias(SramCell& cell, SnmMode mode) {
    program_hold(cell);
    if (mode == SnmMode::kRead) {
        cell.v_wl->set_waveform(
            spice::Waveform::dc(cell.wl_active_level()));
        cell.v_bl->set_waveform(spice::Waveform::dc(cell.config.vdd));
        cell.v_blb->set_waveform(spice::Waveform::dc(cell.config.vdd));
    }
}

/// Trace the VTC: clamp `forced` over [0, vdd], record `observed`.
/// Returns false on any DC failure.
bool trace_vtc(const CellConfig& config, SnmMode mode, bool force_q,
               std::size_t points, const spice::SolverOptions& opts,
               std::vector<double>& in, std::vector<double>& out) {
    SramCell cell = build_cell(config);
    program_static_bias(cell, mode);
    const spice::NodeId forced = force_q ? cell.q : cell.qb;
    const spice::NodeId observed = force_q ? cell.qb : cell.q;
    cell.circuit.add_vsource("Vforce", forced, spice::kGround,
                             spice::Waveform::dc(0.0));
    cell.circuit.prepare();
    spice::VoltageSource* vforce = cell.circuit.voltage_sources().back();

    in.clear();
    out.clear();
    la::Vector guess;
    double v_solved = -1.0; // last successfully solved clamp voltage

    // Adaptive continuation: the VTC transition region has enormous gain,
    // so a full grid step can strand Newton between branches. On failure,
    // walk from the last solved point with halved sub-steps.
    auto solve_at = [&](double v) {
        vforce->set_waveform(spice::Waveform::dc(v));
        spice::DcResult r = spice::solve_dc(cell.circuit, opts, 0.0,
                                            guess.empty() ? nullptr : &guess);
        if (r.converged) {
            guess = std::move(r.x);
            v_solved = v;
            return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < points; ++i) {
        const double v = config.vdd * static_cast<double>(i) /
                         static_cast<double>(points - 1);
        if (!solve_at(v)) {
            const double lo = v_solved < 0.0 ? 0.0 : v_solved;
            double dv = std::max((v - lo) / 2.0, 1e-5);
            int tries = 0;
            while (v_solved < v - 1e-12 && tries < 400) {
                const double next = std::min(v, (v_solved < 0.0 ? 0.0 : v_solved) + dv);
                if (solve_at(next))
                    dv *= 1.5; // recover step size after success
                else
                    dv /= 2.0;
                if (dv < 1e-6)
                    break;
                ++tries;
            }
            if (v_solved < v - 1e-12)
                return false;
        }
        in.push_back(v);
        out.push_back(spice::node_voltage(guess, observed));
    }
    return true;
}

/// Piecewise-linear evaluation of a sampled function on a uniform input
/// grid over [0, vdd], clamped outside.
double interp_uniform(const std::vector<double>& ys, double vdd, double x) {
    const auto n = ys.size();
    const double pos =
        std::clamp(x / vdd, 0.0, 1.0) * static_cast<double>(n - 1);
    const auto lo = std::min(static_cast<std::size_t>(pos), n - 2);
    const double frac = pos - static_cast<double>(lo);
    return ys[lo] + frac * (ys[lo + 1] - ys[lo]);
}

/// Is the loop still bistable with equal series noise s at both inverter
/// inputs (Seevinck)? Composite map h(y) = f(g(y + s) + s) for one noise
/// polarity, f(g(y - s) - s) for the other. The loop is bistable while
/// the restoring drive d(y) = h(y) - y still points toward both stable
/// states: a d < 0 run (toward the low state) followed by a d > 0 run
/// (toward the high state). Counting interior sign *crossings* instead
/// would miss stable points that sit exactly on the rails, where d
/// touches zero without crossing — VTCs that saturate hard (CMOS, or
/// high-on-current model sets) park both states there and would read as
/// monostable despite a wide-open butterfly.
bool bistable_under_noise(const std::vector<double>& f,
                          const std::vector<double>& g, double vdd, double s,
                          bool polarity) {
    const int n = 512;
    const double eps = 1e-6; // ignore leakage-level offsets at the rails
    bool seen_low_basin = false;
    for (int i = 0; i <= n; ++i) {
        const double y = vdd * static_cast<double>(i) / n;
        const double x = polarity ? interp_uniform(g, vdd, y + s) + s
                                  : interp_uniform(g, vdd, y - s) - s;
        const double d = interp_uniform(f, vdd, x) - y;
        if (d < -eps)
            seen_low_basin = true;
        else if (d > eps && seen_low_basin)
            return true;
    }
    return false;
}

/// Largest series noise (one polarity) that keeps the loop bistable —
/// Seevinck's exact SNM definition, via bisection.
double lobe_margin(const std::vector<double>& f, const std::vector<double>& g,
                   double vdd, bool polarity) {
    if (!bistable_under_noise(f, g, vdd, 0.0, polarity))
        return 0.0;
    double lo = 0.0;        // bistable
    double hi = 0.6 * vdd;  // beyond any possible margin
    for (int i = 0; i < 40; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (bistable_under_noise(f, g, vdd, mid, polarity))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

SnmResult static_noise_margin(const CellConfig& config, SnmMode mode,
                              std::size_t points,
                              const spice::SolverOptions& opts) {
    TFET_EXPECTS(points >= 8);
    SnmResult res;

    // Curve 1: qb = f(q), q clamped on a uniform grid.
    std::vector<double> in1;
    std::vector<double> f;
    if (!trace_vtc(config, mode, /*force_q=*/true, points, opts, in1, f))
        return res;
    // Curve 2: q = g(qb), qb clamped on a uniform grid.
    std::vector<double> in2;
    std::vector<double> g;
    if (!trace_vtc(config, mode, /*force_q=*/false, points, opts, in2, g))
        return res;

    res.lobe_high = lobe_margin(f, g, config.vdd, true);
    res.lobe_low = lobe_margin(f, g, config.vdd, false);
    res.snm = std::min(res.lobe_high, res.lobe_low);
    res.valid = true;
    return res;
}

} // namespace tfetsram::sram
