#pragma once
// The paper's figures of merit:
//  * static power during hold (Sec. 3/5),
//  * DRNM — dynamic read noise margin: the minimum q/qb separation during
//    a read access [18],
//  * WLcrit — the minimum wordline pulse width that flips the cell during
//    a write [19] (infinite when the cell cannot be written at all),
//  * write delay (WL assertion to storage-node crossover) and read delay
//    (WL assertion to a sensable bitline droop), Sec. 5.

#include <limits>
#include <optional>

#include "sram/operations.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::sram {

/// Numerical and measurement knobs shared by the metrics.
struct MetricOptions {
    spice::SolverOptions solver;
    OperationTiming timing;
    double assist_fraction = kDefaultAssistFraction;
    double read_duration = 500e-12;   ///< WL assertion for DRNM reads [s]
    double wlcrit_min = 1e-12;        ///< bisection floor [s]
    /// Pulses beyond this count as write failure. Sized for the slowest
    /// corner the paper sweeps (VDD = 0.5 V needs ~3 ns, Fig. 12a).
    double wlcrit_max = 6e-9;
    double wlcrit_rel_tol = 0.03;     ///< bisection convergence
    double write_probe_pulse = 4.0e-9; ///< pulse for delay measurement [s]
    double read_sense_margin = 0.05;  ///< bitline droop that counts as read [V]
    double flip_threshold_frac = 0.5; ///< |q-qb| fraction of VDD deciding a flip
};

/// Hold-state static power with the cell storing q = q_high. Computed from
/// the device equations at the solved operating point. NaN when the hold
/// state cannot be established.
double hold_static_power(SramCell& cell, bool q_high,
                         const MetricOptions& opts = {});

/// Worst case over both stored values.
double worst_hold_static_power(SramCell& cell, const MetricOptions& opts = {});

struct DrnmResult {
    double drnm = 0.0;  ///< min separation of safe/disturb node [V]
    bool flipped = false;
    bool valid = false; ///< simulation succeeded
};

/// Dynamic read noise margin, optionally with a read assist.
DrnmResult dynamic_read_noise_margin(SramCell& cell,
                                     Assist assist = Assist::kNone,
                                     const MetricOptions& opts = {});

/// Critical wordline pulse width, optionally with a write assist. Returns
/// +infinity when even the longest pulse cannot flip the cell (write
/// failure), and NaN when the simulation itself fails.
double critical_wordline_pulse(SramCell& cell, Assist assist = Assist::kNone,
                               const MetricOptions& opts = {});

/// Write delay: wordline 50 % assertion to storage-node crossover, using a
/// long probe pulse. NaN when the write fails.
double write_delay(SramCell& cell, Assist assist = Assist::kNone,
                   const MetricOptions& opts = {});

/// Read delay: wordline 50 % assertion to the sensed bitline drooping by
/// `read_sense_margin`, with floating (precharged) bitlines. NaN when no
/// droop develops.
double read_delay(SramCell& cell, Assist assist = Assist::kNone,
                  const MetricOptions& opts = {});

/// Result of one attempted write (used by WLcrit and exposed for tests).
struct WriteOutcome {
    bool simulated = false;
    bool flipped = false;
    double final_separation = 0.0; ///< v(q) - v(qb) at the end, sign-adjusted
};

/// Run one write of the preferred polarity with the given pulse width.
/// `hold_cache`, when non-null, caches the pre-write hold state across
/// calls: the hold bias at t = 0 does not depend on the pulse width, so a
/// bisection caller (critical_wordline_pulse) solves it exactly once. A
/// cached state whose size no longer matches the circuit is ignored and
/// re-solved.
WriteOutcome attempt_write(SramCell& cell, double pulse_width, Assist assist,
                           const MetricOptions& opts,
                           std::optional<HoldState>* hold_cache = nullptr);

inline constexpr double kInfinitePulse =
    std::numeric_limits<double>::infinity();

/// Dynamic energy of one write operation (all sources, assist rails
/// included), using a pulse of `pulse_width`. This quantifies the "dynamic
/// power overhead to generate lowered GND" the paper concedes in Sec. 4.3.
/// NaN when the simulation fails.
double write_energy(SramCell& cell, double pulse_width,
                    Assist assist = Assist::kNone,
                    const MetricOptions& opts = {});

/// Dynamic energy of one read access (clamped bitlines, assist included).
double read_energy(SramCell& cell, Assist assist = Assist::kNone,
                   const MetricOptions& opts = {});

/// Data-retention voltage: the lowest supply at which the cell still holds
/// both states (bisection on VDD over hold operating points). The floor of
/// the paper's low-VDD ambitions. NaN if even the starting VDD fails.
double data_retention_voltage(const CellConfig& config,
                              double vdd_max = 0.0, // 0 -> config.vdd
                              const MetricOptions& opts = {});

} // namespace tfetsram::sram
