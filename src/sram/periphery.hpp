#pragma once
// Transistor-level bitline periphery: precharge/equalize network,
// tri-state write driver, and a latch-type sense amplifier. These replace
// the ideal switches of the cell-level metrics when a full read/write
// path is simulated, and they surface a periphery-specific consequence of
// TFET unidirectionality: a single pass device cannot equalize two
// bitlines (current must flow either way), so the equalizer needs an
// anti-parallel pair.

#include "device/models.hpp"
#include "spice/circuit.hpp"

namespace tfetsram::sram {

/// Periphery device sizing and technology.
struct PeripheryConfig {
    double vdd = 0.8;
    double w_precharge = 2.0;  ///< precharge device width [um]
    double w_driver = 8.0;     ///< write-driver width [um] — TFET drivers must
                               ///  be wide or the bitline sags under the
                               ///  cell current and the steep access
                               ///  transfer cancels the write
    double w_sense = 1.0;      ///< sense-amp latch width [um]
    /// Relative width mismatch of the latch halves, emulating the input
    /// offset of a real sense amplifier (a 1+skew / 1-skew split). The
    /// skewed latch needs a minimum input differential to resolve
    /// correctly, which is what sense-timing studies measure.
    double w_sense_skew = 0.0;
    bool tfet = true;          ///< TFET periphery (else CMOS)
    device::ModelSet models;
};

/// Precharge-and-equalize network on a bitline pair. The control is
/// active-low (like the p-type devices implementing it): drive `v_pre` to
/// 0 to precharge, to vdd to release.
struct Precharge {
    spice::VoltageSource* v_pre = nullptr;
};
Precharge attach_precharge(spice::Circuit& ckt, const std::string& prefix,
                           spice::NodeId bl, spice::NodeId blb,
                           spice::NodeId vdd, const PeripheryConfig& cfg);

/// Tri-state write driver pair: drives (bl, blb) to (data, !data) while
/// enabled, high-impedance otherwise. Drive `v_data` with the datum and
/// the enables via `v_en_n` (active high) / `v_en_p` (active low).
struct WriteDriver {
    spice::VoltageSource* v_data = nullptr;  ///< data rail for BL (BLB gets the complement internally)
    spice::VoltageSource* v_datab = nullptr;
    spice::VoltageSource* v_en_n = nullptr;  ///< pull-down enable (high = on)
    spice::VoltageSource* v_en_p = nullptr;  ///< pull-up enable (low = on)
};
WriteDriver attach_write_driver(spice::Circuit& ckt,
                                const std::string& prefix, spice::NodeId bl,
                                spice::NodeId blb, spice::NodeId vdd,
                                const PeripheryConfig& cfg);

/// Latch-type sense amplifier regenerating directly on the bitline pair:
/// cross-coupled inverters whose foot is released by the sense enable.
/// Drive `v_sae` high to fire (the footer is n-type).
struct SenseAmp {
    spice::VoltageSource* v_sae = nullptr;
    spice::NodeId tail = 0; ///< common source node of the latch pull-downs
};
SenseAmp attach_sense_amp(spice::Circuit& ckt, const std::string& prefix,
                          spice::NodeId bl, spice::NodeId blb,
                          spice::NodeId vdd, const PeripheryConfig& cfg);

} // namespace tfetsram::sram
