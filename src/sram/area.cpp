#include "sram/area.hpp"

namespace tfetsram::sram {

double cell_area(const SramCell& cell, const AreaModel& model) {
    double width_sum = 0.0;
    std::size_t count = 0;
    for (const spice::Transistor* t : cell.circuit.transistors()) {
        width_sum += t->width_um();
        ++count;
    }
    return width_sum * model.pitch_um +
           static_cast<double>(count) * model.per_transistor + model.fixed;
}

} // namespace tfetsram::sram
