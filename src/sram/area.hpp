#pragma once
// First-order cell area model: active width sets the diffusion area, plus
// per-transistor contact/spacing overhead and fixed cell overhead (well
// taps, wordline strap). Calibrated so the 7T cell of [14] lands 10-15 %
// above the 6T cells, as its authors report.

#include "sram/cell.hpp"

namespace tfetsram::sram {

struct AreaModel {
    double pitch_um = 0.15;       ///< gate pitch contribution per um of width
    double per_transistor = 0.05; ///< contacts/spacing [um^2]
    double fixed = 0.45;          ///< taps/straps [um^2]
};

/// Area of a built cell in um^2, from its actual transistor widths.
double cell_area(const SramCell& cell, const AreaModel& model = {});

} // namespace tfetsram::sram
