#include "sram/metrics.hpp"

#include <cmath>

#include "spice/context.hpp"
#include "spice/report.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram::sram {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

double hold_static_power(SramCell& cell, bool q_high,
                         const MetricOptions& opts) {
    program_hold(cell);
    const HoldState hs = solve_hold_state(cell, q_high, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return kNaN; // a metastable point would misreport the leakage
    return spice::static_power(cell.circuit, hs.x);
}

double worst_hold_static_power(SramCell& cell, const MetricOptions& opts) {
    // Both stored values share the same bias, so the state-agnostic cold
    // settling solve is done once and reused via `cold`.
    program_hold(cell);
    la::Vector cold;
    auto power = [&](bool q_high) {
        const HoldState hs = solve_hold_state(cell, q_high, opts.solver, &cold);
        if (!hs.converged || !hs.state_ok)
            return kNaN;
        return spice::static_power(cell.circuit, hs.x);
    };
    const double p0 = power(false);
    const double p1 = power(true);
    if (std::isnan(p0))
        return p1;
    if (std::isnan(p1))
        return p0;
    return std::max(p0, p1);
}

DrnmResult dynamic_read_noise_margin(SramCell& cell, Assist assist,
                                     const MetricOptions& opts) {
    const spice::ScopedContext bind(cell.sim);
    DrnmResult res;
    const ReadSetup setup = program_read(cell, opts.read_duration, assist,
                                         opts.assist_fraction, opts.timing,
                                         /*float_bitlines=*/false);
    const HoldState hs =
        solve_hold_state(cell, setup.q_high_init, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return res;

    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, setup.window.t_end, nullptr, &hs.x);
    if (!tr.completed)
        return res;

    res.drnm = tr.min_difference(setup.safe_node, setup.disturb_node,
                                 setup.window.wl_start, setup.window.wl_end);
    // NaN means the trace held no samples in the read window (e.g. the
    // simulation stopped before the wordline opened): no measurement, not
    // a margin.
    if (std::isnan(res.drnm))
        return res;
    res.valid = true;
    const double final_sep =
        tr.final_voltage(setup.safe_node) - tr.final_voltage(setup.disturb_node);
    res.flipped = res.drnm <= 0.0 ||
                  final_sep < opts.flip_threshold_frac * cell.config.vdd;
    return res;
}

WriteOutcome attempt_write(SramCell& cell, double pulse_width, Assist assist,
                           const MetricOptions& opts,
                           std::optional<HoldState>* hold_cache) {
    const spice::ScopedContext bind(cell.sim);
    WriteOutcome out;
    const bool value = preferred_write_value(cell);
    const OperationWindow w = program_write(cell, value, pulse_width, assist,
                                            opts.assist_fraction, opts.timing);
    // At t = 0 every source sits at its hold level regardless of the
    // programmed pulse width (excursions start at t_settle), so the hold
    // state is identical across attempts and cacheable by the caller.
    HoldState local;
    const HoldState* hs;
    if (hold_cache != nullptr && hold_cache->has_value() &&
        (*hold_cache)->x.size() == cell.circuit.num_unknowns()) {
        hs = &**hold_cache;
    } else {
        local = solve_hold_state(cell, !value, opts.solver);
        if (hold_cache != nullptr) {
            *hold_cache = std::move(local);
            hs = &**hold_cache;
        } else {
            hs = &local;
        }
    }
    if (!hs->converged || !hs->state_ok)
        return out;

    // Early exit once the cell has clearly settled after the pulse closed.
    const double vdd = cell.config.vdd;
    const spice::NodeId q = cell.q;
    const spice::NodeId qb = cell.qb;
    const double settle_after = w.wl_end + 50e-12;
    const auto stop = [&](double t, const la::Vector& x) {
        if (t < settle_after)
            return false;
        return std::fabs(spice::branch_voltage(x, q, qb)) > 0.85 * vdd;
    };

    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, w.t_end, stop, &hs->x);
    if (!tr.completed)
        return out;

    out.simulated = true;
    const double sep = tr.final_voltage(q) - tr.final_voltage(qb);
    // Sign-adjust so "positive and large" always means "write succeeded".
    out.final_separation = value ? sep : -sep;
    out.flipped = out.final_separation > opts.flip_threshold_frac * vdd;
    return out;
}

double critical_wordline_pulse(SramCell& cell, Assist assist,
                               const MetricOptions& opts) {
    // Every attempt starts from the same hold state, so it is solved once
    // (by the first attempt) and replayed across the whole bisection.
    std::optional<HoldState> hold;

    // Write failure at the maximum pulse means WLcrit is infinite (the
    // paper's "infinite WLcrit" cases for inward nTFET access).
    WriteOutcome at_max =
        attempt_write(cell, opts.wlcrit_max, assist, opts, &hold);
    if (!at_max.simulated)
        return kNaN;
    if (!at_max.flipped)
        return kInfinitePulse;

    WriteOutcome at_min =
        attempt_write(cell, opts.wlcrit_min, assist, opts, &hold);
    if (at_min.simulated && at_min.flipped)
        return opts.wlcrit_min;

    double lo = opts.wlcrit_min;  // known-failing
    double hi = opts.wlcrit_max;  // known-passing
    while ((hi - lo) / hi > opts.wlcrit_rel_tol) {
        const double mid = 0.5 * (lo + hi);
        const WriteOutcome out = attempt_write(cell, mid, assist, opts, &hold);
        if (!out.simulated)
            return kNaN;
        if (out.flipped)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double write_delay(SramCell& cell, Assist assist, const MetricOptions& opts) {
    const spice::ScopedContext bind(cell.sim);
    const bool value = preferred_write_value(cell);
    const OperationWindow w =
        program_write(cell, value, opts.write_probe_pulse, assist,
                      opts.assist_fraction, opts.timing);
    const HoldState hs = solve_hold_state(cell, !value, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return kNaN;

    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, w.t_end, nullptr, &hs.x);
    if (!tr.completed)
        return kNaN;

    // Crossover: v(high-before) - v(low-before) drops through zero.
    const spice::NodeId was_high = value ? cell.qb : cell.q;
    const spice::NodeId was_low = value ? cell.q : cell.qb;
    const double t_cross =
        tr.first_crossing_below(was_high, was_low, 0.0, w.wl_start);
    if (std::isnan(t_cross))
        return kNaN;
    return t_cross - w.wl_mid;
}

double read_delay(SramCell& cell, Assist assist, const MetricOptions& opts) {
    const spice::ScopedContext bind(cell.sim);
    const ReadSetup setup = program_read(cell, opts.read_duration, assist,
                                         opts.assist_fraction, opts.timing,
                                         /*float_bitlines=*/true);
    const HoldState hs =
        solve_hold_state(cell, setup.q_high_init, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return kNaN;

    const double threshold = setup.precharge_level - opts.read_sense_margin;
    const spice::NodeId sense = setup.sense_node;
    const double t_from = setup.window.wl_start;
    const auto stop = [&](double t, const la::Vector& x) {
        return t > t_from && spice::node_voltage(x, sense) < threshold;
    };

    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, setup.window.t_end, stop, &hs.x);
    if (!tr.completed)
        return kNaN;

    const double t_sense = tr.first_crossing_below(
        sense, spice::kGround, threshold, t_from);
    if (std::isnan(t_sense))
        return kNaN;
    return t_sense - setup.window.wl_mid;
}

double write_energy(SramCell& cell, double pulse_width, Assist assist,
                    const MetricOptions& opts) {
    const spice::ScopedContext bind(cell.sim);
    const bool value = preferred_write_value(cell);
    const OperationWindow w = program_write(cell, value, pulse_width, assist,
                                            opts.assist_fraction, opts.timing);
    const HoldState hs = solve_hold_state(cell, !value, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return kNaN;
    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, w.t_end, nullptr, &hs.x);
    if (!tr.completed)
        return kNaN;
    return spice::source_energy(cell.circuit, tr, 0.0, w.t_end);
}

double read_energy(SramCell& cell, Assist assist, const MetricOptions& opts) {
    const spice::ScopedContext bind(cell.sim);
    const ReadSetup setup = program_read(cell, opts.read_duration, assist,
                                         opts.assist_fraction, opts.timing,
                                         /*float_bitlines=*/false);
    const HoldState hs = solve_hold_state(cell, setup.q_high_init, opts.solver);
    if (!hs.converged || !hs.state_ok)
        return kNaN;
    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, opts.solver, setup.window.t_end, nullptr, &hs.x);
    if (!tr.completed)
        return kNaN;
    return spice::source_energy(cell.circuit, tr, 0.0, setup.window.t_end);
}

double data_retention_voltage(const CellConfig& config, double vdd_max,
                              const MetricOptions& opts) {
    const double v_hi = vdd_max > 0.0 ? vdd_max : config.vdd;
    auto holds_both = [&](double vdd) {
        CellConfig cfg = config;
        cfg.vdd = vdd;
        SramCell cell = build_cell(cfg);
        program_hold(cell);
        // Both stored values share the cold settling solve at this vdd.
        la::Vector cold;
        for (bool q_high : {false, true}) {
            const HoldState hs =
                solve_hold_state(cell, q_high, opts.solver, &cold);
            if (!hs.converged || !hs.state_ok)
                return false;
        }
        return true;
    };
    if (!holds_both(v_hi))
        return kNaN;
    double lo = 0.02;  // assumed failing
    double hi = v_hi;  // known holding
    if (holds_both(lo))
        return lo;
    while (hi - lo > 0.01) {
        const double mid = 0.5 * (lo + hi);
        if (holds_both(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace tfetsram::sram
