#include "sram/cell.hpp"

#include <stdexcept>

namespace tfetsram::sram {

bool access_is_ptype(AccessDevice access) {
    return access == AccessDevice::kInwardP || access == AccessDevice::kOutwardP;
}

const char* to_string(AccessDevice access) {
    switch (access) {
    case AccessDevice::kOutwardN:
        return "outward nTFET";
    case AccessDevice::kOutwardP:
        return "outward pTFET";
    case AccessDevice::kInwardN:
        return "inward nTFET";
    case AccessDevice::kInwardP:
        return "inward pTFET";
    case AccessDevice::kCmos:
        return "nMOS";
    }
    return "?";
}

const char* to_string(CellKind kind) {
    switch (kind) {
    case CellKind::kCmos6T:
        return "6T CMOS SRAM";
    case CellKind::kTfet6T:
        return "6T TFET SRAM";
    case CellKind::kTfet7T:
        return "7T TFET SRAM";
    case CellKind::kTfetAsym6T:
        return "asymmetric 6T TFET SRAM";
    }
    return "?";
}

double SramCell::wl_active_level() const {
    const bool ptype = (config.kind == CellKind::kTfet6T) &&
                       access_is_ptype(config.access);
    return ptype ? 0.0 : config.vdd;
}

double SramCell::wl_inactive_level() const {
    const bool ptype = (config.kind == CellKind::kTfet6T) &&
                       access_is_ptype(config.access);
    return ptype ? config.vdd : 0.0;
}

std::vector<spice::Transistor*> build_6t_devices(spice::Circuit& ckt,
                                                 const CellConfig& config,
                                                 const CellPorts& p,
                                                 const std::string& prefix) {
    TFET_EXPECTS(config.kind == CellKind::kCmos6T ||
                 config.kind == CellKind::kTfet6T);
    const bool tfet = config.kind == CellKind::kTfet6T;
    const auto& n_model = tfet ? config.models.ntfet : config.models.nmos;
    const auto& p_model = tfet ? config.models.ptfet : config.models.pmos;
    const double w_pd = config.beta * config.w_access;
    const double w_ax = config.w_access;
    const device::ModelSet& m = config.models;

    std::vector<spice::Transistor*> devices;
    devices.push_back(&ckt.add_transistor(prefix + "PDL", n_model, p.q, p.qb,
                                          p.vss, w_pd));
    devices.push_back(&ckt.add_transistor(prefix + "PUL", p_model, p.q, p.qb,
                                          p.vdd, config.w_pullup));
    devices.push_back(&ckt.add_transistor(prefix + "PDR", n_model, p.qb, p.q,
                                          p.vss, w_pd));
    devices.push_back(&ckt.add_transistor(prefix + "PUR", p_model, p.qb, p.q,
                                          p.vdd, config.w_pullup));

    auto access = [&](const std::string& label, spice::NodeId bitline,
                      spice::NodeId store) -> spice::Transistor& {
        switch (tfet ? config.access : AccessDevice::kCmos) {
        case AccessDevice::kInwardN:
            return ckt.add_transistor(label, m.ntfet, bitline, p.wl, store, w_ax);
        case AccessDevice::kInwardP:
            return ckt.add_transistor(label, m.ptfet, store, p.wl, bitline, w_ax);
        case AccessDevice::kOutwardN:
            return ckt.add_transistor(label, m.ntfet, store, p.wl, bitline, w_ax);
        case AccessDevice::kOutwardP:
            return ckt.add_transistor(label, m.ptfet, bitline, p.wl, store, w_ax);
        case AccessDevice::kCmos:
            return ckt.add_transistor(label, m.nmos, bitline, p.wl, store, w_ax);
        }
        throw std::invalid_argument("build_6t_devices: bad access device");
    };
    devices.push_back(&access(prefix + "AXL", p.bl, p.q));
    devices.push_back(&access(prefix + "AXR", p.blb, p.qb));

    ckt.add_capacitor(prefix + "Cq", p.q, spice::kGround, config.c_node);
    ckt.add_capacitor(prefix + "Cqb", p.qb, spice::kGround, config.c_node);
    return devices;
}

namespace {

/// Wire the cross-coupled inverter pair shared by every topology.
/// n_model/p_model are the pull-down/pull-up devices.
void build_core(SramCell& cell, const spice::TransistorModelPtr& n_model,
                const spice::TransistorModelPtr& p_model, bool tfet_core) {
    const CellConfig& cfg = cell.config;
    const double w_pd = cfg.beta * cfg.w_access;
    spice::Circuit& ckt = cell.circuit;

    auto& pdl = ckt.add_transistor("PDL", n_model, cell.q, cell.qb, cell.vss, w_pd);
    auto& pul = ckt.add_transistor("PUL", p_model, cell.q, cell.qb, cell.vdd,
                                   cfg.w_pullup);
    auto& pdr = ckt.add_transistor("PDR", n_model, cell.qb, cell.q, cell.vss, w_pd);
    auto& pur = ckt.add_transistor("PUR", p_model, cell.qb, cell.q, cell.vdd,
                                   cfg.w_pullup);
    if (tfet_core) {
        cell.variable_devices.push_back(&pdl);
        cell.variable_devices.push_back(&pul);
        cell.variable_devices.push_back(&pdr);
        cell.variable_devices.push_back(&pur);
    }

    ckt.add_capacitor("Cq", cell.q, spice::kGround, cfg.c_node);
    ckt.add_capacitor("Cqb", cell.qb, spice::kGround, cfg.c_node);
}

/// One access transistor between a bitline and a storage node, with the
/// orientation the access-device choice dictates.
spice::Transistor& build_access(SramCell& cell, const std::string& label,
                                AccessDevice access, spice::NodeId bitline,
                                spice::NodeId store) {
    const device::ModelSet& m = cell.config.models;
    spice::Circuit& ckt = cell.circuit;
    const double w = cell.config.w_access;
    switch (access) {
    case AccessDevice::kInwardN: // conducts BL -> node: drain at BL
        return ckt.add_transistor(label, m.ntfet, bitline, cell.wl, store, w);
    case AccessDevice::kInwardP: // conducts BL -> node: source at BL
        return ckt.add_transistor(label, m.ptfet, store, cell.wl, bitline, w);
    case AccessDevice::kOutwardN: // conducts node -> BL: drain at node
        return ckt.add_transistor(label, m.ntfet, store, cell.wl, bitline, w);
    case AccessDevice::kOutwardP: // conducts node -> BL: source at node
        return ckt.add_transistor(label, m.ptfet, bitline, cell.wl, store, w);
    case AccessDevice::kCmos:
        return ckt.add_transistor(label, m.nmos, bitline, cell.wl, store, w);
    }
    throw std::invalid_argument("build_access: bad access device");
}

/// Bitline infrastructure: driver source -> precharge/drive switch ->
/// bitline node with its capacitance.
void build_bitline(SramCell& cell, const std::string& name,
                   spice::NodeId bitline, spice::VoltageSource*& src,
                   spice::TimedSwitch*& sw) {
    spice::Circuit& ckt = cell.circuit;
    const spice::NodeId drv = ckt.add_node(name + "_drv");
    src = &ckt.add_vsource("V" + name, drv, spice::kGround,
                           spice::Waveform::dc(cell.config.vdd));
    sw = &ckt.add_switch("SW" + name, drv, bitline, cell.config.r_precharge,
                         1e12, spice::Waveform::dc(1.0));
    ckt.add_capacitor("C" + name, bitline, spice::kGround,
                      cell.config.c_bitline);
}

} // namespace

SramCell build_cell(const CellConfig& config, const spice::SimContext* sim) {
    TFET_EXPECTS(config.vdd > 0.0);
    TFET_EXPECTS(config.beta > 0.0 && config.w_access > 0.0);
    TFET_EXPECTS(config.models.nmos && config.models.pmos);
    if (config.kind != CellKind::kCmos6T)
        TFET_EXPECTS(config.models.ntfet && config.models.ptfet);

    SramCell cell;
    cell.config = config;
    cell.sim = sim;
    spice::Circuit& ckt = cell.circuit;

    cell.q = ckt.add_node("q");
    cell.qb = ckt.add_node("qb");
    cell.bl = ckt.add_node("bl");
    cell.blb = ckt.add_node("blb");
    cell.wl = ckt.add_node("wl");
    cell.vdd = ckt.add_node("vdd");
    cell.vss = ckt.add_node("vss");

    cell.v_vdd = &ckt.add_vsource("Vvdd", cell.vdd, spice::kGround,
                                  spice::Waveform::dc(config.vdd));
    cell.v_vss = &ckt.add_vsource("Vvss", cell.vss, spice::kGround,
                                  spice::Waveform::dc(0.0));

    const bool tfet_core = config.kind != CellKind::kCmos6T;
    const auto& n_core = tfet_core ? config.models.ntfet : config.models.nmos;
    const auto& p_core = tfet_core ? config.models.ptfet : config.models.pmos;

    build_bitline(cell, "bl", cell.bl, cell.v_bl, cell.sw_bl);
    build_bitline(cell, "blb", cell.blb, cell.v_blb, cell.sw_blb);

    switch (config.kind) {
    case CellKind::kCmos6T:
    case CellKind::kTfet6T: {
        const bool ptype =
            tfet_core && access_is_ptype(config.access);
        cell.v_wl = &ckt.add_vsource(
            "Vwl", cell.wl, spice::kGround,
            spice::Waveform::dc(ptype ? config.vdd : 0.0));
        const CellPorts ports{cell.q, cell.qb, cell.bl,  cell.blb,
                              cell.wl, cell.vdd, cell.vss};
        const auto devices = build_6t_devices(ckt, config, ports, "");
        if (tfet_core)
            cell.variable_devices = devices;
        break;
    }
    case CellKind::kTfet7T: {
        build_core(cell, n_core, p_core, tfet_core);
        // [14]: outward nTFET write access on dedicated write bitlines
        // (clamped low during hold so the access devices never see reverse
        // bias), plus a single-transistor read buffer M7 whose source is the
        // read wordline: RWL = VDD blocks it, RWL = 0 lets qb discharge RBL.
        cell.v_wl = &ckt.add_vsource("Vwl", cell.wl, spice::kGround,
                                     spice::Waveform::dc(0.0));
        auto& axl =
            build_access(cell, "AXL", AccessDevice::kOutwardN, cell.bl, cell.q);
        auto& axr = build_access(cell, "AXR", AccessDevice::kOutwardN, cell.blb,
                                 cell.qb);
        cell.variable_devices.push_back(&axl);
        cell.variable_devices.push_back(&axr);
        // Write bitlines idle at 0 V for this topology.
        cell.v_bl->set_waveform(spice::Waveform::dc(0.0));
        cell.v_blb->set_waveform(spice::Waveform::dc(0.0));

        cell.rbl = ckt.add_node("rbl");
        cell.rwl = ckt.add_node("rwl");
        cell.v_rwl = &ckt.add_vsource("Vrwl", cell.rwl, spice::kGround,
                                      spice::Waveform::dc(config.vdd));
        const spice::NodeId rdrv = ckt.add_node("rbl_drv");
        cell.v_rbl = &ckt.add_vsource("Vrbl", rdrv, spice::kGround,
                                      spice::Waveform::dc(config.vdd));
        cell.sw_rbl = &ckt.add_switch("SWrbl", rdrv, cell.rbl,
                                      config.r_precharge, 1e12,
                                      spice::Waveform::dc(1.0));
        ckt.add_capacitor("Crbl", cell.rbl, spice::kGround, config.c_bitline);
        auto& m7 = ckt.add_transistor("M7", config.models.ntfet, cell.rbl,
                                      cell.qb, cell.rwl, config.w_access);
        cell.variable_devices.push_back(&m7);
        break;
    }
    case CellKind::kTfetAsym6T: {
        build_core(cell, n_core, p_core, tfet_core);
        // [15]-style asymmetric cell: one outward and one inward nTFET
        // access device. Writes are single-sided (and rely on the built-in
        // raising-WA the original paper proposes); the outward device sees
        // reverse bias during hold whenever q = 0 with BL clamped at VDD,
        // which is the static-power penalty Sec. 5 quantifies.
        cell.v_wl = &ckt.add_vsource("Vwl", cell.wl, spice::kGround,
                                     spice::Waveform::dc(0.0));
        auto& axl =
            build_access(cell, "AXL", AccessDevice::kOutwardN, cell.bl, cell.q);
        auto& axr =
            build_access(cell, "AXR", AccessDevice::kInwardN, cell.blb, cell.qb);
        cell.variable_devices.push_back(&axl);
        cell.variable_devices.push_back(&axr);
        break;
    }
    }
    ckt.prepare();
    return cell;
}

void retarget_models(SramCell& cell, const device::ModelSet& models) {
    TFET_EXPECTS(models.ntfet != nullptr && models.ptfet != nullptr);
    for (spice::Transistor* t : cell.variable_devices) {
        if (&t->model() == cell.config.models.ntfet.get())
            t->set_model(models.ntfet);
        else if (&t->model() == cell.config.models.ptfet.get())
            t->set_model(models.ptfet);
        else
            TFET_ASSERT(!"variable device is on neither configured TFET "
                         "model — cell was retargeted behind our back");
    }
    cell.config.models = models;
}

} // namespace tfetsram::sram
