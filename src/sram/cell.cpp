#include "sram/cell.hpp"

#include <stdexcept>

#include "sram/cell_spec.hpp"

namespace tfetsram::sram {

bool access_is_ptype(AccessDevice access) {
    return access == AccessDevice::kInwardP || access == AccessDevice::kOutwardP;
}

const char* to_string(AccessDevice access) {
    switch (access) {
    case AccessDevice::kOutwardN:
        return "outward nTFET";
    case AccessDevice::kOutwardP:
        return "outward pTFET";
    case AccessDevice::kInwardN:
        return "inward nTFET";
    case AccessDevice::kInwardP:
        return "inward pTFET";
    case AccessDevice::kCmos:
        return "nMOS";
    }
    return "?";
}

const char* to_string(CellKind kind) {
    // Names come from the spec registry (static storage, so the returned
    // pointer stays valid) — the registry is the single naming authority.
    return builtin_spec(kind).display_name.c_str();
}

double SramCell::wl_active_level() const {
    const bool ptype =
        spec_of(*this).wl_follows_access && access_is_ptype(config.access);
    return ptype ? 0.0 : config.vdd;
}

double SramCell::wl_inactive_level() const {
    const bool ptype =
        spec_of(*this).wl_follows_access && access_is_ptype(config.access);
    return ptype ? config.vdd : 0.0;
}

std::vector<spice::Transistor*> build_6t_devices(spice::Circuit& ckt,
                                                 const CellConfig& config,
                                                 const CellPorts& p,
                                                 const std::string& prefix) {
    TFET_EXPECTS(config.kind == CellKind::kCmos6T ||
                 config.kind == CellKind::kTfet6T);
    const bool tfet = config.kind == CellKind::kTfet6T;
    const auto& n_model = tfet ? config.models.ntfet : config.models.nmos;
    const auto& p_model = tfet ? config.models.ptfet : config.models.pmos;
    const double w_pd = config.beta * config.w_access;
    const double w_ax = config.w_access;
    const device::ModelSet& m = config.models;

    std::vector<spice::Transistor*> devices;
    devices.push_back(&ckt.add_transistor(prefix + "PDL", n_model, p.q, p.qb,
                                          p.vss, w_pd));
    devices.push_back(&ckt.add_transistor(prefix + "PUL", p_model, p.q, p.qb,
                                          p.vdd, config.w_pullup));
    devices.push_back(&ckt.add_transistor(prefix + "PDR", n_model, p.qb, p.q,
                                          p.vss, w_pd));
    devices.push_back(&ckt.add_transistor(prefix + "PUR", p_model, p.qb, p.q,
                                          p.vdd, config.w_pullup));

    auto access = [&](const std::string& label, spice::NodeId bitline,
                      spice::NodeId store) -> spice::Transistor& {
        switch (tfet ? config.access : AccessDevice::kCmos) {
        case AccessDevice::kInwardN:
            return ckt.add_transistor(label, m.ntfet, bitline, p.wl, store, w_ax);
        case AccessDevice::kInwardP:
            return ckt.add_transistor(label, m.ptfet, store, p.wl, bitline, w_ax);
        case AccessDevice::kOutwardN:
            return ckt.add_transistor(label, m.ntfet, store, p.wl, bitline, w_ax);
        case AccessDevice::kOutwardP:
            return ckt.add_transistor(label, m.ptfet, bitline, p.wl, store, w_ax);
        case AccessDevice::kCmos:
            return ckt.add_transistor(label, m.nmos, bitline, p.wl, store, w_ax);
        }
        throw std::invalid_argument("build_6t_devices: bad access device");
    };
    devices.push_back(&access(prefix + "AXL", p.bl, p.q));
    devices.push_back(&access(prefix + "AXR", p.blb, p.qb));

    ckt.add_capacitor(prefix + "Cq", p.q, spice::kGround, config.c_node);
    ckt.add_capacitor(prefix + "Cqb", p.qb, spice::kGround, config.c_node);
    return devices;
}

SramCell build_cell(const CellConfig& config, const spice::SimContext* sim) {
    const CellSpec* spec =
        config.spec != nullptr ? config.spec : &builtin_spec(config.kind);
    return instantiate_spec(*spec, config, sim);
}

void retarget_models(SramCell& cell, const device::ModelSet& models) {
    TFET_EXPECTS(models.ntfet != nullptr && models.ptfet != nullptr);
    for (spice::Transistor* t : cell.variable_devices) {
        if (&t->model() == cell.config.models.ntfet.get())
            t->set_model(models.ntfet);
        else if (&t->model() == cell.config.models.ptfet.get())
            t->set_model(models.ptfet);
        else
            TFET_ASSERT(!"variable device is on neither configured TFET "
                         "model — cell was retargeted behind our back");
    }
    cell.config.models = models;
}

} // namespace tfetsram::sram
