#pragma once
// Programs a built cell's sources for hold, write, and read operations,
// including the assist-technique timing relationships of Figs. 6 and 7:
// the assisted rail/line moves before the wordline pulse and is restored
// after it, exactly as the paper's timing diagrams show.

#include "la/matrix.hpp"
#include "spice/solver_options.hpp"
#include "sram/assist.hpp"
#include "sram/cell.hpp"

namespace tfetsram::sram {

/// Edge rates and guard intervals of one operation.
struct OperationTiming {
    double t_settle = 50e-12;     ///< quiet hold before anything moves [s]
    /// Assist asserted this long before WL. Rail assists (VDD/GND moves)
    /// need the lead: the unidirectional pull-ups mean the internal high
    /// node can only follow a lowered VDD through reverse conduction, which
    /// takes a few hundred ps.
    double assist_lead = 500e-12;
    double assist_lag = 30e-12;   ///< assist released this long after WL [s]
    double assist_edge = 10e-12;  ///< assist ramp time [s]
    double wl_edge = 5e-12;       ///< wordline rise/fall time [s]
    double t_post = 400e-12;      ///< observation window after WL closes [s]
};

/// Key instants of a programmed operation.
struct OperationWindow {
    double wl_start = 0.0; ///< wordline begins its asserting edge
    double wl_mid = 0.0;   ///< wordline 50 % crossing of the asserting edge
    double wl_end = 0.0;   ///< wordline back at the inactive level
    double t_end = 0.0;    ///< end of the simulation window
};

/// Metadata of a programmed read.
struct ReadSetup {
    OperationWindow window;
    spice::NodeId sense_node = 0;   ///< bitline whose droop is sensed
    double precharge_level = 0.0;   ///< its starting level
    spice::NodeId disturb_node = 0; ///< internal node the read stresses
    spice::NodeId safe_node = 0;    ///< the opposite storage node
    bool q_high_init = false;       ///< initial cell state for this read
};

/// Reset every source to quiescent hold levels.
void program_hold(SramCell& cell);

/// Program a write of `value` into q using a wordline pulse of the given
/// width (time at full assertion, edges excluded). Returns the window.
/// The cell must be initialized to hold !value (see hold_state_guess).
OperationWindow program_write(SramCell& cell, bool value, double pulse_width,
                              Assist assist = Assist::kNone,
                              double fraction = kDefaultAssistFraction,
                              const OperationTiming& timing = {});

/// Program a read of duration `read_duration`. When `float_bitlines` is
/// true the precharge switches open before the wordline asserts so the
/// sensed bitline can droop (read-delay measurement); when false the
/// bitlines stay clamped at the precharge level for the whole access (the
/// worst-case disturb setup DRNM uses).
ReadSetup program_read(SramCell& cell, double read_duration,
                       Assist assist = Assist::kNone,
                       double fraction = kDefaultAssistFraction,
                       const OperationTiming& timing = {},
                       bool float_bitlines = false);

/// The write polarity a topology supports best; the asymmetric cell of
/// [15] can only write one polarity through its outward device. The
/// CellKind overload consults the built-in spec registry; the cell
/// overload honors a custom config.spec.
bool preferred_write_value(CellKind kind);
bool preferred_write_value(const SramCell& cell);

/// Initial-state helper: solve the hold operating point with the cell in
/// the requested state. Returns the solution and whether the intended
/// state actually holds (a cell that cannot hold data reports false).
///
/// `cold_guess`, when non-null, is an in/out cache for the state-agnostic
/// cold settling solve: a correctly-sized vector is used instead of
/// re-solving, and an empty/mis-sized one is filled after the solve.
/// Callers that evaluate several hold states at the same bias (both
/// stored values, or one state per bisection step) pay for the cold solve
/// once. When the cold solve does run, a correctly-sized cell.dc_seed is
/// used as its initial guess (see SramCell::dc_seed).
struct HoldState {
    la::Vector x;
    bool converged = false;
    bool state_ok = false;
};
HoldState solve_hold_state(SramCell& cell, bool q_high,
                           const spice::SolverOptions& opts,
                           la::Vector* cold_guess = nullptr);

} // namespace tfetsram::sram
