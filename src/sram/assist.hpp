#pragma once
// The eight write-assist (WA) and read-assist (RA) techniques of Sec. 4.
// Each technique perturbs one rail or line by a fixed fraction of VDD
// (30 % in the paper) for the duration of the operation. Note the polarity
// flip relative to CMOS practice: with p-type access transistors the
// wordline is active-low, so "wordline lowering" strengthens the access
// device (WA) and "wordline raising" weakens it (RA).

#include <string>

namespace tfetsram::sram {

enum class Assist {
    kNone,
    // Write assists (Sec. 4.1).
    kWaVddLowering,
    kWaGndRaising,
    kWaWordlineLowering,
    kWaBitlineRaising,
    // Read assists (Sec. 4.2).
    kRaVddRaising,
    kRaGndLowering,
    kRaWordlineRaising,
    kRaBitlineLowering,
};

/// All four write assists, in the paper's order.
inline constexpr Assist kWriteAssists[] = {
    Assist::kWaVddLowering,
    Assist::kWaGndRaising,
    Assist::kWaWordlineLowering,
    Assist::kWaBitlineRaising,
};

/// All four read assists, in the paper's order.
inline constexpr Assist kReadAssists[] = {
    Assist::kRaVddRaising,
    Assist::kRaGndLowering,
    Assist::kRaWordlineRaising,
    Assist::kRaBitlineLowering,
};

/// The paper's assist strength: 30 % of VDD.
inline constexpr double kDefaultAssistFraction = 0.3;

[[nodiscard]] bool is_write_assist(Assist a);
[[nodiscard]] bool is_read_assist(Assist a);
[[nodiscard]] const char* to_string(Assist a);

/// Rail/line levels during an operation once an assist is applied.
struct AssistLevels {
    double vdd;       ///< cell supply during the operation
    double vss;       ///< cell ground during the operation
    double wl_active; ///< asserted wordline level
    double bl_high;   ///< the high bitline level (write) / precharge (read)
    double bl_low;    ///< the low bitline level during write
};

/// Compute the operation levels for a cell with nominal supply `vdd`,
/// wordline active level `wl_active` (0 for p-type access, vdd for n-type),
/// and assist `a` at strength `fraction` * vdd. Wordline assists resolve
/// their polarity from wl_active: "strengthen" overdrives past the active
/// level, "weaken" backs off toward the inactive level.
AssistLevels assist_levels(double vdd, double wl_active, Assist a,
                           double fraction);

} // namespace tfetsram::sram
