#pragma once
// Named cell designs for the Sec. 5 comparison: the proposed 6T inpTFET
// SRAM with GND-lowering RA, the 32 nm 6T CMOS baseline, the 7T TFET SRAM
// [14], and the asymmetric 6T TFET SRAM [15].

#include <string>
#include <vector>

#include "sram/assist.hpp"
#include "sram/cell.hpp"

namespace tfetsram::sram {

/// A cell configuration plus the assists its operations use.
struct DesignSpec {
    std::string name;
    CellConfig config;
    Assist read_assist = Assist::kNone;
    Assist write_assist = Assist::kNone;

    /// WLcrit is undefined for designs without a write separatrix (the
    /// asymmetric cell, per the paper's Fig. 12 note).
    bool wlcrit_defined = true;
};

/// The paper's proposal: inward pTFET access, beta = 0.6 (sized for write),
/// GND-lowering read assist.
DesignSpec proposed_design(double vdd, const device::ModelSet& models);

/// 32 nm 6T CMOS baseline.
DesignSpec cmos_design(double vdd, const device::ModelSet& models);

/// 7T TFET SRAM with separate read port [14].
DesignSpec tfet7t_design(double vdd, const device::ModelSet& models);

/// Asymmetric 6T TFET SRAM [15].
DesignSpec asym6t_design(double vdd, const device::ModelSet& models);

/// 8T TFET SRAM with a two-transistor decoupled read stack (built-in
/// "tfet8t" spec — see cell_spec.hpp).
DesignSpec tfet8t_design(double vdd, const device::ModelSet& models);

/// 9T near-threshold TFET SRAM: 8T read stack plus an RWL-gated foot
/// device (built-in "tfet9t" spec).
DesignSpec tfet9t_design(double vdd, const device::ModelSet& models);

/// All four, in the paper's comparison order.
std::vector<DesignSpec> comparison_designs(double vdd,
                                           const device::ModelSet& models);

} // namespace tfetsram::sram
