#include "sram/designs.hpp"

#include "sram/cell_spec.hpp"

namespace tfetsram::sram {

DesignSpec proposed_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "6T inpTFET + GND-lowering RA";
    d.config.kind = CellKind::kTfet6T;
    d.config.access = AccessDevice::kInwardP;
    d.config.vdd = vdd;
    d.config.beta = 0.6; // sized for robust write (Sec. 4.3)
    d.config.models = models;
    d.read_assist = Assist::kRaGndLowering;
    return d;
}

DesignSpec cmos_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "6T CMOS SRAM (32nm)";
    d.config.kind = CellKind::kCmos6T;
    d.config.access = AccessDevice::kCmos;
    d.config.vdd = vdd;
    d.config.beta = 1.5; // conventional read-stability sizing
    d.config.models = models;
    return d;
}

DesignSpec tfet7t_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "7T TFET SRAM [14]";
    d.config.kind = CellKind::kTfet7T;
    d.config.vdd = vdd;
    d.config.beta = 0.8; // read is decoupled, so sizing can favor write
    d.config.models = models;
    return d;
}

DesignSpec asym6t_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "asym. 6T TFET SRAM [15]";
    d.config.kind = CellKind::kTfetAsym6T;
    d.config.vdd = vdd;
    d.config.beta = 1.0;
    d.config.models = models;
    d.write_assist = Assist::kWaGndRaising; // built into the design
    d.wlcrit_defined = false;               // no separatrix (Sec. 5)
    return d;
}

DesignSpec tfet8t_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "8T TFET SRAM (decoupled read)";
    d.config.spec = &find_spec("tfet8t");
    d.config.vdd = vdd;
    d.config.beta = 0.8; // read is decoupled, so sizing can favor write
    d.config.models = models;
    return d;
}

DesignSpec tfet9t_design(double vdd, const device::ModelSet& models) {
    DesignSpec d;
    d.name = "9T near-threshold TFET SRAM";
    d.config.spec = &find_spec("tfet9t");
    d.config.vdd = vdd;
    d.config.beta = 0.8;
    d.config.models = models;
    return d;
}

std::vector<DesignSpec> comparison_designs(double vdd,
                                           const device::ModelSet& models) {
    return {proposed_design(vdd, models), cmos_design(vdd, models),
            asym6t_design(vdd, models), tfet7t_design(vdd, models)};
}

} // namespace tfetsram::sram
