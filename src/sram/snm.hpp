#pragma once
// Static noise margin (butterfly) analysis — the classical alternative to
// the paper's dynamic DRNM/WLcrit metrics (the paper argues its dynamic
// approach "captures the dynamic behavior ... and hence is more accurate",
// Sec. 3). Provided as an extension so both methodologies can be compared
// on the same cells.
//
// Method: break the feedback loop and trace both voltage-transfer curves
// by clamping one storage node and solving DC for the other; the SNM is
// the side of the largest square that fits inside each lobe of the
// butterfly, computed in the standard 45-degree rotated frame.

#include "sram/cell.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::sram {

/// Bias condition for the SNM measurement.
enum class SnmMode {
    kHold, ///< wordline inactive, bitlines at their hold levels
    kRead, ///< wordline active, bitlines precharged (read disturb included)
};

struct SnmResult {
    double snm = 0.0;      ///< min of the two lobes [V]
    double lobe_high = 0.0; ///< square in the upper-left lobe [V]
    double lobe_low = 0.0;  ///< square in the lower-right lobe [V]
    bool valid = false;
};

/// Compute the static noise margin of the cell's storage loop under the
/// given bias mode. `config` is copied; the probe circuits are built
/// internally. `points` controls the VTC sweep resolution.
SnmResult static_noise_margin(const CellConfig& config, SnmMode mode,
                              std::size_t points = 81,
                              const spice::SolverOptions& opts = {});

} // namespace tfetsram::sram
