#pragma once
// SRAM cell netlist construction. Covers every topology the paper studies:
//  * the 6T CMOS baseline (Fig. 3a),
//  * the 6T TFET cell with each of the four access-device choices
//    (Fig. 3b-e): inward/outward n/p-type,
//  * the 7T TFET cell with a separate single-transistor read port [14],
//  * the asymmetric 6T TFET cell of [15].
//
// "Inward" means the access device conducts from the bitline into the cell
// (nTFET: drain at BL; pTFET: source at BL); "outward" is the mirror. Only
// the TFETs' unidirectional conduction makes this distinction meaningful.

#include <optional>

#include "device/models.hpp"
#include "spice/circuit.hpp"

namespace tfetsram::spice {
class SimContext;
} // namespace tfetsram::spice

namespace tfetsram::sram {

/// Access-transistor choice for the 6T cell (Fig. 3b-e, plus the CMOS
/// baseline's nMOS pass gate).
enum class AccessDevice {
    kOutwardN, ///< Fig. 3(b)
    kOutwardP, ///< Fig. 3(c)
    kInwardN,  ///< Fig. 3(d)
    kInwardP,  ///< Fig. 3(e) — the paper's recommendation
    kCmos,     ///< nMOS pass gate of the 6T CMOS baseline
};

/// Cell topology (the legacy four; the spec registry in cell_spec.hpp is
/// the extensible superset — these enumerators now merely name built-in
/// specs).
enum class CellKind {
    kCmos6T,     ///< 32 nm CMOS baseline
    kTfet6T,     ///< standard 6T with TFET devices
    kTfet7T,     ///< [14]: 6T core + separate read port
    kTfetAsym6T, ///< [15]: asymmetric access devices
};

struct CellSpec;

/// Full parameterization of one cell instance.
struct CellConfig {
    /// Topology: when `spec` is set it wins; `kind` then only echoes the
    /// spec's nearest legacy enumerator. When `spec` is null, build_cell
    /// resolves the built-in spec of `kind` (the legacy behavior).
    const CellSpec* spec = nullptr;
    CellKind kind = CellKind::kTfet6T;
    AccessDevice access = AccessDevice::kInwardP;
    double vdd = 0.8;        ///< nominal supply [V]
    double beta = 1.0;       ///< cell ratio: W(pull-down) / W(access)
    double w_access = 1.0;   ///< access width [um]
    double w_pullup = 0.5;   ///< pull-up width [um]
    double c_node = 0.25e-15;   ///< storage-node junction loading [F]
    double c_bitline = 10e-15;  ///< bitline capacitance [F]
    double r_precharge = 1e3;   ///< precharge switch on-resistance [ohm]
    device::ModelSet models;    ///< devices to build from
};

/// True when the access device is p-type (wordline is then active-low).
bool access_is_ptype(AccessDevice access);

/// Human-readable names for reports.
const char* to_string(AccessDevice access);
const char* to_string(CellKind kind);

/// A built cell: the circuit plus handles to every node and source the
/// operation programmer needs. Plain aggregate — no invariant beyond
/// "built by build_cell".
struct SramCell {
    CellConfig config;
    spice::Circuit circuit;

    // Nodes.
    spice::NodeId q = 0;
    spice::NodeId qb = 0;
    spice::NodeId bl = 0;
    spice::NodeId blb = 0;
    spice::NodeId wl = 0;
    spice::NodeId vdd = 0;
    spice::NodeId vss = 0;

    // Sources (owned by the circuit).
    spice::VoltageSource* v_vdd = nullptr;
    spice::VoltageSource* v_vss = nullptr;
    spice::VoltageSource* v_bl = nullptr;
    spice::VoltageSource* v_blb = nullptr;
    spice::VoltageSource* v_wl = nullptr;

    // Bitline precharge switches: when present, the bitline sources drive
    // through these so read operations can float the bitlines.
    spice::TimedSwitch* sw_bl = nullptr;
    spice::TimedSwitch* sw_blb = nullptr;

    // 7T read port (null for other kinds).
    spice::NodeId rbl = 0;
    spice::NodeId rwl = 0;
    spice::VoltageSource* v_rbl = nullptr;
    spice::VoltageSource* v_rwl = nullptr;
    spice::TimedSwitch* sw_rbl = nullptr;

    // TFET transistors subject to process variation (Monte-Carlo swaps
    // their models); empty for the CMOS cell.
    std::vector<spice::Transistor*> variable_devices;

    /// Optional warm-start seed for the first (cold) DC solve — the MC
    /// driver plants the nominal-sample hold solution here so each
    /// perturbed sample's Newton starts near its operating point. Ignored
    /// unless it matches circuit.num_unknowns() (a metric that adds nodes,
    /// e.g. SNM's probe source, simply falls back to a cold start).
    la::Vector dc_seed;

    /// Simulation context this cell's operations run under (non-owning;
    /// nullptr defers to the caller's ambient context). The operation and
    /// metric entry points bind it for the duration of their solves, so a
    /// cell built under an explicit context stays attributed to it even
    /// when evaluated from another thread.
    const spice::SimContext* sim = nullptr;

    /// Wordline levels implied by the access-device polarity.
    [[nodiscard]] double wl_active_level() const;
    [[nodiscard]] double wl_inactive_level() const;
};

/// Build a cell netlist from a configuration, optionally pinned to an
/// explicit simulation context (see SramCell::sim). Thin wrapper over
/// instantiate_spec (cell_spec.hpp): config.spec when set, otherwise the
/// built-in spec of config.kind.
SramCell build_cell(const CellConfig& config,
                    const spice::SimContext* sim = nullptr);

/// Swap the variable (TFET) devices of a built cell onto a new model set
/// in place — the Monte-Carlo lockstep engine's per-sample step. Every
/// variable device currently on config.models.ntfet moves to models.ntfet
/// (likewise ptfet), and config.models is updated to match. Topology, node
/// numbering, and the circuit's solver workspace are untouched, so the
/// next solve reuses the cell's symbolic analysis and pivot ordering.
void retarget_models(SramCell& cell, const device::ModelSet& models);

/// External connection points of one 6T cell being embedded into a larger
/// circuit (arrays). All nodes must already exist in the circuit.
struct CellPorts {
    spice::NodeId q = 0;
    spice::NodeId qb = 0;
    spice::NodeId bl = 0;
    spice::NodeId blb = 0;
    spice::NodeId wl = 0;
    spice::NodeId vdd = 0;
    spice::NodeId vss = 0;
};

/// Instantiate the six transistors and storage-node capacitors of one
/// kCmos6T / kTfet6T cell into an existing circuit. Device labels get
/// `prefix` prepended. Returns the cell's transistors (for Monte-Carlo or
/// current probing). Used by build_cell and by the array builder.
std::vector<spice::Transistor*> build_6t_devices(spice::Circuit& circuit,
                                                 const CellConfig& config,
                                                 const CellPorts& ports,
                                                 const std::string& prefix);

} // namespace tfetsram::sram
