#pragma once
// The cell zoo: one registry tying every runnable cell design to the model
// set it is built on. Sign-off sweeps, the explorer, and the cell_zoo bench
// iterate this list instead of hard-coding topologies, so adding a cell is
// one entry here (plus a spec in cell_spec.cpp if the topology is new).

#include <string>
#include <vector>

#include "device/model_zoo.hpp"
#include "sram/designs.hpp"

namespace tfetsram::sram {

/// One zoo member: a design factory plus the model-set flavor it runs on.
struct ZooEntry {
    std::string id;        ///< registry key, e.g. "tfet8t"
    std::string model_set; ///< device::model_zoo() name ("tfet-std", ...)
    DesignSpec (*make)(double vdd, const device::ModelSet& models);
};

/// Every registered design, stable order (static storage): the four legacy
/// comparison cells, the 8T/9T read-port cells, and the CNTFET-flavored 6T.
const std::vector<ZooEntry>& cell_zoo();

/// Look up an entry by id; throws std::invalid_argument when unknown.
const ZooEntry& find_zoo_entry(const std::string& id);

/// Instantiate an entry's design at a supply on the given models. The
/// caller builds `models` from the entry's model_set at the corner of
/// interest (device::make_model_set_at).
DesignSpec make_zoo_design(const ZooEntry& entry, double vdd,
                           const device::ModelSet& models);

} // namespace tfetsram::sram
