#include "sram/cell_spec.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "netlist/netlist.hpp"
#include "spice/elements.hpp"

namespace tfetsram::sram {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
}

// ---- Spec-building shorthand -------------------------------------------

constexpr WidthExpr kPullDownW{WidthExpr::Base::kPullDown, 1.0};
constexpr WidthExpr kPullUpW{WidthExpr::Base::kPullUp, 1.0};
constexpr WidthExpr kAccessW{WidthExpr::Base::kAccess, 1.0};

SpecElement node_el(std::string name) {
    SpecElement el;
    el.kind = SpecElement::Kind::kNode;
    el.a = std::move(name);
    return el;
}

SpecElement rail(std::string label, std::string node, double frac) {
    SpecElement el;
    el.kind = SpecElement::Kind::kRail;
    el.label = std::move(label);
    el.a = std::move(node);
    el.level_frac = frac;
    return el;
}

SpecElement bitline(std::string name, double frac) {
    SpecElement el;
    el.kind = SpecElement::Kind::kBitline;
    el.a = std::move(name);
    el.level_frac = frac;
    return el;
}

SpecElement wordline(std::string label, std::string node) {
    SpecElement el;
    el.kind = SpecElement::Kind::kWordline;
    el.label = std::move(label);
    el.a = std::move(node);
    return el;
}

SpecElement read_wordline(std::string label, std::string node) {
    SpecElement el;
    el.kind = SpecElement::Kind::kReadWordline;
    el.label = std::move(label);
    el.a = std::move(node);
    return el;
}

SpecElement transistor(std::string label, ModelSlot slot, std::string d,
                       std::string g, std::string s, WidthExpr w) {
    SpecElement el;
    el.kind = SpecElement::Kind::kTransistor;
    el.label = std::move(label);
    el.slot = slot;
    el.a = std::move(d);
    el.b = std::move(g);
    el.c = std::move(s);
    el.width = w;
    return el;
}

SpecElement access_el(std::string label, std::string bl_node,
                      std::string store,
                      std::optional<AccessDevice> orientation,
                      WidthExpr w = kAccessW) {
    SpecElement el;
    el.kind = SpecElement::Kind::kAccess;
    el.label = std::move(label);
    el.a = std::move(bl_node);
    el.b = std::move(store);
    el.orientation = orientation;
    el.width = w;
    return el;
}

SpecElement cap_node(std::string label, std::string node) {
    SpecElement el;
    el.kind = SpecElement::Kind::kCapacitor;
    el.label = std::move(label);
    el.a = std::move(node);
    el.cap_kind = SpecElement::CapKind::kNode;
    return el;
}

SpecElement resistor(std::string label, std::string a, std::string b,
                     double ohms) {
    SpecElement el;
    el.kind = SpecElement::Kind::kResistor;
    el.label = std::move(label);
    el.a = std::move(a);
    el.b = std::move(b);
    el.value = ohms;
    return el;
}

void core_ports(CellSpec& spec) {
    spec.nodes = {"q", "qb", "bl", "blb", "wl", "vdd", "vss"};
    spec.declared_ports = spec.nodes;
}

void add_read_port_ports(CellSpec& spec) {
    spec.port_rbl = "rbl";
    spec.port_rwl = "rwl";
    spec.declared_ports.push_back("rbl");
    spec.declared_ports.push_back("rwl");
}

/// The cross-coupled inverter pair + storage caps, as spec elements (the
/// emission order of the legacy build_core / build_6t_devices helpers).
void append_core(CellSpec& spec) {
    spec.elements.push_back(
        transistor("PDL", ModelSlot::kCoreN, "q", "qb", "vss", kPullDownW));
    spec.elements.push_back(
        transistor("PUL", ModelSlot::kCoreP, "q", "qb", "vdd", kPullUpW));
    spec.elements.push_back(
        transistor("PDR", ModelSlot::kCoreN, "qb", "q", "vss", kPullDownW));
    spec.elements.push_back(
        transistor("PUR", ModelSlot::kCoreP, "qb", "q", "vdd", kPullUpW));
}

void append_rails_and_bitlines(CellSpec& spec, double bl_frac) {
    spec.elements.push_back(rail("Vvdd", "vdd", 1.0));
    spec.elements.push_back(rail("Vvss", "vss", 0.0));
    spec.elements.push_back(bitline("bl", bl_frac));
    spec.elements.push_back(bitline("blb", bl_frac));
}

// ---- The built-in zoo ---------------------------------------------------

/// 6T (CMOS or TFET): the legacy build_6t_devices emission order — WL
/// source, core pair, access pair, storage caps.
CellSpec make_6t_spec(bool cmos) {
    CellSpec spec;
    spec.id = cmos ? "cmos6t" : "tfet6t";
    spec.display_name = cmos ? "6T CMOS SRAM" : "6T TFET SRAM";
    spec.kind = cmos ? CellKind::kCmos6T : CellKind::kTfet6T;
    spec.read_style = ReadStyle::kDifferential;
    spec.tfet_core = !cmos;
    spec.wl_follows_access = !cmos;
    core_ports(spec);
    append_rails_and_bitlines(spec, 1.0);
    spec.elements.push_back(wordline("Vwl", "wl"));
    append_core(spec);
    const std::optional<AccessDevice> orientation =
        cmos ? std::optional<AccessDevice>(AccessDevice::kCmos)
             : std::nullopt;
    spec.elements.push_back(access_el("AXL", "bl", "q", orientation));
    spec.elements.push_back(access_el("AXR", "blb", "qb", orientation));
    spec.elements.push_back(cap_node("Cq", "q"));
    spec.elements.push_back(cap_node("Cqb", "qb"));
    return spec;
}

/// 7T [14]: 6T core + outward-nTFET write access on low-clamped write
/// bitlines + single-transistor read buffer whose source is RWL
/// (active-low: RWL = 0 lets qb discharge RBL).
CellSpec make_7t_spec() {
    CellSpec spec;
    spec.id = "tfet7t";
    spec.display_name = "7T TFET SRAM";
    spec.kind = CellKind::kTfet7T;
    spec.read_style = ReadStyle::kReadPort;
    spec.bl_hold_frac = 0.0;
    spec.rwl_active_frac = 0.0;
    core_ports(spec);
    add_read_port_ports(spec);
    append_rails_and_bitlines(spec, 0.0);
    append_core(spec);
    spec.elements.push_back(cap_node("Cq", "q"));
    spec.elements.push_back(cap_node("Cqb", "qb"));
    spec.elements.push_back(wordline("Vwl", "wl"));
    spec.elements.push_back(
        access_el("AXL", "bl", "q", AccessDevice::kOutwardN));
    spec.elements.push_back(
        access_el("AXR", "blb", "qb", AccessDevice::kOutwardN));
    spec.elements.push_back(node_el("rbl"));
    spec.elements.push_back(node_el("rwl"));
    spec.elements.push_back(read_wordline("Vrwl", "rwl"));
    spec.elements.push_back(bitline("rbl", 1.0));
    spec.elements.push_back(
        transistor("M7", ModelSlot::kNTfet, "rbl", "qb", "rwl", kAccessW));
    return spec;
}

/// Asymmetric 6T [15]: one outward + one inward nTFET access device;
/// single-sided write-0 with the built-in GND-raising assist, read through
/// the inward device on BLB.
CellSpec make_asym6t_spec() {
    CellSpec spec;
    spec.id = "asym6t";
    spec.display_name = "asymmetric 6T TFET SRAM";
    spec.kind = CellKind::kTfetAsym6T;
    spec.read_style = ReadStyle::kSingleSidedBlb;
    spec.single_sided_write = true;
    spec.preferred_write = false;
    spec.implicit_write_assist = Assist::kWaGndRaising;
    spec.wlcrit_defined = false;
    core_ports(spec);
    append_rails_and_bitlines(spec, 1.0);
    append_core(spec);
    spec.elements.push_back(cap_node("Cq", "q"));
    spec.elements.push_back(cap_node("Cqb", "qb"));
    spec.elements.push_back(wordline("Vwl", "wl"));
    spec.elements.push_back(
        access_el("AXL", "bl", "q", AccessDevice::kOutwardN));
    spec.elements.push_back(
        access_el("AXR", "blb", "qb", AccessDevice::kInwardN));
    return spec;
}

/// 8T with decoupled read port: the 7T write scheme (outward nTFET access,
/// write bitlines clamped low during hold) plus the classic two-transistor
/// read stack RBL -> MRAX(g=RWL) -> rint -> MRPD(g=QB) -> VSS, asserted
/// with RWL high. The read stack is sized up (1.5x access width) so RBL
/// discharges through two stacked devices within the sense window; the
/// bleeder keeps the stack's internal node DC-defined when both devices
/// are off.
CellSpec make_8t_spec() {
    CellSpec spec;
    spec.id = "tfet8t";
    spec.display_name = "8T TFET SRAM (decoupled read port)";
    spec.kind = CellKind::kTfet7T;
    spec.read_style = ReadStyle::kReadPort;
    spec.bl_hold_frac = 0.0;
    spec.rwl_active_frac = 1.0;
    core_ports(spec);
    add_read_port_ports(spec);
    append_rails_and_bitlines(spec, 0.0);
    append_core(spec);
    spec.elements.push_back(cap_node("Cq", "q"));
    spec.elements.push_back(cap_node("Cqb", "qb"));
    spec.elements.push_back(wordline("Vwl", "wl"));
    spec.elements.push_back(
        access_el("AXL", "bl", "q", AccessDevice::kOutwardN));
    spec.elements.push_back(
        access_el("AXR", "blb", "qb", AccessDevice::kOutwardN));
    const WidthExpr read_w{WidthExpr::Base::kAccess, 1.5};
    spec.elements.push_back(node_el("rint"));
    spec.elements.push_back(node_el("rbl"));
    spec.elements.push_back(node_el("rwl"));
    spec.elements.push_back(read_wordline("Vrwl", "rwl"));
    spec.elements.push_back(bitline("rbl", 1.0));
    spec.elements.push_back(
        transistor("MRPD", ModelSlot::kNTfet, "rint", "qb", "vss", read_w));
    spec.elements.push_back(
        transistor("MRAX", ModelSlot::kNTfet, "rbl", "rwl", "rint", read_w));
    spec.elements.push_back(cap_node("Crint", "rint"));
    spec.elements.push_back(resistor("Rrint", "rint", "vss", 1e12));
    return spec;
}

/// 9T near-threshold cell (Pasandi & Fakhraie style): the 8T write scheme
/// with a three-transistor read stack — an RWL-gated footer under the read
/// pull-down cuts the stack's sneak leakage for large cells-per-bitline
/// counts at near-threshold supplies.
CellSpec make_9t_spec() {
    CellSpec spec;
    spec.id = "tfet9t";
    spec.display_name = "9T near-threshold TFET SRAM";
    spec.kind = CellKind::kTfet7T;
    spec.read_style = ReadStyle::kReadPort;
    spec.bl_hold_frac = 0.0;
    spec.rwl_active_frac = 1.0;
    core_ports(spec);
    add_read_port_ports(spec);
    append_rails_and_bitlines(spec, 0.0);
    append_core(spec);
    spec.elements.push_back(cap_node("Cq", "q"));
    spec.elements.push_back(cap_node("Cqb", "qb"));
    spec.elements.push_back(wordline("Vwl", "wl"));
    spec.elements.push_back(
        access_el("AXL", "bl", "q", AccessDevice::kOutwardN));
    spec.elements.push_back(
        access_el("AXR", "blb", "qb", AccessDevice::kOutwardN));
    const WidthExpr read_w{WidthExpr::Base::kAccess, 1.5};
    spec.elements.push_back(node_el("rint"));
    spec.elements.push_back(node_el("rfoot"));
    spec.elements.push_back(node_el("rbl"));
    spec.elements.push_back(node_el("rwl"));
    spec.elements.push_back(read_wordline("Vrwl", "rwl"));
    spec.elements.push_back(bitline("rbl", 1.0));
    spec.elements.push_back(
        transistor("MRPD", ModelSlot::kNTfet, "rint", "qb", "rfoot", read_w));
    spec.elements.push_back(
        transistor("MRAX", ModelSlot::kNTfet, "rbl", "rwl", "rint", read_w));
    spec.elements.push_back(
        transistor("MRFT", ModelSlot::kNTfet, "rfoot", "rwl", "vss", read_w));
    spec.elements.push_back(cap_node("Crint", "rint"));
    spec.elements.push_back(cap_node("Crfoot", "rfoot"));
    spec.elements.push_back(resistor("Rrint", "rint", "vss", 1e12));
    spec.elements.push_back(resistor("Rrfoot", "rfoot", "vss", 1e12));
    return spec;
}

// ---- Instantiation ------------------------------------------------------

bool slot_is_tfet(ModelSlot slot, bool tfet_core) {
    switch (slot) {
    case ModelSlot::kCoreN:
    case ModelSlot::kCoreP:
        return tfet_core;
    case ModelSlot::kNTfet:
    case ModelSlot::kPTfet:
        return true;
    case ModelSlot::kNMos:
    case ModelSlot::kPMos:
        return false;
    }
    return false;
}

const spice::TransistorModelPtr& resolve_slot(ModelSlot slot,
                                              const device::ModelSet& m,
                                              bool tfet_core) {
    switch (slot) {
    case ModelSlot::kCoreN:
        return tfet_core ? m.ntfet : m.nmos;
    case ModelSlot::kCoreP:
        return tfet_core ? m.ptfet : m.pmos;
    case ModelSlot::kNTfet:
        return m.ntfet;
    case ModelSlot::kPTfet:
        return m.ptfet;
    case ModelSlot::kNMos:
        return m.nmos;
    case ModelSlot::kPMos:
        return m.pmos;
    }
    throw std::invalid_argument("resolve_slot: bad model slot");
}

bool spec_needs_tfets(const CellSpec& spec, const CellConfig& config) {
    if (spec.tfet_core)
        return true;
    for (const SpecElement& el : spec.elements) {
        if (el.kind == SpecElement::Kind::kTransistor &&
            slot_is_tfet(el.slot, spec.tfet_core))
            return true;
        if (el.kind == SpecElement::Kind::kAccess &&
            el.orientation.value_or(config.access) != AccessDevice::kCmos)
            return true;
    }
    return false;
}

/// Bind the v_*/sw_* handles of a deck-built cell by the conventional
/// source labels (case-insensitive): Vvdd/Vvss/Vbl/Vblb/Vwl/Vrbl/Vrwl and
/// SWbl/SWblb/SWrbl. Handles without a matching element stay null (the
/// operation programmer skips them).
void bind_deck_handles(SramCell& cell) {
    for (spice::VoltageSource* v : cell.circuit.voltage_sources()) {
        const std::string name = lower(v->label());
        if (name == "vvdd")
            cell.v_vdd = v;
        else if (name == "vvss")
            cell.v_vss = v;
        else if (name == "vbl")
            cell.v_bl = v;
        else if (name == "vblb")
            cell.v_blb = v;
        else if (name == "vwl")
            cell.v_wl = v;
        else if (name == "vrbl")
            cell.v_rbl = v;
        else if (name == "vrwl")
            cell.v_rwl = v;
    }
    for (const auto& d : cell.circuit.devices()) {
        auto* sw = dynamic_cast<spice::TimedSwitch*>(d.get());
        if (sw == nullptr)
            continue;
        const std::string name = lower(sw->label());
        if (name == "swbl")
            cell.sw_bl = sw;
        else if (name == "swblb")
            cell.sw_blb = sw;
        else if (name == "swrbl")
            cell.sw_rbl = sw;
    }
}

spice::NodeId port_node(const spice::Circuit& ckt, const std::string& name) {
    return name.empty() ? spice::kGround : ckt.node(name);
}

} // namespace

double WidthExpr::resolve(const CellConfig& config) const {
    switch (base) {
    case Base::kPullDown:
        return scale * config.beta * config.w_access;
    case Base::kAccess:
        return scale * config.w_access;
    case Base::kPullUp:
        return scale * config.w_pullup;
    case Base::kLiteral:
        return scale;
    }
    throw std::invalid_argument("WidthExpr: bad base");
}

const std::vector<CellSpec>& builtin_specs() {
    static const std::vector<CellSpec> specs = [] {
        std::vector<CellSpec> s;
        s.push_back(make_6t_spec(/*cmos=*/true));
        s.push_back(make_6t_spec(/*cmos=*/false));
        s.push_back(make_7t_spec());
        s.push_back(make_asym6t_spec());
        s.push_back(make_8t_spec());
        s.push_back(make_9t_spec());
        return s;
    }();
    return specs;
}

const CellSpec& builtin_spec(CellKind kind) {
    switch (kind) {
    case CellKind::kCmos6T:
        return find_spec("cmos6t");
    case CellKind::kTfet6T:
        return find_spec("tfet6t");
    case CellKind::kTfet7T:
        return find_spec("tfet7t");
    case CellKind::kTfetAsym6T:
        return find_spec("asym6t");
    }
    throw std::invalid_argument("builtin_spec: bad cell kind");
}

const CellSpec& find_spec(const std::string& id) {
    for (const CellSpec& spec : builtin_specs())
        if (spec.id == id)
            return spec;
    throw std::invalid_argument("find_spec: unknown cell spec '" + id + "'");
}

const CellSpec& spec_of(const SramCell& cell) {
    return cell.config.spec != nullptr ? *cell.config.spec
                                       : builtin_spec(cell.config.kind);
}

SramCell instantiate_spec(const CellSpec& spec, const CellConfig& config,
                          const spice::SimContext* sim) {
    TFET_EXPECTS(config.vdd > 0.0);
    TFET_EXPECTS(config.beta > 0.0 && config.w_access > 0.0);

    SramCell cell;
    cell.config = config;
    cell.config.spec = &spec;
    cell.config.kind = spec.kind;
    cell.sim = sim;
    spice::Circuit& ckt = cell.circuit;

    if (spec.deck != nullptr) {
        // Deck-backed spec: the netlist (including its .model cards) is the
        // whole topology; config.models is not consulted.
        cell.circuit = spec.deck->build();
        cell.q = port_node(ckt, spec.port_q);
        cell.qb = port_node(ckt, spec.port_qb);
        cell.bl = port_node(ckt, spec.port_bl);
        cell.blb = port_node(ckt, spec.port_blb);
        cell.wl = port_node(ckt, spec.port_wl);
        cell.vdd = port_node(ckt, spec.port_vdd);
        cell.vss = port_node(ckt, spec.port_vss);
        cell.rbl = port_node(ckt, spec.port_rbl);
        cell.rwl = port_node(ckt, spec.port_rwl);
        bind_deck_handles(cell);
        // The deck's .nodeset directives seed the first cold DC solve —
        // the same state-selection mechanism the standalone deck flow uses.
        cell.dc_seed = spec.deck->initial_guess(cell.circuit);
        return cell;
    }

    TFET_EXPECTS(config.models.nmos && config.models.pmos);
    if (spec_needs_tfets(spec, config))
        TFET_EXPECTS(config.models.ntfet && config.models.ptfet);
    const device::ModelSet& m = cell.config.models;

    for (const std::string& name : spec.nodes)
        ckt.add_node(name);

    auto register_variable = [&](spice::Transistor& t, bool is_tfet) {
        if (is_tfet)
            cell.variable_devices.push_back(&t);
    };

    for (const SpecElement& el : spec.elements) {
        switch (el.kind) {
        case SpecElement::Kind::kNode:
            ckt.add_node(el.a);
            break;
        case SpecElement::Kind::kRail: {
            auto& src = ckt.add_vsource(
                el.label, ckt.node(el.a), spice::kGround,
                spice::Waveform::dc(el.level_frac * config.vdd));
            if (el.a == spec.port_vdd)
                cell.v_vdd = &src;
            else if (el.a == spec.port_vss)
                cell.v_vss = &src;
            break;
        }
        case SpecElement::Kind::kBitline: {
            const std::string& name = el.a;
            const spice::NodeId line = ckt.node(name);
            const spice::NodeId drv = ckt.add_node(name + "_drv");
            auto& src = ckt.add_vsource(
                "V" + name, drv, spice::kGround,
                spice::Waveform::dc(el.level_frac * config.vdd));
            auto& sw =
                ckt.add_switch("SW" + name, drv, line, config.r_precharge,
                               1e12, spice::Waveform::dc(1.0));
            ckt.add_capacitor("C" + name, line, spice::kGround,
                              config.c_bitline);
            if (name == spec.port_bl) {
                cell.v_bl = &src;
                cell.sw_bl = &sw;
            } else if (name == spec.port_blb) {
                cell.v_blb = &src;
                cell.sw_blb = &sw;
            } else if (name == spec.port_rbl) {
                cell.v_rbl = &src;
                cell.sw_rbl = &sw;
            }
            break;
        }
        case SpecElement::Kind::kWordline: {
            const bool ptype = spec.wl_follows_access &&
                               access_is_ptype(config.access);
            auto& src = ckt.add_vsource(
                el.label, ckt.node(el.a), spice::kGround,
                spice::Waveform::dc(ptype ? config.vdd : 0.0));
            if (el.a == spec.port_wl)
                cell.v_wl = &src;
            break;
        }
        case SpecElement::Kind::kReadWordline: {
            auto& src = ckt.add_vsource(
                el.label, ckt.node(el.a), spice::kGround,
                spice::Waveform::dc((1.0 - spec.rwl_active_frac) *
                                    config.vdd));
            if (el.a == spec.port_rwl)
                cell.v_rwl = &src;
            break;
        }
        case SpecElement::Kind::kTransistor: {
            auto& t = ckt.add_transistor(
                el.label, resolve_slot(el.slot, m, spec.tfet_core),
                ckt.node(el.a), ckt.node(el.b), ckt.node(el.c),
                el.width.resolve(config));
            register_variable(t, slot_is_tfet(el.slot, spec.tfet_core));
            break;
        }
        case SpecElement::Kind::kAccess: {
            const AccessDevice orientation =
                el.orientation.value_or(config.access);
            const spice::NodeId line = ckt.node(el.a);
            const spice::NodeId store = ckt.node(el.b);
            const spice::NodeId wl = ckt.node(spec.port_wl);
            const double w = el.width.resolve(config);
            spice::Transistor* t = nullptr;
            switch (orientation) {
            case AccessDevice::kInwardN: // conducts BL -> node: drain at BL
                t = &ckt.add_transistor(el.label, m.ntfet, line, wl, store,
                                        w);
                break;
            case AccessDevice::kInwardP: // conducts BL -> node: source at BL
                t = &ckt.add_transistor(el.label, m.ptfet, store, wl, line,
                                        w);
                break;
            case AccessDevice::kOutwardN: // conducts node -> BL: drain at node
                t = &ckt.add_transistor(el.label, m.ntfet, store, wl, line,
                                        w);
                break;
            case AccessDevice::kOutwardP: // conducts node -> BL: source at node
                t = &ckt.add_transistor(el.label, m.ptfet, line, wl, store,
                                        w);
                break;
            case AccessDevice::kCmos:
                t = &ckt.add_transistor(el.label, m.nmos, line, wl, store,
                                        w);
                break;
            }
            if (t == nullptr)
                throw std::invalid_argument(
                    "instantiate_spec: bad access device");
            register_variable(*t, orientation != AccessDevice::kCmos);
            break;
        }
        case SpecElement::Kind::kCapacitor: {
            double value = el.value;
            if (el.cap_kind == SpecElement::CapKind::kNode)
                value = config.c_node;
            else if (el.cap_kind == SpecElement::CapKind::kBitline)
                value = config.c_bitline;
            ckt.add_capacitor(el.label, ckt.node(el.a), spice::kGround,
                              value);
            break;
        }
        case SpecElement::Kind::kResistor:
            ckt.add_resistor(el.label, ckt.node(el.a), ckt.node(el.b),
                             el.value);
            break;
        }
    }
    ckt.prepare();

    cell.q = port_node(ckt, spec.port_q);
    cell.qb = port_node(ckt, spec.port_qb);
    cell.bl = port_node(ckt, spec.port_bl);
    cell.blb = port_node(ckt, spec.port_blb);
    cell.wl = port_node(ckt, spec.port_wl);
    cell.vdd = port_node(ckt, spec.port_vdd);
    cell.vss = port_node(ckt, spec.port_vss);
    cell.rbl = port_node(ckt, spec.port_rbl);
    cell.rwl = port_node(ckt, spec.port_rwl);
    return cell;
}

CellSpec load_cell_spec(const std::string& path) {
    auto deck = std::make_shared<netlist::Netlist>(
        netlist::Netlist::parse_file(path));
    if (deck->ports().empty())
        throw std::runtime_error(
            path + ": a cell-spec deck must declare its ports "
                   "(.ports q qb ...)");

    CellSpec spec;
    // id = filename stem ("examples/netlists/tfet_sram_8t.sp" -> "tfet_sram_8t")
    std::string stem = path;
    if (const auto slash = stem.find_last_of("/\\");
        slash != std::string::npos)
        stem.erase(0, slash + 1);
    if (const auto dot = stem.rfind('.'); dot != std::string::npos)
        stem.erase(dot);
    spec.id = stem;
    spec.display_name =
        deck->title().empty() ? stem : deck->title();
    spec.declared_ports = deck->ports();

    // The conventional port names bind the SramCell handles; anything else
    // is carried through declared_ports only. A spec must at least expose
    // its storage nodes.
    spec.port_q = spec.port_qb = spec.port_bl = spec.port_blb = "";
    spec.port_wl = spec.port_vdd = spec.port_vss = "";
    for (const std::string& p : deck->ports()) {
        if (p == "q")
            spec.port_q = p;
        else if (p == "qb")
            spec.port_qb = p;
        else if (p == "bl")
            spec.port_bl = p;
        else if (p == "blb")
            spec.port_blb = p;
        else if (p == "wl")
            spec.port_wl = p;
        else if (p == "vdd")
            spec.port_vdd = p;
        else if (p == "vss")
            spec.port_vss = p;
        else if (p == "rbl")
            spec.port_rbl = p;
        else if (p == "rwl")
            spec.port_rwl = p;
    }
    if (spec.port_q.empty() || spec.port_qb.empty())
        throw std::runtime_error(
            path + ": .ports must declare the storage nodes q and qb");

    // A declared read bitline marks the deck as a decoupled read-port
    // topology with the 8T/9T conventions: write bitlines clamp low during
    // hold and the read wordline asserts high.
    if (spec.has_read_port()) {
        spec.read_style = ReadStyle::kReadPort;
        spec.bl_hold_frac = 0.0;
        spec.rwl_active_frac = 1.0;
    }
    spec.deck = std::move(deck);
    return spec;
}

} // namespace tfetsram::sram
