#include "sram/cell_zoo.hpp"

#include <stdexcept>

namespace tfetsram::sram {

namespace {

DesignSpec cntfet6t_design(double vdd, const device::ModelSet& models) {
    DesignSpec d = proposed_design(vdd, models);
    d.name = "6T inpCNTFET + GND-lowering RA";
    return d;
}

} // namespace

const std::vector<ZooEntry>& cell_zoo() {
    static const std::vector<ZooEntry> zoo = {
        {"proposed6t", "tfet-std", &proposed_design},
        {"cmos6t", "tfet-std", &cmos_design},
        {"asym6t", "tfet-std", &asym6t_design},
        {"tfet7t", "tfet-std", &tfet7t_design},
        {"tfet8t", "tfet-std", &tfet8t_design},
        {"tfet9t", "tfet-std", &tfet9t_design},
        {"cntfet6t", "cntfet", &cntfet6t_design},
    };
    return zoo;
}

const ZooEntry& find_zoo_entry(const std::string& id) {
    for (const ZooEntry& e : cell_zoo())
        if (e.id == id)
            return e;
    throw std::invalid_argument("find_zoo_entry: unknown cell '" + id + "'");
}

DesignSpec make_zoo_design(const ZooEntry& entry, double vdd,
                           const device::ModelSet& models) {
    return entry.make(vdd, models);
}

} // namespace tfetsram::sram
