#include "sram/periphery.hpp"

namespace tfetsram::sram {

namespace {
const spice::TransistorModelPtr& n_model(const PeripheryConfig& cfg) {
    return cfg.tfet ? cfg.models.ntfet : cfg.models.nmos;
}
const spice::TransistorModelPtr& p_model(const PeripheryConfig& cfg) {
    return cfg.tfet ? cfg.models.ptfet : cfg.models.pmos;
}
} // namespace

Precharge attach_precharge(spice::Circuit& ckt, const std::string& prefix,
                           spice::NodeId bl, spice::NodeId blb,
                           spice::NodeId vdd, const PeripheryConfig& cfg) {
    Precharge pre;
    const spice::NodeId ctl = ckt.add_node(prefix + "pre");
    pre.v_pre = &ckt.add_vsource(prefix + "Vpre", ctl, spice::kGround,
                                 spice::Waveform::dc(cfg.vdd)); // idle off
    const auto& p = p_model(cfg);
    // Pull-ups: p devices conduct vdd -> bitline, exactly the direction a
    // precharge needs, so a single device per line suffices.
    ckt.add_transistor(prefix + "MPREL", p, bl, ctl, vdd, cfg.w_precharge);
    ckt.add_transistor(prefix + "MPRER", p, blb, ctl, vdd, cfg.w_precharge);
    // Equalizer: current must flow in whichever direction balances the
    // pair, which one unidirectional TFET cannot do — hence the
    // anti-parallel pair (a single device would equalize only one
    // polarity of imbalance).
    ckt.add_transistor(prefix + "MEQ1", p, blb, ctl, bl, cfg.w_precharge);
    ckt.add_transistor(prefix + "MEQ2", p, bl, ctl, blb, cfg.w_precharge);
    return pre;
}

WriteDriver attach_write_driver(spice::Circuit& ckt,
                                const std::string& prefix, spice::NodeId bl,
                                spice::NodeId blb, spice::NodeId vdd,
                                const PeripheryConfig& cfg) {
    WriteDriver drv;
    const spice::NodeId data = ckt.add_node(prefix + "wdata");
    const spice::NodeId datab = ckt.add_node(prefix + "wdatab");
    const spice::NodeId en_n = ckt.add_node(prefix + "wen_n");
    const spice::NodeId en_p = ckt.add_node(prefix + "wen_p");
    drv.v_data = &ckt.add_vsource(prefix + "Vwdata", data, spice::kGround,
                                  spice::Waveform::dc(0.0));
    drv.v_datab = &ckt.add_vsource(prefix + "Vwdatab", datab, spice::kGround,
                                   spice::Waveform::dc(cfg.vdd));
    drv.v_en_n = &ckt.add_vsource(prefix + "Vwen_n", en_n, spice::kGround,
                                  spice::Waveform::dc(0.0)); // idle off
    drv.v_en_p = &ckt.add_vsource(prefix + "Vwen_p", en_p, spice::kGround,
                                  spice::Waveform::dc(cfg.vdd)); // idle off

    const auto& nm = n_model(cfg);
    const auto& pm = p_model(cfg);
    const double w = cfg.w_driver;

    // Tri-state stage driving BL to `data` (gates see the complement).
    auto stage = [&](const std::string& tag, spice::NodeId out,
                     spice::NodeId gate) {
        const spice::NodeId np = ckt.add_node(prefix + tag + "_p");
        const spice::NodeId nn = ckt.add_node(prefix + tag + "_n");
        // Pull-up: vdd -> np -> out, both p-type (conduct source->drain).
        ckt.add_transistor(prefix + "MPUD" + tag, pm, np, gate, vdd, w);
        ckt.add_transistor(prefix + "MPUE" + tag, pm, out, en_p, np, w);
        // Pull-down: out -> nn -> gnd, both n-type (conduct drain->source).
        ckt.add_transistor(prefix + "MPDE" + tag, nm, out, en_n, nn, w);
        ckt.add_transistor(prefix + "MPDD" + tag, nm, nn, gate,
                           spice::kGround, w);
    };
    stage("bl", bl, datab);
    stage("blb", blb, data);
    return drv;
}

SenseAmp attach_sense_amp(spice::Circuit& ckt, const std::string& prefix,
                          spice::NodeId bl, spice::NodeId blb,
                          spice::NodeId vdd, const PeripheryConfig& cfg) {
    SenseAmp sa;
    const spice::NodeId sae = ckt.add_node(prefix + "sae");
    sa.tail = ckt.add_node(prefix + "satail");
    sa.v_sae = &ckt.add_vsource(prefix + "Vsae", sae, spice::kGround,
                                spice::Waveform::dc(0.0)); // idle off
    const auto& nm = n_model(cfg);
    const auto& pm = p_model(cfg);
    TFET_EXPECTS(cfg.w_sense_skew > -1.0 && cfg.w_sense_skew < 1.0);
    const double wl_side = cfg.w_sense * (1.0 + cfg.w_sense_skew);
    const double wr_side = cfg.w_sense * (1.0 - cfg.w_sense_skew);
    // Cross-coupled latch regenerating directly on the bitlines. A skewed
    // left/right split models input offset: the stronger left pull-down
    // biases the latch toward resolving BL low.
    ckt.add_transistor(prefix + "MSNL", nm, bl, blb, sa.tail, wl_side);
    ckt.add_transistor(prefix + "MSNR", nm, blb, bl, sa.tail, wr_side);
    ckt.add_transistor(prefix + "MSPL", pm, bl, blb, vdd, wr_side);
    ckt.add_transistor(prefix + "MSPR", pm, blb, bl, vdd, wl_side);
    // Footer: releases the latch when the sense enable rises.
    ckt.add_transistor(prefix + "MSFT", nm, sa.tail, sae, spice::kGround,
                       2.0 * cfg.w_sense);
    return sa;
}

} // namespace tfetsram::sram
