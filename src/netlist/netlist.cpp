#include "netlist/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "device/table_builder.hpp"

namespace tfetsram::netlist {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
}

/// Split a card into whitespace/comma-separated tokens, keeping
/// parenthesized groups (PWL(...) / (key=value ...)) glued together.
std::vector<std::string> tokenize(const std::string& card,
                                  std::size_t line) {
    std::vector<std::string> tokens;
    std::string cur;
    int depth = 0;
    for (char ch : card) {
        if (ch == '(')
            ++depth;
        if (ch == ')') {
            --depth;
            if (depth < 0)
                throw ParseError(line, "unbalanced ')'");
        }
        const bool sep = (std::isspace(static_cast<unsigned char>(ch)) != 0 ||
                          ch == ',') &&
                         depth == 0;
        if (sep) {
            if (!cur.empty()) {
                tokens.push_back(cur);
                cur.clear();
            }
        } else {
            cur += ch;
        }
    }
    if (depth != 0)
        throw ParseError(line, "unbalanced '('");
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

/// Numbers inside a parenthesized group "NAME(a b c)" -> {a, b, c}.
std::vector<double> group_numbers(const std::string& token,
                                  std::size_t line) {
    const auto open = token.find('(');
    const auto close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        throw ParseError(line, "malformed group: " + token);
    std::istringstream is(token.substr(open + 1, close - open - 1));
    std::vector<double> vals;
    std::string t;
    while (is >> t)
        vals.push_back(parse_spice_number(t));
    return vals;
}

/// key=value pairs inside "(k1=v1 k2=v2)".
std::vector<std::pair<std::string, double>> group_params(
    const std::string& token, std::size_t line) {
    const auto open = token.find('(');
    const auto close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos)
        throw ParseError(line, "malformed parameter group: " + token);
    std::istringstream is(token.substr(open + 1, close - open - 1));
    std::vector<std::pair<std::string, double>> params;
    std::string t;
    while (is >> t) {
        const auto eq = t.find('=');
        if (eq == std::string::npos)
            throw ParseError(line, "expected key=value, got: " + t);
        params.emplace_back(lower(t.substr(0, eq)),
                            parse_spice_number(t.substr(eq + 1)));
    }
    return params;
}

/// Source waveform from the tokens after the two node names.
spice::Waveform parse_waveform(const std::vector<std::string>& tokens,
                               std::size_t first, std::size_t line) {
    if (first >= tokens.size())
        throw ParseError(line, "missing source value");
    const std::string head = lower(tokens[first]);
    if (head == "dc") {
        if (first + 1 >= tokens.size())
            throw ParseError(line, "DC needs a value");
        return spice::Waveform::dc(parse_spice_number(tokens[first + 1]));
    }
    if (head.rfind("pwl", 0) == 0) {
        const std::vector<double> vals = group_numbers(tokens[first], line);
        if (vals.size() < 2 || vals.size() % 2 != 0)
            throw ParseError(line, "PWL needs time/value pairs");
        std::vector<spice::PwlPoint> pts;
        for (std::size_t i = 0; i < vals.size(); i += 2)
            pts.push_back({vals[i], vals[i + 1]});
        return spice::Waveform::pwl(std::move(pts));
    }
    if (head.rfind("pulse", 0) == 0) {
        const std::vector<double> vals = group_numbers(tokens[first], line);
        if (vals.size() != 6)
            throw ParseError(
                line, "PULSE needs (base active tstart trise twidth tfall)");
        return spice::Waveform::pulse(vals[0], vals[1], vals[2], vals[3],
                                      vals[4], vals[5]);
    }
    return spice::Waveform::dc(parse_spice_number(tokens[first]));
}

spice::TransistorModelPtr make_model(const std::string& type,
                                     const std::string& token,
                                     std::size_t line) {
    const auto params = group_params(token, line);
    bool tabulated = true;
    const std::string t = lower(type);
    if (t == "ntfet" || t == "ptfet") {
        device::TfetParams p;
        for (const auto& [key, value] : params) {
            if (key == "ion")
                p.i_on = value;
            else if (key == "ioff")
                p.i_off = value;
            else if (key == "tox")
                p.tox = value;
            else if (key == "temp")
                p.temperature = value;
            else if (key == "cgate")
                p.c_gate = value;
            else if (key == "rrev")
                p.r_rev = value;
            else if (key == "table")
                tabulated = value != 0.0;
            else
                throw ParseError(line, "unknown TFET parameter: " + key);
        }
        spice::TransistorModelPtr m = t == "ntfet" ? device::make_ntfet(p)
                                                   : device::make_ptfet(p);
        return tabulated ? device::build_table(*m) : m;
    }
    if (t == "nmos" || t == "pmos") {
        device::MosfetParams p =
            t == "pmos" ? device::pmos_defaults() : device::MosfetParams{};
        for (const auto& [key, value] : params) {
            if (key == "vth")
                p.vth = value;
            else if (key == "ispec")
                p.i_spec = value;
            else if (key == "temp")
                p.temperature = value;
            else if (key == "cgate")
                p.c_gate = value;
            else if (key == "n")
                p.slope_n = value;
            else
                throw ParseError(line, "unknown MOSFET parameter: " + key);
        }
        return t == "nmos" ? device::make_nmos(p) : device::make_pmos(p);
    }
    throw ParseError(line, "unknown model type: " + type);
}

} // namespace

double parse_spice_number(const std::string& token) {
    if (token.empty())
        throw ParseError(0, "empty number");
    std::size_t consumed = 0;
    double base = 0.0;
    try {
        base = std::stod(token, &consumed);
    } catch (const std::exception&) {
        throw ParseError(0, "malformed number: " + token);
    }
    const std::string suffix = lower(token.substr(consumed));
    if (suffix.empty())
        return base;
    // "meg" must be matched before "m".
    static const std::pair<const char*, double> suffixes[] = {
        {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},  {"m", 1e-3},
        {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
    };
    for (const auto& [s, scale] : suffixes) {
        if (suffix.rfind(s, 0) == 0)
            return base * scale; // trailing unit letters (e.g. "2ns") ignored
    }
    throw ParseError(0, "unknown suffix on number: " + token);
}

Netlist Netlist::parse(const std::string& text, const std::string& origin) {
    Netlist nl;

    // Assemble logical cards: strip comments, apply '+' continuations.
    struct Card {
        std::string text;
        std::size_t line;
    };
    std::vector<Card> cards;
    {
        std::istringstream is(text);
        std::string raw;
        std::size_t line_no = 0;
        bool first = true;
        while (std::getline(is, raw)) {
            ++line_no;
            const auto semi = raw.find(';');
            if (semi != std::string::npos)
                raw.erase(semi);
            // Trim.
            const auto b = raw.find_first_not_of(" \t\r");
            if (b == std::string::npos)
                continue;
            const auto e = raw.find_last_not_of(" \t\r");
            std::string card = raw.substr(b, e - b + 1);
            if (first) {
                nl.title_ = card;
                first = false;
                continue;
            }
            if (card[0] == '*')
                continue;
            if (card[0] == '+') {
                if (cards.empty())
                    throw ParseError(line_no, "continuation with no card");
                cards.back().text += " " + card.substr(1);
                continue;
            }
            cards.push_back({std::move(card), line_no});
        }
        if (first)
            throw ParseError(0, origin + ": empty netlist");
    }

    // Pass 1: models (classic SPICE allows .model anywhere in the deck).
    for (const Card& card : cards) {
        const auto tokens = tokenize(card.text, card.line);
        if (lower(tokens[0]) != ".model")
            continue;
        if (tokens.size() < 3)
            throw ParseError(card.line, ".model needs: name type (params)");
        const std::string params =
            tokens.size() >= 4 ? tokens[3] : std::string("()");
        nl.models_.emplace_back(lower(tokens[1]),
                                make_model(tokens[2], params, card.line));
    }

    // Pass 2: elements and directives. Alongside the element table we
    // collect the bookkeeping the post-parse validation needs: element
    // names (duplicates are classic silent-shadowing bugs), per-node
    // terminal counts (a count of one is a dangling node), and every
    // node name a directive refers to.
    struct NodeUse {
        std::size_t count = 0;
        std::size_t first_line = 0;
    };
    std::map<std::string, std::size_t> element_lines; // lowercased name
    std::map<std::string, NodeUse> node_uses;         // lowercased node
    struct NodeRef {
        std::string name;
        std::size_t line;
        const char* what;
    };
    std::vector<NodeRef> node_refs;
    auto is_ground = [](const std::string& n) {
        return n == "0" || n == "gnd";
    };
    for (const Card& card : cards) {
        const auto tokens = tokenize(card.text, card.line);
        const std::string head = lower(tokens[0]);
        if (head == ".model")
            continue;
        if (head == ".end")
            break;
        if (head == ".op") {
            nl.analyses_.push_back({Analysis::Kind::kOperatingPoint, 0.0});
            continue;
        }
        if (head == ".tran") {
            if (tokens.size() < 2)
                throw ParseError(card.line, ".tran needs a stop time");
            Analysis an;
            an.kind = Analysis::Kind::kTransient;
            an.tstop = parse_spice_number(tokens[1]);
            nl.analyses_.push_back(an);
            continue;
        }
        if (head == ".ac") {
            if (tokens.size() < 5 || lower(tokens[1]) != "dec")
                throw ParseError(card.line,
                                 ".ac needs: dec points fstart fstop");
            Analysis an;
            an.kind = Analysis::Kind::kAc;
            an.points_per_decade = static_cast<std::size_t>(
                parse_spice_number(tokens[2]));
            an.f_start = parse_spice_number(tokens[3]);
            an.f_stop = parse_spice_number(tokens[4]);
            if (an.points_per_decade < 1 || an.f_start <= 0.0 ||
                an.f_stop <= an.f_start)
                throw ParseError(card.line, ".ac sweep bounds invalid");
            nl.analyses_.push_back(an);
            continue;
        }
        if (head == ".nodeset") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                const std::string t = lower(tokens[i]);
                const auto eq = t.find(")=");
                if (t.rfind("v(", 0) != 0 || eq == std::string::npos)
                    throw ParseError(card.line,
                                     ".nodeset expects v(node)=value terms");
                nl.nodesets_.emplace_back(
                    t.substr(2, eq - 2),
                    parse_spice_number(t.substr(eq + 2)));
                node_refs.push_back(
                    {nl.nodesets_.back().first, card.line, ".nodeset"});
            }
            continue;
        }
        if (head == ".print") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                const std::string t = lower(tokens[i]);
                if (t.rfind("v(", 0) != 0 || t.back() != ')')
                    throw ParseError(card.line,
                                     ".print expects v(node) terms");
                nl.print_nodes_.push_back(t.substr(2, t.size() - 3));
                node_refs.push_back(
                    {nl.print_nodes_.back(), card.line, ".print"});
            }
            continue;
        }
        if (head == ".ports") {
            if (tokens.size() < 2)
                throw ParseError(card.line, ".ports needs node names");
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                nl.ports_.push_back(lower(tokens[i]));
                node_refs.push_back({nl.ports_.back(), card.line, ".ports"});
            }
            continue;
        }
        if (head[0] == '.')
            throw ParseError(card.line, "unknown directive: " + tokens[0]);

        Element el;
        el.kind = static_cast<char>(std::toupper(head[0]));
        el.name = tokens[0];
        auto need = [&](std::size_t n, const char* what) {
            if (tokens.size() < n)
                throw ParseError(card.line, std::string(what));
        };
        switch (el.kind) {
        case 'R':
        case 'C':
            need(4, "element needs: name n1 n2 value");
            el.nodes = {lower(tokens[1]), lower(tokens[2])};
            el.values = {parse_spice_number(tokens[3])};
            break;
        case 'V':
        case 'I': {
            need(4, "source needs: name n+ n- value/DC/PWL/PULSE");
            el.nodes = {lower(tokens[1]), lower(tokens[2])};
            // A trailing "AC <mag>" marks the AC stimulus source.
            std::vector<std::string> wave_tokens = tokens;
            if (wave_tokens.size() >= 2 &&
                lower(wave_tokens[wave_tokens.size() - 2]) == "ac") {
                if (el.kind != 'V')
                    throw ParseError(card.line,
                                     "AC stimulus only on V sources");
                nl.ac_source_ = tokens[0];
                nl.ac_magnitude_ =
                    parse_spice_number(wave_tokens.back());
                wave_tokens.resize(wave_tokens.size() - 2);
            }
            el.wave = parse_waveform(wave_tokens, 3, card.line);
            el.has_wave = true;
            break;
        }
        case 'S':
            need(6, "switch needs: name n1 n2 ron roff control");
            el.nodes = {lower(tokens[1]), lower(tokens[2])};
            el.values = {parse_spice_number(tokens[3]),
                         parse_spice_number(tokens[4])};
            el.wave = parse_waveform(tokens, 5, card.line);
            el.has_wave = true;
            break;
        case 'M': {
            need(5, "transistor needs: name d g s model [W=w]");
            el.nodes = {lower(tokens[1]), lower(tokens[2]), lower(tokens[3])};
            el.model = lower(tokens[4]);
            for (std::size_t i = 5; i < tokens.size(); ++i) {
                const std::string t = lower(tokens[i]);
                if (t.rfind("w=", 0) == 0)
                    el.width = parse_spice_number(t.substr(2));
                else
                    throw ParseError(card.line,
                                     "unknown transistor option: " + tokens[i]);
            }
            break;
        }
        default:
            throw ParseError(card.line, "unknown element kind: " + tokens[0]);
        }
        const auto [it, fresh] =
            element_lines.emplace(lower(el.name), card.line);
        if (!fresh)
            throw ParseError(card.line, "duplicate element name '" + el.name +
                                            "' (first defined at line " +
                                            std::to_string(it->second) + ")");
        for (const std::string& n : el.nodes) {
            if (is_ground(n))
                continue;
            NodeUse& use = node_uses[n];
            if (use.count == 0)
                use.first_line = card.line;
            ++use.count;
        }
        nl.elements_.push_back(std::move(el));
    }

    // Post-parse validation: directives must name real nodes, and every
    // non-ground node needs at least two element terminals unless .ports
    // declares it as an external connection point.
    for (const NodeRef& ref : node_refs) {
        if (is_ground(ref.name))
            continue;
        if (node_uses.find(ref.name) == node_uses.end())
            throw ParseError(ref.line,
                             std::string(ref.what) +
                                 " references undeclared node '" + ref.name +
                                 "' (no element connects to it)");
    }
    for (const auto& [name, use] : node_uses) {
        if (use.count >= 2)
            continue;
        if (std::find(nl.ports_.begin(), nl.ports_.end(), name) !=
            nl.ports_.end())
            continue;
        throw ParseError(use.first_line,
                         "dangling node '" + name +
                             "': connected to only one element terminal "
                             "(declare it in .ports if it is an external "
                             "connection point)");
    }
    return nl;
}

Netlist Netlist::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open netlist: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), path);
}

la::Vector Netlist::initial_guess(spice::Circuit& circuit) const {
    circuit.prepare();
    la::Vector guess(circuit.num_unknowns(), 0.0);
    for (const auto& [name, volts] : nodesets_) {
        const spice::NodeId n = circuit.node(name);
        if (n != spice::kGround)
            guess[n - 1] = volts;
    }
    return guess;
}

spice::Circuit Netlist::build() const {
    spice::Circuit ckt;
    auto node = [&ckt](const std::string& name) -> spice::NodeId {
        if (name == "0" || name == "gnd")
            return spice::kGround;
        try {
            return ckt.node(name);
        } catch (const std::invalid_argument&) {
            return ckt.add_node(name);
        }
    };
    auto model = [this](const std::string& name) {
        for (const auto& [n, m] : models_)
            if (n == name)
                return m;
        throw std::runtime_error("undefined model: " + name);
    };

    for (const Element& el : elements_) {
        switch (el.kind) {
        case 'R':
            ckt.add_resistor(el.name, node(el.nodes[0]), node(el.nodes[1]),
                             el.values[0]);
            break;
        case 'C':
            ckt.add_capacitor(el.name, node(el.nodes[0]), node(el.nodes[1]),
                              el.values[0]);
            break;
        case 'V':
            ckt.add_vsource(el.name, node(el.nodes[0]), node(el.nodes[1]),
                            el.wave);
            break;
        case 'I':
            ckt.add_isource(el.name, node(el.nodes[0]), node(el.nodes[1]),
                            el.wave);
            break;
        case 'S':
            ckt.add_switch(el.name, node(el.nodes[0]), node(el.nodes[1]),
                           el.values[0], el.values[1], el.wave);
            break;
        case 'M':
            ckt.add_transistor(el.name, model(el.model), node(el.nodes[0]),
                               node(el.nodes[1]), node(el.nodes[2]),
                               el.width);
            break;
        default:
            throw std::logic_error("corrupt element table");
        }
    }
    ckt.prepare();
    return ckt;
}

} // namespace tfetsram::netlist
