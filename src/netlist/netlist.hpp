#pragma once
// SPICE-dialect netlist front-end. Lets users drive the simulator from a
// text deck instead of the C++ API:
//
//   * tfet inverter
//   .model tfet_n NTFET (ion=1e-4 ioff=1e-17)
//   .model tfet_p PTFET ()
//   Vdd vdd 0 DC 0.8
//   Vin in  0 PWL(0 0 1n 0 1.2n 0.8)
//   MP  out in vdd tfet_p W=1
//   MN  out in 0   tfet_n W=1
//   Cl  out 0 0.5f
//   .tran 3n
//   .print v(out) v(in)
//   .end
//
// Dialect summary:
//   - first line is the title (classic SPICE); '*' and ';' start comments;
//     a leading '+' continues the previous card; case-insensitive keywords
//   - elements: Rxxx n1 n2 value | Cxxx n1 n2 value |
//     Vxxx n+ n- (value | DC v | PWL(t v ...) | PULSE(base active tstart
//     trise twidth tfall)) | Ixxx n+ n- (same sources) |
//     Sxxx n1 n2 ron roff (same waveform forms, control in [0,1]) |
//     Mxxx d g s model [W=width_um]
//   - engineering suffixes: f p n u m k meg g t (and 'mil' is NOT supported)
//   - directives: .model name NTFET|PTFET|NMOS|PMOS (key=value ...),
//     .op, .tran tstop, .ac dec points fstart fstop,
//     .print v(node)..., .nodeset v(node)=value..., .ports node...,
//     .end
//     (.nodeset seeds the operating-point search — how a deck selects which
//     stable state a bistable cell starts in; .ports declares the deck's
//     external connection points — the contract sram::load_cell_spec reads)
//   - AC stimulus: a trailing "AC <mag>" on a V card marks it as the swept
//     source, e.g. "Vin in 0 DC 0.45 AC 1"
//   - nodes are created on first use; "0" and "gnd" are ground
//
// Diagnostics (all with 1-based line attribution):
//   - duplicate element names are rejected (case-insensitive, as in
//     classic SPICE),
//   - a node touched by exactly one element terminal is rejected as
//     dangling unless it is ground or declared in .ports (single-ended
//     connection points are exactly what .ports exists to declare),
//   - .print/.nodeset/.ports names must refer to a node some element
//     actually connects to.

#include <stdexcept>
#include <string>
#include <vector>

#include "device/models.hpp"
#include "spice/circuit.hpp"

namespace tfetsram::netlist {

/// Parse failure with 1-based source line attribution.
class ParseError : public std::runtime_error {
public:
    ParseError(std::size_t line, const std::string& what_arg)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             what_arg),
          line_(line) {}
    [[nodiscard]] std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// A requested analysis.
struct Analysis {
    enum class Kind { kOperatingPoint, kTransient, kAc };
    Kind kind = Kind::kOperatingPoint;
    double tstop = 0.0;   ///< transient only [s]
    double f_start = 0.0; ///< AC only [Hz]
    double f_stop = 0.0;  ///< AC only [Hz]
    std::size_t points_per_decade = 10; ///< AC only
};

/// Parsed deck. Immutable after parse; build() instantiates a fresh
/// Circuit each call (models are shared between builds).
class Netlist {
public:
    /// Parse from text. `origin` appears in error messages only.
    static Netlist parse(const std::string& text,
                         const std::string& origin = "<memory>");

    /// Parse a file (throws std::runtime_error if unreadable).
    static Netlist parse_file(const std::string& path);

    /// Instantiate the circuit.
    [[nodiscard]] spice::Circuit build() const;

    [[nodiscard]] const std::string& title() const { return title_; }
    [[nodiscard]] const std::vector<Analysis>& analyses() const {
        return analyses_;
    }
    /// Node names requested via .print v(...).
    [[nodiscard]] const std::vector<std::string>& print_nodes() const {
        return print_nodes_;
    }
    /// (node, volts) pairs from .nodeset directives.
    [[nodiscard]] const std::vector<std::pair<std::string, double>>&
    nodesets() const {
        return nodesets_;
    }

    /// Declared external connection points (.ports directives, in order,
    /// lowercased). Empty for decks that never declare any.
    [[nodiscard]] const std::vector<std::string>& ports() const {
        return ports_;
    }

    /// Initial-guess vector for a circuit built from this netlist,
    /// honouring the .nodeset directives (zeros elsewhere).
    [[nodiscard]] la::Vector initial_guess(spice::Circuit& circuit) const;

    /// Name of the source carrying the AC stimulus (empty if none). The
    /// magnitude is ac_magnitude().
    [[nodiscard]] const std::string& ac_source() const { return ac_source_; }
    [[nodiscard]] double ac_magnitude() const { return ac_magnitude_; }
    [[nodiscard]] std::size_t element_count() const {
        return elements_.size();
    }

private:
    struct Element {
        char kind = '?'; // R C V I S M
        std::string name;
        std::vector<std::string> nodes;
        std::vector<double> values;     // element-kind specific
        spice::Waveform wave = spice::Waveform::dc(0.0);
        bool has_wave = false;
        std::string model;              // M only
        double width = 1.0;             // M only [um]
    };

    std::string title_;
    std::vector<Element> elements_;
    std::vector<Analysis> analyses_;
    std::vector<std::string> print_nodes_;
    std::vector<std::pair<std::string, double>> nodesets_;
    std::vector<std::string> ports_;
    std::vector<std::pair<std::string, spice::TransistorModelPtr>> models_;
    std::string ac_source_;
    double ac_magnitude_ = 1.0;
};

/// Parse a SPICE number with engineering suffix ("2.5k", "10f", "3meg").
/// Throws ParseError(0, ...) on malformed input.
double parse_spice_number(const std::string& token);

} // namespace tfetsram::netlist
