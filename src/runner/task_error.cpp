#include "runner/task_error.hpp"

namespace tfetsram::runner {

namespace {

std::string format_what(const std::string& task_id, int attempts,
                        const std::string& cause) {
    std::string what = "task '" + task_id + "' failed";
    if (attempts > 1)
        what += " after " + std::to_string(attempts) + " attempts";
    what += ": " + cause;
    return what;
}

} // namespace

TaskError::TaskError(std::string task_id, int attempts, std::string cause,
                     std::optional<spice::SolveError> solve_error)
    : std::runtime_error(format_what(task_id, attempts, cause)),
      task_id_(std::move(task_id)), attempts_(attempts),
      cause_(std::move(cause)), solve_error_(std::move(solve_error)) {}

} // namespace tfetsram::runner
