#pragma once
// Minimal JSON value for the runner subsystem: cache entries on disk, the
// JSONL run journal, and the BENCH_*.json summary artifact. Supports the
// full JSON data model but only the features those files need — ordered
// objects, exact double round-trips, and strict parsing with no recovery.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tfetsram::runner {

/// Immutable-ish JSON tree. Objects preserve insertion order so dumped
/// files are deterministic (a requirement for byte-identical warm runs).
class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() = default; // null
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double v) : type_(Type::kNumber), num_(v) {}
    Json(std::uint64_t v)
        : type_(Type::kNumber), num_(static_cast<double>(v)) {}
    Json(int v) : type_(Type::kNumber), num_(v) {}
    Json(const char* s) : type_(Type::kString), str_(s) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
    [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
    [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
    [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
    [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }

    [[nodiscard]] bool as_bool() const { return bool_; }
    [[nodiscard]] double as_number() const { return num_; }
    [[nodiscard]] const std::string& as_string() const { return str_; }

    /// Array/object element count.
    [[nodiscard]] std::size_t size() const {
        return type_ == Type::kObject ? members_.size() : elements_.size();
    }

    /// Array element access.
    [[nodiscard]] const Json& at(std::size_t i) const { return elements_[i]; }
    void push_back(Json v) { elements_.push_back(std::move(v)); }

    /// Object member access; `set` appends or overwrites, `find` returns
    /// nullptr when absent.
    void set(std::string key, Json value);
    [[nodiscard]] const Json* find(std::string_view key) const;
    [[nodiscard]] const std::vector<std::pair<std::string, Json>>&
    members() const {
        return members_;
    }

    /// Compact single-line rendering. Doubles use %.17g so parse(dump(x))
    /// reproduces x bit-exactly; integral values print without exponent.
    [[nodiscard]] std::string dump() const;

    /// Strict parse of a complete JSON document; nullopt on any error or
    /// trailing garbage.
    static std::optional<Json> parse(std::string_view text);

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

/// Escape `s` as a JSON string literal body (no surrounding quotes).
std::string json_escape(std::string_view s);

} // namespace tfetsram::runner
