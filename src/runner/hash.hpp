#pragma once
// Content hashing for the result cache. FNV-1a 64-bit over the canonical
// key text: stable across platforms and processes (unlike std::hash), and
// collisions are additionally guarded by storing the full key text in the
// cache entry and comparing it on load.

#include <cstdint>
#include <string>
#include <string_view>

namespace tfetsram::runner {

/// FNV-1a 64-bit hash of `text`.
constexpr std::uint64_t fnv1a64(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/// 16-hex-digit rendering of `h` (lowercase, zero padded) — used as the
/// cache file stem so entries are stable, filesystem-safe names.
std::string to_hex(std::uint64_t h);

} // namespace tfetsram::runner
