#include "runner/cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <atomic>

#include "runner/hash.hpp"
#include "runner/json.hpp"
#include "util/contracts.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace tfetsram::runner {

std::string to_hex(std::uint64_t h) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

CacheMode parse_cache_mode(std::string_view text) {
    if (text == "off" || text == "0")
        return CacheMode::kOff;
    if (text == "ro")
        return CacheMode::kReadOnly;
    return CacheMode::kReadWrite;
}

CacheMode cache_mode_from_env() {
    return parse_cache_mode(env::get_string("TFETSRAM_CACHE"));
}

std::string to_string(CacheMode mode) {
    switch (mode) {
    case CacheMode::kOff: return "off";
    case CacheMode::kReadWrite: return "rw";
    case CacheMode::kReadOnly: return "ro";
    }
    return "?";
}

CacheKey& CacheKey::add(std::string_view field, std::string_view value) {
    TFET_EXPECTS(field.find('=') == std::string_view::npos);
    if (!text_.empty())
        text_ += ';';
    text_.append(field);
    text_ += '=';
    text_.append(value);
    return *this;
}

CacheKey& CacheKey::add(std::string_view field, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(field, std::string_view(buf));
}

CacheKey& CacheKey::add(std::string_view field, std::size_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", value);
    return add(field, std::string_view(buf));
}

std::string CacheKey::hash() const {
    const std::string salted =
        "schema" + std::to_string(kCacheSchemaVersion) + ";" + text_;
    return to_hex(fnv1a64(salted));
}

const std::string& TaskResult::get(std::string_view name) const {
    for (const auto& [k, v] : values)
        if (k == name)
            return v;
    throw contract_violation("TaskResult: no value named '" +
                             std::string(name) + "'");
}

std::vector<std::pair<std::string, std::string>>
bench_metrics(const TaskResult& result) {
    constexpr std::string_view prefix = "bench:";
    std::vector<std::pair<std::string, std::string>> metrics;
    for (const auto& [k, v] : result.values)
        if (k.size() > prefix.size() &&
            std::string_view(k).substr(0, prefix.size()) == prefix)
            metrics.emplace_back(k.substr(prefix.size()), v);
    return metrics;
}

ResultCache::ResultCache(std::filesystem::path dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {}

namespace {

Json to_json(const CacheKey& key, const TaskResult& result) {
    Json entry = Json::object();
    entry.set("schema", kCacheSchemaVersion);
    entry.set("key", key.text());
    Json values = Json::array();
    for (const auto& [k, v] : result.values) {
        Json pair = Json::array();
        pair.push_back(k);
        pair.push_back(v);
        values.push_back(std::move(pair));
    }
    entry.set("values", std::move(values));
    Json rows = Json::array();
    for (const auto& row : result.rows) {
        Json cells = Json::array();
        for (const auto& cell : row)
            cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    entry.set("rows", std::move(rows));
    return entry;
}

std::optional<TaskResult> from_json(const Json& entry, const CacheKey& key) {
    const Json* schema = entry.find("schema");
    const Json* key_text = entry.find("key");
    const Json* values = entry.find("values");
    const Json* rows = entry.find("rows");
    if (schema == nullptr || !schema->is_number() ||
        static_cast<int>(schema->as_number()) != kCacheSchemaVersion)
        return std::nullopt;
    // Full key comparison guards against a (cosmically unlikely) 64-bit
    // hash collision and against hand-edited entries.
    if (key_text == nullptr || !key_text->is_string() ||
        key_text->as_string() != key.text())
        return std::nullopt;
    if (values == nullptr || !values->is_array() || rows == nullptr ||
        !rows->is_array())
        return std::nullopt;

    TaskResult result;
    for (std::size_t i = 0; i < values->size(); ++i) {
        const Json& pair = values->at(i);
        if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_string() ||
            !pair.at(1).is_string())
            return std::nullopt;
        result.set(pair.at(0).as_string(), pair.at(1).as_string());
    }
    for (std::size_t i = 0; i < rows->size(); ++i) {
        const Json& row = rows->at(i);
        if (!row.is_array())
            return std::nullopt;
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (!row.at(c).is_string())
                return std::nullopt;
            cells.push_back(row.at(c).as_string());
        }
        result.rows.push_back(std::move(cells));
    }
    return result;
}

} // namespace

std::optional<TaskResult> ResultCache::load(const CacheKey& key) const {
    if (mode_ == CacheMode::kOff || key.empty())
        return std::nullopt;
    // Injected corruption reads as an unparseable entry — i.e. a miss, per
    // the contract that cache damage is never an error.
    if (fault::should_fail(fault::Site::kCacheLoad))
        return std::nullopt;
    const std::filesystem::path path = dir_ / (key.hash() + ".json");
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::optional<Json> entry = Json::parse(buf.str());
    if (!entry || !entry->is_object())
        return std::nullopt;
    return from_json(*entry, key);
}

bool ResultCache::store(const CacheKey& key, const TaskResult& result) const {
    if (mode_ != CacheMode::kReadWrite || key.empty())
        return false;
    if (fault::should_fail(fault::Site::kCacheStore))
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const std::filesystem::path path = dir_ / (key.hash() + ".json");
    // Write-then-rename so concurrent readers (another bench process on the
    // same cache) never observe a truncated entry. The temp name is unique
    // per store so concurrent writers of the same key cannot clobber each
    // other's half-written temp file before its rename.
    static std::atomic<unsigned long> temp_serial{0};
    const std::filesystem::path tmp =
        path.string() + ".tmp" +
        std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << to_json(key, result).dump() << '\n';
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    const bool renamed = !ec;
    if (!renamed)
        std::filesystem::remove(tmp, ec);
    return renamed;
}

} // namespace tfetsram::runner
