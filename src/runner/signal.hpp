#pragma once
// Process shutdown signaling for the long-running drivers (bench/run_all,
// examples/design_explorer). install_signal_handlers() arms SIGINT/SIGTERM
// handlers that do the only async-signal-safe thing possible — set an
// atomic flag — and re-arm the default disposition so a second Ctrl-C
// kills the process outright. The runner's watchdog thread polls
// shutdown_requested() and converts it into cooperative cancellation:
// in-flight task contexts are cancelled via their tokens, queued tasks are
// marked cancelled, the pool drains, and telemetry (journal + BENCH json)
// is flushed atomically before the driver exits nonzero.

namespace tfetsram::runner {

/// Arm SIGINT/SIGTERM → request_shutdown(). Idempotent.
void install_signal_handlers();

/// Has a shutdown been requested (signal or programmatic)?
[[nodiscard]] bool shutdown_requested();

/// Programmatic equivalent of receiving a signal (async-signal-safe).
void request_shutdown();

/// Clear the flag so tests can exercise the path repeatedly.
void reset_shutdown_for_tests();

} // namespace tfetsram::runner
