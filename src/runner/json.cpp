#include "runner/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tfetsram::runner {

void Json::set(std::string key, Json value) {
    for (auto& [k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
    for (const auto& [k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void dump_number(std::string& out, double v) {
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no non-finite numbers; encode as null (the cache layer
        // stores formatted strings, so this only affects telemetry fields).
        out += "null";
        return;
    }
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    out += buf;
}

void dump_impl(const Json& j, std::string& out) {
    switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(out, j.as_number()); break;
    case Json::Type::kString:
        out += '"';
        out += json_escape(j.as_string());
        out += '"';
        break;
    case Json::Type::kArray:
        out += '[';
        for (std::size_t i = 0; i < j.size(); ++i) {
            if (i > 0)
                out += ',';
            dump_impl(j.at(i), out);
        }
        out += ']';
        break;
    case Json::Type::kObject:
        out += '{';
        for (std::size_t i = 0; i < j.members().size(); ++i) {
            if (i > 0)
                out += ',';
            out += '"';
            out += json_escape(j.members()[i].first);
            out += "\":";
            dump_impl(j.members()[i].second, out);
        }
        out += '}';
        break;
    }
}

/// Recursive-descent parser over [p, end). Each function leaves p one past
/// the consumed text, or returns false on malformed input.
struct Parser {
    const char* p;
    const char* end;
    int depth = 0;

    void skip_ws() {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool literal(std::string_view word) {
        if (static_cast<std::size_t>(end - p) < word.size() ||
            std::string_view(p, word.size()) != word)
            return false;
        p += word.size();
        return true;
    }

    bool parse_string(std::string& out) {
        if (p >= end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return false;
            const char esc = *p++;
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (end - p < 4)
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // We only ever emit \u for control characters; decode the
                // BMP scalar as UTF-8 for generality.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return false;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool parse_value(Json& out) {
        if (++depth > 64)
            return false; // runaway nesting guard
        skip_ws();
        if (p >= end)
            return false;
        bool ok = false;
        switch (*p) {
        case 'n': ok = literal("null"), out = Json(); break;
        case 't': ok = literal("true"), out = Json(true); break;
        case 'f': ok = literal("false"), out = Json(false); break;
        case '"': {
            std::string s;
            ok = parse_string(s);
            if (ok)
                out = Json(std::move(s));
            break;
        }
        case '[': {
            ++p;
            out = Json::array();
            skip_ws();
            if (p < end && *p == ']') {
                ++p;
                ok = true;
                break;
            }
            for (;;) {
                Json elem;
                if (!parse_value(elem))
                    return false;
                out.push_back(std::move(elem));
                skip_ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    ok = true;
                }
                break;
            }
            break;
        }
        case '{': {
            ++p;
            out = Json::object();
            skip_ws();
            if (p < end && *p == '}') {
                ++p;
                ok = true;
                break;
            }
            for (;;) {
                skip_ws();
                std::string key;
                if (!parse_string(key))
                    return false;
                skip_ws();
                if (p >= end || *p != ':')
                    return false;
                ++p;
                Json value;
                if (!parse_value(value))
                    return false;
                out.set(std::move(key), std::move(value));
                skip_ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    ok = true;
                }
                break;
            }
            break;
        }
        default: {
            char* num_end = nullptr;
            const double v = std::strtod(p, &num_end);
            if (num_end == p || num_end > end)
                return false;
            p = num_end;
            out = Json(v);
            ok = true;
        }
        }
        --depth;
        return ok;
    }
};

} // namespace

std::string Json::dump() const {
    std::string out;
    dump_impl(*this, out);
    return out;
}

std::optional<Json> Json::parse(std::string_view text) {
    Parser parser{text.data(), text.data() + text.size()};
    Json out;
    if (!parser.parse_value(out))
        return std::nullopt;
    parser.skip_ws();
    if (parser.p != parser.end)
        return std::nullopt; // trailing garbage
    return out;
}

} // namespace tfetsram::runner
