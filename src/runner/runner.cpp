#include "runner/runner.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>

#include "util/contracts.hpp"
#include "util/env.hpp"

namespace tfetsram::runner {

RunnerConfig RunnerConfig::from_env(std::string run_name) {
    // One capture so every knob — runner scheduling and simulation
    // defaults alike — comes from the same consistent env snapshot.
    const env::EnvSnapshot snap = env::EnvSnapshot::capture();
    RunnerConfig cfg;
    cfg.run_name = std::move(run_name);
    cfg.cache_mode = parse_cache_mode(snap.cache);
    cfg.threads = snap.threads;
    if (snap.retries > 0)
        cfg.default_max_attempts = snap.retries;
    cfg.keep_going = snap.keep_going;
    cfg.sim = spice::SimConfig::from_env(snap);
    // TFETSRAM_FAULTS keeps its historical process-wide site counting: a
    // private per-task plan would restart the indices at every task, so
    // "dc@50" would mean the 50th solve of *each* task instead of the
    // run. Task contexts with an empty spec defer to the global injector;
    // a task wanting a private plan sets TaskSpec::sim.fault_spec.
    cfg.sim.fault_spec.clear();
    if (!snap.cache_dir.empty())
        cfg.cache_dir = snap.cache_dir;
    if (!snap.out_dir.empty())
        cfg.out_dir = snap.out_dir;
    // The context mirrors the runner's directories so task code resolving
    // paths through its SimContext agrees with the cache and telemetry.
    cfg.sim.cache_dir = cfg.cache_dir;
    cfg.sim.out_dir = cfg.out_dir;
    return cfg;
}

Runner::Runner(RunnerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_mode),
      telemetry_(config_.out_dir, config_.run_name, config_.telemetry) {}

TaskId Runner::add(TaskSpec spec) {
    TFET_EXPECTS(!ran_);
    TFET_EXPECTS(spec.fn != nullptr);
    const TaskId id = nodes_.size();
    for (TaskId dep : spec.deps) {
        // Deps must precede their dependents, so the graph is a DAG by
        // construction — no cycle detection pass needed at run time.
        TFET_EXPECTS(dep < id);
        nodes_[dep].dependents.push_back(id);
    }
    Node node;
    node.spec = std::move(spec);
    nodes_.push_back(std::move(node));
    return id;
}

const TaskResult& Runner::result(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].result;
}

TaskStatus Runner::status(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].status;
}

const TaskError* Runner::error(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].error.get();
}

std::string Runner::csv_path(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(config_.out_dir, ec);
    return (config_.out_dir / (name + ".csv")).string();
}

RunSummary Runner::run() {
    TFET_EXPECTS(!ran_);
    ran_ = true;
    using clock = std::chrono::steady_clock;
    const auto run_start = clock::now();
    auto seconds_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    // Phase 1 — cache resolution (serial; entries are tiny JSON files).
    // Hits are done before any thread spins up, so a fully warm graph costs
    // a directory scan and nothing else.
    for (Node& node : nodes_) {
        if (node.spec.key.empty())
            continue;
        if (std::optional<TaskResult> hit = cache_.load(node.spec.key)) {
            node.result = std::move(*hit);
            node.status = TaskStatus::kHit;
            node.done = true;
        }
    }

    // Phase 2 — prune setup-only tasks whose dependents are all satisfied
    // (reverse pass so chained setup tasks collapse together).
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        Node& node = nodes_[i];
        if (node.done || !node.spec.setup_only)
            continue;
        // A setup task nothing depends on was presumably added for its
        // side effect; only prune when dependents exist and are all served.
        bool needed = node.dependents.empty();
        for (TaskId dep_id : node.dependents)
            if (!nodes_[dep_id].done)
                needed = true;
        if (!needed) {
            node.status = TaskStatus::kPruned;
            node.done = true;
        }
    }

    // Record resolved tasks up front (deterministic journal prefix).
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (!node.done)
            continue;
        TaskRecord record;
        record.id = node.spec.id;
        record.key_hash = node.spec.key.empty() ? "" : node.spec.key.hash();
        record.status = node.status;
        telemetry_.record(record);
    }

    // Phase 3 — Kahn-style execution of the remainder over the pool.
    std::mutex mutex; // guards nodes_ scheduling state + ready queue
    std::deque<TaskId> ready;
    std::size_t pending = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (node.done)
            continue;
        ++pending;
        node.waiting = 0;
        for (TaskId dep : node.spec.deps)
            if (!nodes_[dep].done)
                ++node.waiting;
        if (node.waiting == 0)
            ready.push_back(i);
    }

    if (pending > 0) {
        ThreadPool pool(config_.threads);
        std::condition_variable all_done;
        std::exception_ptr first_error;

        // Executes one task on a pool thread, then releases its dependents.
        std::function<void(TaskId)> execute = [&](TaskId id) {
            Node& node = nodes_[id];
            TaskRecord record;
            record.id = node.spec.id;
            record.key_hash =
                node.spec.key.empty() ? "" : node.spec.key.hash();

            bool poisoned = false;
            std::string poison_source;
            {
                std::lock_guard<std::mutex> lock(mutex);
                poisoned = node.poisoned;
                poison_source = node.poison_source;
            }

            TaskResult result;
            std::shared_ptr<TaskError> error;
            std::exception_ptr raw_error; // original, rethrown in abort mode
            if (poisoned) {
                // An upstream task was quarantined: this task's inputs do
                // not exist, so it is quarantined without running.
                record.status = TaskStatus::kQuarantined;
                record.attempts = 0;
                error = std::make_shared<TaskError>(
                    node.spec.id, 0,
                    "upstream dependency '" + poison_source +
                        "' quarantined");
                record.error = error->what();
            } else {
                const int max_attempts =
                    node.spec.max_attempts > 0
                        ? node.spec.max_attempts
                        : std::max(1, config_.default_max_attempts);
                // Each task runs under its own SimContext (its spec's
                // override or the runner-wide template), bound as this
                // thread's ambient context. A fresh context starts at zero,
                // so its counters ARE the task's solver work — including
                // solves the task fans out to an inner Monte-Carlo pool,
                // which aggregate into their parent context.
                spice::SimConfig sim_cfg =
                    node.spec.sim ? *node.spec.sim : config_.sim;
                if (sim_cfg.label.empty())
                    sim_cfg.label = node.spec.id;
                const spice::SimContext ctx(std::move(sim_cfg));
                const spice::ScopedContext bind(ctx);
                const auto t0 = clock::now();
                int attempt = 1;
                for (;; ++attempt) {
                    if (attempt > 1 && node.spec.on_retry)
                        node.spec.on_retry(attempt);
                    try {
                        result = node.spec.fn();
                        error.reset();
                        raw_error = nullptr;
                        break;
                    } catch (const spice::SolveException& e) {
                        error = std::make_shared<TaskError>(
                            node.spec.id, attempt, e.what(), e.error());
                        raw_error = std::current_exception();
                    } catch (const std::exception& e) {
                        error = std::make_shared<TaskError>(node.spec.id,
                                                            attempt, e.what());
                        raw_error = std::current_exception();
                    } catch (...) {
                        error = std::make_shared<TaskError>(
                            node.spec.id, attempt, "unknown exception");
                        raw_error = std::current_exception();
                    }
                    if (attempt >= max_attempts)
                        break;
                }
                record.attempts = std::min(attempt, max_attempts);
                record.wall_s = seconds_since(t0);
                record.solver = ctx.stats();
                if (!error) {
                    record.status = TaskStatus::kExecuted;
                    if (!node.spec.key.empty())
                        cache_.store(node.spec.key, result);
                } else {
                    record.status = config_.keep_going
                                        ? TaskStatus::kQuarantined
                                        : TaskStatus::kFailed;
                    record.error = error->what();
                }
            }
            telemetry_.record(record);

            const bool quarantined =
                record.status == TaskStatus::kQuarantined;
            std::vector<TaskId> unblocked;
            {
                std::lock_guard<std::mutex> lock(mutex);
                node.result = std::move(result);
                node.status = record.status;
                node.error = error;
                node.done = true;
                --pending;
                if (error && !quarantined && !first_error)
                    first_error = raw_error;
                if (!first_error) {
                    for (TaskId dep_id : node.dependents) {
                        Node& dependent = nodes_[dep_id];
                        if (quarantined && !dependent.poisoned) {
                            dependent.poisoned = true;
                            // Name the quarantine root, not the nearest
                            // poisoned ancestor.
                            dependent.poison_source =
                                poisoned ? poison_source : node.spec.id;
                        }
                        if (!dependent.done && --dependent.waiting == 0)
                            unblocked.push_back(dep_id);
                    }
                }
                if (pending == 0 || first_error)
                    all_done.notify_all();
            }
            for (TaskId next : unblocked)
                pool.submit([&execute, next] { execute(next); },
                            nodes_[next].spec.id);
        };

        {
            std::lock_guard<std::mutex> lock(mutex);
            for (TaskId id : ready)
                pool.submit([&execute, id] { execute(id); },
                            nodes_[id].spec.id);
            ready.clear();
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            all_done.wait(lock, [&] {
                return pending == 0 || first_error != nullptr;
            });
        }
        pool.wait_idle(); // quiesce in-flight tasks before leaving scope

        if (first_error) {
            telemetry_.finish(seconds_since(run_start));
            std::rethrow_exception(first_error);
        }

        // A dependency graph built through add() cannot deadlock, but keep
        // the invariant checkable.
        TFET_ENSURES(pending == 0);
    }

    const RunSummary summary = telemetry_.finish(seconds_since(run_start));
    if (config_.print_summary)
        std::cout << Telemetry::render(summary, config_.run_name);
    return summary;
}

} // namespace tfetsram::runner
