#include "runner/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <iostream>
#include <mutex>

#include "util/contracts.hpp"

namespace tfetsram::runner {

RunnerConfig RunnerConfig::from_env(std::string run_name) {
    RunnerConfig cfg;
    cfg.run_name = std::move(run_name);
    cfg.cache_mode = cache_mode_from_env();
    cfg.out_dir = out_dir_from_env();
    if (const char* env = std::getenv("TFETSRAM_CACHE_DIR");
        env != nullptr && *env != '\0')
        cfg.cache_dir = env;
    if (const char* env = std::getenv("TFETSRAM_THREADS");
        env != nullptr && *env != '\0') {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            cfg.threads = static_cast<std::size_t>(v);
    }
    return cfg;
}

Runner::Runner(RunnerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_mode),
      telemetry_(config_.out_dir, config_.run_name, config_.telemetry) {}

TaskId Runner::add(TaskSpec spec) {
    TFET_EXPECTS(!ran_);
    TFET_EXPECTS(spec.fn != nullptr);
    const TaskId id = nodes_.size();
    for (TaskId dep : spec.deps) {
        // Deps must precede their dependents, so the graph is a DAG by
        // construction — no cycle detection pass needed at run time.
        TFET_EXPECTS(dep < id);
        nodes_[dep].dependents.push_back(id);
    }
    Node node;
    node.spec = std::move(spec);
    nodes_.push_back(std::move(node));
    return id;
}

const TaskResult& Runner::result(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].result;
}

std::string Runner::csv_path(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(config_.out_dir, ec);
    return (config_.out_dir / (name + ".csv")).string();
}

RunSummary Runner::run() {
    TFET_EXPECTS(!ran_);
    ran_ = true;
    using clock = std::chrono::steady_clock;
    const auto run_start = clock::now();
    auto seconds_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    // Phase 1 — cache resolution (serial; entries are tiny JSON files).
    // Hits are done before any thread spins up, so a fully warm graph costs
    // a directory scan and nothing else.
    for (Node& node : nodes_) {
        if (node.spec.key.empty())
            continue;
        if (std::optional<TaskResult> hit = cache_.load(node.spec.key)) {
            node.result = std::move(*hit);
            node.status = TaskStatus::kHit;
            node.done = true;
        }
    }

    // Phase 2 — prune setup-only tasks whose dependents are all satisfied
    // (reverse pass so chained setup tasks collapse together).
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        Node& node = nodes_[i];
        if (node.done || !node.spec.setup_only)
            continue;
        // A setup task nothing depends on was presumably added for its
        // side effect; only prune when dependents exist and are all served.
        bool needed = node.dependents.empty();
        for (TaskId dep_id : node.dependents)
            if (!nodes_[dep_id].done)
                needed = true;
        if (!needed) {
            node.status = TaskStatus::kPruned;
            node.done = true;
        }
    }

    // Record resolved tasks up front (deterministic journal prefix).
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (!node.done)
            continue;
        TaskRecord record;
        record.id = node.spec.id;
        record.key_hash = node.spec.key.empty() ? "" : node.spec.key.hash();
        record.status = node.status;
        telemetry_.record(record);
    }

    // Phase 3 — Kahn-style execution of the remainder over the pool.
    std::mutex mutex; // guards nodes_ scheduling state + ready queue
    std::deque<TaskId> ready;
    std::size_t pending = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (node.done)
            continue;
        ++pending;
        node.waiting = 0;
        for (TaskId dep : node.spec.deps)
            if (!nodes_[dep].done)
                ++node.waiting;
        if (node.waiting == 0)
            ready.push_back(i);
    }

    if (pending > 0) {
        ThreadPool pool(config_.threads);
        std::condition_variable all_done;
        std::exception_ptr first_error;

        // Executes one task on a pool thread, then releases its dependents.
        std::function<void(TaskId)> execute = [&](TaskId id) {
            Node& node = nodes_[id];
            TaskRecord record;
            record.id = node.spec.id;
            record.key_hash =
                node.spec.key.empty() ? "" : node.spec.key.hash();

            const spice::SolverStats before = spice::solver_stats();
            const auto t0 = clock::now();
            TaskResult result;
            std::exception_ptr error;
            try {
                result = node.spec.fn();
            } catch (...) {
                error = std::current_exception();
            }
            record.wall_s = seconds_since(t0);
            record.solver = spice::solver_stats() - before;
            record.status =
                error ? TaskStatus::kFailed : TaskStatus::kExecuted;
            if (!error && !node.spec.key.empty())
                cache_.store(node.spec.key, result);
            telemetry_.record(record);

            std::vector<TaskId> unblocked;
            {
                std::lock_guard<std::mutex> lock(mutex);
                node.result = std::move(result);
                node.status = record.status;
                node.done = true;
                --pending;
                if (error && !first_error)
                    first_error = error;
                if (!first_error) {
                    for (TaskId dep_id : node.dependents) {
                        Node& dependent = nodes_[dep_id];
                        if (!dependent.done && --dependent.waiting == 0)
                            unblocked.push_back(dep_id);
                    }
                }
                if (pending == 0 || first_error)
                    all_done.notify_all();
            }
            for (TaskId next : unblocked)
                pool.submit([&execute, next] { execute(next); });
        };

        {
            std::lock_guard<std::mutex> lock(mutex);
            for (TaskId id : ready)
                pool.submit([&execute, id] { execute(id); });
            ready.clear();
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            all_done.wait(lock, [&] {
                return pending == 0 || first_error != nullptr;
            });
        }
        pool.wait_idle(); // quiesce in-flight tasks before leaving scope

        if (first_error) {
            telemetry_.finish(seconds_since(run_start));
            std::rethrow_exception(first_error);
        }

        // A dependency graph built through add() cannot deadlock, but keep
        // the invariant checkable.
        TFET_ENSURES(pending == 0);
    }

    const RunSummary summary = telemetry_.finish(seconds_since(run_start));
    if (config_.print_summary)
        std::cout << Telemetry::render(summary, config_.run_name);
    return summary;
}

} // namespace tfetsram::runner
