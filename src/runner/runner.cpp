#include "runner/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "runner/signal.hpp"
#include "spice/cancel.hpp"
#include "util/contracts.hpp"
#include "util/env.hpp"

namespace tfetsram::runner {

namespace {

/// SplitMix64 finalizer (same mix as SimContext::derive_seed) — turns
/// (seed, attempt) into the backoff jitter draw.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

double retry_backoff_s(int attempt, std::uint64_t seed, double base_s,
                       double max_s) {
    if (attempt <= 1 || base_s <= 0.0)
        return 0.0;
    double delay = base_s * std::ldexp(1.0, attempt - 2); // base * 2^(a-2)
    const std::uint64_t h =
        mix64(seed ^ mix64(static_cast<std::uint64_t>(attempt)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
    delay *= 0.5 + 0.5 * u;
    if (max_s > 0.0 && delay > max_s)
        delay = max_s;
    return delay;
}

RunnerConfig RunnerConfig::from_env(std::string run_name) {
    // One capture so every knob — runner scheduling and simulation
    // defaults alike — comes from the same consistent env snapshot.
    const env::EnvSnapshot snap = env::EnvSnapshot::capture();
    RunnerConfig cfg;
    cfg.run_name = std::move(run_name);
    cfg.cache_mode = parse_cache_mode(snap.cache);
    cfg.threads = snap.threads;
    if (snap.retries > 0)
        cfg.default_max_attempts = snap.retries;
    cfg.keep_going = snap.keep_going;
    cfg.task_timeout_s = snap.task_timeout;
    cfg.stall_timeout_s = snap.stall_timeout;
    if (snap.backoff_base > 0)
        cfg.backoff_base_s = snap.backoff_base;
    if (snap.backoff_max > 0)
        cfg.backoff_max_s = snap.backoff_max;
    // The same snapshot arms the cooperative per-task deadline
    // (sim.deadline_s) that the watchdog's wall-clock cancel backstops.
    cfg.sim = spice::SimConfig::from_env(snap);
    // TFETSRAM_FAULTS keeps its historical process-wide site counting: a
    // private per-task plan would restart the indices at every task, so
    // "dc@50" would mean the 50th solve of *each* task instead of the
    // run. Task contexts with an empty spec defer to the global injector;
    // a task wanting a private plan sets TaskSpec::sim.fault_spec.
    cfg.sim.fault_spec.clear();
    if (!snap.cache_dir.empty())
        cfg.cache_dir = snap.cache_dir;
    if (!snap.out_dir.empty())
        cfg.out_dir = snap.out_dir;
    // The context mirrors the runner's directories so task code resolving
    // paths through its SimContext agrees with the cache and telemetry.
    cfg.sim.cache_dir = cfg.cache_dir;
    cfg.sim.out_dir = cfg.out_dir;
    return cfg;
}

Runner::Runner(RunnerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_mode),
      telemetry_(config_.out_dir, config_.run_name, config_.telemetry) {}

TaskId Runner::add(TaskSpec spec) {
    TFET_EXPECTS(!ran_);
    TFET_EXPECTS(spec.fn != nullptr);
    const TaskId id = nodes_.size();
    for (TaskId dep : spec.deps) {
        // Deps must precede their dependents, so the graph is a DAG by
        // construction — no cycle detection pass needed at run time.
        TFET_EXPECTS(dep < id);
        nodes_[dep].dependents.push_back(id);
    }
    Node node;
    node.spec = std::move(spec);
    nodes_.push_back(std::move(node));
    return id;
}

const TaskResult& Runner::result(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].result;
}

TaskStatus Runner::status(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].status;
}

const TaskError* Runner::error(TaskId id) const {
    TFET_EXPECTS(ran_);
    TFET_EXPECTS(id < nodes_.size());
    return nodes_[id].error.get();
}

std::string Runner::csv_path(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(config_.out_dir, ec);
    return (config_.out_dir / (name + ".csv")).string();
}

RunSummary Runner::run() {
    TFET_EXPECTS(!ran_);
    ran_ = true;
    using clock = std::chrono::steady_clock;
    const auto run_start = clock::now();
    auto seconds_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    // Phase 1 — cache resolution (serial; entries are tiny JSON files).
    // Hits are done before any thread spins up, so a fully warm graph costs
    // a directory scan and nothing else.
    for (Node& node : nodes_) {
        if (node.spec.key.empty())
            continue;
        if (std::optional<TaskResult> hit = cache_.load(node.spec.key)) {
            node.result = std::move(*hit);
            node.status = TaskStatus::kHit;
            node.done = true;
        }
    }

    // Phase 2 — prune setup-only tasks whose dependents are all satisfied
    // (reverse pass so chained setup tasks collapse together).
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        Node& node = nodes_[i];
        if (node.done || !node.spec.setup_only)
            continue;
        // A setup task nothing depends on was presumably added for its
        // side effect; only prune when dependents exist and are all served.
        bool needed = node.dependents.empty();
        for (TaskId dep_id : node.dependents)
            if (!nodes_[dep_id].done)
                needed = true;
        if (!needed) {
            node.status = TaskStatus::kPruned;
            node.done = true;
        }
    }

    // Record resolved tasks up front (deterministic journal prefix).
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (!node.done)
            continue;
        TaskRecord record;
        record.id = node.spec.id;
        record.key_hash = node.spec.key.empty() ? "" : node.spec.key.hash();
        record.status = node.status;
        // Cache hits re-publish the metrics stored in their TaskResult, so
        // a warm run's journal and BENCH artifact carry the same yield
        // numbers as the cold run that computed them.
        if (node.status == TaskStatus::kHit)
            record.metrics = bench_metrics(node.result);
        telemetry_.record(record);
    }

    // Phase 3 — Kahn-style execution of the remainder over the pool.
    std::mutex mutex; // guards nodes_ scheduling state + ready queue
    std::deque<TaskId> ready;
    std::size_t pending = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        if (node.done)
            continue;
        ++pending;
        node.waiting = 0;
        for (TaskId dep : node.spec.deps)
            if (!nodes_[dep].done)
                ++node.waiting;
        if (node.waiting == 0)
            ready.push_back(i);
    }

    if (pending > 0) {
        ThreadPool pool(config_.threads);
        std::condition_variable all_done;
        std::exception_ptr first_error;
        // Bounded-queue backpressure: at most max_in_flight tasks handed
        // to the pool at once; the rest of the ready frontier waits in
        // `ready` and is pumped in as slots free up.
        std::size_t submitted = 0; // handed to the pool, not yet finished
        const std::size_t max_in_flight = config_.max_in_flight > 0
                                              ? config_.max_in_flight
                                              : 2 * pool.size();

        // Watchdog registry: one slot per task, written by the worker
        // around each attempt, scanned by the monitor thread. The monitor
        // reads ONLY the token's lock-free atomics (heartbeat progress,
        // cancelled flag) — never a task's non-atomic SolverStats — so the
        // TSan lane stays clean.
        struct Attempt {
            std::shared_ptr<spice::CancelToken> token;
            clock::time_point start{};
            std::uint64_t last_progress = 0;
            clock::time_point last_change{};
            const char* reason = nullptr; ///< "timeout"|"stall"|"shutdown"
            bool active = false;
        };
        std::mutex wd_mutex; // guards the registry (worker <-> monitor)
        std::vector<Attempt> watchdog(nodes_.size());

        std::atomic<bool> monitor_stop{false};
        std::thread monitor([&] {
            // ~2ms cadence: responsive for sub-second stall windows, idle
            // otherwise. Also the run's shutdown observer: once a cancel
            // or signal arrives it keeps cancelling every active token
            // each tick, so an attempt that registers after a sweep is
            // still stopped.
            while (!monitor_stop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
                const bool cancelling =
                    cancel_requested_.load(std::memory_order_acquire) ||
                    shutdown_requested();
                const auto now = clock::now();
                std::lock_guard<std::mutex> lock(wd_mutex);
                for (Attempt& a : watchdog) {
                    if (!a.active || a.token == nullptr)
                        continue;
                    if (cancelling) {
                        if (a.reason == nullptr)
                            a.reason = "shutdown";
                        a.token->cancel();
                        continue;
                    }
                    const std::uint64_t beat = a.token->progress();
                    if (beat != a.last_progress) {
                        a.last_progress = beat;
                        a.last_change = now;
                    }
                    const double since_start =
                        std::chrono::duration<double>(now - a.start).count();
                    const double since_beat =
                        std::chrono::duration<double>(now - a.last_change)
                            .count();
                    if (config_.task_timeout_s > 0 &&
                        since_start > config_.task_timeout_s) {
                        a.reason = "timeout";
                        a.token->cancel();
                    } else if (config_.stall_timeout_s > 0 &&
                               since_beat > config_.stall_timeout_s) {
                        a.reason = "stall";
                        a.token->cancel();
                    }
                }
            }
        });

        std::function<void(TaskId)> execute;

        // Both called with `mutex` held / released respectively.
        auto pump_locked = [&]() {
            std::vector<TaskId> batch;
            while (!ready.empty() && submitted < max_in_flight) {
                batch.push_back(ready.front());
                ready.pop_front();
                ++submitted;
            }
            return batch;
        };
        auto submit_batch = [&](const std::vector<TaskId>& batch) {
            for (TaskId id : batch)
                pool.submit([&execute, id] { execute(id); },
                            nodes_[id].spec.id);
        };

        // Executes one task on a pool thread, then releases its dependents.
        execute = [&](TaskId id) {
            Node& node = nodes_[id];
            TaskRecord record;
            record.id = node.spec.id;
            record.key_hash =
                node.spec.key.empty() ? "" : node.spec.key.hash();

            bool poisoned = false;
            std::string poison_source;
            {
                std::lock_guard<std::mutex> lock(mutex);
                poisoned = node.poisoned;
                poison_source = node.poison_source;
            }
            const bool draining =
                cancel_requested_.load(std::memory_order_acquire) ||
                shutdown_requested();

            TaskResult result;
            std::shared_ptr<TaskError> error;
            std::exception_ptr raw_error; // original, rethrown in abort mode
            if (draining) {
                // Drain-and-cancel shutdown: the run is stopping, so this
                // task is journaled as cancelled without ever starting.
                record.status = TaskStatus::kCancelled;
                record.attempts = 0;
            } else if (poisoned) {
                // An upstream task was quarantined: this task's inputs do
                // not exist, so it is quarantined without running.
                record.status = TaskStatus::kQuarantined;
                record.attempts = 0;
                error = std::make_shared<TaskError>(
                    node.spec.id, 0,
                    "upstream dependency '" + poison_source +
                        "' quarantined");
                record.error = error->what();
            } else {
                const int max_attempts =
                    node.spec.max_attempts > 0
                        ? node.spec.max_attempts
                        : std::max(1, config_.default_max_attempts);
                // Each task runs under its own SimContext (its spec's
                // override or the runner-wide template), bound as this
                // thread's ambient context. A fresh context starts at zero,
                // so its counters ARE the task's solver work — including
                // solves the task fans out to an inner Monte-Carlo pool,
                // which aggregate into their parent context. One context —
                // and one cancel token — spans every attempt, so a private
                // fault plan's op counters keep counting across retries.
                spice::SimConfig sim_cfg =
                    node.spec.sim ? *node.spec.sim : config_.sim;
                if (sim_cfg.label.empty())
                    sim_cfg.label = node.spec.id;
                // Every task context is cancellable: the watchdog needs a
                // token to observe (heartbeat) and to fire (cancel).
                if (sim_cfg.cancel == nullptr)
                    sim_cfg.cancel = std::make_shared<spice::CancelToken>();
                const spice::SimContext ctx(std::move(sim_cfg));
                const spice::ScopedContext bind(ctx);
                const std::shared_ptr<spice::CancelToken> token =
                    ctx.cancel_token();
                const auto t0 = clock::now();
                int attempt = 1;
                for (;; ++attempt) {
                    if (attempt > 1) {
                        // Un-cancel (a watchdog cancel must not doom the
                        // retry) and back off — exponential with
                        // deterministic per-task jitter, interruptible by
                        // cancellation.
                        token->reset();
                        const double delay = retry_backoff_s(
                            attempt, ctx.seed(), config_.backoff_base_s,
                            config_.backoff_max_s);
                        const auto wake =
                            clock::now() +
                            std::chrono::duration_cast<clock::duration>(
                                std::chrono::duration<double>(delay));
                        while (clock::now() < wake) {
                            if (token->cancelled() ||
                                cancel_requested_.load(
                                    std::memory_order_acquire) ||
                                shutdown_requested())
                                break;
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(500));
                        }
                        if (node.spec.on_retry)
                            node.spec.on_retry(attempt);
                    }
                    {
                        // Register this attempt with a fresh heartbeat
                        // baseline.
                        std::lock_guard<std::mutex> lock(wd_mutex);
                        Attempt& a = watchdog[id];
                        a.token = token;
                        a.start = clock::now();
                        a.last_progress = token->progress();
                        a.last_change = a.start;
                        a.active = true;
                    }
                    try {
                        result = node.spec.fn();
                        error.reset();
                        raw_error = nullptr;
                    } catch (const spice::SolveException& e) {
                        error = std::make_shared<TaskError>(
                            node.spec.id, attempt, e.what(), e.error());
                        raw_error = std::current_exception();
                    } catch (const std::exception& e) {
                        error = std::make_shared<TaskError>(node.spec.id,
                                                            attempt, e.what());
                        raw_error = std::current_exception();
                    } catch (...) {
                        error = std::make_shared<TaskError>(
                            node.spec.id, attempt, "unknown exception");
                        raw_error = std::current_exception();
                    }
                    {
                        std::lock_guard<std::mutex> lock(wd_mutex);
                        watchdog[id].active = false;
                        if (watchdog[id].reason != nullptr)
                            record.watchdog = watchdog[id].reason;
                    }
                    if (!error || attempt >= max_attempts)
                        break;
                    // A run shutting down must not burn retries on work
                    // that the monitor will cancel again anyway.
                    if (cancel_requested_.load(std::memory_order_acquire) ||
                        shutdown_requested())
                        break;
                }
                record.attempts = std::min(attempt, max_attempts);
                record.wall_s = seconds_since(t0);
                record.solver = ctx.stats();
                const bool cancelling =
                    cancel_requested_.load(std::memory_order_acquire) ||
                    shutdown_requested();
                if (!error) {
                    record.status = TaskStatus::kExecuted;
                    record.metrics = bench_metrics(result);
                    if (!node.spec.key.empty())
                        cache_.store(node.spec.key, result);
                } else if (cancelling) {
                    // Shutdown took this attempt down mid-flight:
                    // cancelled, not failed — run() drains and returns a
                    // degraded summary instead of throwing.
                    record.status = TaskStatus::kCancelled;
                    record.error = error->what();
                } else {
                    record.status = config_.keep_going
                                        ? TaskStatus::kQuarantined
                                        : TaskStatus::kFailed;
                    record.error = error->what();
                }
            }
            telemetry_.record(record);

            const bool quarantined =
                record.status == TaskStatus::kQuarantined;
            const bool cancelled = record.status == TaskStatus::kCancelled;
            std::vector<TaskId> batch;
            {
                std::lock_guard<std::mutex> lock(mutex);
                node.result = std::move(result);
                node.status = record.status;
                node.error = error;
                node.done = true;
                --pending;
                --submitted;
                if (error && !quarantined && !cancelled && !first_error)
                    first_error = raw_error;
                if (!first_error) {
                    for (TaskId dep_id : node.dependents) {
                        Node& dependent = nodes_[dep_id];
                        if (quarantined && !dependent.poisoned) {
                            dependent.poisoned = true;
                            // Name the quarantine root, not the nearest
                            // poisoned ancestor.
                            dependent.poison_source =
                                poisoned ? poison_source : node.spec.id;
                        }
                        // Dependents of a cancelled task still release:
                        // they drain through execute() and are journaled
                        // as cancelled themselves (cancel is sticky).
                        if (!dependent.done && --dependent.waiting == 0)
                            ready.push_back(dep_id);
                    }
                    batch = pump_locked();
                }
                if (pending == 0 || first_error)
                    all_done.notify_all();
            }
            submit_batch(batch);
        };

        {
            std::vector<TaskId> batch;
            {
                std::lock_guard<std::mutex> lock(mutex);
                batch = pump_locked();
            }
            submit_batch(batch);
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            all_done.wait(lock, [&] {
                return pending == 0 || first_error != nullptr;
            });
        }
        pool.wait_idle(); // quiesce in-flight tasks before leaving scope
        monitor_stop.store(true, std::memory_order_release);
        monitor.join();

        if (first_error) {
            telemetry_.finish(seconds_since(run_start));
            std::rethrow_exception(first_error);
        }

        // A dependency graph built through add() cannot deadlock, but keep
        // the invariant checkable.
        TFET_ENSURES(pending == 0);
    }

    const RunSummary summary = telemetry_.finish(seconds_since(run_start));
    if (config_.print_summary)
        std::cout << Telemetry::render(summary, config_.run_name);
    return summary;
}

} // namespace tfetsram::runner
