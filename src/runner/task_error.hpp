#pragma once
// Task-level error context. When a task fn throws, the runner wraps the
// cause in a TaskError carrying the task id and how many attempts were
// spent, preserving any structured spice::SolveError the failure started
// from. Quarantined tasks (keep-going mode) hold their TaskError for
// post-run inspection via Runner::error().

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "spice/solve_error.hpp"

namespace tfetsram::runner {

class TaskError : public std::runtime_error {
public:
    /// `cause` is the underlying exception's message; `solve_error` is
    /// populated when the cause was a spice::SolveException.
    TaskError(std::string task_id, int attempts, std::string cause,
              std::optional<spice::SolveError> solve_error = std::nullopt);

    [[nodiscard]] const std::string& task_id() const { return task_id_; }
    [[nodiscard]] int attempts() const { return attempts_; }
    [[nodiscard]] const std::string& cause() const { return cause_; }
    [[nodiscard]] const std::optional<spice::SolveError>&
    solve_error() const {
        return solve_error_;
    }

private:
    std::string task_id_;
    int attempts_;
    std::string cause_;
    std::optional<spice::SolveError> solve_error_;
};

} // namespace tfetsram::runner
