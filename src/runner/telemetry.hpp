#pragma once
// Run telemetry: a JSONL journal with one record per task (id, key hash,
// cache status, wall time, solver work) plus an end-of-run summary — both
// the console table and a machine-readable BENCH_<run>.json artifact so
// successive commits can be compared on cache efficiency and Newton cost.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "spice/stats.hpp"

namespace tfetsram::runner {

/// Where run artifacts (CSV, journal, BENCH json) land: TFETSRAM_OUT_DIR,
/// falling back to the historical ./bench_csv.
std::filesystem::path out_dir_from_env();

/// Crash-safe file write: content goes to a unique temp file which is
/// renamed over `path`, so readers never observe a partial artifact.
/// Returns false on I/O failure (or an injected kFileWrite fault).
bool atomic_write(const std::filesystem::path& path,
                  const std::string& content);

/// Outcome of one scheduled task.
enum class TaskStatus {
    kExecuted,    ///< cache miss (or uncacheable): fn ran
    kHit,         ///< served from the result cache
    kPruned,      ///< setup-only task skipped because no dependent executed
    kFailed,      ///< fn threw (run aborts unless keep-going)
    kQuarantined, ///< fn failed in keep-going mode, or an upstream
                  ///< dependency was quarantined; rest of the graph ran
    kCancelled,   ///< never ran: the run was cancelled (signal or
                  ///< Runner::request_cancel) while it was still queued
};
std::string to_string(TaskStatus status);

struct TaskRecord {
    std::string id;
    std::string key_hash; ///< empty for uncacheable tasks
    TaskStatus status = TaskStatus::kExecuted;
    int attempts = 1;  ///< execution attempts spent (retries included)
    std::string error; ///< structured-error rendering when failed/quarantined
    /// Why the watchdog intervened ("stall" / "timeout"), empty otherwise.
    std::string watchdog;
    double wall_s = 0.0;
    spice::SolverStats solver; ///< the task's SimContext totals
                               ///< (inner-pool work included)
    /// Scalar metrics the task published through its TaskResult's
    /// "bench:" values (see runner::bench_metrics) — journaled per task
    /// and aggregated into the BENCH artifact's "task_metrics" object, on
    /// cache hits as well as fresh executions.
    std::vector<std::pair<std::string, std::string>> metrics;
};

/// Aggregate counts returned by Runner::run and asserted on in tests.
struct RunSummary {
    std::size_t tasks = 0;
    std::size_t executed = 0;
    std::size_t cache_hits = 0;
    std::size_t pruned = 0;
    std::size_t failed = 0;
    std::size_t quarantined = 0;
    std::size_t cancelled = 0;
    double wall_s = 0.0;
    std::uint64_t nr_iterations = 0;
    std::uint64_t dc_solves = 0;
    std::uint64_t transient_steps = 0;
    std::uint64_t transient_solves = 0;
    std::uint64_t assemblies = 0;
    std::uint64_t lu_factorizations = 0;
    std::uint64_t line_search_backtracks = 0;
    std::uint64_t sparse_refactorizations = 0;
    std::uint64_t sparse_symbolic_analyses = 0;
    /// Sparse-kernel fast-path totals: refactors completed on the reused
    /// pivot sequence, stricter-pivoting fallbacks, wall microseconds of
    /// fill-reducing ordering, and transistor evaluations done through the
    /// batched structure-of-arrays sweep (all 0 on dense-only runs).
    std::uint64_t sparse_static_pivot_hits = 0;
    std::uint64_t sparse_pivot_fallbacks = 0;
    std::uint64_t sparse_ordering_us = 0;
    std::uint64_t batched_evals = 0;
    /// Mixed-level array engine totals (0 unless some task ran it).
    std::uint64_t hier_promotions = 0;
    std::uint64_t hier_demotions = 0;
    std::uint64_t hier_relinearizations = 0;
    std::uint64_t hier_guard_retries = 0;
    /// Largest MNA pattern / L+U factor seen across the run's tasks —
    /// maxima of per-task gauges, so a dense-only run reports 0.
    std::uint64_t sparse_pattern_nnz = 0;
    std::uint64_t sparse_lu_nnz = 0;
    /// Largest active-partition size the mixed-level engine solved across
    /// the run's tasks (gauge maximum; 0 when the engine never ran).
    std::uint64_t hier_active_unknowns = 0;

    /// Total cancellation checkpoints / cancelled solves across the run's
    /// tasks (0 unless some context was deadline-armed or cancellable).
    std::uint64_t deadline_polls = 0;
    std::uint64_t cancelled_solves = 0;

    /// A degraded run completed the graph but quarantined, failed, or
    /// cancelled some tasks — its figures carry placeholder points.
    [[nodiscard]] bool degraded() const {
        return failed > 0 || quarantined > 0 || cancelled > 0;
    }
};

class Telemetry {
public:
    /// Opens `<out_dir>/<run_name>_journal.jsonl` (truncating) when
    /// enabled; a disabled or unopenable journal degrades to counting only.
    Telemetry(std::filesystem::path out_dir, std::string run_name,
              bool enabled = true);

    /// Append one task record to the journal. Thread-safe.
    void record(const TaskRecord& record);

    /// Write BENCH_<run_name>.json and return the final tallies.
    RunSummary finish(double total_wall_s);

    /// Console rendering of a summary (TablePrinter-style one-liner box).
    static std::string render(const RunSummary& summary,
                              const std::string& run_name);

    [[nodiscard]] const std::filesystem::path& journal_path() const {
        return journal_path_;
    }

private:
    std::filesystem::path out_dir_;
    std::string run_name_;
    std::filesystem::path journal_path_;
    std::ofstream journal_;
    std::mutex mutex_;
    RunSummary summary_;
    /// Wall seconds of each executed task, in completion order — emitted
    /// as the BENCH artifact's "task_wall_s" object so CI can gate a
    /// single workload's wall against a checked-in baseline.
    std::vector<std::pair<std::string, double>> task_walls_;
    /// Published task metrics in record order (hits and executions both),
    /// emitted as the BENCH artifact's "task_metrics" object.
    std::vector<
        std::pair<std::string,
                  std::vector<std::pair<std::string, std::string>>>>
        task_metrics_;
};

} // namespace tfetsram::runner
