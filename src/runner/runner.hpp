#pragma once
// Experiment runner: a task-graph scheduler over the shared ThreadPool,
// fused with the result cache and telemetry. A bench describes its figure
// as Task nodes (sweep points, setup steps) with dependencies; run()
// executes the ready frontier concurrently, serves cache hits without
// executing, prunes setup work nothing needs, and journals every task.
//
//   Runner r(RunnerConfig::from_env("fig6_write_assist"));
//   TaskId models = r.add({.id = "models", .setup_only = true, .fn = ...});
//   for (...) r.add({.id = ..., .deps = {models}, .key = ..., .fn = ...});
//   r.run();                      // topological, pool-parallel, cached
//   r.result(id).get("wlcrit");   // identical on cold and warm runs

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/cache.hpp"
#include "spice/context.hpp"
#include "runner/task_error.hpp"
#include "runner/telemetry.hpp"
#include "runner/thread_pool.hpp"

namespace tfetsram::runner {

using TaskId = std::size_t;
using TaskFn = std::function<TaskResult()>;

/// One node of the task graph.
struct TaskSpec {
    // Every member carries a default initializer so designated-initializer
    // construction ({.id = ..., .fn = ...}) stays warning-clean under
    // -Wextra as fields are added.
    std::string id{};           ///< human-readable name for the journal
    std::vector<TaskId> deps{}; ///< must all be ids returned by earlier add()s
    /// Declared inputs; an empty key marks the task uncacheable (it always
    /// executes — unless pruned — and its result is never persisted).
    CacheKey key{};
    /// Pure setup (builds shared state, result unused): skipped when every
    /// dependent was a cache hit or itself pruned.
    bool setup_only = false;
    TaskFn fn{};
    /// Execution attempts before the task counts as failed; 0 uses
    /// RunnerConfig::default_max_attempts.
    int max_attempts = 0;
    /// Perturbed-restart hook, called before each retry (attempt >= 2) so
    /// the task can nudge its initial guess / reseed before running again.
    std::function<void(int attempt)> on_retry{};
    /// Simulation-context override for this task. When set, the task runs
    /// under a SimContext built from this config instead of the runner's
    /// RunnerConfig::sim — e.g. to pin a solver backend or tighten
    /// tolerances for one sweep leg without touching process state.
    std::optional<spice::SimConfig> sim = std::nullopt;
};

struct RunnerConfig {
    std::string run_name = "run";
    std::size_t threads = 0; ///< 0 = hardware concurrency
    CacheMode cache_mode = CacheMode::kReadWrite;
    std::filesystem::path cache_dir = ".tfetsram_cache";
    std::filesystem::path out_dir = "bench_csv";
    bool telemetry = true;    ///< write journal + BENCH json
    bool print_summary = true; ///< render the summary table to stdout
    /// Attempts per task when TaskSpec::max_attempts is 0.
    int default_max_attempts = 1;
    /// Quarantine failed tasks (and their dependents) and complete the
    /// rest of the graph instead of aborting on the first failure.
    bool keep_going = false;
    /// Simulation-context template: every task without a TaskSpec::sim
    /// override runs under a fresh SimContext built from this config, so
    /// per-task solver counters are attributed exactly — including work a
    /// task fans out to an inner Monte-Carlo pool.
    spice::SimConfig sim;

    /// Standard environment wiring: TFETSRAM_CACHE, TFETSRAM_OUT_DIR,
    /// TFETSRAM_THREADS, TFETSRAM_RETRIES, TFETSRAM_KEEP_GOING, plus the
    /// SimConfig env set (TFETSRAM_SOLVER, TFETSRAM_SEED, TFETSRAM_FAULTS)
    /// captured in one snapshot (see docs/RUNNER.md and
    /// docs/ARCHITECTURE.md).
    static RunnerConfig from_env(std::string run_name);
};

class Runner {
public:
    explicit Runner(RunnerConfig config);

    /// Register a task. Dependencies must already be registered (dep id <
    /// this id), which makes cycles unrepresentable; violations throw
    /// contract_violation.
    TaskId add(TaskSpec spec);

    /// Execute the graph. Throws the first task exception encountered
    /// (after quiescing in-flight tasks) — unless keep_going, in which
    /// case failed tasks are quarantined (with their dependents) and the
    /// rest of the graph completes. Idempotent per Runner: call once.
    RunSummary run();

    /// Result of a finished task (valid after run(); pruned and
    /// quarantined tasks hold an empty result).
    [[nodiscard]] const TaskResult& result(TaskId id) const;

    /// Final status of a task (valid after run()).
    [[nodiscard]] TaskStatus status(TaskId id) const;

    /// Error context of a failed or quarantined task; nullptr otherwise.
    [[nodiscard]] const TaskError* error(TaskId id) const;

    [[nodiscard]] const RunnerConfig& config() const { return config_; }
    [[nodiscard]] const ResultCache& cache() const { return cache_; }

    /// Convenience: open a CSV sink in the configured out dir.
    [[nodiscard]] std::string csv_path(const std::string& name) const;

private:
    struct Node {
        TaskSpec spec;
        TaskResult result;
        std::vector<TaskId> dependents;
        std::size_t waiting = 0; ///< unfinished deps (scheduler-owned)
        TaskStatus status = TaskStatus::kExecuted;
        bool done = false;
        bool poisoned = false; ///< an upstream dependency was quarantined
        std::string poison_source; ///< id of the quarantined ancestor
        std::shared_ptr<TaskError> error; ///< failed/quarantined context
    };

    RunnerConfig config_;
    ResultCache cache_;
    Telemetry telemetry_;
    std::vector<Node> nodes_;
    bool ran_ = false;
};

} // namespace tfetsram::runner
