#pragma once
// Experiment runner: a task-graph scheduler over the shared ThreadPool,
// fused with the result cache and telemetry. A bench describes its figure
// as Task nodes (sweep points, setup steps) with dependencies; run()
// executes the ready frontier concurrently, serves cache hits without
// executing, prunes setup work nothing needs, and journals every task.
//
//   Runner r(RunnerConfig::from_env("fig6_write_assist"));
//   TaskId models = r.add({.id = "models", .setup_only = true, .fn = ...});
//   for (...) r.add({.id = ..., .deps = {models}, .key = ..., .fn = ...});
//   r.run();                      // topological, pool-parallel, cached
//   r.result(id).get("wlcrit");   // identical on cold and warm runs

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/cache.hpp"
#include "spice/context.hpp"
#include "runner/task_error.hpp"
#include "runner/telemetry.hpp"
#include "runner/thread_pool.hpp"

namespace tfetsram::runner {

using TaskId = std::size_t;
using TaskFn = std::function<TaskResult()>;

/// One node of the task graph.
struct TaskSpec {
    // Every member carries a default initializer so designated-initializer
    // construction ({.id = ..., .fn = ...}) stays warning-clean under
    // -Wextra as fields are added.
    std::string id{};           ///< human-readable name for the journal
    std::vector<TaskId> deps{}; ///< must all be ids returned by earlier add()s
    /// Declared inputs; an empty key marks the task uncacheable (it always
    /// executes — unless pruned — and its result is never persisted).
    CacheKey key{};
    /// Pure setup (builds shared state, result unused): skipped when every
    /// dependent was a cache hit or itself pruned.
    bool setup_only = false;
    TaskFn fn{};
    /// Execution attempts before the task counts as failed; 0 uses
    /// RunnerConfig::default_max_attempts.
    int max_attempts = 0;
    /// Perturbed-restart hook, called before each retry (attempt >= 2) so
    /// the task can nudge its initial guess / reseed before running again.
    std::function<void(int attempt)> on_retry{};
    /// Simulation-context override for this task. When set, the task runs
    /// under a SimContext built from this config instead of the runner's
    /// RunnerConfig::sim — e.g. to pin a solver backend or tighten
    /// tolerances for one sweep leg without touching process state.
    std::optional<spice::SimConfig> sim = std::nullopt;
};

struct RunnerConfig {
    std::string run_name = "run";
    std::size_t threads = 0; ///< 0 = hardware concurrency
    CacheMode cache_mode = CacheMode::kReadWrite;
    std::filesystem::path cache_dir = ".tfetsram_cache";
    std::filesystem::path out_dir = "bench_csv";
    bool telemetry = true;    ///< write journal + BENCH json
    bool print_summary = true; ///< render the summary table to stdout
    /// Attempts per task when TaskSpec::max_attempts is 0.
    int default_max_attempts = 1;
    /// Quarantine failed tasks (and their dependents) and complete the
    /// rest of the graph instead of aborting on the first failure.
    bool keep_going = false;
    /// Simulation-context template: every task without a TaskSpec::sim
    /// override runs under a fresh SimContext built from this config, so
    /// per-task solver counters are attributed exactly — including work a
    /// task fans out to an inner Monte-Carlo pool.
    spice::SimConfig sim;
    /// Watchdog wall-clock budget per task attempt [s]
    /// (TFETSRAM_TASK_TIMEOUT; 0 = unlimited). The same knob arms the
    /// task contexts' cooperative deadline; the watchdog is the backstop
    /// that cancels attempts stuck in non-cooperative work.
    double task_timeout_s = 0.0;
    /// Watchdog heartbeat-stall window [s] (TFETSRAM_STALL_TIMEOUT;
    /// 0 = stall detection off): an attempt whose token progress counter
    /// does not advance for this long is cancelled.
    double stall_timeout_s = 0.0;
    /// First retry's backoff delay [s] (TFETSRAM_BACKOFF_BASE;
    /// 0 = retry immediately, the historical behavior). Delays double per
    /// attempt with deterministic jitter — see retry_backoff_s().
    double backoff_base_s = 0.0;
    /// Backoff delay cap [s] (TFETSRAM_BACKOFF_MAX).
    double backoff_max_s = 1.0;
    /// Bounded-queue backpressure: at most this many tasks submitted to
    /// the pool at once (0 = 2x the worker count). Keeps a huge ready
    /// frontier from materializing thousands of queued closures and lets
    /// a drain-and-cancel shutdown stop quickly.
    std::size_t max_in_flight = 0;

    /// Standard environment wiring: TFETSRAM_CACHE, TFETSRAM_OUT_DIR,
    /// TFETSRAM_THREADS, TFETSRAM_RETRIES, TFETSRAM_KEEP_GOING, plus the
    /// SimConfig env set (TFETSRAM_SOLVER, TFETSRAM_SEED, TFETSRAM_FAULTS)
    /// captured in one snapshot (see docs/RUNNER.md and
    /// docs/ARCHITECTURE.md).
    static RunnerConfig from_env(std::string run_name);
};

/// Deterministic exponential backoff before retry `attempt` (attempt >= 2;
/// attempt 1 is the initial try): base * 2^(attempt-2), scaled by a jitter
/// factor in [0.5, 1.0) derived from (seed, attempt) — splitmix64, no
/// global RNG — and capped at max_s. Pure function: the same task retries
/// with the same delays on every rerun, while different tasks (different
/// context seeds) desynchronize instead of retrying in lockstep.
[[nodiscard]] double retry_backoff_s(int attempt, std::uint64_t seed,
                                     double base_s, double max_s);

class Runner {
public:
    explicit Runner(RunnerConfig config);

    /// Register a task. Dependencies must already be registered (dep id <
    /// this id), which makes cycles unrepresentable; violations throw
    /// contract_violation.
    TaskId add(TaskSpec spec);

    /// Execute the graph. Throws the first task exception encountered
    /// (after quiescing in-flight tasks) — unless keep_going, in which
    /// case failed tasks are quarantined (with their dependents) and the
    /// rest of the graph completes. Idempotent per Runner: call once.
    RunSummary run();

    /// Result of a finished task (valid after run(); pruned and
    /// quarantined tasks hold an empty result).
    [[nodiscard]] const TaskResult& result(TaskId id) const;

    /// Final status of a task (valid after run()).
    [[nodiscard]] TaskStatus status(TaskId id) const;

    /// Error context of a failed or quarantined task; nullptr otherwise.
    [[nodiscard]] const TaskError* error(TaskId id) const;

    /// Drain-and-cancel shutdown: in-flight task contexts are cancelled
    /// through their tokens (by the watchdog thread), still-queued tasks
    /// are recorded as TaskStatus::kCancelled without running, and run()
    /// returns its (degraded) summary instead of throwing. Safe from any
    /// thread; the signal path (runner/signal.hpp) has the same effect
    /// process-wide. Idempotent.
    void request_cancel() {
        cancel_requested_.store(true, std::memory_order_release);
    }

    [[nodiscard]] const RunnerConfig& config() const { return config_; }
    [[nodiscard]] const ResultCache& cache() const { return cache_; }

    /// Convenience: open a CSV sink in the configured out dir.
    [[nodiscard]] std::string csv_path(const std::string& name) const;

private:
    struct Node {
        TaskSpec spec;
        TaskResult result;
        std::vector<TaskId> dependents;
        std::size_t waiting = 0; ///< unfinished deps (scheduler-owned)
        TaskStatus status = TaskStatus::kExecuted;
        bool done = false;
        bool poisoned = false; ///< an upstream dependency was quarantined
        std::string poison_source; ///< id of the quarantined ancestor
        std::shared_ptr<TaskError> error; ///< failed/quarantined context
    };

    RunnerConfig config_;
    ResultCache cache_;
    Telemetry telemetry_;
    std::vector<Node> nodes_;
    bool ran_ = false;
    std::atomic<bool> cancel_requested_{false};
};

} // namespace tfetsram::runner
