#include "runner/thread_pool.hpp"

#include <atomic>
#include <cstdio>
#include <exception>

#include "util/contracts.hpp"

namespace tfetsram::runner {

std::size_t ThreadPool::resolve(std::size_t threads) {
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t n = resolve(threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void ThreadPool::submit(std::function<void()> job, std::string label) {
    TFET_EXPECTS(job != nullptr);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TFET_EXPECTS(!stopping_);
        queue_.push_back(Job{std::move(job), std::move(label)});
        ++in_flight_;
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // The submit() contract says jobs must not throw; enforce it here
        // so a violating job dies loudly with its context instead of
        // unwinding through the worker loop (which would silently kill the
        // worker and hang wait_idle).
        try {
            job.fn();
        } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "thread_pool: job '%s' threw '%s' — pool jobs "
                         "must not throw; terminating\n",
                         job.label.empty() ? "<unlabeled>" : job.label.c_str(),
                         e.what());
            std::terminate();
        } catch (...) {
            std::fprintf(stderr,
                         "thread_pool: job '%s' threw a non-std exception "
                         "— pool jobs must not throw; terminating\n",
                         job.label.empty() ? "<unlabeled>"
                                           : job.label.c_str());
            std::terminate();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    TFET_EXPECTS(fn != nullptr);
    if (n == 0)
        return;
    if (size() == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One shared index counter; each of k runner jobs grabs indices until
    // exhausted. A private latch (not wait_idle) keeps this correct when
    // other jobs are queued on the same pool.
    struct State {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> remaining;
        std::mutex m;
        std::condition_variable done;
    };
    auto state = std::make_shared<State>();
    const std::size_t jobs = std::min(size(), n);
    state->remaining.store(jobs);

    for (std::size_t j = 0; j < jobs; ++j) {
        submit([state, n, &fn] {
            for (;;) {
                const std::size_t i = state->next.fetch_add(1);
                if (i >= n)
                    break;
                fn(i);
            }
            if (state->remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->m);
                state->done.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(state->m);
    state->done.wait(lock, [&] { return state->remaining.load() == 0; });
}

} // namespace tfetsram::runner
