#pragma once
// Content-addressed result cache. A task declares its inputs through a
// CacheKey (cell config fields, sweep point, solver options, model-set
// version, ...); the canonical key text is hashed to name a JSON entry
// under .tfetsram_cache/. Re-running a bench after an unrelated edit then
// replays the stored results instead of re-simulating.
//
// Environment control: TFETSRAM_CACHE=off|rw|ro (default rw).

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tfetsram::runner {

/// Bumped whenever the entry format or result semantics change; stale
/// entries simply miss. v2: Monte-Carlo task payloads gained censored
/// sample accounting.
inline constexpr int kCacheSchemaVersion = 2;

enum class CacheMode {
    kOff,       ///< never read or write
    kReadWrite, ///< read hits, store misses (default)
    kReadOnly,  ///< read hits, never store (e.g. CI against a fixed cache)
};

/// Parse a cache-mode spelling ("off"/"0", "ro", anything else -> rw);
/// an empty string means the default kReadWrite.
CacheMode parse_cache_mode(std::string_view text);
/// Parse TFETSRAM_CACHE; unset or unrecognized values mean kReadWrite.
CacheMode cache_mode_from_env();
std::string to_string(CacheMode mode);

/// Ordered field=value builder producing the canonical key text. Add every
/// input that affects the task's result — anything omitted becomes a stale
/// hit waiting to happen; anything extra merely loses hits.
class CacheKey {
public:
    CacheKey() = default;
    explicit CacheKey(std::string_view task_kind) { add("task", task_kind); }

    CacheKey& add(std::string_view field, std::string_view value);
    CacheKey& add(std::string_view field, const char* value) {
        return add(field, std::string_view(value));
    }
    CacheKey& add(std::string_view field, double value);
    CacheKey& add(std::string_view field, std::size_t value);
    CacheKey& add(std::string_view field, int value) {
        return add(field, static_cast<double>(value));
    }
    CacheKey& add(std::string_view field, bool value) {
        return add(field, std::string_view(value ? "true" : "false"));
    }

    /// Canonical text, e.g. "task=fig6;beta=1.5;assist=gnd_raising".
    [[nodiscard]] const std::string& text() const { return text_; }
    [[nodiscard]] bool empty() const { return text_.empty(); }

    /// 16-hex-digit content hash of the key text + schema version.
    [[nodiscard]] std::string hash() const;

private:
    std::string text_;
};

/// What a task computed, in replay-ready form: named scalar values and
/// table rows, all pre-formatted strings. Storing the formatted text (not
/// raw doubles) is what makes a warm run byte-identical to the cold one.
struct TaskResult {
    std::vector<std::pair<std::string, std::string>> values;
    std::vector<std::vector<std::string>> rows;

    void set(std::string name, std::string value) {
        values.emplace_back(std::move(name), std::move(value));
    }
    /// Value lookup; throws contract_violation when absent (a task reading
    /// a value it never stored is a programming error, not a cache miss).
    [[nodiscard]] const std::string& get(std::string_view name) const;

    friend bool operator==(const TaskResult&, const TaskResult&) = default;
};

/// The "bench:"-prefixed values of a result, prefix stripped, in insertion
/// order: a task's opt-in channel for publishing scalar metrics (yield
/// estimates, confidence bounds, ...) into the run journal and the BENCH
/// artifact. Because the values ride the cached TaskResult, the metrics
/// reappear on warm (cache-hit) runs too.
std::vector<std::pair<std::string, std::string>>
bench_metrics(const TaskResult& result);

/// Directory of {hash -> TaskResult} JSON entries. Thread-safe: entries
/// are written via rename so concurrent readers never see partial files.
class ResultCache {
public:
    ResultCache(std::filesystem::path dir, CacheMode mode);

    [[nodiscard]] CacheMode mode() const { return mode_; }
    [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

    /// Look up `key`; nullopt on miss, cache off, schema/key mismatch, or
    /// unparseable entry (treated as miss, never an error).
    [[nodiscard]] std::optional<TaskResult> load(const CacheKey& key) const;

    /// Persist `result` under `key`. Returns false when the mode forbids
    /// writing or the store failed (both non-fatal: the run still has the
    /// in-memory result).
    bool store(const CacheKey& key, const TaskResult& result) const;

private:
    std::filesystem::path dir_;
    CacheMode mode_;
};

} // namespace tfetsram::runner
