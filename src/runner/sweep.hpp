#pragma once
// First-class multi-corner sweep axes for benches and sign-off: a Corner is
// one (VDD, temperature, Tox-scale) operating point, a CornerGrid is the
// row-major cross product of the three axes. Corners know how to tag
// themselves for task ids / BENCH keys and how to contribute their fields
// to a CacheKey, so every per-corner task is cached and journaled under a
// stable, collision-free name.

#include <string>
#include <vector>

#include "runner/cache.hpp"

namespace tfetsram::runner {

/// One operating point of a corner sweep.
struct Corner {
    double vdd = 0.8;         ///< supply [V]
    double temperature = 300; ///< device temperature [K]
    double tox_scale = 1.0;   ///< gate-oxide thickness multiplier

    /// Compact unique tag for task ids and BENCH keys, e.g.
    /// "v0.8_t300" or "v0.7_t350_x1.05" (the Tox field is omitted at
    /// nominal so legacy single-axis names stay stable).
    [[nodiscard]] std::string tag() const;

    /// Contribute this corner's fields to a task's cache key.
    void add_to(CacheKey& key) const;

    [[nodiscard]] bool is_nominal_tox() const { return tox_scale == 1.0; }
};

/// Axes of a sweep; empty axes collapse to their nominal value.
struct CornerAxes {
    std::vector<double> vdd = {0.8};
    std::vector<double> temperature = {300.0};
    std::vector<double> tox_scale = {1.0};
};

/// Row-major cross product: vdd outermost, tox innermost.
std::vector<Corner> make_corner_grid(const CornerAxes& axes);

} // namespace tfetsram::runner
