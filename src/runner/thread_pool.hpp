#pragma once
// The repo's one concurrency substrate: a fixed-size worker pool with a
// shared FIFO queue. The task-graph scheduler submits ready tasks here, and
// mc::run_monte_carlo fans its samples out through parallel_for — both
// layers share this implementation instead of growing ad-hoc std::thread
// vectors.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tfetsram::runner {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 uses the hardware concurrency. A pool of
    /// size 1 still spawns one worker (submit never runs jobs inline), so
    /// execution order semantics are identical at every size.
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains outstanding jobs, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue one job. Jobs must not throw — wrap anything fallible and
    /// capture the error yourself (the scheduler stores an exception_ptr).
    /// Enforced: a job that does throw terminates the process with the
    /// job's `label` and the exception message on stderr, instead of
    /// unwinding through the worker loop and losing both.
    void submit(std::function<void()> job, std::string label = {});

    /// Block until every job submitted so far (by any thread) completed.
    void wait_idle();

    /// Run fn(i) for i in [0, n) across the pool and block until all
    /// complete. Work is distributed by atomic index grab, so any partition
    /// of iterations onto workers yields the same per-index results —
    /// callers own determinism by making fn(i) depend only on i. Safe to
    /// call from multiple threads, but not from inside a pool job (the
    /// caller would occupy a worker while waiting on the others).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Resolve a `threads` request: 0 -> hardware concurrency (>= 1).
    static std::size_t resolve(std::size_t threads);

private:
    void worker_loop();

    struct Job {
        std::function<void()> fn;
        std::string label; ///< context printed if the job throws
    };

    std::vector<std::thread> workers_;
    std::deque<Job> queue_;
    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0; ///< queued + currently executing jobs
    bool stopping_ = false;
};

} // namespace tfetsram::runner
