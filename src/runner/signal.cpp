#include "runner/signal.hpp"

#include <atomic>
#include <csignal>

namespace tfetsram::runner {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void on_signal(int sig) {
    g_shutdown.store(true, std::memory_order_release);
    // One graceful chance: restore the default disposition so a second
    // signal terminates immediately even if the drain hangs.
    std::signal(sig, SIG_DFL);
}

} // namespace

void install_signal_handlers() {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
}

bool shutdown_requested() {
    return g_shutdown.load(std::memory_order_acquire);
}

void request_shutdown() {
    g_shutdown.store(true, std::memory_order_release);
}

void reset_shutdown_for_tests() {
    g_shutdown.store(false, std::memory_order_release);
}

} // namespace tfetsram::runner
