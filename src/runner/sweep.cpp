#include "runner/sweep.hpp"

#include <cstdio>

namespace tfetsram::runner {

namespace {

/// Shortest %g-style rendering (tags must be stable, not pretty).
std::string compact(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

} // namespace

std::string Corner::tag() const {
    std::string t = "v" + compact(vdd) + "_t" + compact(temperature);
    if (!is_nominal_tox())
        t += "_x" + compact(tox_scale);
    return t;
}

void Corner::add_to(CacheKey& key) const {
    key.add("vdd", vdd).add("temp", temperature).add("tox_scale", tox_scale);
}

std::vector<Corner> make_corner_grid(const CornerAxes& axes) {
    const std::vector<double> vdds =
        axes.vdd.empty() ? std::vector<double>{0.8} : axes.vdd;
    const std::vector<double> temps =
        axes.temperature.empty() ? std::vector<double>{300.0}
                                 : axes.temperature;
    const std::vector<double> toxes =
        axes.tox_scale.empty() ? std::vector<double>{1.0} : axes.tox_scale;

    std::vector<Corner> grid;
    grid.reserve(vdds.size() * temps.size() * toxes.size());
    for (double v : vdds)
        for (double t : temps)
            for (double x : toxes)
                grid.push_back({v, t, x});
    return grid;
}

} // namespace tfetsram::runner
