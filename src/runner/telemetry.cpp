#include "runner/telemetry.hpp"

#include <cstdlib>

#include "runner/json.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram::runner {

std::filesystem::path out_dir_from_env() {
    const char* env = std::getenv("TFETSRAM_OUT_DIR");
    if (env != nullptr && *env != '\0')
        return std::filesystem::path(env);
    return std::filesystem::path("bench_csv");
}

std::string to_string(TaskStatus status) {
    switch (status) {
    case TaskStatus::kExecuted: return "miss";
    case TaskStatus::kHit: return "hit";
    case TaskStatus::kPruned: return "pruned";
    case TaskStatus::kFailed: return "failed";
    }
    return "?";
}

Telemetry::Telemetry(std::filesystem::path out_dir, std::string run_name,
                     bool enabled)
    : out_dir_(std::move(out_dir)), run_name_(std::move(run_name)) {
    if (!enabled)
        return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    journal_path_ = out_dir_ / (run_name_ + "_journal.jsonl");
    journal_.open(journal_path_, std::ios::trunc);
}

void Telemetry::record(const TaskRecord& record) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++summary_.tasks;
    switch (record.status) {
    case TaskStatus::kExecuted: ++summary_.executed; break;
    case TaskStatus::kHit: ++summary_.cache_hits; break;
    case TaskStatus::kPruned: ++summary_.pruned; break;
    case TaskStatus::kFailed: ++summary_.failed; break;
    }
    summary_.nr_iterations += record.solver.nr_iterations;
    summary_.dc_solves += record.solver.dc_solves;
    summary_.transient_steps += record.solver.transient_steps;

    if (!journal_.is_open())
        return;
    Json line = Json::object();
    line.set("task", record.id);
    line.set("key", record.key_hash);
    line.set("cache", to_string(record.status));
    line.set("wall_s", record.wall_s);
    line.set("nr_iterations", record.solver.nr_iterations);
    line.set("dc_solves", record.solver.dc_solves);
    line.set("transient_steps", record.solver.transient_steps);
    journal_ << line.dump() << '\n';
    journal_.flush(); // journal survives a crashed/killed run
}

RunSummary Telemetry::finish(double total_wall_s) {
    std::lock_guard<std::mutex> lock(mutex_);
    summary_.wall_s = total_wall_s;
    if (journal_.is_open()) {
        Json bench = Json::object();
        bench.set("name", run_name_);
        bench.set("tasks", summary_.tasks);
        bench.set("executed", summary_.executed);
        bench.set("cache_hits", summary_.cache_hits);
        bench.set("pruned", summary_.pruned);
        bench.set("failed", summary_.failed);
        bench.set("wall_s", summary_.wall_s);
        bench.set("nr_iterations", summary_.nr_iterations);
        bench.set("dc_solves", summary_.dc_solves);
        bench.set("transient_steps", summary_.transient_steps);
        std::ofstream out(out_dir_ / ("BENCH_" + run_name_ + ".json"),
                          std::ios::trunc);
        if (out)
            out << bench.dump() << '\n';
    }
    return summary_;
}

std::string Telemetry::render(const RunSummary& summary,
                              const std::string& run_name) {
    TablePrinter table({"run", "tasks", "executed", "hits", "pruned",
                        "failed", "nr_iters", "dc_solves", "wall"});
    table.add_row({run_name, std::to_string(summary.tasks),
                   std::to_string(summary.executed),
                   std::to_string(summary.cache_hits),
                   std::to_string(summary.pruned),
                   std::to_string(summary.failed),
                   std::to_string(summary.nr_iterations),
                   std::to_string(summary.dc_solves),
                   format_si(summary.wall_s, "s")});
    return table.render();
}

} // namespace tfetsram::runner
