#include "runner/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "runner/json.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram::runner {

std::filesystem::path out_dir_from_env() {
    return std::filesystem::path(
        env::get_string("TFETSRAM_OUT_DIR", "bench_csv"));
}

namespace {

/// Render one published metric value: numeric-looking strings become JSON
/// numbers so downstream tooling can aggregate them; non-finite values
/// (a NaN point of an all-censored interval, an infinite sigma level)
/// become null rather than poisoning the artifact with invalid JSON; and
/// anything else stays a string.
Json metric_json(const std::string& value) {
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || end == nullptr || *end != '\0')
        return Json(value);
    if (!std::isfinite(parsed))
        return Json(); // null
    return Json(parsed);
}

Json metrics_json(
    const std::vector<std::pair<std::string, std::string>>& metrics) {
    Json object = Json::object();
    for (const auto& [name, value] : metrics)
        object.set(name, metric_json(value));
    return object;
}

} // namespace

std::string to_string(TaskStatus status) {
    switch (status) {
    case TaskStatus::kExecuted: return "miss";
    case TaskStatus::kHit: return "hit";
    case TaskStatus::kPruned: return "pruned";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kQuarantined: return "quarantined";
    case TaskStatus::kCancelled: return "cancelled";
    }
    return "?";
}

Telemetry::Telemetry(std::filesystem::path out_dir, std::string run_name,
                     bool enabled)
    : out_dir_(std::move(out_dir)), run_name_(std::move(run_name)) {
    if (!enabled)
        return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    journal_path_ = out_dir_ / (run_name_ + "_journal.jsonl");
    journal_.open(journal_path_, std::ios::trunc);
}

void Telemetry::record(const TaskRecord& record) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++summary_.tasks;
    switch (record.status) {
    case TaskStatus::kExecuted: ++summary_.executed; break;
    case TaskStatus::kHit: ++summary_.cache_hits; break;
    case TaskStatus::kPruned: ++summary_.pruned; break;
    case TaskStatus::kFailed: ++summary_.failed; break;
    case TaskStatus::kQuarantined: ++summary_.quarantined; break;
    case TaskStatus::kCancelled: ++summary_.cancelled; break;
    }
    summary_.nr_iterations += record.solver.nr_iterations;
    summary_.dc_solves += record.solver.dc_solves;
    summary_.transient_steps += record.solver.transient_steps;
    summary_.transient_solves += record.solver.transient_solves;
    summary_.assemblies += record.solver.assemblies;
    summary_.lu_factorizations += record.solver.lu_factorizations;
    summary_.line_search_backtracks += record.solver.line_search_backtracks;
    summary_.sparse_refactorizations += record.solver.sparse_refactorizations;
    summary_.sparse_symbolic_analyses +=
        record.solver.sparse_symbolic_analyses;
    summary_.sparse_static_pivot_hits +=
        record.solver.sparse_static_pivot_hits;
    summary_.sparse_pivot_fallbacks += record.solver.sparse_pivot_fallbacks;
    summary_.sparse_ordering_us += record.solver.sparse_ordering_us;
    summary_.batched_evals += record.solver.batched_evals;
    summary_.hier_promotions += record.solver.hier_promotions;
    summary_.hier_demotions += record.solver.hier_demotions;
    summary_.hier_relinearizations += record.solver.hier_relinearizations;
    summary_.hier_guard_retries += record.solver.hier_guard_retries;
    summary_.deadline_polls += record.solver.deadline_polls;
    summary_.cancelled_solves += record.solver.cancelled_solves;
    summary_.sparse_pattern_nnz =
        std::max(summary_.sparse_pattern_nnz, record.solver.sparse_pattern_nnz);
    summary_.sparse_lu_nnz =
        std::max(summary_.sparse_lu_nnz, record.solver.sparse_lu_nnz);
    summary_.hier_active_unknowns = std::max(
        summary_.hier_active_unknowns, record.solver.hier_active_unknowns);

    if (!journal_.is_open())
        return;
    if (record.status == TaskStatus::kExecuted)
        task_walls_.emplace_back(record.id, record.wall_s);
    if (!record.metrics.empty())
        task_metrics_.emplace_back(record.id, record.metrics);
    Json line = Json::object();
    line.set("task", record.id);
    line.set("key", record.key_hash);
    line.set("cache", to_string(record.status));
    if (record.attempts > 1)
        line.set("attempts", static_cast<std::size_t>(record.attempts));
    if (!record.error.empty())
        line.set("error", record.error);
    if (!record.watchdog.empty())
        line.set("watchdog", record.watchdog);
    line.set("wall_s", record.wall_s);
    line.set("nr_iterations", record.solver.nr_iterations);
    line.set("dc_solves", record.solver.dc_solves);
    line.set("transient_steps", record.solver.transient_steps);
    line.set("transient_solves", record.solver.transient_solves);
    line.set("assemblies", record.solver.assemblies);
    line.set("lu_factorizations", record.solver.lu_factorizations);
    line.set("line_search_backtracks",
             record.solver.line_search_backtracks);
    // Cancellation fields only appear when the task's context was
    // deadline-armed or cancellable, so ordinary journals keep their shape.
    if (record.solver.deadline_polls > 0)
        line.set("deadline_polls", record.solver.deadline_polls);
    if (record.solver.cancelled_solves > 0)
        line.set("cancelled_solves", record.solver.cancelled_solves);
    // Sparse-kernel fields only appear when the task did sparse work, so
    // dense-only journals keep their historical shape.
    if (record.solver.sparse_refactorizations > 0 ||
        record.solver.sparse_symbolic_analyses > 0) {
        line.set("sparse_refactorizations",
                 record.solver.sparse_refactorizations);
        line.set("sparse_symbolic_analyses",
                 record.solver.sparse_symbolic_analyses);
        line.set("sparse_pattern_nnz", record.solver.sparse_pattern_nnz);
        line.set("sparse_lu_nnz", record.solver.sparse_lu_nnz);
        line.set("sparse_static_pivot_hits",
                 record.solver.sparse_static_pivot_hits);
        line.set("sparse_pivot_fallbacks",
                 record.solver.sparse_pivot_fallbacks);
        line.set("sparse_ordering_us", record.solver.sparse_ordering_us);
    }
    if (record.solver.batched_evals > 0)
        line.set("batched_evals", record.solver.batched_evals);
    // Mixed-level engine fields likewise appear only when the task actually
    // ran the engine, so flat-only journals keep their historical shape.
    if (record.solver.hier_promotions > 0 ||
        record.solver.hier_demotions > 0 ||
        record.solver.hier_relinearizations > 0) {
        line.set("hier_promotions", record.solver.hier_promotions);
        line.set("hier_demotions", record.solver.hier_demotions);
        line.set("hier_relinearizations",
                 record.solver.hier_relinearizations);
        line.set("hier_guard_retries", record.solver.hier_guard_retries);
        line.set("hier_active_unknowns", record.solver.hier_active_unknowns);
    }
    // Published metrics appear only for tasks that opted in, so ordinary
    // journals keep their shape.
    if (!record.metrics.empty())
        line.set("metrics", metrics_json(record.metrics));
    journal_ << line.dump() << '\n';
    journal_.flush(); // journal survives a crashed/killed run
}

RunSummary Telemetry::finish(double total_wall_s) {
    std::lock_guard<std::mutex> lock(mutex_);
    summary_.wall_s = total_wall_s;
    if (journal_.is_open()) {
        Json bench = Json::object();
        bench.set("name", run_name_);
        bench.set("tasks", summary_.tasks);
        bench.set("executed", summary_.executed);
        bench.set("cache_hits", summary_.cache_hits);
        bench.set("pruned", summary_.pruned);
        bench.set("failed", summary_.failed);
        bench.set("quarantined", summary_.quarantined);
        bench.set("cancelled", summary_.cancelled);
        bench.set("degraded", summary_.degraded());
        bench.set("wall_s", summary_.wall_s);
        bench.set("nr_iterations", summary_.nr_iterations);
        bench.set("dc_solves", summary_.dc_solves);
        bench.set("transient_steps", summary_.transient_steps);
        bench.set("transient_solves", summary_.transient_solves);
        bench.set("assemblies", summary_.assemblies);
        bench.set("lu_factorizations", summary_.lu_factorizations);
        bench.set("line_search_backtracks",
                  summary_.line_search_backtracks);
        bench.set("sparse_refactorizations",
                  summary_.sparse_refactorizations);
        bench.set("sparse_symbolic_analyses",
                  summary_.sparse_symbolic_analyses);
        bench.set("sparse_pattern_nnz", summary_.sparse_pattern_nnz);
        bench.set("sparse_lu_nnz", summary_.sparse_lu_nnz);
        // Sparse fast-path counters appear only when some task did sparse
        // work, so the BENCH schema of dense-only runs is unchanged.
        if (summary_.sparse_refactorizations > 0 ||
            summary_.sparse_symbolic_analyses > 0) {
            bench.set("sparse_static_pivot_hits",
                      summary_.sparse_static_pivot_hits);
            bench.set("sparse_pivot_fallbacks",
                      summary_.sparse_pivot_fallbacks);
            bench.set("sparse_ordering_us", summary_.sparse_ordering_us);
        }
        if (summary_.batched_evals > 0)
            bench.set("batched_evals", summary_.batched_evals);
        // Emitted only when some context was deadline-armed/cancellable.
        if (summary_.deadline_polls > 0)
            bench.set("deadline_polls", summary_.deadline_polls);
        if (summary_.cancelled_solves > 0)
            bench.set("cancelled_solves", summary_.cancelled_solves);
        // Emitted only when some task ran the mixed-level engine, so the
        // BENCH schema of flat-only runs is unchanged.
        if (summary_.hier_promotions > 0 || summary_.hier_demotions > 0 ||
            summary_.hier_relinearizations > 0) {
            bench.set("hier_promotions", summary_.hier_promotions);
            bench.set("hier_demotions", summary_.hier_demotions);
            bench.set("hier_relinearizations",
                      summary_.hier_relinearizations);
            bench.set("hier_guard_retries", summary_.hier_guard_retries);
            bench.set("hier_active_unknowns", summary_.hier_active_unknowns);
        }
        if (!task_walls_.empty()) {
            // Per-workload walls, so CI can gate one workload (e.g. the
            // array64x64 microbench task) against a checked-in baseline
            // without parsing the journal.
            Json walls = Json::object();
            for (const auto& [id, wall_s] : task_walls_)
                walls.set(id, wall_s);
            bench.set("task_wall_s", std::move(walls));
        }
        if (!task_metrics_.empty()) {
            // Per-task published metrics (yield estimates and their
            // confidence bounds, docs/YIELD.md) — present on warm runs
            // too, since the values ride the cached TaskResult.
            Json metrics = Json::object();
            for (const auto& [id, values] : task_metrics_)
                metrics.set(id, metrics_json(values));
            bench.set("task_metrics", std::move(metrics));
        }
        const std::filesystem::path path =
            out_dir_ / ("BENCH_" + run_name_ + ".json");
        if (!atomic_write(path, bench.dump() + '\n'))
            std::fprintf(stderr, "telemetry: failed to write %s\n",
                         path.string().c_str());
    }
    return summary_;
}

bool atomic_write(const std::filesystem::path& path,
                  const std::string& content) {
    if (fault::should_fail(fault::Site::kFileWrite))
        return false;
    // Write-then-rename: a crash mid-write leaves the previous artifact
    // intact instead of a truncated file.
    static std::atomic<unsigned long> temp_serial{0};
    const std::filesystem::path tmp =
        path.string() + ".tmp" +
        std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << content;
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    const bool renamed = !ec;
    if (!renamed)
        std::filesystem::remove(tmp, ec);
    return renamed;
}

std::string Telemetry::render(const RunSummary& summary,
                              const std::string& run_name) {
    TablePrinter table({"run", "tasks", "executed", "hits", "pruned",
                        "failed", "quar", "nr_iters", "dc_solves", "wall"});
    table.add_row({run_name, std::to_string(summary.tasks),
                   std::to_string(summary.executed),
                   std::to_string(summary.cache_hits),
                   std::to_string(summary.pruned),
                   std::to_string(summary.failed),
                   std::to_string(summary.quarantined),
                   std::to_string(summary.nr_iterations),
                   std::to_string(summary.dc_solves),
                   format_si(summary.wall_s, "s")});
    std::string rendered = table.render();
    if (summary.degraded())
        rendered += "DEGRADED RUN: " + std::to_string(summary.quarantined) +
                    " quarantined / " + std::to_string(summary.failed) +
                    " failed / " + std::to_string(summary.cancelled) +
                    " cancelled task(s) — figures contain placeholder "
                    "points\n";
    return rendered;
}

} // namespace tfetsram::runner
