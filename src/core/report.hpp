#pragma once
// Console rendering of the explorer's findings (declaration of
// RobustDesignReport::to_text lives with the report type; this header
// offers the shared formatting helpers benches also use).

#include <string>

#include "core/explorer.hpp"

namespace tfetsram::core {

/// "12.3 ps" / "inf" / "n/a" formatting for pulse widths.
std::string format_pulse(double seconds);

/// "123 mV" formatting for margins.
std::string format_margin(double volts);

/// "1.2e-17 W" formatting for static power.
std::string format_power(double watts);

} // namespace tfetsram::core
