#pragma once
// Design sign-off: one call that qualifies a cell design the way a memory
// team would before committing to it — the full metric battery (write and
// read margins, delays, per-operation energy, hold power, static noise
// margins, retention voltage) at every supply corner, the temperature
// corners, and a Monte-Carlo margin check, rolled into a single report
// with pass/fail verdicts against a requirements table.

#include <optional>
#include <string>
#include <vector>

#include "mc/monte_carlo.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "sram/snm.hpp"

namespace tfetsram::core {

/// What the design must achieve to pass.
struct SignoffRequirements {
    double max_wlcrit = 1e-9;       ///< worst-corner write pulse [s]
    double min_drnm = 0.10;         ///< worst-corner read margin [V]
    double max_static_power = 1e-12; ///< hold power at the top corner [W]
    double max_write_delay = 2e-9;  ///< [s]
    double max_read_delay = 1e-9;   ///< [s]
    double min_hold_snm = 0.05;     ///< butterfly margin at nominal [V]
    double max_drv = 0.45;          ///< retention voltage [V]
    double mc_max_wlcrit = 1.5e-9;  ///< MC worst sample [s]
    double mc_min_drnm = 0.05;      ///< MC worst sample [V]
};

/// Sweep corners for the qualification.
struct SignoffConditions {
    std::vector<double> vdd_corners = {0.5, 0.7, 0.9};
    std::vector<double> temperature_corners = {300.0, 400.0};
    /// Gate-oxide thickness corners as multipliers of the nominal Tox; the
    /// metric battery runs at every (VDD, Tox) pair. {1.0} preserves the
    /// single-axis legacy sweep (and its report format).
    std::vector<double> tox_scales = {1.0};
    std::size_t mc_samples = 20;
    std::uint64_t mc_seed = 61;
    sram::MetricOptions metrics;
    /// Simulation context the whole qualification runs under (non-owning;
    /// nullptr uses the caller's ambient context).
    const spice::SimContext* sim = nullptr;
};

/// One evaluated corner.
struct CornerRow {
    double vdd = 0.0;
    double tox_scale = 1.0;
    double wlcrit = 0.0;
    double drnm = 0.0;
    double write_delay = 0.0;
    double read_delay = 0.0;
    double write_energy = 0.0;
    double read_energy = 0.0;
    double static_power = 0.0;
};

/// Temperature-corner hold check.
struct TemperatureRow {
    double temperature = 0.0;
    double static_power = 0.0;
    bool holds_data = false;
};

struct SignoffReport {
    std::string design_name;
    std::vector<CornerRow> corners;
    std::vector<TemperatureRow> temperatures;
    double hold_snm = 0.0;
    double drv = 0.0;
    SampleSummary mc_wlcrit;
    SampleSummary mc_drnm;

    std::vector<std::string> failures; ///< human-readable violations
    [[nodiscard]] bool passed() const { return failures.empty(); }

    /// Multi-section console rendering.
    [[nodiscard]] std::string to_text() const;
};

/// Qualify a design. The design's assists are used for every operation.
/// `tfet_params` rebuilds the TFET models per corner (temperature) and
/// feeds the Monte-Carlo sampler.
SignoffReport signoff(const sram::DesignSpec& design,
                      const device::TfetParams& tfet_params = {},
                      const SignoffRequirements& req = {},
                      const SignoffConditions& cond = {});

/// Qualify every design in the cell zoo (sram::cell_zoo()) at the given
/// supply, each on its registered model-set flavor. Reports come back in
/// zoo order.
std::vector<SignoffReport> signoff_zoo(double vdd,
                                       const SignoffRequirements& req = {},
                                       const SignoffConditions& cond = {});

} // namespace tfetsram::core
