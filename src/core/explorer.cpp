#include "core/explorer.hpp"

#include <algorithm>
#include <cmath>

#include "sram/cell_zoo.hpp"
#include "sram/operations.hpp"

namespace tfetsram::core {

namespace {

using sram::AccessDevice;
using sram::Assist;
using sram::CellConfig;
using sram::CellKind;

CellConfig tfet6t_config(const ExplorerOptions& opt,
                         const device::ModelSet& models, AccessDevice access,
                         double beta) {
    CellConfig cfg;
    cfg.kind = CellKind::kTfet6T;
    cfg.access = access;
    cfg.vdd = opt.vdd;
    cfg.beta = beta;
    cfg.models = models;
    return cfg;
}

AccessStudyRow study_access(const ExplorerOptions& opt,
                            const device::ModelSet& models,
                            AccessDevice access) {
    AccessStudyRow row;
    row.access = access;

    sram::SramCell cell =
        sram::build_cell(tfet6t_config(opt, models, access, opt.access_study_beta));
    row.static_power = sram::worst_hold_static_power(cell, opt.metrics);

    const sram::DrnmResult drnm =
        sram::dynamic_read_noise_margin(cell, Assist::kNone, opt.metrics);
    row.drnm = drnm.valid ? drnm.drnm : 0.0;
    row.read_ok = drnm.valid && !drnm.flipped && drnm.drnm > 0.05 * opt.vdd;

    row.wlcrit =
        sram::critical_wordline_pulse(cell, Assist::kNone, opt.metrics);
    row.write_ok = std::isfinite(row.wlcrit);

    row.viable = row.write_ok &&
                 std::isfinite(row.static_power) &&
                 row.static_power < opt.static_power_budget;
    return row;
}

} // namespace

RobustDesignReport explore(const ExplorerOptions& opt) {
    RobustDesignReport report;
    report.vdd = opt.vdd;

    const device::ModelSet models =
        device::make_model_set(opt.tfet_params, opt.tabulated_models);

    // ---- Stage 0 (optional): cell-zoo hold survey ----
    if (opt.survey_zoo) {
        for (const sram::ZooEntry& entry : sram::cell_zoo()) {
            const device::ModelSetSpec& ms =
                device::find_model_set(entry.model_set);
            const device::ModelSet zoo_models = device::make_model_set_at(
                ms, 300.0, 1.0, opt.tabulated_models);
            const sram::DesignSpec design =
                sram::make_zoo_design(entry, opt.vdd, zoo_models);
            sram::SramCell cell = sram::build_cell(design.config);
            ZooSurveyRow row;
            row.id = entry.id;
            row.name = design.name;
            row.static_power =
                sram::worst_hold_static_power(cell, opt.metrics);
            sram::program_hold(cell);
            row.holds_data =
                sram::solve_hold_state(cell, true, opt.metrics.solver)
                    .state_ok &&
                sram::solve_hold_state(cell, false, opt.metrics.solver)
                    .state_ok;
            report.zoo_survey.push_back(row);
        }
    }

    // ---- Stage 1: access-device study (Sec. 3) ----
    const AccessDevice all_access[] = {
        AccessDevice::kOutwardN, AccessDevice::kOutwardP,
        AccessDevice::kInwardN, AccessDevice::kInwardP};
    for (AccessDevice a : all_access)
        report.access_study.push_back(study_access(opt, models, a));

    double best_power = std::numeric_limits<double>::infinity();
    for (const AccessStudyRow& row : report.access_study) {
        if (row.viable && row.static_power < best_power) {
            best_power = row.static_power;
            report.chosen_access = row.access;
        }
    }
    if (!report.chosen_access) {
        // Fall back to the best writable choice even if no row met every
        // criterion, so the report is still actionable.
        for (const AccessStudyRow& row : report.access_study)
            if (row.write_ok)
                report.chosen_access = row.access;
    }
    if (!report.chosen_access)
        return report;
    const AccessDevice access = *report.chosen_access;

    // ---- Stage 2: assist sweeps (Sec. 4.1 / 4.2) ----
    auto sweep = [&](Assist assist, const std::vector<double>& betas) {
        for (double beta : betas) {
            sram::SramCell cell =
                sram::build_cell(tfet6t_config(opt, models, access, beta));
            AssistStudyPoint p;
            p.assist = assist;
            p.beta = beta;
            const Assist wa = sram::is_write_assist(assist) ? assist
                                                            : Assist::kNone;
            const Assist ra = sram::is_read_assist(assist) ? assist
                                                           : Assist::kNone;
            p.wlcrit = sram::critical_wordline_pulse(cell, wa, opt.metrics);
            const sram::DrnmResult d =
                sram::dynamic_read_noise_margin(cell, ra, opt.metrics);
            p.drnm = d.valid && !d.flipped ? d.drnm : 0.0;
            report.assist_curves.push_back(p);
        }
    };
    for (Assist a : sram::kWriteAssists)
        sweep(a, opt.wa_betas);
    for (Assist a : sram::kReadAssists)
        sweep(a, opt.ra_betas);

    // ---- Stage 3: score techniques (Fig. 8's lower-right criterion) ----
    // Normalize DRNM by VDD and WLcrit by a nanosecond; reward margin,
    // penalize slow writes, disqualify failures.
    auto score_point = [&](const AssistStudyPoint& p) {
        if (!std::isfinite(p.wlcrit) || p.drnm <= 0.0)
            return -std::numeric_limits<double>::infinity();
        return p.drnm / opt.vdd - p.wlcrit / 1e-9;
    };
    for (Assist a : {Assist::kWaVddLowering, Assist::kWaGndRaising,
                     Assist::kWaWordlineLowering, Assist::kWaBitlineRaising,
                     Assist::kRaVddRaising, Assist::kRaGndLowering,
                     Assist::kRaWordlineRaising,
                     Assist::kRaBitlineLowering}) {
        AssistScore best;
        best.assist = a;
        best.score = -std::numeric_limits<double>::infinity();
        for (const AssistStudyPoint& p : report.assist_curves) {
            if (p.assist != a)
                continue;
            const double s = score_point(p);
            if (s > best.score) {
                best.score = s;
                best.best_beta = p.beta;
                best.best_drnm = p.drnm;
                best.best_wlcrit = p.wlcrit;
            }
        }
        report.assist_scores.push_back(best);
    }
    const auto winner = std::max_element(
        report.assist_scores.begin(), report.assist_scores.end(),
        [](const AssistScore& x, const AssistScore& y) {
            return x.score < y.score;
        });
    if (winner != report.assist_scores.end() &&
        std::isfinite(winner->score)) {
        report.chosen_assist = winner->assist;
        report.chosen_beta = winner->best_beta;
    }
    if (!report.chosen_assist)
        return report;

    // ---- Recommended design ----
    sram::DesignSpec rec;
    rec.name = "explored robust 6T TFET SRAM";
    rec.config = tfet6t_config(opt, models, access, report.chosen_beta);
    if (sram::is_read_assist(*report.chosen_assist))
        rec.read_assist = *report.chosen_assist;
    else
        rec.write_assist = *report.chosen_assist;
    report.recommended = rec;

    // ---- Stage 4: Monte-Carlo robustness (Sec. 4.3) ----
    if (opt.mc_samples > 0) {
        mc::VariationSpec vspec;
        vspec.base = opt.tfet_params;
        vspec.tabulated = opt.tabulated_models;
        const mc::TfetVariationSampler sampler(vspec);

        RobustnessCheck check;
        check.samples = opt.mc_samples;
        const auto metric_opts = opt.metrics;
        const mc::McResult drnm_mc = mc::run_monte_carlo(
            rec.config, sampler, opt.mc_samples, opt.mc_seed,
            [&](sram::SramCell& cell) {
                const sram::DrnmResult d = sram::dynamic_read_noise_margin(
                    cell, rec.read_assist, metric_opts);
                return d.valid ? d.drnm : std::nan("");
            });
        const mc::McResult wl_mc = mc::run_monte_carlo(
            rec.config, sampler, opt.mc_samples, opt.mc_seed + 1,
            [&](sram::SramCell& cell) {
                return sram::critical_wordline_pulse(cell, rec.write_assist,
                                                     metric_opts);
            });
        check.drnm = drnm_mc.summary;
        check.wlcrit = wl_mc.summary;
        report.robustness = check;
    }
    return report;
}

} // namespace tfetsram::core
