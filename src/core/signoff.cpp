#include "core/signoff.hpp"

#include <cmath>
#include <sstream>

#include "core/report.hpp"
#include "device/model_zoo.hpp"
#include "device/table_builder.hpp"
#include "sram/cell_zoo.hpp"
#include "sram/operations.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram::core {

namespace {

void check(std::vector<std::string>& failures, bool ok,
           const std::string& what) {
    if (!ok)
        failures.push_back(what);
}

/// Rebuild a model set at the given temperature and oxide-thickness scale
/// (TFETs tabulated, the CMOS baseline analytic — the standard flow).
device::ModelSet models_at(const device::TfetParams& base, double temperature,
                           double tox_scale = 1.0) {
    device::TfetParams tp = base;
    tp.temperature = temperature;
    tp.tox = base.tox * tox_scale;
    device::MosfetParams nmos;
    nmos.temperature = temperature;
    device::MosfetParams pmos = device::pmos_defaults();
    pmos.temperature = temperature;
    device::ModelSet set;
    set.ntfet = device::build_table(*device::make_ntfet(tp));
    set.ptfet = device::build_table(*device::make_ptfet(tp));
    set.nmos = device::make_nmos(nmos);
    set.pmos = device::make_pmos(pmos);
    return set;
}

} // namespace

SignoffReport signoff(const sram::DesignSpec& design,
                      const device::TfetParams& tfet_params,
                      const SignoffRequirements& req,
                      const SignoffConditions& cond) {
    // Every corner, static analysis, and MC batch below runs under this
    // one context (no-op when cond.sim is null).
    const spice::ScopedContext bind_sim(cond.sim);
    SignoffReport rep;
    rep.design_name = design.name;
    const sram::MetricOptions& mo = cond.metrics;

    // ---- Supply x Tox corners at nominal temperature ----
    const device::ModelSet nominal_models = models_at(tfet_params, 300.0);
    std::vector<double> tox_scales = cond.tox_scales;
    if (tox_scales.empty())
        tox_scales.push_back(1.0);
    std::vector<device::ModelSet> tox_models;
    for (double tox : tox_scales)
        tox_models.push_back(tox == 1.0 ? nominal_models
                                        : models_at(tfet_params, 300.0, tox));
    for (double vdd : cond.vdd_corners) {
      for (std::size_t ti = 0; ti < tox_scales.size(); ++ti) {
        const double tox = tox_scales[ti];
        sram::CellConfig cfg = design.config;
        cfg.vdd = vdd;
        cfg.models = tox_models[ti];
        sram::SramCell cell = sram::build_cell(cfg);

        CornerRow row;
        row.vdd = vdd;
        row.tox_scale = tox;
        if (design.wlcrit_defined)
            row.wlcrit =
                sram::critical_wordline_pulse(cell, design.write_assist, mo);
        const auto d =
            sram::dynamic_read_noise_margin(cell, design.read_assist, mo);
        row.drnm = d.valid && !d.flipped ? d.drnm : 0.0;
        row.write_delay = sram::write_delay(cell, design.write_assist, mo);
        row.read_delay = sram::read_delay(cell, design.read_assist, mo);
        row.write_energy = sram::write_energy(
            cell, mo.write_probe_pulse, design.write_assist, mo);
        row.read_energy = sram::read_energy(cell, design.read_assist, mo);
        row.static_power = sram::worst_hold_static_power(cell, mo);
        rep.corners.push_back(row);

        std::string at = " @ " + format_sci(vdd, 1) + " V";
        if (tox != 1.0)
            at += ", Tox x" + format_sci(tox, 2);
        if (design.wlcrit_defined)
            check(rep.failures,
                  std::isfinite(row.wlcrit) && row.wlcrit <= req.max_wlcrit,
                  "WLcrit " + format_pulse(row.wlcrit) + at);
        check(rep.failures, row.drnm >= req.min_drnm,
              "DRNM " + format_margin(row.drnm) + at);
        check(rep.failures,
              !std::isnan(row.write_delay) &&
                  row.write_delay <= req.max_write_delay,
              "write delay " + format_pulse(row.write_delay) + at);
        check(rep.failures,
              !std::isnan(row.read_delay) &&
                  row.read_delay <= req.max_read_delay,
              "read delay " + format_pulse(row.read_delay) + at);
        check(rep.failures,
              std::isfinite(row.static_power) &&
                  row.static_power <= req.max_static_power,
              "static power " + format_power(row.static_power) + at);
      }
    }

    // ---- Temperature corners (hold integrity + leakage) ----
    for (double temp : cond.temperature_corners) {
        sram::CellConfig cfg = design.config;
        cfg.models = models_at(tfet_params, temp);
        sram::SramCell cell = sram::build_cell(cfg);
        TemperatureRow row;
        row.temperature = temp;
        row.static_power = sram::worst_hold_static_power(cell, mo);
        sram::program_hold(cell);
        row.holds_data = sram::solve_hold_state(cell, true, mo.solver).state_ok &&
                         sram::solve_hold_state(cell, false, mo.solver).state_ok;
        rep.temperatures.push_back(row);
        check(rep.failures, row.holds_data,
              "hold failure at " + format_sci(temp, 0) + " K");
    }

    // ---- Static analyses at nominal ----
    {
        sram::CellConfig cfg = design.config;
        cfg.models = nominal_models;
        const sram::SnmResult snm =
            sram::static_noise_margin(cfg, sram::SnmMode::kHold);
        rep.hold_snm = snm.valid ? snm.snm : 0.0;
        check(rep.failures, rep.hold_snm >= req.min_hold_snm,
              "hold SNM " + format_margin(rep.hold_snm));
        rep.drv = sram::data_retention_voltage(cfg, 0.0, mo);
        check(rep.failures, !std::isnan(rep.drv) && rep.drv <= req.max_drv,
              "retention voltage " + format_margin(rep.drv));
    }

    // ---- Monte-Carlo margins at nominal ----
    if (cond.mc_samples > 0) {
        mc::VariationSpec vspec;
        vspec.base = tfet_params;
        const mc::TfetVariationSampler sampler(vspec);
        sram::CellConfig cfg = design.config;

        if (design.wlcrit_defined) {
            const mc::McResult wl = mc::run_monte_carlo(
                cfg, sampler, cond.mc_samples, cond.mc_seed,
                [&](sram::SramCell& cell) {
                    return sram::critical_wordline_pulse(
                        cell, design.write_assist, mo);
                });
            rep.mc_wlcrit = wl.summary;
            check(rep.failures,
                  wl.summary.n_infinite == 0 &&
                      wl.summary.max <= req.mc_max_wlcrit,
                  "MC WLcrit worst " + format_pulse(wl.summary.max) + " (" +
                      std::to_string(wl.summary.n_infinite) + " failures)");
        }
        const mc::McResult dr = mc::run_monte_carlo(
            cfg, sampler, cond.mc_samples, cond.mc_seed + 1,
            [&](sram::SramCell& cell) {
                const auto d = sram::dynamic_read_noise_margin(
                    cell, design.read_assist, mo);
                return d.valid && !d.flipped ? d.drnm : 0.0;
            });
        rep.mc_drnm = dr.summary;
        check(rep.failures, dr.summary.min >= req.mc_min_drnm,
              "MC DRNM worst " + format_margin(dr.summary.min));
    }
    return rep;
}

std::string SignoffReport::to_text() const {
    std::ostringstream os;
    os << "=== Sign-off: " << design_name << " ===\n\n";

    // The Tox column appears only when the sweep actually used the axis,
    // keeping the single-axis legacy rendering byte-stable.
    bool any_tox = false;
    for (const CornerRow& r : corners)
        any_tox = any_tox || r.tox_scale != 1.0;

    std::vector<std::string> headers = {"VDD",     "WLcrit",  "DRNM",
                                        "t_write", "t_read",  "E_write",
                                        "E_read",  "P_hold"};
    if (any_tox)
        headers.insert(headers.begin() + 1, "Tox");
    TablePrinter corners_t(headers);
    for (const CornerRow& r : corners) {
        std::vector<std::string> cells = {
            format_sci(r.vdd, 1),          format_pulse(r.wlcrit),
            format_margin(r.drnm),         format_pulse(r.write_delay),
            format_pulse(r.read_delay),    format_si(r.write_energy, "J"),
            format_si(r.read_energy, "J"), format_power(r.static_power)};
        if (any_tox)
            cells.insert(cells.begin() + 1, "x" + format_sci(r.tox_scale, 2));
        corners_t.add_row(cells);
    }
    os << corners_t.render() << '\n';

    TablePrinter temp_t({"T [K]", "P_hold", "holds data"});
    for (const TemperatureRow& r : temperatures)
        temp_t.add_row({format_sci(r.temperature, 0),
                        format_power(r.static_power),
                        r.holds_data ? "yes" : "NO"});
    os << temp_t.render() << '\n';

    os << "hold SNM: " << format_margin(hold_snm)
       << "   retention voltage: " << format_margin(drv) << "\n";
    if (mc_drnm.count > 0) {
        os << "MC (" << mc_drnm.count << " samples): WLcrit worst "
           << format_pulse(mc_wlcrit.max) << ", DRNM worst "
           << format_margin(mc_drnm.min) << "\n";
    }

    os << "\nverdict: " << (passed() ? "PASS" : "FAIL") << "\n";
    for (const std::string& f : failures)
        os << "  violation: " << f << "\n";
    return os.str();
}

std::vector<SignoffReport> signoff_zoo(double vdd,
                                       const SignoffRequirements& req,
                                       const SignoffConditions& cond) {
    std::vector<SignoffReport> reports;
    for (const sram::ZooEntry& entry : sram::cell_zoo()) {
        const device::ModelSetSpec& ms =
            device::find_model_set(entry.model_set);
        const device::ModelSet models = device::make_model_set_at(ms, 300.0);
        const sram::DesignSpec design =
            sram::make_zoo_design(entry, vdd, models);
        reports.push_back(signoff(design, ms.tfet, req, cond));
    }
    return reports;
}

} // namespace tfetsram::core
