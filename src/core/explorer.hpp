#pragma once
// The paper's contribution as a reusable design flow. Given a device model
// set and a supply voltage, the explorer:
//   1. studies all access-device choices (static power + write/read
//      feasibility) and keeps the viable ones (Sec. 3),
//   2. sweeps the cell ratio beta for each write-assist (beta >= 1) and
//      read-assist (beta <= 1) technique (Sec. 4.1-4.2),
//   3. scores each technique by its best DRNM/WLcrit tradeoff point
//      (Fig. 8's "closest to the lower-right corner"),
//   4. optionally verifies the winning design under Monte-Carlo process
//      variation (Sec. 4.3),
// and emits the recommended robust design.

#include <optional>

#include "mc/monte_carlo.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::core {

/// One row of the access-device study (Sec. 3).
struct AccessStudyRow {
    sram::AccessDevice access{};
    double static_power = 0.0; ///< worst-case hold leakage [W]
    double drnm = 0.0;         ///< at the study beta [V]
    double wlcrit = 0.0;       ///< [s]; +inf = write failure
    bool write_ok = false;
    bool read_ok = false;
    bool viable = false; ///< low static power AND write AND read
};

/// One sweep point of the assist study (Sec. 4).
struct AssistStudyPoint {
    sram::Assist assist{};
    double beta = 0.0;
    double drnm = 0.0;  ///< [V]
    double wlcrit = 0.0; ///< [s]
};

/// Scored summary of one assist technique.
struct AssistScore {
    sram::Assist assist{};
    double best_beta = 0.0;
    double best_drnm = 0.0;
    double best_wlcrit = 0.0;
    double score = 0.0; ///< higher is better
};

/// Monte-Carlo robustness check of the chosen design.
struct RobustnessCheck {
    SampleSummary drnm;
    SampleSummary wlcrit;
    std::size_t samples = 0;
};

/// One row of the optional cell-zoo hold survey: the cheap sanity sweep
/// (bistability + hold leakage) across every registered design.
struct ZooSurveyRow {
    std::string id;   ///< sram::ZooEntry id
    std::string name; ///< design display name
    bool holds_data = false;
    double static_power = 0.0; ///< worst-case hold leakage [W]
};

struct RobustDesignReport {
    double vdd = 0.0;
    std::vector<ZooSurveyRow> zoo_survey; ///< empty unless requested
    std::vector<AccessStudyRow> access_study;
    std::optional<sram::AccessDevice> chosen_access;
    std::vector<AssistStudyPoint> assist_curves;
    std::vector<AssistScore> assist_scores;
    std::optional<sram::Assist> chosen_assist;
    double chosen_beta = 0.0;
    std::optional<RobustnessCheck> robustness;
    sram::DesignSpec recommended; ///< final design (valid iff chosen_*)

    /// Multi-section console rendering.
    [[nodiscard]] std::string to_text() const;
};

/// Flow configuration.
struct ExplorerOptions {
    double vdd = 0.8;
    double assist_fraction = sram::kDefaultAssistFraction;
    std::vector<double> wa_betas = {1.0, 1.5, 2.0, 2.5, 3.0};
    std::vector<double> ra_betas = {0.4, 0.6, 0.8, 1.0};
    double access_study_beta = 1.0;
    /// Static power above this disqualifies an access choice (outward
    /// devices overshoot it by many orders).
    double static_power_budget = 1e-12;
    std::size_t mc_samples = 0; ///< 0 skips the robustness check
    std::uint64_t mc_seed = 20110314;
    /// Survey every cell-zoo design (hold integrity + leakage) before the
    /// 6T exploration stages. Off by default: it is context, not part of
    /// the paper's flow.
    bool survey_zoo = false;
    sram::MetricOptions metrics;
    device::TfetParams tfet_params;
    bool tabulated_models = true;
};

/// Run the full flow.
RobustDesignReport explore(const ExplorerOptions& options);

} // namespace tfetsram::core
