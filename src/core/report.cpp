#include "core/report.hpp"

#include <cmath>
#include <sstream>

#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram::core {

std::string format_pulse(double seconds) {
    if (std::isnan(seconds))
        return "n/a";
    if (std::isinf(seconds))
        return "inf (write failure)";
    return format_si(seconds, "s");
}

std::string format_margin(double volts) {
    if (std::isnan(volts))
        return "n/a";
    return format_si(volts, "V");
}

std::string format_power(double watts) {
    if (std::isnan(watts))
        return "n/a";
    return format_sci(watts, 2) + " W";
}

std::string RobustDesignReport::to_text() const {
    std::ostringstream os;
    os << "=== Robust 6T TFET SRAM design exploration (VDD = " << vdd
       << " V) ===\n\n";

    if (!zoo_survey.empty()) {
        os << "-- Stage 0: cell-zoo hold survey --\n";
        TablePrinter t({"cell", "design", "holds data", "P_hold"});
        for (const ZooSurveyRow& r : zoo_survey)
            t.add_row({r.id, r.name, r.holds_data ? "yes" : "NO",
                       format_power(r.static_power)});
        os << t.render() << '\n';
    }

    os << "-- Stage 1: access-device study (Sec. 3) --\n";
    {
        TablePrinter t({"access device", "static power", "DRNM", "WLcrit",
                        "write", "read", "viable"});
        for (const AccessStudyRow& r : access_study)
            t.add_row({sram::to_string(r.access), format_power(r.static_power),
                       format_margin(r.drnm), format_pulse(r.wlcrit),
                       r.write_ok ? "ok" : "FAIL", r.read_ok ? "ok" : "weak",
                       r.viable ? "yes" : "no"});
        os << t.render();
    }
    if (chosen_access)
        os << "chosen access device: " << sram::to_string(*chosen_access)
           << "\n\n";
    else {
        os << "no viable access device found\n";
        return os.str();
    }

    os << "-- Stage 2/3: assist techniques (Sec. 4), best point per "
          "technique --\n";
    {
        TablePrinter t({"technique", "best beta", "DRNM", "WLcrit", "score"});
        for (const AssistScore& s : assist_scores) {
            t.add_row({sram::to_string(s.assist),
                       std::isfinite(s.score)
                           ? format_sci(s.best_beta, 1)
                           : "-",
                       format_margin(s.best_drnm), format_pulse(s.best_wlcrit),
                       std::isfinite(s.score) ? format_sci(s.score, 2)
                                              : "disqualified"});
        }
        os << t.render();
    }
    if (chosen_assist)
        os << "chosen technique: " << sram::to_string(*chosen_assist)
           << " at beta = " << chosen_beta << "\n\n";
    else {
        os << "no assist technique achieved both write and read\n";
        return os.str();
    }

    if (robustness) {
        os << "-- Stage 4: Monte-Carlo robustness (Sec. 4.3, "
           << robustness->samples << " samples, tox +/-5%) --\n";
        TablePrinter t({"metric", "mean", "stddev", "min", "max", "failures"});
        t.add_row({"DRNM", format_margin(robustness->drnm.mean),
                   format_margin(robustness->drnm.stddev),
                   format_margin(robustness->drnm.min),
                   format_margin(robustness->drnm.max),
                   std::to_string(robustness->drnm.n_infinite)});
        t.add_row({"WLcrit", format_pulse(robustness->wlcrit.mean),
                   format_pulse(robustness->wlcrit.stddev),
                   format_pulse(robustness->wlcrit.min),
                   format_pulse(robustness->wlcrit.max),
                   std::to_string(robustness->wlcrit.n_infinite)});
        os << t.render() << '\n';
    }

    os << "recommended design: " << recommended.name << " — "
       << sram::to_string(recommended.config.access) << ", beta = "
       << recommended.config.beta;
    if (recommended.read_assist != sram::Assist::kNone)
        os << ", " << sram::to_string(recommended.read_assist);
    if (recommended.write_assist != sram::Assist::kNone)
        os << ", " << sram::to_string(recommended.write_assist);
    os << "\n";
    return os.str();
}

} // namespace tfetsram::core
