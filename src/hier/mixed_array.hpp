#pragma once
// Mixed-level SRAM array driver. Functionally a drop-in for
// array::SramArray (same config, same operation results), but instead of
// solving the whole R x C grid at device level it solves only the *active
// partition* of each operation — the accessed row plus excursion
// sentinels (hier/partition.hpp) — and folds every quiescent cell into a
// per-column lumped Norton load extracted by hier/latched_cell.hpp.
//
// One operation proceeds event-style:
//  1. The Partitioner turns (op, row, col) into a PartitionPlan.
//  2. A small SPICE circuit is built for the plan: full bitline/wordline
//     rail infrastructure for every column, device-level cells for the
//     promoted set, and one LinearizedLoad per bitline carrying the
//     latched population's leakage (kRelinearize events).
//  3. The partition's DC hold state is solved, with promoted cells seeded
//     from their latched storage-node voltages (kPromote events at the
//     wordline edge that made them active).
//  4. The flat driver's exact waveform program runs as a transient, with
//     a guard monitor watching each lumped bitline against the envelope
//     spanned by its quiescent and extraction levels. A rail escaping the
//     band trips a kGuardTrip event: the plan is refined (more sentinels
//     on the offending column) and the operation re-runs, bounded by
//     PartitionPolicy::max_guard_retries.
//  5. After the post-access settle, promoted cells re-latch (kDemote
//     events): their solved storage-node voltages update the latched
//     store, and the partition is discarded.
//
// The event trace and the promotion/demotion/relinearization counters are
// exact and deterministic for a given operation sequence; the counters
// also flow into the ambient spice::SolverStats (hier_* fields) so the
// runner's telemetry journal reports them per task. Differential tests
// (tests/test_hier_diff.cpp) pin mixed-vs-flat agreement on small arrays.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "array/array.hpp"
#include "hier/event_queue.hpp"
#include "hier/latched_cell.hpp"
#include "hier/partition.hpp"
#include "spice/solver_info.hpp"

namespace tfetsram::hier {

/// Mixed-engine tunables on top of the shared ArrayConfig.
struct HierConfig {
    PartitionPolicy partition;
    /// Finite-difference step of the load extraction [V].
    double extraction_dv = 10e-3;
};

/// Cumulative engine statistics (exact, deterministic).
struct HierStats {
    std::uint64_t operations = 0;      ///< write/read calls completed
    std::uint64_t promotions = 0;      ///< kPromote events
    std::uint64_t demotions = 0;       ///< kDemote events
    std::uint64_t relinearizations = 0; ///< kRelinearize events
    std::uint64_t guard_retries = 0;   ///< kGuardTrip events
    std::size_t last_active_cells = 0;   ///< promoted cells, last attempt
    std::size_t last_latched_cells = 0;  ///< latched cells, last attempt
    std::size_t last_active_unknowns = 0; ///< partition MNA size
    std::size_t max_active_unknowns = 0;
};

class MixedArray {
public:
    /// Validates `config` exactly like the flat driver (including
    /// kInvalidConfig on degenerate shapes); `sim` pins all solves and
    /// counter attribution to an explicit context.
    explicit MixedArray(const array::ArrayConfig& config,
                        HierConfig hier = {},
                        const spice::SimContext* sim = nullptr);

    [[nodiscard]] std::size_t rows() const { return config_.rows; }
    [[nodiscard]] std::size_t cols() const { return config_.cols; }
    [[nodiscard]] const array::ArrayConfig& config() const { return config_; }
    [[nodiscard]] const HierConfig& hier_config() const { return hier_; }

    /// Establish the latched hold state (data[r][c]); extraction-backed,
    /// no array-sized solve happens. Must be called before operations.
    [[nodiscard]] bool initialize(
        const std::vector<std::vector<bool>>& data);

    /// Same contracts as array::SramArray.
    array::OpResult write(std::size_t row, std::size_t col, bool value);
    array::ReadResult read(std::size_t row, std::size_t col);
    [[nodiscard]] bool stored(std::size_t row, std::size_t col) const;
    [[nodiscard]] double separation(std::size_t row, std::size_t col) const;

    /// Latched view of one cell (exact solved voltages for cells that
    /// were promoted at least once; extraction voltages otherwise).
    [[nodiscard]] const LatchedState& latched(std::size_t row,
                                              std::size_t col) const;

    [[nodiscard]] const HierStats& stats() const { return stats_; }
    /// Event trace of the most recent operation (all attempts).
    [[nodiscard]] const std::vector<Event>& event_trace() const {
        return trace_;
    }
    /// Linear-kernel routing of the most recent active partition;
    /// zero-unknowns default before the first operation.
    [[nodiscard]] spice::SolverInfo partition_solver_info();
    /// Device/unknown counts of the most recent active partition (0
    /// before the first operation).
    [[nodiscard]] std::size_t partition_transistors() const;
    [[nodiscard]] std::size_t partition_unknowns() const;

private:
    struct ColHandles {
        spice::NodeId bl = 0;
        spice::NodeId blb = 0;
        spice::NodeId vss = 0;
        spice::VoltageSource* v_bl = nullptr;
        spice::VoltageSource* v_blb = nullptr;
        spice::VoltageSource* v_vss = nullptr;
        spice::TimedSwitch* sw_bl = nullptr;
        spice::TimedSwitch* sw_blb = nullptr;
        spice::LinearizedLoad* load_bl = nullptr;
        spice::LinearizedLoad* load_blb = nullptr;
        std::size_t latched_cells = 0;
        double v0_bl = 0.0; ///< extraction bias of the lumped BL load
        double v0_blb = 0.0;
    };
    struct ActiveCell {
        CellRef ref;
        spice::NodeId q = 0;
        spice::NodeId qb = 0;
    };
    struct Partition {
        spice::Circuit ckt;
        spice::NodeId vdd_node = 0;
        std::vector<ColHandles> cols;
        std::vector<ActiveCell> cells;
        /// Wordline source per promoted row, nullptr elsewhere.
        std::vector<spice::VoltageSource*> wl;
        la::Vector state;
    };
    /// Per-column extraction bias for one operation.
    struct ColumnBias {
        double vss = 0.0;
        double v_bl = 0.0;
        double v_blb = 0.0;
    };
    struct AttemptOutcome {
        bool completed = false;     ///< transient reached t_end
        bool guard_tripped = false; ///< monitor fired first
        std::size_t guard_col = 0;
        double guard_time = 0.0;
        std::string message;
    };

    struct ExecOutcome {
        bool completed = false;
        double t_end = 0.0;
        std::string message;
    };

    [[nodiscard]] const LatchedState& at(std::size_t row,
                                         std::size_t col) const;
    [[nodiscard]] std::unique_ptr<Partition>
    build_partition(const PartitionPlan& plan);
    /// `value` matters only for write plans (the target column's bitline
    /// excursion levels depend on the written polarity).
    [[nodiscard]] ColumnBias column_bias(const PartitionPlan& plan,
                                         std::size_t col, bool value) const;
    /// Stamp the lumped loads of every column; false (with message) when
    /// an extraction failed to converge.
    bool program_loads(Partition& part, const PartitionPlan& plan,
                       bool value, std::string* message);
    /// Program the op waveforms (flat-driver mirror) and return t_end.
    double program_write(Partition& part, const PartitionPlan& plan,
                         bool value, double* wl_start) const;
    double program_read(Partition& part, const PartitionPlan& plan,
                        double* wl_start) const;
    [[nodiscard]] bool solve_partition_dc(Partition& part,
                                          std::string* message);
    AttemptOutcome run_attempt(Partition& part, double t_end,
                               const std::vector<bool>& monitor_col);
    /// Guard-retry loop shared by write() and read(): builds, solves, and
    /// (on guard trips) refines + re-runs, leaving last_partition_ settled
    /// and the latched store updated on success.
    ExecOutcome execute(PartitionPlan& plan, bool value);
    /// Drain this attempt's queued events into the trace and counters.
    void drain_events();
    /// Copy the settled partition voltages back into the latched store.
    void relatch(const Partition& part);

    array::ArrayConfig config_;
    HierConfig hier_;
    const spice::SimContext* sim_ = nullptr;
    Partitioner partitioner_;
    LatchedCellModel model_;
    std::vector<LatchedState> store_; // row-major
    bool initialized_ = false;
    EventQueue queue_;
    std::vector<Event> trace_;
    HierStats stats_;
    std::unique_ptr<Partition> last_partition_;
};

} // namespace tfetsram::hier
