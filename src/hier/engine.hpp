#pragma once
// ArrayEngine: the operation-driver entry point that routes an array
// workload to either the flat whole-array SPICE driver (array::SramArray)
// or the mixed-level engine (hier::MixedArray) behind one interface.
// Benches and tests talk to the engine; the selection policy lives here:
//
//  * kFlat / kMixed force an engine;
//  * kAuto solves small arrays flat (the regime where whole-array SPICE
//    is cheap and serves as the reference) and switches to mixed-level
//    once the row count passes kAutoMixedRows — the regime the flat
//    driver cannot reach (a 1024-row column is ~37k unknowns flat, ~200
//    in the mixed engine's active partition).

#include <memory>
#include <vector>

#include "array/array.hpp"
#include "hier/mixed_array.hpp"

namespace tfetsram::hier {

enum class EngineMode {
    kFlat,  ///< whole-array device-level simulation
    kMixed, ///< active-partition simulation with latched quiescent cells
    kAuto,  ///< flat below kAutoMixedRows rows, mixed at/above
};
const char* to_string(EngineMode mode);

/// Row count at which kAuto switches to the mixed engine. Chosen so the
/// flat reference regime (every size the differential tests compare) stays
/// flat, while tall arrays route to the engine that scales.
inline constexpr std::size_t kAutoMixedRows = 32;

class ArrayEngine {
public:
    explicit ArrayEngine(const array::ArrayConfig& config,
                         EngineMode mode = EngineMode::kAuto,
                         HierConfig hier = {},
                         const spice::SimContext* sim = nullptr);

    /// Which engine the mode resolved to.
    [[nodiscard]] bool mixed() const { return mixed_ != nullptr; }

    [[nodiscard]] std::size_t rows() const { return config_.rows; }
    [[nodiscard]] std::size_t cols() const { return config_.cols; }
    [[nodiscard]] const array::ArrayConfig& config() const { return config_; }

    [[nodiscard]] bool initialize(
        const std::vector<std::vector<bool>>& data);
    array::OpResult write(std::size_t row, std::size_t col, bool value);
    array::ReadResult read(std::size_t row, std::size_t col);
    [[nodiscard]] bool stored(std::size_t row, std::size_t col) const;
    [[nodiscard]] double separation(std::size_t row, std::size_t col) const;

    /// Kernel routing of the governing MNA system: the whole-array
    /// circuit (flat) or the most recent active partition (mixed).
    [[nodiscard]] spice::SolverInfo solver_info();

    /// Device count of the governing circuit (whole array flat; the most
    /// recent active partition mixed — 0 before the first operation).
    [[nodiscard]] std::size_t transistors() const;
    /// Unknowns of the governing MNA system (as solver_info().unknowns,
    /// without probing the workspace).
    [[nodiscard]] std::size_t unknowns() const;

    /// Mixed-engine statistics; nullptr when running flat.
    [[nodiscard]] const HierStats* hier_stats() const;

    /// Underlying drivers (nullptr for the one not selected).
    [[nodiscard]] MixedArray* mixed_array() { return mixed_.get(); }
    [[nodiscard]] array::SramArray* flat_array() { return flat_.get(); }

private:
    array::ArrayConfig config_;
    std::unique_ptr<array::SramArray> flat_;
    std::unique_ptr<MixedArray> mixed_;
};

} // namespace tfetsram::hier
