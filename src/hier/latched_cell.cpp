#include "hier/latched_cell.hpp"

#include <cmath>
#include <cstdio>

#include "device/models.hpp"
#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "sram/operations.hpp"
#include "util/contracts.hpp"

namespace tfetsram::hier {

namespace {

using spice::Waveform;

/// Full-precision double rendering for the persistent cache: %.17g
/// round-trips IEEE doubles exactly, so a replayed extraction is
/// bit-identical to the cold one.
std::string exact(double x) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

double parse(const std::string& text) { return std::strtod(text.c_str(), nullptr); }

} // namespace

LatchedCellModel::LatchedCellModel(const sram::CellConfig& config,
                                   const spice::SimContext* sim)
    : config_(config), sim_(sim) {
    probe_ = std::make_unique<sram::SramCell>(sram::build_cell(config, sim));
    const std::filesystem::path dir =
        sim != nullptr ? sim->config().cache_dir
                       : spice::ambient_context().config().cache_dir;
    disk_ = std::make_unique<runner::ResultCache>(
        dir, runner::cache_mode_from_env());
}

LatchedCellModel::~LatchedCellModel() = default;

void LatchedCellModel::set_extraction_dv(double dv) {
    TFET_EXPECTS(std::isfinite(dv) && dv > 0.0);
    extraction_dv_ = dv;
}

LatchedCellModel::Key LatchedCellModel::quantize(bool value, double vss,
                                                 double v_bl,
                                                 double v_blb) const {
    auto q = [](double v) {
        return static_cast<std::int64_t>(std::llround(v * 1e6));
    };
    return {value, q(vss), q(v_bl), q(v_blb)};
}

runner::CacheKey LatchedCellModel::disk_key(bool value, double vss,
                                            double v_bl,
                                            double v_blb) const {
    // Everything the extraction result depends on. The quantized bias
    // (not the raw doubles) keys the entry so memo and disk agree on what
    // counts as "the same point".
    const Key k = quantize(value, vss, v_bl, v_blb);
    return runner::CacheKey("hier_latched")
        .add("schema", 1)
        .add("model", device::kModelSetVersion)
        .add("kind", sram::to_string(config_.kind))
        .add("access", sram::to_string(config_.access))
        .add("vdd", config_.vdd)
        .add("beta", config_.beta)
        .add("w_access", config_.w_access)
        .add("w_pullup", config_.w_pullup)
        .add("dv", extraction_dv_)
        .add("value", value)
        .add("vss_uV", static_cast<std::size_t>(std::get<1>(k) + (1ll << 32)))
        .add("bl_uV", static_cast<std::size_t>(std::get<2>(k) + (1ll << 32)))
        .add("blb_uV",
             static_cast<std::size_t>(std::get<3>(k) + (1ll << 32)));
}

const BitlineLoad& LatchedCellModel::load(bool value, double vss,
                                          double v_bl, double v_blb) {
    const Key k = quantize(value, vss, v_bl, v_blb);
    auto it = memo_.find(k);
    if (it != memo_.end()) {
        ++cache_hits_;
        return it->second;
    }

    const runner::CacheKey key = disk_key(value, vss, v_bl, v_blb);
    if (std::optional<runner::TaskResult> hit = disk_->load(key)) {
        BitlineLoad bl;
        bl.v_bl = v_bl;
        bl.v_blb = v_blb;
        bl.vss = vss;
        bl.i_bl = parse(hit->get("i_bl"));
        bl.i_blb = parse(hit->get("i_blb"));
        bl.g_bl = parse(hit->get("g_bl"));
        bl.g_blb = parse(hit->get("g_blb"));
        bl.v_q = parse(hit->get("v_q"));
        bl.v_qb = parse(hit->get("v_qb"));
        bl.valid = hit->get("valid") == "1";
        ++cache_hits_;
        return memo_.emplace(k, bl).first->second;
    }

    const BitlineLoad bl = extract(value, vss, v_bl, v_blb);
    ++extractions_;
    runner::TaskResult result;
    result.set("i_bl", exact(bl.i_bl));
    result.set("i_blb", exact(bl.i_blb));
    result.set("g_bl", exact(bl.g_bl));
    result.set("g_blb", exact(bl.g_blb));
    result.set("v_q", exact(bl.v_q));
    result.set("v_qb", exact(bl.v_qb));
    result.set("valid", bl.valid ? "1" : "0");
    disk_->store(key, result);
    return memo_.emplace(k, bl).first->second;
}

BitlineLoad LatchedCellModel::extract(bool value, double vss, double v_bl,
                                      double v_blb) {
    BitlineLoad out;
    out.v_bl = v_bl;
    out.v_blb = v_blb;
    out.vss = vss;

    sram::SramCell& cell = *probe_;
    // Hold configuration (WL inactive, switches closed), then pin the
    // column rails at the requested bias.
    sram::program_hold(cell);
    cell.v_vss->set_waveform(Waveform::dc(vss));
    cell.v_bl->set_waveform(Waveform::dc(v_bl));
    cell.v_blb->set_waveform(Waveform::dc(v_blb));

    const spice::ScopedContext bind(sim_);
    const spice::SolverOptions opts;
    // cold_guess_ is only a warm start here: solve_hold_state re-solves at
    // the current bias regardless, so reusing the previous bias's settling
    // point merely saves its Newton the cold ramp-up.
    sram::HoldState hs = sram::solve_hold_state(cell, value, opts,
                                                &cold_guess_);
    if (!hs.state_ok)
        return out; // valid stays false

    out.i_bl = cell.v_bl->delivered_current(hs.x);
    out.i_blb = cell.v_blb->delivered_current(hs.x);
    out.v_q = spice::node_voltage(hs.x, cell.q);
    out.v_qb = spice::node_voltage(hs.x, cell.qb);

    // Finite-difference conductances, one perturbed rail at a time,
    // warm-started from the base operating point.
    const double dv = extraction_dv_;
    auto perturbed = [&](spice::VoltageSource* src, double base,
                         double* i_out) {
        src->set_waveform(Waveform::dc(base + dv));
        la::Vector guess = hs.x;
        const spice::DcResult d = spice::solve_dc(cell.circuit, opts, 0.0,
                                                  &guess);
        src->set_waveform(Waveform::dc(base));
        if (!d.converged)
            return false;
        *i_out = src->delivered_current(d.x);
        return true;
    };
    double i_bl_dv = 0.0;
    double i_blb_dv = 0.0;
    if (!perturbed(cell.v_bl, v_bl, &i_bl_dv) ||
        !perturbed(cell.v_blb, v_blb, &i_blb_dv))
        return out;
    out.g_bl = (i_bl_dv - out.i_bl) / dv;
    out.g_blb = (i_blb_dv - out.i_blb) / dv;
    out.valid = true;
    return out;
}

} // namespace tfetsram::hier
