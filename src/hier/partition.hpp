#pragma once
// Access-pattern partitioner for the mixed-level array engine. Given an
// operation (write/read at a row/column), it decides which cells must be
// solved at full SPICE level — the *active partition* — while every other
// cell stays latched behind a lumped bitline load (see latched_cell.hpp).
//
// The promotion rules mirror the physics of the flat driver
// (array/array.cpp):
//  * Any operation asserts one wordline, so every cell on the accessed
//    row conducts through its access device — all of them promote
//    (kWordlineEdge). This is exactly the half-select population: a write
//    to one column read-disturbs the accessed row's other cells, and the
//    mixed engine must resolve those at device level, not behaviorally.
//  * Writes additionally swing the target column's bitlines rail-to-rail
//    (a guaranteed large excursion), so a few quiescent *sentinel* cells
//    on that column promote too (kBitlineExcursion) — they anchor the
//    latched approximation for the remaining cells of the column, and
//    give the guard monitor concrete device-level neighbors to compare
//    against.
//  * If the runtime guard band trips on a column's lumped rail, refine()
//    promotes further sentinels on that column and the operation re-runs
//    (kGuardBand).
//
// Plans are deterministic: promoted cells are listed accessed row first
// (column order), then sentinels nearest-row-first — the differential
// tests pin the resulting counter values exactly.

#include <cstddef>
#include <vector>

namespace tfetsram::hier {

/// Why a cell joined the active partition.
enum class PromoteReason {
    kWordlineEdge,      ///< on the asserted row (includes half-selected)
    kBitlineExcursion,  ///< sentinel on a column with a planned full swing
    kGuardBand,         ///< runtime guard-band trip promoted it (refine)
};
const char* to_string(PromoteReason reason);

/// Grid coordinate of one cell.
struct CellRef {
    std::size_t row = 0;
    std::size_t col = 0;
    friend bool operator==(const CellRef&, const CellRef&) = default;
};

struct PromotedCell {
    CellRef ref;
    PromoteReason reason = PromoteReason::kWordlineEdge;
};

/// One operation's active partition.
struct PartitionPlan {
    std::size_t access_row = 0;
    std::size_t access_col = 0;
    bool is_write = false;
    /// Deterministic order: accessed row (by column), then sentinels.
    std::vector<PromotedCell> promoted;

    [[nodiscard]] bool contains(std::size_t row, std::size_t col) const;
    [[nodiscard]] std::size_t count() const { return promoted.size(); }
};

/// Tunables governing partition size and the latched-approximation guard.
struct PartitionPolicy {
    /// Allowed deviation of a lumped column rail beyond the envelope
    /// spanned by its quiescent and extraction levels [V]. A rail leaving
    /// the band trips a guard event and the operation re-runs with a
    /// refined plan.
    double guard_band = 0.25;
    /// Quiescent cells promoted per full-swing column as excursion
    /// sentinels (clamped to the rows actually available).
    std::size_t sentinel_rows = 2;
    /// Additional sentinels promoted per guard trip.
    std::size_t guard_promote = 2;
    /// Bound on guard-trip re-runs per operation; afterwards the column's
    /// guard is accepted as-is (the trip is still counted).
    std::size_t max_guard_retries = 2;
};

class Partitioner {
public:
    Partitioner(std::size_t rows, std::size_t cols, PartitionPolicy policy);

    [[nodiscard]] PartitionPlan plan_write(std::size_t row,
                                           std::size_t col) const;
    [[nodiscard]] PartitionPlan plan_read(std::size_t row,
                                          std::size_t col) const;

    /// Promote up to policy().guard_promote further quiescent cells of
    /// `col` into `plan` (reason kGuardBand), nearest the accessed row
    /// first. Returns how many were added — 0 means the column is already
    /// fully promoted and no further refinement is possible.
    std::size_t refine(PartitionPlan& plan, std::size_t col) const;

    [[nodiscard]] const PartitionPolicy& policy() const { return policy_; }
    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

private:
    /// Quiescent rows of `col` not yet in `plan`, nearest `access_row`
    /// first (below before above at equal distance), capped at `limit`.
    [[nodiscard]] std::vector<std::size_t>
    free_rows(const PartitionPlan& plan, std::size_t col,
              std::size_t limit) const;

    std::size_t rows_;
    std::size_t cols_;
    PartitionPolicy policy_;
};

} // namespace tfetsram::hier
