#include "hier/engine.hpp"

#include "util/contracts.hpp"

namespace tfetsram::hier {

const char* to_string(EngineMode mode) {
    switch (mode) {
    case EngineMode::kFlat: return "flat";
    case EngineMode::kMixed: return "mixed";
    case EngineMode::kAuto: return "auto";
    }
    return "?";
}

ArrayEngine::ArrayEngine(const array::ArrayConfig& config, EngineMode mode,
                         HierConfig hier, const spice::SimContext* sim)
    : config_(config) {
    const bool use_mixed =
        mode == EngineMode::kMixed ||
        (mode == EngineMode::kAuto && config.rows >= kAutoMixedRows);
    if (use_mixed)
        mixed_ = std::make_unique<MixedArray>(config, hier, sim);
    else
        flat_ = std::make_unique<array::SramArray>(config, sim);
}

bool ArrayEngine::initialize(const std::vector<std::vector<bool>>& data) {
    return mixed_ ? mixed_->initialize(data) : flat_->initialize(data);
}

array::OpResult ArrayEngine::write(std::size_t row, std::size_t col,
                                   bool value) {
    return mixed_ ? mixed_->write(row, col, value)
                  : flat_->write(row, col, value);
}

array::ReadResult ArrayEngine::read(std::size_t row, std::size_t col) {
    return mixed_ ? mixed_->read(row, col) : flat_->read(row, col);
}

bool ArrayEngine::stored(std::size_t row, std::size_t col) const {
    return mixed_ ? mixed_->stored(row, col) : flat_->stored(row, col);
}

double ArrayEngine::separation(std::size_t row, std::size_t col) const {
    return mixed_ ? mixed_->separation(row, col)
                  : flat_->separation(row, col);
}

spice::SolverInfo ArrayEngine::solver_info() {
    return mixed_ ? mixed_->partition_solver_info() : flat_->solver_info();
}

std::size_t ArrayEngine::transistors() const {
    return mixed_ ? mixed_->partition_transistors()
                  : flat_->circuit().transistors().size();
}

std::size_t ArrayEngine::unknowns() const {
    return mixed_ ? mixed_->partition_unknowns()
                  : flat_->circuit().num_unknowns();
}

const HierStats* ArrayEngine::hier_stats() const {
    return mixed_ ? &mixed_->stats() : nullptr;
}

} // namespace tfetsram::hier
