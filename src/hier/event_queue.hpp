#pragma once
// Deterministic event queue of the mixed-level engine. Level transitions
// (promote to SPICE, re-linearize a lumped load, demote back to latched)
// are modeled as discrete events keyed to operation timeline instants —
// the wordline edges and guard-band trips — and drained in strict
// (time, sequence) order, so two runs of the same operation sequence
// produce byte-identical event traces and counter values. The drained
// trace is kept per operation for tests and diagnostics.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hier/partition.hpp"

namespace tfetsram::hier {

enum class EventKind {
    kPromote,     ///< cell enters the active partition
    kRelinearize, ///< a column's lumped load is (re)extracted and stamped
    kDemote,      ///< cell re-latches after the post-access settle
    kGuardTrip,   ///< a lumped rail left its guard band; plan refined
};
const char* to_string(EventKind kind);

/// One level-transition event. `row` is unused (0) for column-scoped
/// events (kRelinearize, kGuardTrip).
struct Event {
    double time = 0.0;      ///< operation-timeline instant [s]
    std::uint64_t seq = 0;  ///< tie-break: issue order at equal time
    EventKind kind = EventKind::kPromote;
    std::size_t row = 0;
    std::size_t col = 0;
    PromoteReason reason = PromoteReason::kWordlineEdge; ///< kPromote only
};

/// Min-queue over (time, seq). push() assigns the sequence number, so
/// issue order is the deterministic tie-break at equal times.
class EventQueue {
public:
    void push(Event ev);
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }
    /// Pop the earliest event. Precondition: !empty().
    Event pop();
    void clear();

private:
    std::vector<Event> heap_;
    std::uint64_t next_seq_ = 0;
};

/// Render an event for diagnostics, e.g.
/// "t=565ps promote r3c1 (wordline-edge)".
std::string to_string(const Event& ev);

} // namespace tfetsram::hier
