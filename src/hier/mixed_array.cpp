#include "hier/mixed_array.hpp"

#include <algorithm>
#include <cmath>

#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"
#include "util/contracts.hpp"

namespace tfetsram::hier {

namespace {

using spice::Waveform;

// Operation timing constants of the flat driver (array/array.cpp). They
// must stay identical in both engines — the differential tests compare
// mixed and flat outcomes on the same waveform program, so any drift here
// shows up as a voltage mismatch there.
constexpr double kSettle = 50e-12;
constexpr double kAssistLead = 500e-12;
constexpr double kAssistEdge = 10e-12;
constexpr double kWlEdge = 5e-12;
constexpr double kPost = 400e-12;
constexpr double kAssistLag = 30e-12;

/// Base level until t_on, ramp to active, hold until t_off, ramp back.
Waveform excursion(double base, double active, double t_on, double t_off,
                   double edge) {
    if (base == active)
        return Waveform::dc(base);
    return Waveform::pwl({{t_on, base},
                          {t_on + edge, active},
                          {t_off, active},
                          {t_off + edge, base}});
}

bool wordline_active_low(const sram::CellConfig& cell) {
    return cell.kind == sram::CellKind::kTfet6T &&
           sram::access_is_ptype(cell.access);
}

} // namespace

namespace {

// Reject degenerate configurations before any member (the Partitioner in
// particular) consumes them, so the caller sees kInvalidConfig rather
// than a contract violation from an internal component.
const array::ArrayConfig& validated(const array::ArrayConfig& config) {
    array::validate_config(config);
    return config;
}

} // namespace

MixedArray::MixedArray(const array::ArrayConfig& config, HierConfig hier,
                       const spice::SimContext* sim)
    : config_(validated(config)), hier_(hier), sim_(sim),
      partitioner_(config.rows, config.cols, hier.partition),
      model_(config.cell, sim) {
    TFET_EXPECTS(config.cell.kind == sram::CellKind::kCmos6T ||
                 config.cell.kind == sram::CellKind::kTfet6T);
    model_.set_extraction_dv(hier_.extraction_dv);
    store_.resize(config_.rows * config_.cols);
}

const LatchedState& MixedArray::at(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(row < config_.rows && col < config_.cols);
    return store_[row * config_.cols + col];
}

bool MixedArray::initialize(const std::vector<std::vector<bool>>& data) {
    TFET_EXPECTS(data.size() == config_.rows);
    for (const auto& row : data)
        TFET_EXPECTS(row.size() == config_.cols);

    const spice::ScopedContext bind(sim_);
    const double vdd = config_.cell.vdd;
    for (std::size_t r = 0; r < config_.rows; ++r) {
        for (std::size_t c = 0; c < config_.cols; ++c) {
            // The latched hold point at quiescent column levels; one
            // extraction per stored polarity serves the whole grid.
            const BitlineLoad& l = model_.load(data[r][c], 0.0, vdd, vdd);
            if (!l.valid)
                return false;
            LatchedState& s = store_[r * config_.cols + c];
            s.value = data[r][c];
            s.v_q = l.v_q;
            s.v_qb = l.v_qb;
        }
    }
    initialized_ = true;
    return true;
}

bool MixedArray::stored(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(initialized_);
    return at(row, col).value;
}

double MixedArray::separation(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(initialized_);
    const LatchedState& s = at(row, col);
    return std::fabs(s.v_q - s.v_qb);
}

const LatchedState& MixedArray::latched(std::size_t row,
                                        std::size_t col) const {
    TFET_EXPECTS(initialized_);
    return at(row, col);
}

spice::SolverInfo MixedArray::partition_solver_info() {
    if (last_partition_ == nullptr)
        return {};
    return spice::probe_solver_info(last_partition_->ckt, sim_);
}

std::size_t MixedArray::partition_transistors() const {
    return last_partition_ == nullptr
               ? 0
               : last_partition_->ckt.transistors().size();
}

std::size_t MixedArray::partition_unknowns() const {
    return last_partition_ == nullptr ? 0
                                      : last_partition_->ckt.num_unknowns();
}

std::unique_ptr<MixedArray::Partition>
MixedArray::build_partition(const PartitionPlan& plan) {
    auto part = std::make_unique<Partition>();
    spice::Circuit& ckt = part->ckt;
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);

    part->vdd_node = ckt.add_node("vdd");
    ckt.add_vsource("Vvdd", part->vdd_node, spice::kGround,
                    Waveform::dc(vdd));

    // Every column keeps its full rail infrastructure — bitline pair with
    // the whole column's wire capacitance, precharge switches, segmented
    // virtual ground — because the operation waveforms act on columns, not
    // cells. Only the cells themselves are partitioned.
    part->cols.resize(config_.cols);
    for (std::size_t c = 0; c < config_.cols; ++c) {
        ColHandles& col = part->cols[c];
        const std::string id = std::to_string(c);
        col.bl = ckt.add_node("bl" + id);
        col.blb = ckt.add_node("blb" + id);
        const spice::NodeId bld = ckt.add_node("bl" + id + "_drv");
        const spice::NodeId blbd = ckt.add_node("blb" + id + "_drv");
        col.v_bl = &ckt.add_vsource("Vbl" + id, bld, spice::kGround,
                                    Waveform::dc(vdd));
        col.v_blb = &ckt.add_vsource("Vblb" + id, blbd, spice::kGround,
                                     Waveform::dc(vdd));
        col.sw_bl = &ckt.add_switch("SWbl" + id, bld, col.bl,
                                    config_.cell.r_precharge, 1e12,
                                    Waveform::dc(1.0));
        col.sw_blb = &ckt.add_switch("SWblb" + id, blbd, col.blb,
                                     config_.cell.r_precharge, 1e12,
                                     Waveform::dc(1.0));
        const double c_bl =
            config_.c_bitline_per_row * static_cast<double>(config_.rows);
        ckt.add_capacitor("Cbl" + id, col.bl, spice::kGround, c_bl);
        ckt.add_capacitor("Cblb" + id, col.blb, spice::kGround, c_bl);
        col.vss = ckt.add_node("vss" + id);
        col.v_vss = &ckt.add_vsource("Vvss" + id, col.vss, spice::kGround,
                                     Waveform::dc(0.0));
        // The latched population's lumped leakage; programmed per
        // operation by program_loads().
        col.load_bl = &ckt.add_linearized_load("Lbl" + id, col.bl);
        col.load_blb = &ckt.add_linearized_load("Lblb" + id, col.blb);
    }

    // Wordlines only for rows that own at least one promoted cell.
    part->wl.assign(config_.rows, nullptr);
    std::vector<spice::NodeId> wl_node(config_.rows, spice::kGround);
    for (const PromotedCell& p : plan.promoted) {
        const std::size_t r = p.ref.row;
        if (part->wl[r] != nullptr)
            continue;
        const std::string rid = std::to_string(r);
        wl_node[r] = ckt.add_node("wl" + rid);
        part->wl[r] = &ckt.add_vsource("Vwl" + rid, wl_node[r],
                                       spice::kGround,
                                       Waveform::dc(active_low ? vdd : 0.0));
    }

    for (const PromotedCell& p : plan.promoted) {
        ActiveCell ac;
        ac.ref = p.ref;
        const std::string cid =
            std::to_string(p.ref.row) + "_" + std::to_string(p.ref.col);
        ac.q = ckt.add_node("q" + cid);
        ac.qb = ckt.add_node("qb" + cid);
        const ColHandles& col = part->cols[p.ref.col];
        const sram::CellPorts ports{ac.q,    ac.qb,
                                    col.bl,  col.blb,
                                    wl_node[p.ref.row], part->vdd_node,
                                    col.vss};
        sram::build_6t_devices(ckt, config_.cell, ports, "x" + cid + "_");
        part->cells.push_back(ac);
    }
    ckt.prepare();
    return part;
}

MixedArray::ColumnBias MixedArray::column_bias(const PartitionPlan& plan,
                                               std::size_t col,
                                               bool value) const {
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    const double wl_active = active_low ? 0.0 : vdd;
    ColumnBias b;
    b.v_bl = vdd;
    b.v_blb = vdd;
    b.vss = 0.0;
    if (plan.is_write) {
        if (col == plan.access_col) {
            const sram::AssistLevels wa = sram::assist_levels(
                vdd, wl_active, config_.write_assist,
                config_.assist_fraction);
            b.vss = wa.vss;
            b.v_bl = value ? wa.bl_high : wa.bl_low;
            b.v_blb = value ? wa.bl_low : wa.bl_high;
        } else if (config_.read_assist != sram::Assist::kNone) {
            const sram::AssistLevels ra = sram::assist_levels(
                vdd, wl_active, config_.read_assist,
                config_.assist_fraction);
            b.vss = ra.vss;
        }
    } else {
        const sram::AssistLevels ra =
            sram::assist_levels(vdd, wl_active, config_.read_assist,
                                config_.assist_fraction);
        b.vss = ra.vss;
        if (col == plan.access_col) {
            b.v_bl = ra.bl_high;
            b.v_blb = ra.bl_high;
        }
    }
    return b;
}

bool MixedArray::program_loads(Partition& part, const PartitionPlan& plan,
                               bool value, std::string* message) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
        ColHandles& col = part.cols[c];
        std::size_t n0 = 0;
        std::size_t n1 = 0;
        for (std::size_t r = 0; r < config_.rows; ++r) {
            if (plan.contains(r, c))
                continue;
            if (store_[r * config_.cols + c].value)
                ++n1;
            else
                ++n0;
        }
        col.latched_cells = n0 + n1;
        const ColumnBias b = column_bias(plan, c, value);
        col.v0_bl = b.v_bl;
        col.v0_blb = b.v_blb;
        if (col.latched_cells == 0) {
            col.load_bl->set_load(0.0, 0.0, 0.0, 0.0);
            col.load_blb->set_load(0.0, 0.0, 0.0, 0.0);
            continue;
        }
        double i_bl = 0.0;
        double g_bl = 0.0;
        double i_blb = 0.0;
        double g_blb = 0.0;
        const std::pair<std::size_t, bool> populations[] = {{n0, false},
                                                            {n1, true}};
        for (const auto& [n, state] : populations) {
            if (n == 0)
                continue;
            const BitlineLoad& l = model_.load(state, b.vss, b.v_bl, b.v_blb);
            if (!l.valid) {
                if (message != nullptr)
                    *message = "latched-cell extraction failed to converge "
                               "(column " +
                               std::to_string(c) + ", state " +
                               (state ? std::string("1") : std::string("0")) +
                               ")";
                return false;
            }
            const double scale = static_cast<double>(n);
            i_bl += scale * l.i_bl;
            g_bl += scale * l.g_bl;
            i_blb += scale * l.i_blb;
            g_blb += scale * l.g_blb;
        }
        col.load_bl->set_load(1.0, i_bl, g_bl, b.v_bl);
        col.load_blb->set_load(1.0, i_blb, g_blb, b.v_blb);
    }
    return true;
}

double MixedArray::program_write(Partition& part, const PartitionPlan& plan,
                                 bool value, double* wl_start_out) const {
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    const double wl_inactive = active_low ? vdd : 0.0;
    const sram::AssistLevels lv = sram::assist_levels(
        vdd, active_low ? 0.0 : vdd, config_.write_assist,
        config_.assist_fraction);

    const double ta_on = kSettle;
    const double wl_start = ta_on + kAssistEdge + kAssistLead;
    const double wl_fall = wl_start + kWlEdge + config_.write_pulse;
    const double wl_end = wl_fall + kWlEdge;
    const double ta_off = wl_end + kAssistLag;
    const double t_end = wl_end + kPost;
    *wl_start_out = wl_start;

    part.wl[plan.access_row]->set_waveform(
        excursion(wl_inactive, lv.wl_active, wl_start, wl_fall, kWlEdge));
    ColHandles& target = part.cols[plan.access_col];
    target.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, kAssistEdge));
    target.v_bl->set_waveform(excursion(vdd, value ? lv.bl_high : lv.bl_low,
                                        ta_on, ta_off, kAssistEdge));
    target.v_blb->set_waveform(excursion(vdd, value ? lv.bl_low : lv.bl_high,
                                         ta_on, ta_off, kAssistEdge));
    if (config_.read_assist != sram::Assist::kNone) {
        const sram::AssistLevels ra = sram::assist_levels(
            vdd, active_low ? 0.0 : vdd, config_.read_assist,
            config_.assist_fraction);
        for (std::size_t c = 0; c < config_.cols; ++c)
            if (c != plan.access_col)
                part.cols[c].v_vss->set_waveform(
                    excursion(0.0, ra.vss, ta_on, ta_off, kAssistEdge));
    }
    return t_end;
}

double MixedArray::program_read(Partition& part, const PartitionPlan& plan,
                                double* wl_start_out) const {
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    const double wl_inactive = active_low ? vdd : 0.0;
    const sram::AssistLevels lv =
        sram::assist_levels(vdd, active_low ? 0.0 : vdd, config_.read_assist,
                            config_.assist_fraction);

    const double ta_on = kSettle;
    const double wl_start = ta_on + kAssistEdge + kAssistLead;
    const double wl_fall = wl_start + kWlEdge + config_.read_duration;
    const double wl_end = wl_fall + kWlEdge;
    const double ta_off = wl_end + kAssistLag;
    const double t_end = wl_end + kPost;
    *wl_start_out = wl_start;

    part.wl[plan.access_row]->set_waveform(
        excursion(wl_inactive, lv.wl_active, wl_start, wl_fall, kWlEdge));
    for (std::size_t c = 0; c < config_.cols; ++c)
        part.cols[c].v_vss->set_waveform(
            excursion(0.0, lv.vss, ta_on, ta_off, kAssistEdge));
    ColHandles& target = part.cols[plan.access_col];
    target.v_bl->set_waveform(
        excursion(vdd, lv.bl_high, ta_on, ta_off, kAssistEdge));
    target.v_blb->set_waveform(
        excursion(vdd, lv.bl_high, ta_on, ta_off, kAssistEdge));
    const Waveform open = Waveform::pwl(
        {{wl_start - 4e-12, 1.0}, {wl_start - 2e-12, 0.0}});
    target.sw_bl->set_control(open);
    target.sw_blb->set_control(open);
    return t_end;
}

bool MixedArray::solve_partition_dc(Partition& part, std::string* message) {
    const spice::SolverOptions opts;
    const spice::DcResult cold = spice::solve_dc(part.ckt, opts);
    la::Vector guess = cold.converged
                           ? cold.x
                           : la::Vector(part.ckt.num_unknowns(), 0.0);
    for (const ActiveCell& ac : part.cells) {
        const LatchedState& s =
            store_[ac.ref.row * config_.cols + ac.ref.col];
        guess[ac.q - 1] = s.v_q;
        guess[ac.qb - 1] = s.v_qb;
    }
    spice::DcResult settled = spice::solve_dc(part.ckt, opts, 0.0, &guess);
    if (!settled.converged) {
        spice::SolverOptions crawl = opts;
        crawl.dv_limit = 0.05;
        settled = spice::solve_dc(part.ckt, crawl, 0.0, &guess);
        if (!settled.converged) {
            if (message != nullptr)
                *message = "active-partition DC init failed to converge";
            return false;
        }
    }
    part.state = std::move(settled.x);
    return true;
}

MixedArray::AttemptOutcome
MixedArray::run_attempt(Partition& part, double t_end,
                        const std::vector<bool>& monitor_col) {
    AttemptOutcome out;
    const double gb = partitioner_.policy().guard_band;
    const double vdd = config_.cell.vdd;
    spice::StopCondition stop;
    if (std::any_of(monitor_col.begin(), monitor_col.end(),
                    [](bool m) { return m; })) {
        stop = [&](double t, const la::Vector& x) {
            for (std::size_t c = 0; c < part.cols.size(); ++c) {
                const ColHandles& col = part.cols[c];
                if (!monitor_col[c] || col.latched_cells == 0)
                    continue;
                // Allowed band: the envelope spanned by the quiescent
                // level (bitlines rest at VDD) and the extraction bias,
                // padded by the guard band. The rail legitimately ramps
                // between those two levels during the operation; escaping
                // the envelope means the latched linearization is being
                // evaluated far from its extraction point.
                const struct {
                    spice::NodeId node;
                    double v0;
                } rails[2] = {{col.bl, col.v0_bl}, {col.blb, col.v0_blb}};
                for (const auto& rail : rails) {
                    const double lo = std::min(vdd, rail.v0) - gb;
                    const double hi = std::max(vdd, rail.v0) + gb;
                    const double v = spice::node_voltage(x, rail.node);
                    if (v < lo || v > hi) {
                        out.guard_tripped = true;
                        out.guard_col = c;
                        out.guard_time = t;
                        return true;
                    }
                }
            }
            return false;
        };
    }
    const spice::SolverOptions opts;
    const spice::TransientResult tr =
        spice::solve_transient(part.ckt, opts, t_end, stop, &part.state);
    if (!tr.completed) {
        out.message = tr.message;
        out.guard_tripped = false;
        return out;
    }
    if (tr.stopped_early)
        return out; // guard fields were set by the stop condition
    out.completed = true;
    part.state = tr.state(tr.size() - 1);
    return out;
}

void MixedArray::drain_events() {
    spice::SolverStats& ss = spice::solver_stats();
    while (!queue_.empty()) {
        const Event ev = queue_.pop();
        switch (ev.kind) {
        case EventKind::kPromote:
            ++stats_.promotions;
            ++ss.hier_promotions;
            break;
        case EventKind::kDemote:
            ++stats_.demotions;
            ++ss.hier_demotions;
            break;
        case EventKind::kRelinearize:
            ++stats_.relinearizations;
            ++ss.hier_relinearizations;
            break;
        case EventKind::kGuardTrip:
            ++stats_.guard_retries;
            ++ss.hier_guard_retries;
            break;
        }
        trace_.push_back(ev);
    }
}

void MixedArray::relatch(const Partition& part) {
    for (const ActiveCell& ac : part.cells) {
        LatchedState& s = store_[ac.ref.row * config_.cols + ac.ref.col];
        s.v_q = spice::node_voltage(part.state, ac.q);
        s.v_qb = spice::node_voltage(part.state, ac.qb);
        s.value = s.v_q > s.v_qb;
    }
}

MixedArray::ExecOutcome MixedArray::execute(PartitionPlan& plan, bool value) {
    ExecOutcome er;
    trace_.clear();
    queue_.clear();
    std::vector<bool> monitor(config_.cols, true);
    const std::size_t max_attempts =
        partitioner_.policy().max_guard_retries + 1;

    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        // Cancellation checkpoint per promote/retry attempt: an expired or
        // cancelled context abandons the operation gracefully (ok=false,
        // message says why) instead of burning further guard retries.
        {
            const spice::SimContext& hctx =
                sim_ != nullptr ? *sim_ : spice::ambient_context();
            const spice::SolveErrorCode status = hctx.poll_cancellation();
            if (status != spice::SolveErrorCode::kNone) {
                ++hctx.stats().cancelled_solves;
                er.message =
                    std::string("mixed-array operation abandoned: ") +
                    spice::to_string(status);
                drain_events();
                return er;
            }
        }
        std::unique_ptr<Partition> part = build_partition(plan);
        const std::size_t unknowns = part->ckt.num_unknowns();
        stats_.last_active_cells = part->cells.size();
        stats_.last_latched_cells =
            config_.rows * config_.cols - part->cells.size();
        stats_.last_active_unknowns = unknowns;
        stats_.max_active_unknowns =
            std::max(stats_.max_active_unknowns, unknowns);
        spice::solver_stats().hier_active_unknowns = unknowns;

        if (!program_loads(*part, plan, value, &er.message))
            return er;
        double wl_start = 0.0;
        const double t_end =
            plan.is_write ? program_write(*part, plan, value, &wl_start)
                          : program_read(*part, plan, &wl_start);

        // This attempt's level transitions, in timeline order: lumped
        // loads stamp at t=0 (as do guard-promoted sentinels, present
        // from the start of a retry), excursion sentinels activate with
        // the column rails at t_settle, the accessed row promotes on its
        // wordline edge, and everything demotes after the post-settle.
        for (std::size_t c = 0; c < config_.cols; ++c)
            if (part->cols[c].latched_cells > 0)
                queue_.push({0.0, 0, EventKind::kRelinearize, 0, c,
                             PromoteReason::kWordlineEdge});
        for (const PromotedCell& p : plan.promoted) {
            double t = 0.0;
            if (p.reason == PromoteReason::kWordlineEdge)
                t = wl_start;
            else if (p.reason == PromoteReason::kBitlineExcursion)
                t = kSettle;
            queue_.push({t, 0, EventKind::kPromote, p.ref.row, p.ref.col,
                         p.reason});
        }

        if (!solve_partition_dc(*part, &er.message)) {
            drain_events();
            return er;
        }

        // The final permitted attempt runs unguarded: its result stands.
        const bool guarded = attempt + 1 < max_attempts;
        std::vector<bool> attempt_monitor =
            guarded ? monitor : std::vector<bool>(config_.cols, false);
        const AttemptOutcome out =
            run_attempt(*part, t_end, attempt_monitor);

        if (!out.completed && !out.guard_tripped) {
            er.message = out.message;
            drain_events();
            return er;
        }
        if (out.guard_tripped) {
            for (const PromotedCell& p : plan.promoted)
                queue_.push({out.guard_time, 0, EventKind::kDemote,
                             p.ref.row, p.ref.col, p.reason});
            queue_.push({out.guard_time, 0, EventKind::kGuardTrip, 0,
                         out.guard_col, PromoteReason::kGuardBand});
            drain_events();
            // More sentinels on the offending column; when the column is
            // already fully promoted, stop guarding it instead.
            if (partitioner_.refine(plan, out.guard_col) == 0)
                monitor[out.guard_col] = false;
            continue;
        }

        for (const PromotedCell& p : plan.promoted)
            queue_.push({t_end, 0, EventKind::kDemote, p.ref.row, p.ref.col,
                         p.reason});
        drain_events();
        relatch(*part);
        last_partition_ = std::move(part);
        ++stats_.operations;
        er.completed = true;
        er.t_end = t_end;
        return er;
    }
    TFET_ASSERT(false); // final attempt is unguarded and always returns
    return er;
}

array::OpResult MixedArray::write(std::size_t row, std::size_t col,
                                  bool value) {
    TFET_EXPECTS(initialized_);
    TFET_EXPECTS(row < config_.rows && col < config_.cols);
    array::OpResult res;
    const spice::ScopedContext bind(sim_);
    PartitionPlan plan = partitioner_.plan_write(row, col);
    const ExecOutcome er = execute(plan, value);
    if (!er.completed) {
        res.message = er.message;
        return res;
    }
    res.duration = er.t_end;
    res.ok = stored(row, col) == value;
    if (!res.ok)
        res.message = "write did not flip the cell";
    return res;
}

array::ReadResult MixedArray::read(std::size_t row, std::size_t col) {
    TFET_EXPECTS(initialized_);
    TFET_EXPECTS(row < config_.rows && col < config_.cols);
    array::ReadResult res;
    const spice::ScopedContext bind(sim_);
    PartitionPlan plan = partitioner_.plan_read(row, col);
    const ExecOutcome er = execute(plan, /*value=*/false);
    if (!er.completed) {
        res.message = er.message;
        return res;
    }
    const ColHandles& target = last_partition_->cols[col];
    const double dbl = spice::branch_voltage(last_partition_->state,
                                             target.bl, target.blb);
    res.differential = dbl;
    res.value = dbl > 0.0;
    res.ok = std::fabs(dbl) >= config_.sense_margin;
    if (!res.ok)
        res.message = "differential below sense margin";
    return res;
}

} // namespace tfetsram::hier
