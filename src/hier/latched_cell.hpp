#pragma once
// Latched behavioral cell model for the mixed-level array engine. A
// quiescent cell (wordline inactive) interacts with its column only
// through the DC leakage of its access devices — the storage caps hang on
// q/qb, not on the bitlines — so the whole cell collapses to a linearized
// Norton load per bitline: I(V) = i0 + g*(V - v0), with per-state
// coefficients extracted from single-cell hold-state DC solves.
//
// Extraction solves the probe cell's operating point at the column bias
// (vss, v_bl, v_blb), reads each bitline source's delivered current, and
// obtains the small-signal conductance by a finite-difference re-solve at
// v_bl + dv (warm-started from the base point, so each extra coefficient
// costs a couple of Newton iterations). Results are memoized in-process
// per (state, quantized bias) and persisted through the runner's
// content-addressed ResultCache keyed on the cell parameters, model-set
// version, state, and bias — a bench re-run replays extractions instead
// of re-simulating them.

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "la/matrix.hpp"
#include "runner/cache.hpp"
#include "sram/cell.hpp"

namespace tfetsram::spice {
class SimContext;
} // namespace tfetsram::spice

namespace tfetsram::hier {

/// Latched state of one quiescent cell: the stored bit plus the storage
/// node voltages it settled at (used to seed DC when it promotes).
struct LatchedState {
    bool value = false;
    double v_q = 0.0;
    double v_qb = 0.0;
};

/// Linearized per-cell bitline load at one (state, bias) point. All
/// currents are per cell, positive when drawn out of the bitline into the
/// cell; MixedArray scales by the latched-cell population when stamping.
struct BitlineLoad {
    // Extraction bias.
    double v_bl = 0.0;
    double v_blb = 0.0;
    double vss = 0.0;
    // Norton coefficients.
    double i_bl = 0.0;  ///< BL leakage at the bias [A]
    double i_blb = 0.0; ///< BLB leakage at the bias [A]
    double g_bl = 0.0;  ///< dI_bl/dV_bl [S]
    double g_blb = 0.0; ///< dI_blb/dV_blb [S]
    // Storage-node voltages of the quiescent cell at the bias.
    double v_q = 0.0;
    double v_qb = 0.0;
    bool valid = false; ///< extraction solves converged and held the state
};

/// Extracts and caches BitlineLoad coefficients for one cell
/// configuration. Not thread-safe: each MixedArray owns one.
class LatchedCellModel {
public:
    /// `sim` (non-owning, optional) pins extraction solves to an explicit
    /// context; its cache_dir also hosts the persistent extraction cache.
    explicit LatchedCellModel(const sram::CellConfig& config,
                              const spice::SimContext* sim = nullptr);
    ~LatchedCellModel();

    LatchedCellModel(const LatchedCellModel&) = delete;
    LatchedCellModel& operator=(const LatchedCellModel&) = delete;

    /// Load of a quiescent cell storing `value` at column levels
    /// (vss, v_bl, v_blb). Served from the memo when the quantized bias
    /// was seen before; otherwise from the persistent cache or a fresh
    /// extraction. The reference stays valid for the model's lifetime.
    const BitlineLoad& load(bool value, double vss, double v_bl,
                            double v_blb);

    /// Finite-difference step used for the conductance extraction [V].
    void set_extraction_dv(double dv);

    /// Cold extractions actually solved (memo and disk misses).
    [[nodiscard]] std::size_t extractions() const { return extractions_; }
    /// load() calls answered from memory or disk.
    [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }

private:
    /// Bias quantized to 1 uV so keys are robust against last-bit noise.
    using Key = std::tuple<bool, std::int64_t, std::int64_t, std::int64_t>;
    [[nodiscard]] Key quantize(bool value, double vss, double v_bl,
                               double v_blb) const;
    [[nodiscard]] runner::CacheKey disk_key(bool value, double vss,
                                            double v_bl, double v_blb) const;
    [[nodiscard]] BitlineLoad extract(bool value, double vss, double v_bl,
                                      double v_blb);

    sram::CellConfig config_;
    const spice::SimContext* sim_;
    std::unique_ptr<sram::SramCell> probe_;
    la::Vector cold_guess_;
    double extraction_dv_ = 10e-3;
    std::map<Key, BitlineLoad> memo_;
    std::unique_ptr<runner::ResultCache> disk_;
    std::size_t extractions_ = 0;
    std::size_t cache_hits_ = 0;
};

} // namespace tfetsram::hier
