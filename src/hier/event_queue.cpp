#include "hier/event_queue.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace tfetsram::hier {

namespace {

/// std::push_heap builds a max-heap, so "greater" orders the earliest
/// (time, seq) to the heap top.
bool later(const Event& a, const Event& b) {
    if (a.time != b.time)
        return a.time > b.time;
    return a.seq > b.seq;
}

} // namespace

const char* to_string(EventKind kind) {
    switch (kind) {
    case EventKind::kPromote: return "promote";
    case EventKind::kRelinearize: return "relinearize";
    case EventKind::kDemote: return "demote";
    case EventKind::kGuardTrip: return "guard-trip";
    }
    return "?";
}

void EventQueue::push(Event ev) {
    ev.seq = next_seq_++;
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), later);
}

Event EventQueue::pop() {
    TFET_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event ev = heap_.back();
    heap_.pop_back();
    return ev;
}

void EventQueue::clear() {
    heap_.clear();
    next_seq_ = 0;
}

std::string to_string(const Event& ev) {
    std::string out = "t=" + format_si(ev.time, "s") + " ";
    out += to_string(ev.kind);
    if (ev.kind == EventKind::kRelinearize ||
        ev.kind == EventKind::kGuardTrip) {
        out += " c" + std::to_string(ev.col);
    } else {
        out += " r" + std::to_string(ev.row) + "c" + std::to_string(ev.col);
    }
    if (ev.kind == EventKind::kPromote) {
        out += " (";
        out += to_string(ev.reason);
        out += ")";
    }
    return out;
}

} // namespace tfetsram::hier
