#include "hier/partition.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace tfetsram::hier {

const char* to_string(PromoteReason reason) {
    switch (reason) {
    case PromoteReason::kWordlineEdge: return "wordline-edge";
    case PromoteReason::kBitlineExcursion: return "bitline-excursion";
    case PromoteReason::kGuardBand: return "guard-band";
    }
    return "?";
}

bool PartitionPlan::contains(std::size_t row, std::size_t col) const {
    return std::any_of(promoted.begin(), promoted.end(),
                       [&](const PromotedCell& p) {
                           return p.ref.row == row && p.ref.col == col;
                       });
}

Partitioner::Partitioner(std::size_t rows, std::size_t cols,
                         PartitionPolicy policy)
    : rows_(rows), cols_(cols), policy_(policy) {
    TFET_EXPECTS(rows_ >= 1 && cols_ >= 1);
}

std::vector<std::size_t> Partitioner::free_rows(const PartitionPlan& plan,
                                                std::size_t col,
                                                std::size_t limit) const {
    std::vector<std::size_t> out;
    // Walk outward from the accessed row; rows below it (smaller index)
    // come first at equal distance so the order is total and obvious.
    for (std::size_t d = 1; d < rows_ && out.size() < limit; ++d) {
        if (plan.access_row >= d) {
            const std::size_t r = plan.access_row - d;
            if (!plan.contains(r, col) && out.size() < limit)
                out.push_back(r);
        }
        const std::size_t r = plan.access_row + d;
        if (r < rows_ && !plan.contains(r, col) && out.size() < limit)
            out.push_back(r);
    }
    return out;
}

PartitionPlan Partitioner::plan_write(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(row < rows_ && col < cols_);
    PartitionPlan plan;
    plan.access_row = row;
    plan.access_col = col;
    plan.is_write = true;
    // The asserted wordline opens every access device on the row: the
    // target cell plus all its half-selected row-mates.
    for (std::size_t c = 0; c < cols_; ++c)
        plan.promoted.push_back({{row, c}, PromoteReason::kWordlineEdge});
    // Excursion sentinels on the written column.
    for (std::size_t r : free_rows(plan, col, policy_.sentinel_rows))
        plan.promoted.push_back({{r, col}, PromoteReason::kBitlineExcursion});
    return plan;
}

PartitionPlan Partitioner::plan_read(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(row < rows_ && col < cols_);
    PartitionPlan plan;
    plan.access_row = row;
    plan.access_col = col;
    plan.is_write = false;
    // Reads keep every bitline within a precharge level of quiescence, so
    // the asserted row alone is the active partition.
    for (std::size_t c = 0; c < cols_; ++c)
        plan.promoted.push_back({{row, c}, PromoteReason::kWordlineEdge});
    return plan;
}

std::size_t Partitioner::refine(PartitionPlan& plan, std::size_t col) const {
    TFET_EXPECTS(col < cols_);
    const std::vector<std::size_t> rows =
        free_rows(plan, col, policy_.guard_promote);
    for (std::size_t r : rows)
        plan.promoted.push_back({{r, col}, PromoteReason::kGuardBand});
    return rows.size();
}

} // namespace tfetsram::hier
