#include "spice/elements.hpp"

#include <algorithm>
#include <cmath>

#include "spice/solution.hpp"

namespace tfetsram::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string label, NodeId a, NodeId b, double ohms)
    : Device(std::move(label)), a_(a), b_(b), ohms_(ohms) {
    TFET_EXPECTS(ohms > 0.0);
    TFET_EXPECTS(a != b);
}

void Resistor::stamp(Stamper& st, const AnalysisState& /*as*/,
                     const la::Vector& /*x*/) {
    st.add_conductance(a_, b_, 1.0 / ohms_);
}

double Resistor::power(const la::Vector& x) const {
    const double v = branch_voltage(x, a_, b_);
    return v * v / ohms_;
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string label, NodeId a, NodeId b, double farads)
    : Device(std::move(label)), a_(a), b_(b), farads_(farads) {
    TFET_EXPECTS(farads > 0.0);
    TFET_EXPECTS(a != b);
}

void Capacitor::stamp(Stamper& st, const AnalysisState& as,
                      const la::Vector& /*x*/) {
    if (as.mode == AnalysisMode::kDc)
        return; // open circuit at DC
    TFET_EXPECTS(as.dt > 0.0);
    const bool use_trap = as.integrator == Integrator::kTrapezoidal &&
                          !as.first_transient_step;
    double geq = 0.0;
    double ieq = 0.0;
    if (use_trap) {
        geq = 2.0 * farads_ / as.dt;
        ieq = -(geq * v_prev_ + i_prev_);
    } else {
        geq = farads_ / as.dt;
        ieq = -geq * v_prev_;
    }
    st.add_conductance(a_, b_, geq);
    st.add_current(a_, b_, ieq);
}

void Capacitor::begin_transient(const la::Vector& x0) {
    v_prev_ = branch_voltage(x0, a_, b_);
    i_prev_ = 0.0; // quiescent: no displacement current at the DC point
}

void Capacitor::accept_step(const AnalysisState& as, const la::Vector& x) {
    const double v_new = branch_voltage(x, a_, b_);
    const bool use_trap = as.integrator == Integrator::kTrapezoidal &&
                          !as.first_transient_step;
    if (use_trap) {
        const double geq = 2.0 * farads_ / as.dt;
        i_prev_ = geq * (v_new - v_prev_) - i_prev_;
    } else {
        i_prev_ = farads_ / as.dt * (v_new - v_prev_);
    }
    v_prev_ = v_new;
}

double Capacitor::power(const la::Vector& /*x*/) const {
    return 0.0; // lossless; no DC dissipation
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string label, NodeId pos, NodeId neg,
                             Waveform wave)
    : Device(std::move(label)), pos_(pos), neg_(neg), wave_(std::move(wave)) {
    TFET_EXPECTS(pos != neg);
}

void VoltageSource::stamp(Stamper& st, const AnalysisState& as,
                          const la::Vector& /*x*/) {
    const double v = wave_.at(as.time) * as.source_scale;
    st.stamp_voltage_source(branch_, pos_, neg_, v);
}

double VoltageSource::delivered_current(const la::Vector& x) const {
    TFET_EXPECTS(unknown_index_ < x.size());
    // The MNA branch current flows pos -> (through source) -> neg, so the
    // current delivered out of the + terminal is its negation.
    return -x[unknown_index_];
}

double VoltageSource::power(const la::Vector& x) const {
    const double v = branch_voltage(x, pos_, neg_);
    // Positive when absorbing; a supply delivering power reports negative.
    return -v * delivered_current(x);
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string label, NodeId from, NodeId to,
                             Waveform wave)
    : Device(std::move(label)), from_(from), to_(to), wave_(std::move(wave)) {
    TFET_EXPECTS(from != to);
}

void CurrentSource::stamp(Stamper& st, const AnalysisState& as,
                          const la::Vector& /*x*/) {
    st.add_current(from_, to_, wave_.at(as.time) * as.source_scale);
}

double CurrentSource::power(const la::Vector& x) const {
    const double i = wave_.at(0.0);
    const double v = branch_voltage(x, from_, to_);
    return v * i; // absorbing when current flows from high to low potential
}

// ---------------------------------------------------------- LinearizedLoad

LinearizedLoad::LinearizedLoad(std::string label, NodeId node)
    : Device(std::move(label)), node_(node) {
    TFET_EXPECTS(node != kGround);
}

void LinearizedLoad::set_load(double scale, double i0, double g, double v0) {
    TFET_EXPECTS(scale >= 0.0);
    TFET_EXPECTS(std::isfinite(i0) && std::isfinite(g) && std::isfinite(v0));
    // A negative small-signal conductance (possible at an extraction bias
    // on a steep tunneling branch) would de-stabilize the otherwise
    // passive lumped load; clamp to the constant-current term only.
    scale_ = scale;
    i0_ = i0;
    g_ = g > 0.0 ? g : 0.0;
    v0_ = v0;
}

void LinearizedLoad::stamp(Stamper& st, const AnalysisState& /*as*/,
                           const la::Vector& /*x*/) {
    if (scale_ == 0.0)
        return;
    // Norton form of scale*(i0 + g*(V - v0)) leaving the node: conductance
    // scale*g to ground plus the bias-point constant scale*(i0 - g*v0).
    st.add_conductance(node_, kGround, scale_ * g_);
    st.add_current(node_, kGround, scale_ * (i0_ - g_ * v0_));
}

double LinearizedLoad::power(const la::Vector& x) const {
    const double v = node_voltage(x, node_);
    return v * current_at(v);
}

// ------------------------------------------------------------- TimedSwitch

TimedSwitch::TimedSwitch(std::string label, NodeId a, NodeId b, double r_on,
                         double r_off, Waveform control)
    : Device(std::move(label)), a_(a), b_(b), r_on_(r_on), r_off_(r_off),
      control_(std::move(control)) {
    TFET_EXPECTS(a != b);
    TFET_EXPECTS(r_on > 0.0 && r_off >= r_on);
}

double TimedSwitch::resistance_at(double t) const {
    const double c = std::clamp(control_.at(t), 0.0, 1.0);
    // Geometric interpolation: log-resistance moves linearly with control.
    return r_off_ * std::pow(r_on_ / r_off_, c);
}

void TimedSwitch::stamp(Stamper& st, const AnalysisState& as,
                        const la::Vector& /*x*/) {
    st.add_conductance(a_, b_, 1.0 / resistance_at(as.time));
}

double TimedSwitch::power(const la::Vector& x) const {
    const double v = branch_voltage(x, a_, b_);
    return v * v / resistance_at(0.0);
}

} // namespace tfetsram::spice
