#include "spice/stats.hpp"

#include "spice/context.hpp"

namespace tfetsram::spice {

SolverStats& solver_stats() {
    return ambient_context().stats();
}

} // namespace tfetsram::spice
