#include "spice/stats.hpp"

namespace tfetsram::spice {

SolverStats& solver_stats() {
    thread_local SolverStats stats;
    return stats;
}

} // namespace tfetsram::spice
