#include "spice/dc.hpp"

#include <cmath>
#include <limits>

#include "la/lu.hpp"
#include "spice/mna.hpp"
#include "spice/stats.hpp"
#include "util/fault.hpp"

namespace tfetsram::spice {

namespace detail {

namespace {

/// True KCL/branch residual norm at x: assemble there and evaluate
/// J(x)*x - rhs(x). (In the companion formulation this equals the sum of
/// nonlinear device currents at x, i.e. the genuine equation residual.)
double residual_norm(Circuit& circuit, const AnalysisState& as, double gmin,
                     const la::Vector& x, la::Matrix& jac, la::Vector& rhs) {
    assemble(circuit, as, x, gmin, jac, rhs);
    const la::Vector jx = jac.multiply(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = jx[i] - rhs[i];
        acc += r * r;
    }
    return std::sqrt(acc);
}

/// Body of detail::newton_raphson; the public wrapper meters it.
int newton_raphson_core(Circuit& circuit, const AnalysisState& as,
                        const SolverOptions& opts, double gmin,
                        la::Vector& x) {
    const std::size_t n = circuit.num_unknowns();
    const std::size_t n_node_unknowns = circuit.num_nodes() - 1;
    TFET_EXPECTS(x.size() == n);

    la::Matrix jac;
    la::Vector rhs;
    double resid = residual_norm(circuit, as, gmin, x, jac, rhs);

    for (int iter = 1; iter <= opts.max_nr_iterations; ++iter) {
        // `jac`/`rhs` hold the linearization at the current x.
        auto lu = la::LuFactorization::factor(jac);
        if (!lu)
            return -iter;
        const la::Vector x_new = lu->solve(rhs);

        // Convergence: the full Newton update is within tolerance. Checked
        // before any damping/line search — at the solution the update is
        // tiny regardless of what a noise-floor line search would decide.
        bool converged = true;
        for (std::size_t i = 0; i < n; ++i) {
            const double tol = i < n_node_unknowns
                                   ? opts.vntol + opts.reltol * std::fabs(x[i])
                                   : opts.itol + opts.reltol * std::fabs(x[i]);
            if (std::fabs(x_new[i] - x[i]) > tol) {
                converged = false;
                break;
            }
        }
        if (converged && iter >= 2) {
            x = x_new;
            return iter;
        }

        // Damping: bound the update so exponential devices cannot fling
        // the iterate out of their valid range.
        double max_dx = 0.0;
        for (std::size_t i = 0; i < n_node_unknowns; ++i)
            max_dx = std::max(max_dx, std::fabs(x_new[i] - x[i]));
        const double alpha0 =
            max_dx > opts.dv_limit ? opts.dv_limit / max_dx : 1.0;

        // Globalization: backtracking line search on the true residual
        // norm. Essential with lookup-table devices, whose tabulated
        // conductances make this a quasi-Newton iteration that can
        // otherwise limit-cycle in high-gain bias regions.
        // Below this the residual is numerical noise (LU round-off on the
        // source-constraint rows); insisting on strict decrease there
        // would starve the step to nothing.
        constexpr double kResidFloor = 1e-13;

        la::Vector x_try(n);
        double alpha = alpha0;
        double resid_try = 0.0;
        for (int bt = 0;; ++bt) {
            for (std::size_t i = 0; i < n; ++i)
                x_try[i] = x[i] + alpha * (x_new[i] - x[i]);
            resid_try = residual_norm(circuit, as, gmin, x_try, jac, rhs);
            if (resid < kResidFloor || resid_try < kResidFloor ||
                resid_try <= resid * (1.0 - 1e-4 * alpha) || bt >= 6)
                break;
            alpha *= 0.5;
        }

        x = x_try;
        resid = resid_try; // jac/rhs already hold the linearization at x
    }
    return -opts.max_nr_iterations;
}

} // namespace

int newton_raphson(Circuit& circuit, const AnalysisState& as,
                   const SolverOptions& opts, double gmin, la::Vector& x,
                   double* final_residual) {
    if (fault::should_fail(fault::Site::kNewton)) {
        if (final_residual != nullptr)
            *final_residual = std::numeric_limits<double>::quiet_NaN();
        return -1;
    }
    const int iters = newton_raphson_core(circuit, as, opts, gmin, x);
    solver_stats().nr_iterations +=
        static_cast<std::uint64_t>(std::abs(iters));
    if (final_residual != nullptr) {
        la::Matrix jac;
        la::Vector rhs;
        *final_residual = residual_norm(circuit, as, gmin, x, jac, rhs);
    }
    return iters;
}

} // namespace detail

DcResult solve_dc(Circuit& circuit, const SolverOptions& opts, double time,
                  const la::Vector* initial_guess) {
    ++solver_stats().dc_solves;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();

    AnalysisState as;
    as.mode = AnalysisMode::kDc;
    as.time = time;

    DcResult result;
    result.x.assign(n, 0.0);
    if (initial_guess != nullptr && initial_guess->size() == n)
        result.x = *initial_guess;

    if (fault::should_fail(fault::Site::kDcSolve)) {
        result.converged = false;
        result.strategy = "failed";
        SolveError err;
        err.code = SolveErrorCode::kInjectedFault;
        err.message = "dc solve forced non-convergent by fault injector";
        err.time = time;
        err.last_iterate = result.x;
        result.error = std::move(err);
        return result;
    }

    // Each strategy's record: name, iterations it consumed, whether it
    // produced the solution, and the residual at its final iterate.
    la::Vector last_x = result.x;

    // Strategy 1: plain damped Newton from the guess.
    {
        StrategyAttempt attempt;
        attempt.name = "newton";
        la::Vector x = result.x;
        const int iters = detail::newton_raphson(circuit, as, opts, opts.gmin,
                                                 x, &attempt.residual);
        attempt.iterations = std::abs(iters);
        attempt.converged = iters > 0;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (iters > 0) {
            result.converged = true;
            result.strategy = "newton";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    // Strategy 2: gmin stepping — solve with a large shunt conductance and
    // relax it geometrically down to the target, warm-starting each stage.
    {
        StrategyAttempt attempt;
        attempt.name = "gmin-stepping";
        la::Vector x(n, 0.0);
        bool ok = true;
        for (double g = 1e-2; ok; g *= 0.1) {
            const double g_eff = std::max(g, opts.gmin);
            const int iters = detail::newton_raphson(circuit, as, opts, g_eff,
                                                     x, &attempt.residual);
            attempt.iterations += std::abs(iters);
            ok = iters > 0;
            if (g_eff == opts.gmin)
                break;
        }
        attempt.converged = ok;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (ok) {
            result.converged = true;
            result.strategy = "gmin-stepping";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    // Strategy 3: source stepping — ramp all sources from zero.
    {
        StrategyAttempt attempt;
        attempt.name = "source-stepping";
        la::Vector x(n, 0.0);
        bool ok = true;
        for (double lambda = 0.05; lambda <= 1.0 + 1e-12; lambda += 0.05) {
            AnalysisState ramped = as;
            ramped.source_scale = std::min(lambda, 1.0);
            const int iters = detail::newton_raphson(
                circuit, ramped, opts, opts.gmin, x, &attempt.residual);
            attempt.iterations += std::abs(iters);
            if (iters < 0) {
                ok = false;
                break;
            }
        }
        attempt.converged = ok;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (ok) {
            result.converged = true;
            result.strategy = "source-stepping";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    result.converged = false;
    result.strategy = "failed";
    SolveError err;
    err.code = SolveErrorCode::kNonConvergence;
    err.message = "dc operating point: all fallback strategies exhausted";
    err.strategies = result.attempts;
    err.time = time;
    err.last_residual = result.attempts.back().residual;
    err.last_iterate = std::move(last_x);
    result.error = std::move(err);
    return result;
}

} // namespace tfetsram::spice
