#include "spice/dc.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "spice/mna.hpp"
#include "spice/stats.hpp"

namespace tfetsram::spice {

namespace detail {

namespace {

/// True KCL/branch residual norm at x: assemble there and evaluate
/// J(x)*x - rhs(x). (In the companion formulation this equals the sum of
/// nonlinear device currents at x, i.e. the genuine equation residual.)
double residual_norm(Circuit& circuit, const AnalysisState& as, double gmin,
                     const la::Vector& x, la::Matrix& jac, la::Vector& rhs) {
    assemble(circuit, as, x, gmin, jac, rhs);
    const la::Vector jx = jac.multiply(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = jx[i] - rhs[i];
        acc += r * r;
    }
    return std::sqrt(acc);
}

/// Body of detail::newton_raphson; the public wrapper meters it.
int newton_raphson_core(Circuit& circuit, const AnalysisState& as,
                        const SolverOptions& opts, double gmin,
                        la::Vector& x) {
    const std::size_t n = circuit.num_unknowns();
    const std::size_t n_node_unknowns = circuit.num_nodes() - 1;
    TFET_EXPECTS(x.size() == n);

    la::Matrix jac;
    la::Vector rhs;
    double resid = residual_norm(circuit, as, gmin, x, jac, rhs);

    for (int iter = 1; iter <= opts.max_nr_iterations; ++iter) {
        // `jac`/`rhs` hold the linearization at the current x.
        auto lu = la::LuFactorization::factor(jac);
        if (!lu)
            return -iter;
        const la::Vector x_new = lu->solve(rhs);

        // Convergence: the full Newton update is within tolerance. Checked
        // before any damping/line search — at the solution the update is
        // tiny regardless of what a noise-floor line search would decide.
        bool converged = true;
        for (std::size_t i = 0; i < n; ++i) {
            const double tol = i < n_node_unknowns
                                   ? opts.vntol + opts.reltol * std::fabs(x[i])
                                   : opts.itol + opts.reltol * std::fabs(x[i]);
            if (std::fabs(x_new[i] - x[i]) > tol) {
                converged = false;
                break;
            }
        }
        if (converged && iter >= 2) {
            x = x_new;
            return iter;
        }

        // Damping: bound the update so exponential devices cannot fling
        // the iterate out of their valid range.
        double max_dx = 0.0;
        for (std::size_t i = 0; i < n_node_unknowns; ++i)
            max_dx = std::max(max_dx, std::fabs(x_new[i] - x[i]));
        const double alpha0 =
            max_dx > opts.dv_limit ? opts.dv_limit / max_dx : 1.0;

        // Globalization: backtracking line search on the true residual
        // norm. Essential with lookup-table devices, whose tabulated
        // conductances make this a quasi-Newton iteration that can
        // otherwise limit-cycle in high-gain bias regions.
        // Below this the residual is numerical noise (LU round-off on the
        // source-constraint rows); insisting on strict decrease there
        // would starve the step to nothing.
        constexpr double kResidFloor = 1e-13;

        la::Vector x_try(n);
        double alpha = alpha0;
        double resid_try = 0.0;
        for (int bt = 0;; ++bt) {
            for (std::size_t i = 0; i < n; ++i)
                x_try[i] = x[i] + alpha * (x_new[i] - x[i]);
            resid_try = residual_norm(circuit, as, gmin, x_try, jac, rhs);
            if (resid < kResidFloor || resid_try < kResidFloor ||
                resid_try <= resid * (1.0 - 1e-4 * alpha) || bt >= 6)
                break;
            alpha *= 0.5;
        }

        x = x_try;
        resid = resid_try; // jac/rhs already hold the linearization at x
    }
    return -opts.max_nr_iterations;
}

} // namespace

int newton_raphson(Circuit& circuit, const AnalysisState& as,
                   const SolverOptions& opts, double gmin, la::Vector& x) {
    const int iters = newton_raphson_core(circuit, as, opts, gmin, x);
    solver_stats().nr_iterations +=
        static_cast<std::uint64_t>(std::abs(iters));
    return iters;
}

} // namespace detail

DcResult solve_dc(Circuit& circuit, const SolverOptions& opts, double time,
                  const la::Vector* initial_guess) {
    ++solver_stats().dc_solves;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();

    AnalysisState as;
    as.mode = AnalysisMode::kDc;
    as.time = time;

    DcResult result;
    result.x.assign(n, 0.0);
    if (initial_guess != nullptr && initial_guess->size() == n)
        result.x = *initial_guess;

    // Strategy 1: plain damped Newton from the guess.
    {
        la::Vector x = result.x;
        const int iters = detail::newton_raphson(circuit, as, opts, opts.gmin, x);
        result.iterations += std::abs(iters);
        if (iters > 0) {
            result.converged = true;
            result.strategy = "newton";
            result.x = std::move(x);
            return result;
        }
    }

    // Strategy 2: gmin stepping — solve with a large shunt conductance and
    // relax it geometrically down to the target, warm-starting each stage.
    {
        la::Vector x(n, 0.0);
        bool ok = true;
        for (double g = 1e-2; ok; g *= 0.1) {
            const double g_eff = std::max(g, opts.gmin);
            const int iters =
                detail::newton_raphson(circuit, as, opts, g_eff, x);
            result.iterations += std::abs(iters);
            ok = iters > 0;
            if (g_eff == opts.gmin)
                break;
        }
        if (ok) {
            result.converged = true;
            result.strategy = "gmin-stepping";
            result.x = std::move(x);
            return result;
        }
    }

    // Strategy 3: source stepping — ramp all sources from zero.
    {
        la::Vector x(n, 0.0);
        bool ok = true;
        for (double lambda = 0.05; lambda <= 1.0 + 1e-12; lambda += 0.05) {
            AnalysisState ramped = as;
            ramped.source_scale = std::min(lambda, 1.0);
            const int iters =
                detail::newton_raphson(circuit, ramped, opts, opts.gmin, x);
            result.iterations += std::abs(iters);
            if (iters < 0) {
                ok = false;
                break;
            }
        }
        if (ok) {
            result.converged = true;
            result.strategy = "source-stepping";
            result.x = std::move(x);
            return result;
        }
    }

    result.converged = false;
    result.strategy = "failed";
    return result;
}

} // namespace tfetsram::spice
