#include "spice/dc.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "la/lu.hpp"
#include "spice/mna.hpp"
#include "spice/stats.hpp"
#include "util/fault.hpp"

namespace tfetsram::spice {

namespace detail {

namespace {

/// True KCL/branch residual norm at x: assemble there and evaluate
/// J(x)*x - rhs(x). (In the companion formulation this equals the sum of
/// nonlinear device currents at x, i.e. the genuine equation residual.)
/// The row products are accumulated in place — no temporary vector.
/// Assembles into whichever Jacobian backend the workspace is pinned to,
/// leaving it holding the linearization at x for the next factorization.
double assemble_residual_norm(Circuit& circuit, const AnalysisState& as,
                              double gmin, const la::Vector& x,
                              SolveWorkspace& w) {
    const std::size_t n = x.size();
    double acc = 0.0;
    if (w.kind == SolverKind::kSparse) {
        assemble(circuit, as, x, gmin, w.sjac, w.rhs);
        const auto& rp = w.sjac.row_ptr();
        const auto& ci = w.sjac.col_idx();
        const auto& val = w.sjac.values();
        for (std::size_t i = 0; i < n; ++i) {
            double r = -w.rhs[i];
            for (std::size_t k = rp[i]; k < rp[i + 1]; ++k)
                r += val[k] * x[ci[k]];
            acc += r * r;
        }
    } else {
        assemble(circuit, as, x, gmin, w.jac, w.rhs);
        for (std::size_t i = 0; i < n; ++i) {
            double r = -w.rhs[i];
            for (std::size_t c = 0; c < n; ++c)
                r += w.jac(i, c) * x[c];
            acc += r * r;
        }
    }
    return std::sqrt(acc);
}

/// Body of detail::newton_raphson; the public wrapper meters it.
///
/// Each iterate is assembled exactly once: the line search's last
/// assembly doubles as the next iteration's linearization, the initial
/// residual evaluation provides iteration 1's, and the accepted final
/// iterate needs none. A converged k-iteration solve therefore costs
/// k + backtracks assemblies and k LU factorizations — the contract
/// tests/test_solver_perf.cpp pins.
int newton_raphson_core(Circuit& circuit, const AnalysisState& as,
                        const SimContext& ctx, double gmin, la::Vector& x,
                        double* final_residual) {
    const SolverOptions& opts = ctx.options();
    SolverStats& stats = ctx.stats();
    const std::size_t n = circuit.num_unknowns();
    const std::size_t n_node_unknowns = circuit.num_nodes() - 1;
    TFET_EXPECTS(x.size() == n);

    // All scratch lives on the circuit: the loop below is allocation-free
    // once the workspace has been sized by a first solve.
    SolveWorkspace& w = circuit.workspace();

    // Pin the linear backend on the circuit's first solve; symbolic work
    // (pattern discovery + fill-reducing analysis) happens exactly once
    // per circuit topology, never per Newton iterate. A circuit that
    // gained nodes or devices since the last solve re-runs both.
    if (w.topology_revision != circuit.topology_revision()) {
        w.kind = ctx.select_kind(n);
        w.topology_revision = circuit.topology_revision();
        if (*w.kind == SolverKind::kSparse) {
            build_pattern(circuit, w.sjac);
            w.slu.analyze(w.sjac);
            ++stats.sparse_symbolic_analyses;
            stats.sparse_ordering_us += w.slu.ordering_us();
            stats.sparse_pattern_nnz = w.sjac.nnz();
        }
    }

    double resid = assemble_residual_norm(circuit, as, gmin, x, w);

    // Warm-start acceptance floor: a first iterate whose entering KCL
    // residual is already below per-equation itol is at the solution (a
    // re-solve from a converged point), so requiring a second iteration
    // would only repeat work. Cold starts keep the two-iteration gate,
    // which guards against the quasi-Newton limit cycles tabulated
    // conductances can produce.
    const double warm_floor = opts.itol * std::sqrt(static_cast<double>(n));

    for (int iter = 1; iter <= opts.max_nr_iterations; ++iter) {
        // Cancellation checkpoint: one poll per Newton iteration. A fired
        // token/deadline makes this iteration report failure; solve_dc's
        // between-strategy checks turn that into a graceful cancelled
        // result instead of escalating through the homotopy chain.
        if (ctx.poll_cancellation() != SolveErrorCode::kNone) {
            if (final_residual != nullptr)
                *final_residual = resid;
            return -iter;
        }
        // The workspace Jacobian holds the linearization at the current x.
        // lu_factorizations counts both kernels (the contract tests pin it
        // to nr_iterations); sparse_refactorizations additionally meters
        // the sparse numeric path.
        ++stats.lu_factorizations;
        bool factored;
        if (w.kind == SolverKind::kSparse) {
            ++stats.sparse_refactorizations;
            factored = w.slu.refactor(w.sjac);
            const la::SparseLu::RefactorInfo& ri = w.slu.last_refactor();
            if (ri.static_hit)
                ++stats.sparse_static_pivot_hits;
            stats.sparse_pivot_fallbacks += ri.fallbacks;
            if (factored)
                stats.sparse_lu_nnz = w.slu.lu_nnz();
        } else {
            factored = w.lu.factor_in_place(w.jac);
        }
        if (!factored) {
            if (final_residual != nullptr)
                *final_residual = resid;
            return -iter;
        }
        if (w.kind == SolverKind::kSparse)
            w.slu.solve_into(w.rhs, w.x_new);
        else
            w.lu.solve_into(w.rhs, w.x_new);
        const la::Vector& x_new = w.x_new;

        // Convergence: the full Newton update is within tolerance. Checked
        // before any damping/line search — at the solution the update is
        // tiny regardless of what a noise-floor line search would decide.
        bool converged = true;
        for (std::size_t i = 0; i < n; ++i) {
            const double tol = i < n_node_unknowns
                                   ? opts.vntol + opts.reltol * std::fabs(x[i])
                                   : opts.itol + opts.reltol * std::fabs(x[i]);
            if (std::fabs(x_new[i] - x[i]) > tol) {
                converged = false;
                break;
            }
        }
        if (converged && (iter >= 2 || resid <= warm_floor)) {
            x = x_new;
            if (final_residual != nullptr)
                *final_residual = resid;
            return iter;
        }

        // Damping: bound the update so exponential devices cannot fling
        // the iterate out of their valid range.
        double max_dx = 0.0;
        for (std::size_t i = 0; i < n_node_unknowns; ++i)
            max_dx = std::max(max_dx, std::fabs(x_new[i] - x[i]));
        const double alpha0 =
            max_dx > opts.dv_limit ? opts.dv_limit / max_dx : 1.0;

        // Globalization: backtracking line search on the true residual
        // norm. Essential with lookup-table devices, whose tabulated
        // conductances make this a quasi-Newton iteration that can
        // otherwise limit-cycle in high-gain bias regions.
        // Below this the residual is numerical noise (LU round-off on the
        // source-constraint rows); insisting on strict decrease there
        // would starve the step to nothing.
        constexpr double kResidFloor = 1e-13;

        w.x_try.resize(n);
        double alpha = alpha0;
        double resid_try = 0.0;
        for (int bt = 0;; ++bt) {
            for (std::size_t i = 0; i < n; ++i)
                w.x_try[i] = x[i] + alpha * (x_new[i] - x[i]);
            resid_try = assemble_residual_norm(circuit, as, gmin, w.x_try, w);
            if (resid < kResidFloor || resid_try < kResidFloor ||
                resid_try <= resid * (1.0 - 1e-4 * alpha) || bt >= 6)
                break;
            ++stats.line_search_backtracks;
            alpha *= 0.5;
        }

        x.swap(w.x_try);
        resid = resid_try; // workspace Jacobian/rhs already hold x's linearization
    }
    if (final_residual != nullptr)
        *final_residual = resid;
    return -opts.max_nr_iterations;
}

} // namespace

int newton_raphson(Circuit& circuit, const AnalysisState& as,
                   const SimContext& ctx, double gmin, la::Vector& x,
                   double* final_residual) {
    if (ctx.should_fail(fault::Site::kNewton)) {
        if (final_residual != nullptr)
            *final_residual = std::numeric_limits<double>::quiet_NaN();
        return -1;
    }
    const int iters =
        newton_raphson_core(circuit, as, ctx, gmin, x, final_residual);
    ctx.stats().nr_iterations += static_cast<std::uint64_t>(std::abs(iters));
    return iters;
}

} // namespace detail

namespace {

/// Graceful-degradation result: the solve is over, the best iterate so far
/// is preserved, and the error says why (kCancelled or kDeadlineExceeded).
DcResult make_cancelled_dc(const SimContext& ctx, SolveErrorCode code,
                           double time, la::Vector last_x,
                           std::vector<StrategyAttempt> attempts,
                           int iterations) {
    ++ctx.stats().cancelled_solves;
    DcResult result;
    result.converged = false;
    result.strategy = "cancelled";
    result.iterations = iterations;
    result.attempts = attempts;
    result.x = last_x;
    SolveError err;
    err.code = code;
    err.message = code == SolveErrorCode::kCancelled
                      ? "dc operating point: cancelled by token"
                      : "dc operating point: deadline budget expired";
    err.strategies = std::move(attempts);
    err.time = time;
    err.last_iterate = std::move(last_x);
    result.error = std::move(err);
    return result;
}

} // namespace

DcResult solve_dc(Circuit& circuit, const SimContext& ctx, double time,
                  const la::Vector* initial_guess) {
    // Bind the context so nested work (MNA assembly counters, legacy
    // helpers called from device callbacks) attributes here too.
    const ScopedContext bind(ctx);
    const SolverOptions& opts = ctx.options();
    ++ctx.stats().dc_solves;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();

    AnalysisState as;
    as.mode = AnalysisMode::kDc;
    as.time = time;

    DcResult result;
    result.x.assign(n, 0.0);
    if (initial_guess != nullptr && initial_guess->size() == n)
        result.x = *initial_guess;

    // Entry checkpoint: a solve that starts under an already-expired
    // context returns immediately instead of spending a Newton chain.
    {
        const SolveErrorCode entry = ctx.poll_cancellation();
        if (entry != SolveErrorCode::kNone)
            return make_cancelled_dc(ctx, entry, time, std::move(result.x),
                                     {}, 0);
    }

    if (ctx.should_fail(fault::Site::kDcSolve)) {
        result.converged = false;
        result.strategy = "failed";
        SolveError err;
        err.code = SolveErrorCode::kInjectedFault;
        err.message = "dc solve forced non-convergent by fault injector";
        err.time = time;
        err.last_iterate = result.x;
        result.error = std::move(err);
        return result;
    }

    // Deterministic stall site: park here — heartbeat silent — until the
    // context is cancelled or its deadline expires. This is how the tests
    // and ci.sh force the runner watchdog's stall-detection path: the
    // parked solve stops ticking the token, the watchdog notices the
    // frozen progress counter and cancels, and the solve unwinds through
    // the ordinary graceful-degradation return.
    if (ctx.should_fail(fault::Site::kStall)) {
        for (;;) {
            const SolveErrorCode status = ctx.cancellation_status();
            if (status != SolveErrorCode::kNone)
                return make_cancelled_dc(ctx, status, time,
                                         std::move(result.x), {}, 0);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }

    // Each strategy's record: name, iterations it consumed, whether it
    // produced the solution, and the residual at its final iterate.
    la::Vector last_x = result.x;

    // Strategy 1: plain damped Newton from the guess.
    {
        StrategyAttempt attempt;
        attempt.name = "newton";
        la::Vector x = result.x;
        const int iters = detail::newton_raphson(circuit, as, ctx, opts.gmin,
                                                 x, &attempt.residual);
        attempt.iterations = std::abs(iters);
        attempt.converged = iters > 0;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (iters > 0) {
            result.converged = true;
            result.strategy = "newton";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    // A cancelled/expired context must not escalate through the homotopy
    // fallbacks — strategy 1 "failed" because it was told to stop.
    {
        const SolveErrorCode status = ctx.cancellation_status();
        if (status != SolveErrorCode::kNone)
            return make_cancelled_dc(ctx, status, time, std::move(last_x),
                                     std::move(result.attempts),
                                     result.iterations);
    }

    // Strategy 2: gmin stepping — solve with a large shunt conductance and
    // relax it geometrically down to the target, warm-starting each stage.
    {
        StrategyAttempt attempt;
        attempt.name = "gmin-stepping";
        la::Vector x(n, 0.0);
        bool ok = true;
        // Relax the shunt geometrically until it reaches the target within
        // a relative floor — an exact == comparison would never fire for
        // gmin = 0 (the decade loop only hits 0.0 after ~320 denormal
        // stages) — with a hard stage cap as backstop. The final stage
        // always solves at opts.gmin itself, so the converged solution is
        // exact for the requested shunt.
        constexpr int kMaxGminStages = 16;
        int stage = 0;
        for (double g = 1e-2;; g *= 0.1, ++stage) {
            const bool final_stage = g <= opts.gmin * (1.0 + 1e-9) ||
                                     g <= 1e-14 || stage >= kMaxGminStages;
            const double g_eff = final_stage ? opts.gmin : g;
            const int iters = detail::newton_raphson(circuit, as, ctx, g_eff,
                                                     x, &attempt.residual);
            attempt.iterations += std::abs(iters);
            ok = iters > 0;
            if (!ok || final_stage)
                break;
        }
        attempt.converged = ok;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (ok) {
            result.converged = true;
            result.strategy = "gmin-stepping";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    {
        const SolveErrorCode status = ctx.cancellation_status();
        if (status != SolveErrorCode::kNone)
            return make_cancelled_dc(ctx, status, time, std::move(last_x),
                                     std::move(result.attempts),
                                     result.iterations);
    }

    // Strategy 3: source stepping — ramp all sources from zero.
    {
        StrategyAttempt attempt;
        attempt.name = "source-stepping";
        la::Vector x(n, 0.0);
        bool ok = true;
        for (double lambda = 0.05; lambda <= 1.0 + 1e-12; lambda += 0.05) {
            AnalysisState ramped = as;
            ramped.source_scale = std::min(lambda, 1.0);
            const int iters = detail::newton_raphson(
                circuit, ramped, ctx, opts.gmin, x, &attempt.residual);
            attempt.iterations += std::abs(iters);
            if (iters < 0) {
                ok = false;
                break;
            }
        }
        attempt.converged = ok;
        result.iterations += attempt.iterations;
        result.attempts.push_back(std::move(attempt));
        if (ok) {
            result.converged = true;
            result.strategy = "source-stepping";
            result.x = std::move(x);
            return result;
        }
        last_x = std::move(x);
    }

    {
        const SolveErrorCode status = ctx.cancellation_status();
        if (status != SolveErrorCode::kNone)
            return make_cancelled_dc(ctx, status, time, std::move(last_x),
                                     std::move(result.attempts),
                                     result.iterations);
    }

    result.converged = false;
    result.strategy = "failed";
    SolveError err;
    err.code = SolveErrorCode::kNonConvergence;
    err.message = "dc operating point: all fallback strategies exhausted";
    err.strategies = result.attempts;
    err.time = time;
    err.last_residual = result.attempts.back().residual;
    err.last_iterate = std::move(last_x);
    result.error = std::move(err);
    return result;
}

DcResult solve_dc(Circuit& circuit, const SolverOptions& opts, double time,
                  const la::Vector* initial_guess) {
    const SimContext& ambient = ambient_context();
    if (&opts == &ambient.options())
        return solve_dc(circuit, ambient, time, initial_guess);
    const SimContext view = ambient.with_options(opts);
    return solve_dc(circuit, view, time, initial_guess);
}

} // namespace tfetsram::spice
