#pragma once
// DC operating-point solver: damped Newton-Raphson with gmin-stepping and
// source-stepping homotopies as fallbacks — the standard SPICE playbook.

#include <optional>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/context.hpp"
#include "spice/solve_error.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::spice {

struct DcResult {
    bool converged = false;
    int iterations = 0;      ///< total NR iterations across all strategies
    std::string strategy;    ///< which strategy succeeded ("newton", ...;
                             ///< "failed" when every fallback was exhausted)
    la::Vector x;            ///< solution (meaningful iff converged)
    std::vector<StrategyAttempt> attempts; ///< fallback chain, attempt order
    std::optional<SolveError> error;       ///< populated iff !converged
};

/// Solve the operating point under `ctx` (its options, backend policy,
/// stats sink, and fault plan) with sources evaluated at `time`. If
/// `initial_guess` is provided (and correctly sized) Newton starts there.
/// Binds `ctx` as this thread's ambient context for the duration.
DcResult solve_dc(Circuit& circuit, const SimContext& ctx, double time = 0.0,
                  const la::Vector* initial_guess = nullptr);

/// Compatibility entry: solve under the ambient context with `opts`
/// layered over its options (same stats sink and backend policy).
DcResult solve_dc(Circuit& circuit, const SolverOptions& opts,
                  double time = 0.0,
                  const la::Vector* initial_guess = nullptr);

namespace detail {
/// Single damped-Newton solve at fixed gmin/source scale, using ctx's
/// options/backend/stats. On success, x holds the solution; on failure x
/// is left at the last iterate. Returns iterations used (negative if not
/// converged). If `final_residual` is non-null it receives the true KCL
/// residual norm at the last assembled iterate — for a converged solve
/// that is the iterate the accepting Newton update stepped from, a
/// diagnostic bound on (not a re-evaluation at) the returned solution;
/// NaN when the solve was aborted by an injected fault. Reusing the
/// loop's own residual keeps the converged path free of a final
/// re-assembly.
int newton_raphson(Circuit& circuit, const AnalysisState& as,
                   const SimContext& ctx, double gmin, la::Vector& x,
                   double* final_residual = nullptr);
} // namespace detail

} // namespace tfetsram::spice
