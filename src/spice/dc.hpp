#pragma once
// DC operating-point solver: damped Newton-Raphson with gmin-stepping and
// source-stepping homotopies as fallbacks — the standard SPICE playbook.

#include <optional>
#include <string>

#include "spice/circuit.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::spice {

struct DcResult {
    bool converged = false;
    int iterations = 0;      ///< total NR iterations across all strategies
    std::string strategy;    ///< which strategy succeeded ("newton", ...)
    la::Vector x;            ///< solution (meaningful iff converged)
};

/// Solve the operating point with sources evaluated at `time`. If
/// `initial_guess` is provided (and correctly sized) Newton starts there.
DcResult solve_dc(Circuit& circuit, const SolverOptions& opts,
                  double time = 0.0,
                  const la::Vector* initial_guess = nullptr);

namespace detail {
/// Single damped-Newton solve at fixed gmin/source scale. On success, x
/// holds the solution; on failure x is left at the last iterate. Returns
/// iterations used (negative if not converged).
int newton_raphson(Circuit& circuit, const AnalysisState& as,
                   const SolverOptions& opts, double gmin, la::Vector& x);
} // namespace detail

} // namespace tfetsram::spice
