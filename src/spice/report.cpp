#include "spice/report.hpp"

namespace tfetsram::spice {

PowerReport power_report(const Circuit& circuit, const la::Vector& x) {
    PowerReport rep;
    for (const auto& dev : circuit.devices()) {
        const double p = dev->power(x);
        rep.devices.push_back({dev->label(), p});
        if (dev->is_source())
            rep.delivered_by_sources += -p;
        else
            rep.dissipated += p;
    }
    return rep;
}

double source_energy(const Circuit& circuit, const TransientResult& result,
                     double t0, double t1) {
    TFET_EXPECTS(t1 >= t0);
    const std::vector<double>& times = result.times();
    double energy = 0.0;
    double prev_t = 0.0;
    double prev_p = 0.0;
    bool have_prev = false;
    for (std::size_t i = 0; i < times.size(); ++i) {
        const double t = times[i];
        if (t < t0 || t > t1)
            continue;
        double p = 0.0;
        for (const VoltageSource* src : circuit.voltage_sources())
            p += -src->power(result.state(i)); // delivered
        if (have_prev)
            energy += 0.5 * (p + prev_p) * (t - prev_t);
        prev_t = t;
        prev_p = p;
        have_prev = true;
    }
    return energy;
}

double static_power(const Circuit& circuit, const la::Vector& x) {
    double total = 0.0;
    for (const auto& dev : circuit.devices())
        if (!dev->is_source())
            total += dev->power(x);
    return total;
}

} // namespace tfetsram::spice
