#pragma once
// Time-domain stimulus descriptions for independent sources: DC levels and
// piecewise-linear waveforms (from which pulses are built). Value-semantic.

#include <vector>

#include "util/contracts.hpp"

namespace tfetsram::spice {

/// A (time, value) breakpoint of a piecewise-linear waveform.
struct PwlPoint {
    double time;
    double value;
};

/// Value-semantic waveform: either a DC level or a piecewise-linear curve.
/// Before the first breakpoint the first value holds; after the last, the
/// last value holds.
class Waveform {
public:
    /// Constant level for all time.
    static Waveform dc(double level);

    /// Piecewise-linear from breakpoints (times strictly increasing).
    static Waveform pwl(std::vector<PwlPoint> points);

    /// A single pulse: base level until t_start, linear rise over t_rise to
    /// `active`, hold for t_width, linear fall over t_fall back to base.
    static Waveform pulse(double base, double active, double t_start,
                          double t_rise, double t_width, double t_fall);

    /// Value at time t.
    [[nodiscard]] double at(double t) const;

    /// DC value used for the t=0 operating point (value at t = 0).
    [[nodiscard]] double initial() const { return at(0.0); }

    /// Times where the slope changes; the transient engine lands on these.
    [[nodiscard]] const std::vector<double>& breakpoints() const {
        return breakpoints_;
    }

    /// True if the waveform is a constant level.
    [[nodiscard]] bool is_dc() const { return points_.size() <= 1; }

    /// Return a copy with all values scaled by k (for source stepping).
    [[nodiscard]] Waveform scaled(double k) const;

private:
    Waveform() = default;
    std::vector<PwlPoint> points_; // size 1 encodes a DC level
    std::vector<double> breakpoints_;
};

} // namespace tfetsram::spice
