#include "spice/solve_error.hpp"

#include <cmath>
#include <sstream>

namespace tfetsram::spice {

std::string to_string(SolveErrorCode code) {
    switch (code) {
    case SolveErrorCode::kNone: return "none";
    case SolveErrorCode::kNonConvergence: return "non-convergence";
    case SolveErrorCode::kDtUnderflow: return "dt-underflow";
    case SolveErrorCode::kMaxStepsExceeded: return "max-steps-exceeded";
    case SolveErrorCode::kSingularAcSystem: return "singular-ac-system";
    case SolveErrorCode::kInjectedFault: return "injected-fault";
    case SolveErrorCode::kInvalidConfig: return "invalid-config";
    case SolveErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case SolveErrorCode::kCancelled: return "cancelled";
    }
    return "?";
}

std::string SolveError::describe() const {
    std::ostringstream out;
    out << to_string(code) << ": " << message;
    if (!strategies.empty()) {
        out << " [";
        for (std::size_t i = 0; i < strategies.size(); ++i) {
            const StrategyAttempt& s = strategies[i];
            if (i > 0)
                out << ", ";
            out << s.name << '(' << s.iterations << " it";
            if (!std::isnan(s.residual))
                out << ", resid=" << s.residual;
            out << (s.converged ? ", ok)" : ")");
        }
        out << ']';
    }
    return out.str();
}

SolveException::SolveException(SolveError error)
    : std::runtime_error(error.describe()), error_(std::move(error)) {}

} // namespace tfetsram::spice
