#pragma once
// Batched per-iterate transistor evaluation. Every Newton iterate needs
// every transistor's I-V sample at the candidate solution; doing that one
// virtual call at a time from inside Transistor::stamp buries the table
// interpolation (the hot loop at array scale) under dispatch and scattered
// loads. The batch instead gathers all bias points into structure-of-arrays
// buffers, makes one iv_many call per distinct model (a tight fused pass
// for table-backed models), and lets stamp() consume its precomputed
// sample by slot. Arithmetic is bitwise-identical to the scalar path, so
// the dense/sparse differential suite keeps its exact-equality contract.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "spice/transistor_model.hpp"

namespace tfetsram::spice {

class Circuit;
class Transistor;

class DeviceEvalBatch {
public:
    /// Evaluate every transistor of `circuit` at candidate solution x.
    /// Rebuilds the slot layout first when the circuit topology changed;
    /// a pure model swap under an unchanged topology (Monte-Carlo lockstep
    /// re-simulation) keeps the layout and only re-points the per-model
    /// groups when the swap was group-unanimous. Then runs
    /// one iv_many sweep per distinct model in first-seen circuit order.
    /// After this call every transistor's stamp() reads its sample from
    /// the batch instead of re-dispatching into the model.
    void evaluate(Circuit& circuit, const la::Vector& x);

    /// True once evaluate() has run for the current layout. stamp() falls
    /// back to the scalar path when false (e.g. during pattern discovery).
    [[nodiscard]] bool ready() const { return ready_; }

    /// Precomputed sample for a slot handed out during layout build.
    [[nodiscard]] const IvSample& sample(std::size_t slot) const {
        return iv_[slot];
    }

    [[nodiscard]] std::size_t size() const { return order_.size(); }

private:
    /// One contiguous slot range sharing a TransistorModel.
    struct Group {
        const TransistorModel* model;
        std::size_t first;
        std::size_t count;
    };

    void rebuild(Circuit& circuit);
    bool try_retarget();
    [[nodiscard]] bool layout_stale(const Circuit& circuit) const;

    std::vector<Transistor*> order_; ///< slot -> transistor, group-major
    std::vector<Group> groups_;
    std::vector<double> vgs_;
    std::vector<double> vds_;
    std::vector<IvSample> iv_;
    std::uint64_t built_revision_ = 0;
    bool ready_ = false;
};

} // namespace tfetsram::spice
