#pragma once
// Helpers to read physical quantities out of the raw MNA unknown vector.
// The unknown ordering is: node voltages for nodes 1..N-1 (ground is
// eliminated), followed by one branch current per voltage source.

#include "la/matrix.hpp"
#include "spice/types.hpp"

namespace tfetsram::spice {

/// Voltage of node n in solution x. Ground reads as exactly 0.
inline double node_voltage(const la::Vector& x, NodeId n) {
    if (n == kGround)
        return 0.0;
    TFET_EXPECTS(n - 1 < x.size());
    return x[n - 1];
}

/// Difference v(a) - v(b).
inline double branch_voltage(const la::Vector& x, NodeId a, NodeId b) {
    return node_voltage(x, a) - node_voltage(x, b);
}

} // namespace tfetsram::spice
