#include "spice/circuit.hpp"

#include <algorithm>
#include <stdexcept>

#include "spice/eval_batch.hpp"

namespace tfetsram::spice {

Circuit::Circuit() {
    node_names_.push_back("0");
    node_ids_.emplace("0", kGround);
    node_ids_.emplace("gnd", kGround);
}

// Out of line so the unique_ptr<DeviceEvalBatch> member sees the complete
// type; the moves transfer the batch by pointer, keeping the slot
// references transistors hold valid across Circuit relocation.
Circuit::~Circuit() = default;
Circuit::Circuit(Circuit&&) noexcept = default;
Circuit& Circuit::operator=(Circuit&&) noexcept = default;

DeviceEvalBatch& Circuit::eval_batch() {
    if (!eval_batch_)
        eval_batch_ = std::make_unique<DeviceEvalBatch>();
    return *eval_batch_;
}

NodeId Circuit::add_node(const std::string& name) {
    TFET_EXPECTS(!name.empty());
    if (node_ids_.contains(name))
        throw std::invalid_argument("Circuit: duplicate node name: " + name);
    const NodeId id = node_names_.size();
    node_names_.push_back(name);
    node_ids_.emplace(name, id);
    ++topology_revision_;
    return id;
}

NodeId Circuit::node(const std::string& name) const {
    const auto it = node_ids_.find(name);
    if (it == node_ids_.end())
        throw std::invalid_argument("Circuit: unknown node: " + name);
    return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
    TFET_EXPECTS(id < node_names_.size());
    return node_names_[id];
}

Resistor& Circuit::add_resistor(const std::string& label, NodeId a, NodeId b,
                                double ohms) {
    auto dev = std::make_unique<Resistor>(label, a, b, ohms);
    Resistor& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    return ref;
}

Capacitor& Circuit::add_capacitor(const std::string& label, NodeId a, NodeId b,
                                  double farads) {
    auto dev = std::make_unique<Capacitor>(label, a, b, farads);
    Capacitor& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    return ref;
}

VoltageSource& Circuit::add_vsource(const std::string& label, NodeId pos,
                                    NodeId neg, Waveform wave) {
    auto dev = std::make_unique<VoltageSource>(label, pos, neg, std::move(wave));
    VoltageSource& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    vsources_.push_back(&ref);
    return ref;
}

CurrentSource& Circuit::add_isource(const std::string& label, NodeId from,
                                    NodeId to, Waveform wave) {
    auto dev = std::make_unique<CurrentSource>(label, from, to, std::move(wave));
    CurrentSource& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    isources_.push_back(&ref);
    return ref;
}

Transistor& Circuit::add_transistor(const std::string& label,
                                    TransistorModelPtr model, NodeId drain,
                                    NodeId gate, NodeId source,
                                    double width_um) {
    auto dev = std::make_unique<Transistor>(label, std::move(model), drain,
                                            gate, source, width_um);
    Transistor& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    transistors_.push_back(&ref);
    return ref;
}

TimedSwitch& Circuit::add_switch(const std::string& label, NodeId a, NodeId b,
                                 double r_on, double r_off, Waveform control) {
    auto dev = std::make_unique<TimedSwitch>(label, a, b, r_on, r_off,
                                             std::move(control));
    TimedSwitch& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    return ref;
}

LinearizedLoad& Circuit::add_linearized_load(const std::string& label,
                                             NodeId node) {
    auto dev = std::make_unique<LinearizedLoad>(label, node);
    LinearizedLoad& ref = *dev;
    devices_.push_back(std::move(dev));
    ++topology_revision_;
    return ref;
}

void Circuit::prepare() {
    const std::size_t node_unknowns = num_nodes() - 1;
    for (std::size_t b = 0; b < vsources_.size(); ++b)
        vsources_[b]->set_branch(b, node_unknowns + b);
}

std::vector<double> Circuit::source_breakpoints() const {
    std::vector<double> bps;
    for (const VoltageSource* v : vsources_)
        for (double t : v->waveform().breakpoints())
            bps.push_back(t);
    for (const CurrentSource* i : isources_)
        for (double t : i->waveform().breakpoints())
            bps.push_back(t);
    std::sort(bps.begin(), bps.end());
    bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
    return bps;
}

} // namespace tfetsram::spice
