#pragma once
// Per-partition linear-kernel routing report. One SolverInfo describes a
// single MNA system — which backend it was (or would be) routed to and how
// big/sparse it is. The flat array engine reports one for its whole-array
// circuit; the mixed-level engine (src/hier) reports one per active
// partition, which is how bench/array_scaling records per-partition
// unknowns/nnz/fill in BENCH_array_scaling.json (docs/SOLVER.md,
// docs/HIERARCHY.md).

#include <cstddef>

#include "spice/circuit.hpp"
#include "spice/context.hpp"
#include "spice/solver_select.hpp"

namespace tfetsram::spice {

struct SolverInfo {
    SolverKind kind = SolverKind::kDense;
    std::size_t unknowns = 0;
    std::size_t pattern_nnz = 0; ///< 0 on the dense path
    std::size_t lu_nnz = 0;      ///< L+U nonzeros, 0 on the dense path
    double fill_ratio = 0.0;     ///< lu_nnz / pattern_nnz, 0 on dense
};

/// Probe a circuit's linear-kernel routing. Meaningful after the first
/// solve pinned the workspace; before that it reports the selection the
/// governing context (`sim` when non-null, else the ambient context) would
/// make, with zero nnz.
inline SolverInfo probe_solver_info(Circuit& circuit, const SimContext* sim) {
    SolverInfo info;
    info.unknowns = circuit.num_unknowns();
    const SolveWorkspace& w = circuit.workspace();
    info.kind = w.kind.value_or(sim != nullptr
                                    ? sim->select_kind(info.unknowns)
                                    : ambient_context().select_kind(
                                          info.unknowns));
    if (info.kind == SolverKind::kSparse && w.sjac.finalized()) {
        info.pattern_nnz = w.sjac.nnz();
        info.lu_nnz = w.slu.analyzed() ? w.slu.lu_nnz() : 0;
        if (info.pattern_nnz > 0)
            info.fill_ratio = static_cast<double>(info.lu_nnz) /
                              static_cast<double>(info.pattern_nnz);
    }
    return info;
}

} // namespace tfetsram::spice
