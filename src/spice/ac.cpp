#include "spice/ac.hpp"

#include <cmath>

#include "spice/dc.hpp"
#include "spice/mna.hpp"

namespace tfetsram::spice {

std::complex<double> AcResult::phasor(NodeId node, std::size_t i) const {
    TFET_EXPECTS(i < states_.size());
    if (node == kGround)
        return {0.0, 0.0};
    TFET_EXPECTS(node - 1 < states_[i].size());
    return states_[i][node - 1];
}

double AcResult::magnitude_db(NodeId node, std::size_t i) const {
    const double mag = std::abs(phasor(node, i));
    return 20.0 * std::log10(std::max(mag, 1e-300));
}

double AcResult::corner_frequency(NodeId node) const {
    if (freq_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    const double ref = magnitude_db(node, 0);
    for (std::size_t i = 1; i < freq_.size(); ++i) {
        const double db = magnitude_db(node, i);
        if (db <= ref - 3.0) {
            // Log-interpolate between the bracketing points.
            const double prev = magnitude_db(node, i - 1);
            const double frac = (prev - (ref - 3.0)) / (prev - db);
            return freq_[i - 1] *
                   std::pow(freq_[i] / freq_[i - 1], frac);
        }
    }
    return std::numeric_limits<double>::quiet_NaN();
}

void AcResult::append(double f, std::vector<std::complex<double>> x) {
    freq_.push_back(f);
    states_.push_back(std::move(x));
}

namespace {

using Complex = std::complex<double>;

/// Dense complex solve with partial pivoting (in place). Returns false on
/// numerical singularity.
bool complex_solve(std::vector<Complex>& a, std::vector<Complex>& b,
                   std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(a[k * n + k]);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::abs(a[r * n + k]);
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best < 1e-300)
            return false;
        if (pivot != k) {
            for (std::size_t c = k; c < n; ++c)
                std::swap(a[k * n + c], a[pivot * n + c]);
            std::swap(b[k], b[pivot]);
        }
        const Complex inv = 1.0 / a[k * n + k];
        for (std::size_t r = k + 1; r < n; ++r) {
            const Complex factor = a[r * n + k] * inv;
            if (factor == Complex{})
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                a[r * n + c] -= factor * a[k * n + c];
            b[r] -= factor * b[k];
        }
    }
    for (std::size_t i = n; i-- > 0;) {
        Complex acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= a[i * n + c] * b[c];
        b[i] = acc / a[i * n + i];
    }
    return true;
}

} // namespace

AcResult solve_ac(Circuit& circuit, const SimContext& ctx,
                  const AcStimulus& stimulus, double f_start, double f_stop,
                  std::size_t points_per_decade, const la::Vector* dc_guess) {
    AcResult result;
    TFET_EXPECTS(stimulus.source != nullptr);
    TFET_EXPECTS(f_start > 0.0 && f_stop > f_start);
    TFET_EXPECTS(points_per_decade >= 1);

    const ScopedContext bind(ctx);
    const SolverOptions& opts = ctx.options();
    circuit.prepare();
    DcResult dc = solve_dc(circuit, ctx, 0.0, dc_guess);
    if (!dc.converged) {
        if (dc.error.has_value()) {
            result.error = std::move(dc.error);
        } else {
            SolveError err;
            err.code = SolveErrorCode::kNonConvergence;
            err.message = "ac: operating point did not converge";
            result.error = std::move(err);
        }
        result.message = "ac: operating point did not converge: " +
                         result.error->describe();
        return result;
    }
    for (const auto& dev : circuit.devices())
        dev->begin_transient(dc.x);

    const std::size_t n = circuit.num_unknowns();

    // Small-signal conductance matrix: the DC Jacobian at the OP.
    la::Matrix g_mat;
    la::Vector rhs;
    {
        AnalysisState as;
        as.mode = AnalysisMode::kDc;
        assemble(circuit, as, dc.x, opts.gmin, g_mat, rhs);
    }

    // Capacitance matrix by companion-model extraction: with backward
    // Euler the transient Jacobian is G + C/dt, so two assemblies at
    // different dt isolate C exactly (the companion conductance is linear
    // in 1/dt).
    la::Matrix c_mat(n, n);
    {
        AnalysisState as;
        as.mode = AnalysisMode::kTransient;
        as.integrator = Integrator::kBackwardEuler;
        as.first_transient_step = true;
        la::Matrix j1;
        la::Matrix j2;
        as.dt = 1e-6;
        as.time = 0.0;
        assemble(circuit, as, dc.x, opts.gmin, j1, rhs);
        as.dt = 2e-6;
        assemble(circuit, as, dc.x, opts.gmin, j2, rhs);
        const double scale = 1.0 / (1.0 / 1e-6 - 1.0 / 2e-6);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                c_mat(r, c) = (j1(r, c) - j2(r, c)) * scale;
    }

    // The stimulated source's constraint row drives the unit phasor.
    const std::size_t stim_row =
        (circuit.num_nodes() - 1) + stimulus.source->branch();

    const double decades = std::log10(f_stop / f_start);
    const auto steps = static_cast<std::size_t>(
        std::ceil(decades * static_cast<double>(points_per_decade)));
    for (std::size_t i = 0; i <= steps; ++i) {
        const double f =
            f_start * std::pow(10.0, decades * static_cast<double>(i) /
                                         static_cast<double>(steps));
        const double w = 2.0 * M_PI * f;
        std::vector<Complex> a(n * n);
        std::vector<Complex> b(n, Complex{});
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a[r * n + c] = Complex{g_mat(r, c), w * c_mat(r, c)};
        b[stim_row] = stimulus.magnitude;
        if (!complex_solve(a, b, n)) {
            result.message = "ac: singular system at f=" + std::to_string(f);
            SolveError err;
            err.code = SolveErrorCode::kSingularAcSystem;
            err.message = result.message;
            err.last_iterate = dc.x; // the OP the linearization came from
            result.error = std::move(err);
            return result;
        }
        result.append(f, std::move(b));
    }
    result.ok = true;
    return result;
}

AcResult solve_ac(Circuit& circuit, const SolverOptions& opts,
                  const AcStimulus& stimulus, double f_start, double f_stop,
                  std::size_t points_per_decade, const la::Vector* dc_guess) {
    const SimContext& ambient = ambient_context();
    if (&opts == &ambient.options())
        return solve_ac(circuit, ambient, stimulus, f_start, f_stop,
                        points_per_decade, dc_guess);
    const SimContext view = ambient.with_options(opts);
    return solve_ac(circuit, view, stimulus, f_start, f_stop,
                    points_per_decade, dc_guess);
}

} // namespace tfetsram::spice
