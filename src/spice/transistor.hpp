#pragma once
// Three-terminal transistor element. Channel current comes from a pluggable
// TransistorModel (analytic physics or lookup table); gate-source and
// gate-drain capacitances from the model's C-V characteristic integrate via
// the engine's companion models. Width scales all per-micron quantities.

#include "spice/device.hpp"
#include "spice/transistor_model.hpp"

namespace tfetsram::spice {

class DeviceEvalBatch;

class Transistor final : public Device {
public:
    Transistor(std::string label, TransistorModelPtr model, NodeId drain,
               NodeId gate, NodeId source, double width_um);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    void begin_transient(const la::Vector& x0) override;
    void accept_step(const AnalysisState& as, const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;

    /// Channel current (drain -> source, amps) at the given solution.
    [[nodiscard]] double drain_current(const la::Vector& x) const;

    [[nodiscard]] double width_um() const { return width_um_; }
    [[nodiscard]] const TransistorModel& model() const { return *model_; }

    /// Swap the device model (used by Monte-Carlo re-simulation).
    void set_model(TransistorModelPtr model);

    /// Adopt a precomputed I-V slot in the circuit's DeviceEvalBatch.
    /// Called by the batch during layout build; stamp() consumes the slot
    /// whenever the batch holds fresh samples and falls back to the scalar
    /// model call otherwise (pattern discovery, standalone stamping).
    void attach_batch(const DeviceEvalBatch* batch, std::size_t slot) {
        batch_ = batch;
        batch_slot_ = slot;
    }

    [[nodiscard]] NodeId drain() const { return d_; }
    [[nodiscard]] NodeId gate() const { return g_; }
    [[nodiscard]] NodeId source() const { return s_; }

private:
    /// Dynamic state of one internal capacitor branch.
    struct CapState {
        double v_prev = 0.0;
        double i_prev = 0.0;
    };

    void stamp_cap(Stamper& st, const AnalysisState& as, NodeId a, NodeId b,
                   double farads, const CapState& cs) const;
    static void accept_cap(const AnalysisState& as, double v_new, double farads,
                           CapState& cs);

    TransistorModelPtr model_;
    const DeviceEvalBatch* batch_ = nullptr;
    std::size_t batch_slot_ = 0;
    NodeId d_;
    NodeId g_;
    NodeId s_;
    double width_um_;
    CapState cgs_state_;
    CapState cgd_state_;
};

} // namespace tfetsram::spice
