#pragma once
// AC small-signal analysis: linearize every device at a solved operating
// point and sweep a complex phasor system (G + jwC) x = b across
// frequency. Used here for loop-gain and bandwidth studies of the SRAM
// cells (e.g. the regeneration gain that decides the butterfly margins),
// and a standard feature of any production circuit engine.

#include <complex>
#include <optional>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/context.hpp"
#include "spice/solve_error.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::spice {

/// One AC excitation: a unit (or scaled) phasor replacing the waveform of
/// a chosen voltage source; every other independent source is AC-quiet.
struct AcStimulus {
    const VoltageSource* source = nullptr;
    double magnitude = 1.0; ///< phasor magnitude [V]
};

/// Result of an AC sweep: node voltage phasors per frequency.
class AcResult {
public:
    bool ok = false;
    std::string message;
    std::optional<SolveError> error; ///< structured cause when !ok — for a
                                     ///< failed operating point this carries
                                     ///< the full DC strategy chain

    [[nodiscard]] const std::vector<double>& frequencies() const {
        return freq_;
    }
    /// Phasor of `node` at sweep point i.
    [[nodiscard]] std::complex<double> phasor(NodeId node,
                                              std::size_t i) const;
    /// |V(node)| in dB relative to 1 V at sweep point i.
    [[nodiscard]] double magnitude_db(NodeId node, std::size_t i) const;

    /// -3 dB corner relative to the response at the lowest frequency;
    /// NaN if the response never drops 3 dB within the sweep.
    [[nodiscard]] double corner_frequency(NodeId node) const;

    void append(double f, std::vector<std::complex<double>> x);

private:
    std::vector<double> freq_;
    std::vector<std::vector<std::complex<double>>> states_;
};

/// Run an AC sweep over logarithmically spaced frequencies
/// [f_start, f_stop] with `points_per_decade` resolution, under `ctx`
/// (bound as the thread's ambient context for the duration). The
/// operating point is solved internally (optionally seeded by `dc_guess`).
AcResult solve_ac(Circuit& circuit, const SimContext& ctx,
                  const AcStimulus& stimulus, double f_start, double f_stop,
                  std::size_t points_per_decade = 10,
                  const la::Vector* dc_guess = nullptr);

/// Compatibility entry: sweep under the ambient context with `opts`
/// layered over its options.
AcResult solve_ac(Circuit& circuit, const SolverOptions& opts,
                  const AcStimulus& stimulus, double f_start, double f_stop,
                  std::size_t points_per_decade = 10,
                  const la::Vector* dc_guess = nullptr);

} // namespace tfetsram::spice
