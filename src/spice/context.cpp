#include "spice/context.hpp"

#include "util/fault.hpp"

namespace tfetsram::spice {

namespace {

/// SplitMix64 finalizer — the same mix the fault injector uses; one
/// application fully decorrelates child streams from the root seed.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

thread_local const SimContext* t_bound = nullptr;

} // namespace

SimConfig SimConfig::from_env() {
    return from_env(env::EnvSnapshot::capture());
}

SimConfig SimConfig::from_env(const env::EnvSnapshot& snap) {
    SimConfig cfg;
    // An unset TFETSRAM_SOLVER leaves mode empty: the context then tracks
    // the live process-wide policy instead of freezing "auto" at capture
    // time, so set_solver_mode()/ScopedSolverMode still take effect.
    if (!snap.solver.empty())
        cfg.mode = parse_solver_mode(snap.solver.c_str());
    if (snap.seed != 0)
        cfg.seed = snap.seed;
    cfg.fault_spec = snap.faults;
    if (!snap.out_dir.empty())
        cfg.out_dir = snap.out_dir;
    if (!snap.cache_dir.empty())
        cfg.cache_dir = snap.cache_dir;
    if (snap.task_timeout > 0)
        cfg.deadline_s = snap.task_timeout;
    return cfg;
}

SimContext::SimContext(SimConfig config)
    : config_(std::move(config)), stats_sink_(&stats_) {
    if (!config_.fault_spec.empty())
        fault_ = std::make_shared<fault::FaultState>(config_.fault_spec);
    if (config_.deadline_s > 0) {
        has_deadline_ = true;
        deadline_at_ = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(config_.deadline_s));
    }
}

SimContext::~SimContext() = default;

SimContext::SimContext(SimContext&& other) noexcept
    : config_(std::move(other.config_)), stats_(other.stats_),
      // A moved context that owned its sink keeps owning it; a view keeps
      // aliasing its parent.
      stats_sink_(other.stats_sink_ == &other.stats_ ? &stats_
                                                     : other.stats_sink_),
      fault_(std::move(other.fault_)), has_deadline_(other.has_deadline_),
      deadline_at_(other.deadline_at_) {}

SimContext::SimContext(ViewTag, const SimContext& parent,
                       const SolverOptions& opts)
    : config_(parent.config_), stats_sink_(parent.stats_sink_),
      fault_(parent.fault_), has_deadline_(parent.has_deadline_),
      deadline_at_(parent.deadline_at_) {
    config_.options = opts;
}

SolverKind SimContext::select_kind(std::size_t num_unknowns) const {
    return apply_solver_mode(config_.mode ? *config_.mode : solver_mode(),
                             num_unknowns);
}

std::uint64_t SimContext::derive_seed(std::uint64_t stream) const {
    return mix64(config_.seed ^ mix64(stream));
}

SimContext SimContext::child(std::uint64_t stream) const {
    SimConfig cfg = config_;
    cfg.seed = derive_seed(stream);
    SimContext ctx(std::move(cfg));
    ctx.fault_ = fault_; // children share the plan (and its op counters)
    // A child inherits the parent's absolute expiry instant, not a fresh
    // window — the fan-out cannot outlive the task that spawned it. (The
    // constructor re-armed from deadline_s; overwrite with the original.)
    ctx.has_deadline_ = has_deadline_;
    ctx.deadline_at_ = deadline_at_;
    return ctx;
}

SimContext SimContext::with_options(const SolverOptions& opts) const {
    return SimContext(ViewTag{}, *this, opts);
}

bool SimContext::should_fail(fault::Site site) const {
    if (fault_)
        return fault_->should_fail(site);
    return fault::should_fail(site);
}

SolveErrorCode SimContext::poll_cancellation() const {
    ++stats_sink_->deadline_polls;
    if (config_.cancel) {
        if (config_.cancel->cancelled())
            return SolveErrorCode::kCancelled;
        config_.cancel->tick(); // heartbeat for the watchdog
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_)
        return SolveErrorCode::kDeadlineExceeded;
    if (config_.iteration_budget != 0 &&
        stats_sink_->nr_iterations >= config_.iteration_budget)
        return SolveErrorCode::kDeadlineExceeded;
    return SolveErrorCode::kNone;
}

SolveErrorCode SimContext::cancellation_status() const {
    if (config_.cancel && config_.cancel->cancelled())
        return SolveErrorCode::kCancelled;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_)
        return SolveErrorCode::kDeadlineExceeded;
    if (config_.iteration_budget != 0 &&
        stats_sink_->nr_iterations >= config_.iteration_budget)
        return SolveErrorCode::kDeadlineExceeded;
    return SolveErrorCode::kNone;
}

const SimContext& ambient_context() {
    if (t_bound != nullptr)
        return *t_bound;
    // Per-thread default: env defaults frozen at first use, own stats —
    // exactly the historical thread_local solver_stats() semantics for
    // code running outside any explicit context.
    thread_local SimContext default_ctx(
        SimConfig::from_env(env::EnvSnapshot::process()));
    return default_ctx;
}

ScopedContext::ScopedContext(const SimContext& ctx)
    : previous_(t_bound), active_(true) {
    t_bound = &ctx;
}

ScopedContext::ScopedContext(const SimContext* ctx)
    : previous_(t_bound), active_(ctx != nullptr) {
    if (active_)
        t_bound = ctx;
}

ScopedContext::~ScopedContext() {
    if (active_)
        t_bound = previous_;
}

} // namespace tfetsram::spice
