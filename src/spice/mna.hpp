#pragma once
// Modified-nodal-analysis assembly: linearize every device at a candidate
// solution into the Jacobian and right-hand side. Two numeric paths share
// the same Stamper-driven stamping code, so they accumulate identical
// addends in identical order: dense (la::Matrix) and sparse (a CSR
// la::SparseMatrix whose pattern build_pattern froze once per circuit).

#include "la/matrix.hpp"
#include "la/sparse_matrix.hpp"
#include "spice/circuit.hpp"

namespace tfetsram::spice {

/// Assemble the linearized MNA system for `circuit` at candidate solution x.
/// `gmin` is a convergence-aid conductance added from every non-ground node
/// to ground. jac/rhs are resized and zeroed as needed.
void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::Matrix& jac, la::Vector& rhs);

/// Sparse assembly into a finalized pattern (see build_pattern). The hot
/// path is allocation-free: values are zeroed and re-accumulated in place.
void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::SparseMatrix& jac, la::Vector& rhs);

/// Discover and freeze the circuit's MNA sparsity pattern into `jac`:
/// the full diagonal (gmin shunts; also gives pivoting a diagonal target)
/// plus every position any device stamps under DC *or* transient analysis
/// (the union superset — charge-storage companion models only appear in
/// transient). Call once per circuit topology, before sparse assemble().
void build_pattern(Circuit& circuit, la::SparseMatrix& jac);

} // namespace tfetsram::spice
