#pragma once
// Modified-nodal-analysis assembly: linearize every device at a candidate
// solution into the Jacobian and right-hand side.

#include "la/matrix.hpp"
#include "spice/circuit.hpp"

namespace tfetsram::spice {

/// Assemble the linearized MNA system for `circuit` at candidate solution x.
/// `gmin` is a convergence-aid conductance added from every non-ground node
/// to ground. jac/rhs are resized and zeroed as needed.
void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::Matrix& jac, la::Vector& rhs);

} // namespace tfetsram::spice
