#pragma once
// Linear-kernel selection for the Newton loop: dense LU (the right call for
// single-cell circuits, < ~64 unknowns) versus the sparse kernel (what
// makes rows x cols arrays tractable). Selection is automatic by system
// size; TFETSRAM_SOLVER=dense|sparse|auto overrides it process-wide, and
// set_solver_mode() overrides both programmatically (tests and the
// sparse-vs-dense microbench workloads).

#include <cstddef>

namespace tfetsram::spice {

/// Backend actually used for one circuit's solves.
enum class SolverKind { kDense, kSparse };

/// Requested policy (env var / programmatic override).
enum class SolverMode { kAuto, kDense, kSparse };

/// Unknown count at and above which kAuto picks the sparse kernel. Below
/// it the dense kernel's cache behaviour wins (see docs/SOLVER.md); a
/// single 6T cell sits near 10 unknowns, an 8x8 array near 200.
inline constexpr std::size_t kSparseAutoThreshold = 64;

/// Parse a TFETSRAM_SOLVER value; nullptr, empty, "auto", and anything
/// unrecognized mean kAuto.
SolverMode parse_solver_mode(const char* text);

/// Apply a policy to a system size (kAuto routes by kSparseAutoThreshold).
/// Pure — SimContext uses it with its own mode, select_solver_kind with
/// the process-wide one.
SolverKind apply_solver_mode(SolverMode mode, std::size_t num_unknowns);

/// Effective process-wide policy: the programmatic override if set, else
/// the cached TFETSRAM_SOLVER environment value. Contexts with an explicit
/// SimConfig::mode bypass this entirely (spice/context.hpp).
SolverMode solver_mode();

/// Install a process-wide programmatic override (kAuto included); wins
/// over the environment until clear_solver_mode_override().
void set_solver_mode(SolverMode mode);
void clear_solver_mode_override();

/// Apply the effective policy to a system size.
SolverKind select_solver_kind(std::size_t num_unknowns);

/// RAII override for tests/benches comparing backends in one process.
class ScopedSolverMode {
public:
    explicit ScopedSolverMode(SolverMode mode);
    ~ScopedSolverMode();
    ScopedSolverMode(const ScopedSolverMode&) = delete;
    ScopedSolverMode& operator=(const ScopedSolverMode&) = delete;

private:
    int previous_; ///< encoded prior override (-1 = none)
};

} // namespace tfetsram::spice
