#include "spice/mna.hpp"

#include "spice/stats.hpp"

namespace tfetsram::spice {

void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::Matrix& jac, la::Vector& rhs) {
    ++solver_stats().assemblies;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();
    TFET_EXPECTS(x.size() == n);

    if (jac.rows() != n || jac.cols() != n)
        jac = la::Matrix(n, n);
    else
        jac.set_zero();
    rhs.assign(n, 0.0);

    Stamper st(jac, rhs, circuit.num_nodes());

    // Convergence-aid conductances from every node to ground.
    if (gmin > 0.0)
        for (NodeId node = 1; node < circuit.num_nodes(); ++node)
            st.add_conductance(node, kGround, gmin);

    for (const auto& dev : circuit.devices())
        dev->stamp(st, as, x);
}

} // namespace tfetsram::spice
