#include "spice/mna.hpp"

#include "spice/eval_batch.hpp"
#include "spice/stats.hpp"

namespace tfetsram::spice {

namespace {

/// Shared stamping order for every backend: gmin shunts first, then the
/// devices in circuit order. Keeping one code path here is what makes the
/// dense and sparse assemblies bit-identical per matrix entry.
void stamp_all(Circuit& circuit, Stamper& st, const AnalysisState& as,
               const la::Vector& x, double gmin) {
    if (gmin > 0.0)
        for (NodeId node = 1; node < circuit.num_nodes(); ++node)
            st.add_conductance(node, kGround, gmin);

    for (const auto& dev : circuit.devices())
        dev->stamp(st, as, x);
}

} // namespace

void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::Matrix& jac, la::Vector& rhs) {
    ++solver_stats().assemblies;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();
    TFET_EXPECTS(x.size() == n);

    if (jac.rows() != n || jac.cols() != n)
        jac = la::Matrix(n, n);
    else
        jac.set_zero();
    rhs.assign(n, 0.0);

    // One structure-of-arrays I-V sweep over all transistors before the
    // stamp loop; stamps then consume precomputed samples by slot. Both
    // numeric backends run it, preserving dense/sparse bitwise parity.
    circuit.eval_batch().evaluate(circuit, x);

    Stamper st(jac, rhs, circuit.num_nodes());
    stamp_all(circuit, st, as, x, gmin);
}

void assemble(Circuit& circuit, const AnalysisState& as, const la::Vector& x,
              double gmin, la::SparseMatrix& jac, la::Vector& rhs) {
    ++solver_stats().assemblies;
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();
    TFET_EXPECTS(x.size() == n);
    TFET_EXPECTS(jac.finalized());
    TFET_EXPECTS(jac.rows() == n);

    jac.set_zero();
    rhs.assign(n, 0.0);

    circuit.eval_batch().evaluate(circuit, x);

    // The circuit's own workspace matrix gets the stamp-replay plan: the
    // Newton loop reassembles it once per iterate with an identical stamp
    // sequence, so the position searches are memoized per analysis mode
    // (keyed to the pattern generation; see StampPlan). Any other target
    // matrix (tests assembling into their own storage) takes the plain
    // searched path.
    StampPlan* plan = nullptr;
    if (&jac == &circuit.workspace().sjac)
        plan = as.mode == AnalysisMode::kDc ? &circuit.workspace().plan_dc
                                            : &circuit.workspace().plan_tr;

    Stamper st(jac, rhs, circuit.num_nodes(), plan);
    stamp_all(circuit, st, as, x, gmin);
    st.finish_plan();
}

void build_pattern(Circuit& circuit, la::SparseMatrix& jac) {
    circuit.prepare();
    const std::size_t n = circuit.num_unknowns();
    jac.reset(n, n);

    // Rough upper bound on raw registrations (two passes of gmin shunts
    // plus a generous per-device stamp estimate) so the triplet store is
    // allocated once instead of growing through the passes.
    jac.reserve_triplets(3 * n + 24 * circuit.devices().size());

    // Full diagonal: covers the gmin shunts on node rows and keeps a
    // diagonal slot available for pivoting on every row.
    for (std::size_t i = 0; i < n; ++i)
        jac.reserve_entry(i, i);

    la::Vector x_zero(n, 0.0);
    la::Vector rhs_scratch(n, 0.0);
    Stamper st = Stamper::pattern_recorder(jac, rhs_scratch,
                                           circuit.num_nodes());

    // Union over analysis modes: capacitive companion models stamp only
    // in transient, so a DC-only pass would under-register the pattern.
    // Stamping is side-effect-free on device state, so running both
    // passes over the same recorder is safe.
    AnalysisState dc;
    dc.mode = AnalysisMode::kDc;
    stamp_all(circuit, st, dc, x_zero, /*gmin=*/1.0);

    AnalysisState tr;
    tr.mode = AnalysisMode::kTransient;
    tr.dt = 1e-12;
    tr.first_transient_step = true;
    stamp_all(circuit, st, tr, x_zero, /*gmin=*/1.0);

    jac.finalize_pattern();
}

} // namespace tfetsram::spice
