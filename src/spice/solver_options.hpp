#pragma once
// Shared numerical knobs for the DC and transient engines.

#include <cstddef>

#include "spice/device.hpp"

namespace tfetsram::spice {

struct SolverOptions {
    // --- Newton-Raphson ---
    double vntol = 1e-6;   ///< absolute node-voltage tolerance [V]
    double reltol = 1e-3;  ///< relative tolerance
    double itol = 1e-9;    ///< absolute branch-current tolerance [A]
    double gmin = 1e-12;   ///< baseline convergence conductance [S]
    int max_nr_iterations = 200;
    double dv_limit = 0.4; ///< max Newton update magnitude per iteration [V]

    // --- transient ---
    double dt_initial = 1e-13; ///< first step size [s]
    double dt_min = 1e-17;     ///< below this a step failure is fatal [s]
    double dt_max = 1e-10;     ///< upper step bound [s]
    double lte_reltol = 5e-3;  ///< local-truncation-error relative tolerance
    double lte_abstol = 5e-5;  ///< local-truncation-error absolute tol [V]
    Integrator integrator = Integrator::kTrapezoidal;
    std::size_t max_steps = 4'000'000; ///< runaway guard
};

} // namespace tfetsram::spice
