#include "spice/transistor.hpp"

#include <algorithm>

#include "spice/eval_batch.hpp"
#include "spice/solution.hpp"

namespace tfetsram::spice {

namespace {
// Floor on the channel output conductance stamped into the Jacobian. Keeps
// the matrix well-conditioned when a device is deeply off without visibly
// perturbing currents (1 fS across 1 V is 1e-15 A).
constexpr double kGdsFloor = 1e-15;
} // namespace

Transistor::Transistor(std::string label, TransistorModelPtr model,
                       NodeId drain, NodeId gate, NodeId source,
                       double width_um)
    : Device(std::move(label)), model_(std::move(model)), d_(drain), g_(gate),
      s_(source), width_um_(width_um) {
    TFET_EXPECTS(model_ != nullptr);
    TFET_EXPECTS(width_um > 0.0);
    TFET_EXPECTS(drain != source);
}

void Transistor::set_model(TransistorModelPtr model) {
    TFET_EXPECTS(model != nullptr);
    model_ = std::move(model);
}

void Transistor::stamp(Stamper& st, const AnalysisState& as,
                       const la::Vector& x) {
    if (st.pattern_only()) {
        // Symbolic pass: only the touched positions matter, so skip the
        // model evaluation (table lookups dominate pattern building on
        // large arrays) and register the channel + capacitor stamps with
        // placeholder values.
        st.add_transconductance(d_, s_, g_, s_, 0.0);
        st.add_conductance(d_, s_, 0.0);
        st.add_current(d_, s_, 0.0);
        if (as.mode == AnalysisMode::kTransient) {
            st.add_conductance(g_, s_, 0.0);
            st.add_current(g_, s_, 0.0);
            st.add_conductance(g_, d_, 0.0);
            st.add_current(g_, d_, 0.0);
        }
        return;
    }

    const double vgs = branch_voltage(x, g_, s_);
    const double vds = branch_voltage(x, d_, s_);

    // Assembly precomputes every transistor's sample in one batched sweep
    // (DeviceEvalBatch evaluates at the same x this stamp sees, with
    // bitwise-identical arithmetic). The scalar fallback covers pattern
    // discovery and any stamping outside the assemble() entry points.
    const IvSample iv = (batch_ != nullptr && batch_->ready())
                            ? batch_->sample(batch_slot_)
                            : model_->iv(vgs, vds);
    const double ids = iv.ids * width_um_;
    const double gm = iv.gm * width_um_;
    const double gds = std::max(iv.gds * width_um_, kGdsFloor);

    // Linearized channel: Ids ~= ids + gm*(dvgs) + gds*(dvds), flowing D->S.
    st.add_transconductance(d_, s_, g_, s_, gm);
    st.add_conductance(d_, s_, gds);
    const double ieq = ids - gm * vgs - gds * vds;
    st.add_current(d_, s_, ieq);

    if (as.mode == AnalysisMode::kTransient) {
        const CvSample cv = model_->cv(vgs, vds);
        stamp_cap(st, as, g_, s_, cv.cgs * width_um_, cgs_state_);
        stamp_cap(st, as, g_, d_, cv.cgd * width_um_, cgd_state_);
    }
}

void Transistor::stamp_cap(Stamper& st, const AnalysisState& as, NodeId a,
                           NodeId b, double farads,
                           const CapState& cs) const {
    TFET_EXPECTS(as.dt > 0.0);
    const bool use_trap = as.integrator == Integrator::kTrapezoidal &&
                          !as.first_transient_step;
    double geq = 0.0;
    double ieq = 0.0;
    if (use_trap) {
        geq = 2.0 * farads / as.dt;
        ieq = -(geq * cs.v_prev + cs.i_prev);
    } else {
        geq = farads / as.dt;
        ieq = -geq * cs.v_prev;
    }
    st.add_conductance(a, b, geq);
    st.add_current(a, b, ieq);
}

void Transistor::accept_cap(const AnalysisState& as, double v_new,
                            double farads, CapState& cs) {
    const bool use_trap = as.integrator == Integrator::kTrapezoidal &&
                          !as.first_transient_step;
    if (use_trap) {
        const double geq = 2.0 * farads / as.dt;
        cs.i_prev = geq * (v_new - cs.v_prev) - cs.i_prev;
    } else {
        cs.i_prev = farads / as.dt * (v_new - cs.v_prev);
    }
    cs.v_prev = v_new;
}

void Transistor::begin_transient(const la::Vector& x0) {
    cgs_state_ = {branch_voltage(x0, g_, s_), 0.0};
    cgd_state_ = {branch_voltage(x0, g_, d_), 0.0};
}

void Transistor::accept_step(const AnalysisState& as, const la::Vector& x) {
    const double vgs = branch_voltage(x, g_, s_);
    const double vds = branch_voltage(x, d_, s_);
    const CvSample cv = model_->cv(vgs, vds);
    accept_cap(as, vgs, cv.cgs * width_um_, cgs_state_);
    accept_cap(as, branch_voltage(x, g_, d_), cv.cgd * width_um_, cgd_state_);
}

double Transistor::drain_current(const la::Vector& x) const {
    const double vgs = branch_voltage(x, g_, s_);
    const double vds = branch_voltage(x, d_, s_);
    return model_->iv(vgs, vds).ids * width_um_;
}

double Transistor::power(const la::Vector& x) const {
    return drain_current(x) * branch_voltage(x, d_, s_);
}

} // namespace tfetsram::spice
