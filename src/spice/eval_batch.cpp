#include "spice/eval_batch.hpp"

#include "spice/circuit.hpp"
#include "spice/solution.hpp"
#include "spice/stats.hpp"

namespace tfetsram::spice {

bool DeviceEvalBatch::layout_stale(const Circuit& circuit) const {
    if (built_revision_ != circuit.topology_revision())
        return true;
    // Monte-Carlo re-simulation swaps models via set_model without touching
    // the topology revision; the group layout keys on model identity, so a
    // swap must trigger a rebuild. Pointer compares only — cheap next to
    // the interpolation work the batch exists to speed up.
    for (const Group& g : groups_)
        for (std::size_t s = g.first; s < g.first + g.count; ++s)
            if (&order_[s]->model() != g.model)
                return true;
    return false;
}

bool DeviceEvalBatch::try_retarget() {
    // Model swap with unchanged topology — the Monte-Carlo lockstep path,
    // where every sample re-points the same transistors at fresh per-draw
    // models. When each group's transistors moved in unison to one new
    // model the slot layout is still valid: just re-point the groups
    // instead of re-slotting and re-attaching every transistor. Validate
    // all groups before committing any so a half-unanimous swap falls
    // back to a clean rebuild.
    for (const Group& g : groups_) {
        const TransistorModel* m = &order_[g.first]->model();
        for (std::size_t s = g.first + 1; s < g.first + g.count; ++s)
            if (&order_[s]->model() != m)
                return false;
    }
    for (Group& g : groups_)
        g.model = &order_[g.first]->model();
    return true;
}

void DeviceEvalBatch::rebuild(Circuit& circuit) {
    const auto& transistors = circuit.transistors();
    const std::size_t n = transistors.size();

    // Group-major slot layout in first-seen model order: each distinct
    // model gets one contiguous vgs/vds/iv range so its iv_many sweep
    // reads and writes straight runs. Distinct models are few (the four-
    // model zoo, give or take MC clones), so a linear scan beats a map.
    groups_.clear();
    std::vector<std::size_t> group_of(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TransistorModel* m = &transistors[i]->model();
        std::size_t g = groups_.size();
        for (std::size_t j = 0; j < groups_.size(); ++j)
            if (groups_[j].model == m) {
                g = j;
                break;
            }
        if (g == groups_.size())
            groups_.push_back({m, 0, 0});
        ++groups_[g].count;
        group_of[i] = g;
    }
    std::size_t offset = 0;
    for (Group& g : groups_) {
        g.first = offset;
        offset += g.count;
    }

    order_.assign(n, nullptr);
    vgs_.assign(n, 0.0);
    vds_.assign(n, 0.0);
    iv_.assign(n, IvSample{});
    std::vector<std::size_t> cursor(groups_.size());
    for (std::size_t j = 0; j < groups_.size(); ++j)
        cursor[j] = groups_[j].first;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t slot = cursor[group_of[i]]++;
        order_[slot] = transistors[i];
        transistors[i]->attach_batch(this, slot);
    }

    built_revision_ = circuit.topology_revision();
    ready_ = false;
}

void DeviceEvalBatch::evaluate(Circuit& circuit, const la::Vector& x) {
    if (layout_stale(circuit) &&
        (built_revision_ != circuit.topology_revision() || order_.empty() ||
         !try_retarget()))
        rebuild(circuit);
    const std::size_t n = order_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Transistor* t = order_[i];
        vgs_[i] = branch_voltage(x, t->gate(), t->source());
        vds_[i] = branch_voltage(x, t->drain(), t->source());
    }
    for (const Group& g : groups_)
        g.model->iv_many(vgs_.data() + g.first, vds_.data() + g.first, g.count,
                         iv_.data() + g.first);
    solver_stats().batched_evals += n;
    ready_ = true;
}

} // namespace tfetsram::spice
