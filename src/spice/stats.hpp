#pragma once
// Per-thread solver instrumentation. The DC and transient engines bump
// these counters on the thread doing the solving; the runner's telemetry
// layer snapshots them around each task to report how much Newton work a
// task actually cost (NR iterations per cache miss is the engine's primary
// perf-trajectory metric).
//
// The fine-grained counters (assemblies, LU factorizations, line-search
// backtracks) exist to pin the solver's perf contract: a healthy Newton
// loop performs exactly one MNA assembly per accepted iterate plus one per
// backtrack, and one LU factorization per iterate. tests/test_solver_perf
// asserts these invariants and bench/microbench.cpp publishes them as the
// BENCH_microbench.json trajectory (see docs/SOLVER.md).
//
// Counters live on a SimContext (spice/context.hpp): each context owns a
// sink, the engines bump the context doing the solving, and a parent
// aggregates its fan-out children with operator+= — which is how inner
// Monte-Carlo pool work now attributes to the task that spawned it (see
// docs/ARCHITECTURE.md). solver_stats() remains as the thread-ambient
// view: it resolves to the context bound to this thread (else the
// per-thread default), preserving the historical snapshot/subtract
// metering idiom with no atomic traffic in the Newton hot loop.

#include <cstdint>

namespace tfetsram::spice {

struct SolverStats {
    std::uint64_t nr_iterations = 0;   ///< Newton-Raphson iterations
    std::uint64_t dc_solves = 0;       ///< solve_dc calls
    std::uint64_t transient_steps = 0; ///< accepted transient time steps
    std::uint64_t transient_solves = 0; ///< solve_transient calls
    std::uint64_t assemblies = 0;       ///< full MNA system assemblies
    std::uint64_t lu_factorizations = 0; ///< Jacobian factorizations (any kernel)
    std::uint64_t line_search_backtracks = 0; ///< rejected damped steps
    std::uint64_t sparse_refactorizations = 0; ///< sparse numeric refactors
    std::uint64_t sparse_symbolic_analyses = 0; ///< once per sparse circuit

    // Sparse-kernel fast-path instrumentation (docs/SOLVER.md): a refactor
    // either reuses the previous pivot sequence (a static-pivot hit) or
    // runs threshold pivoting; a factor whose element growth tripped the
    // monitor and was redone under stricter pivoting bumps the fallback
    // counter. ordering_us accumulates wall microseconds spent computing
    // fill-reducing orderings (symbolic analysis only, so ~once per
    // topology).
    std::uint64_t sparse_static_pivot_hits = 0; ///< refactors w/o pivot search
    std::uint64_t sparse_pivot_fallbacks = 0;   ///< growth-triggered retries
    std::uint64_t sparse_ordering_us = 0;       ///< time in fill ordering [us]

    /// Device I-V samples computed through the batched structure-of-arrays
    /// path (DeviceEvalBatch) rather than one-at-a-time virtual dispatch.
    std::uint64_t batched_evals = 0;

    // Cancellation/deadline instrumentation (docs/ROBUSTNESS.md): polls
    // happen at deterministic boundaries (one per Newton iteration, per
    // transient step, per solve entry, per mixed-level attempt), so for a
    // fixed workload deadline_polls is exact and rerun-stable; a solve
    // that returned kCancelled/kDeadlineExceeded bumps cancelled_solves.
    std::uint64_t deadline_polls = 0;   ///< cancellation checkpoints hit
    std::uint64_t cancelled_solves = 0; ///< solves ended by cancel/deadline

    // Mixed-level array engine (src/hier) event counters: exact and
    // deterministic for a given operation sequence — the differential
    // tests pin them, and the telemetry journal exposes them per task.
    std::uint64_t hier_promotions = 0;   ///< cells raised to SPICE level
    std::uint64_t hier_demotions = 0;    ///< cells re-latched after settling
    std::uint64_t hier_relinearizations = 0; ///< lumped-load re-extractions
    std::uint64_t hier_guard_retries = 0; ///< ops re-run after a guard trip

    // Gauges (latest observed values, not monotonic counters): the MNA
    // pattern nnz and the L+U nnz of the most recent sparse symbolic
    // analysis / refactorization on this thread.
    std::uint64_t sparse_pattern_nnz = 0;
    std::uint64_t sparse_lu_nnz = 0;
    /// Gauge: unknowns of the mixed-level engine's most recent active
    /// partition (0 when the engine never ran in the metered region).
    std::uint64_t hier_active_unknowns = 0;

    /// Counter deltas for a metered region. Gauges carry their current
    /// value through when the region did any sparse work, and 0 otherwise
    /// (a dense-only region reports no sparse system size).
    SolverStats operator-(const SolverStats& rhs) const {
        SolverStats d;
        d.nr_iterations = nr_iterations - rhs.nr_iterations;
        d.dc_solves = dc_solves - rhs.dc_solves;
        d.transient_steps = transient_steps - rhs.transient_steps;
        d.transient_solves = transient_solves - rhs.transient_solves;
        d.assemblies = assemblies - rhs.assemblies;
        d.lu_factorizations = lu_factorizations - rhs.lu_factorizations;
        d.line_search_backtracks =
            line_search_backtracks - rhs.line_search_backtracks;
        d.sparse_refactorizations =
            sparse_refactorizations - rhs.sparse_refactorizations;
        d.sparse_symbolic_analyses =
            sparse_symbolic_analyses - rhs.sparse_symbolic_analyses;
        d.sparse_static_pivot_hits =
            sparse_static_pivot_hits - rhs.sparse_static_pivot_hits;
        d.sparse_pivot_fallbacks =
            sparse_pivot_fallbacks - rhs.sparse_pivot_fallbacks;
        d.sparse_ordering_us = sparse_ordering_us - rhs.sparse_ordering_us;
        d.batched_evals = batched_evals - rhs.batched_evals;
        d.deadline_polls = deadline_polls - rhs.deadline_polls;
        d.cancelled_solves = cancelled_solves - rhs.cancelled_solves;
        d.hier_promotions = hier_promotions - rhs.hier_promotions;
        d.hier_demotions = hier_demotions - rhs.hier_demotions;
        d.hier_relinearizations =
            hier_relinearizations - rhs.hier_relinearizations;
        d.hier_guard_retries = hier_guard_retries - rhs.hier_guard_retries;
        if (d.sparse_refactorizations > 0 || d.sparse_symbolic_analyses > 0) {
            d.sparse_pattern_nnz = sparse_pattern_nnz;
            d.sparse_lu_nnz = sparse_lu_nnz;
        }
        if (d.hier_promotions > 0 || d.hier_demotions > 0 ||
            d.hier_relinearizations > 0)
            d.hier_active_unknowns = hier_active_unknowns;
        return d;
    }

    /// Aggregate a child context's totals into a parent: counters add,
    /// gauges keep the largest observed system (matching how RunSummary
    /// folds per-task gauges).
    SolverStats& operator+=(const SolverStats& rhs) {
        nr_iterations += rhs.nr_iterations;
        dc_solves += rhs.dc_solves;
        transient_steps += rhs.transient_steps;
        transient_solves += rhs.transient_solves;
        assemblies += rhs.assemblies;
        lu_factorizations += rhs.lu_factorizations;
        line_search_backtracks += rhs.line_search_backtracks;
        sparse_refactorizations += rhs.sparse_refactorizations;
        sparse_symbolic_analyses += rhs.sparse_symbolic_analyses;
        sparse_static_pivot_hits += rhs.sparse_static_pivot_hits;
        sparse_pivot_fallbacks += rhs.sparse_pivot_fallbacks;
        sparse_ordering_us += rhs.sparse_ordering_us;
        batched_evals += rhs.batched_evals;
        deadline_polls += rhs.deadline_polls;
        cancelled_solves += rhs.cancelled_solves;
        hier_promotions += rhs.hier_promotions;
        hier_demotions += rhs.hier_demotions;
        hier_relinearizations += rhs.hier_relinearizations;
        hier_guard_retries += rhs.hier_guard_retries;
        if (rhs.sparse_pattern_nnz > sparse_pattern_nnz)
            sparse_pattern_nnz = rhs.sparse_pattern_nnz;
        if (rhs.sparse_lu_nnz > sparse_lu_nnz)
            sparse_lu_nnz = rhs.sparse_lu_nnz;
        if (rhs.hier_active_unknowns > hier_active_unknowns)
            hier_active_unknowns = rhs.hier_active_unknowns;
        return *this;
    }
};

/// The ambient context's running counters (monotonically increasing;
/// snapshot and subtract to meter a region on this thread). Equivalent to
/// ambient_context().stats().
SolverStats& solver_stats();

} // namespace tfetsram::spice
