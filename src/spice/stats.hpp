#pragma once
// Per-thread solver instrumentation. The DC and transient engines bump
// these counters on the thread doing the solving; the runner's telemetry
// layer snapshots them around each task to report how much Newton work a
// task actually cost (NR iterations per cache miss is the engine's primary
// perf-trajectory metric).
//
// The fine-grained counters (assemblies, LU factorizations, line-search
// backtracks) exist to pin the solver's perf contract: a healthy Newton
// loop performs exactly one MNA assembly per accepted iterate plus one per
// backtrack, and one LU factorization per iterate. tests/test_solver_perf
// asserts these invariants and bench/microbench.cpp publishes them as the
// BENCH_microbench.json trajectory (see docs/SOLVER.md).
//
// thread_local on purpose: counts attribute cleanly to the task running on
// this thread with no atomic traffic in the Newton hot loop. A task that
// fans work out to other threads (e.g. an inner Monte-Carlo pool) only
// observes the solves made on its own thread — see docs/RUNNER.md.

#include <cstdint>

namespace tfetsram::spice {

struct SolverStats {
    std::uint64_t nr_iterations = 0;   ///< Newton-Raphson iterations
    std::uint64_t dc_solves = 0;       ///< solve_dc calls
    std::uint64_t transient_steps = 0; ///< accepted transient time steps
    std::uint64_t transient_solves = 0; ///< solve_transient calls
    std::uint64_t assemblies = 0;       ///< full MNA system assemblies
    std::uint64_t lu_factorizations = 0; ///< Jacobian LU factorizations
    std::uint64_t line_search_backtracks = 0; ///< rejected damped steps

    SolverStats operator-(const SolverStats& rhs) const {
        return {nr_iterations - rhs.nr_iterations,
                dc_solves - rhs.dc_solves,
                transient_steps - rhs.transient_steps,
                transient_solves - rhs.transient_solves,
                assemblies - rhs.assemblies,
                lu_factorizations - rhs.lu_factorizations,
                line_search_backtracks - rhs.line_search_backtracks};
    }
};

/// This thread's running counters (monotonically increasing; snapshot and
/// subtract to meter a region).
SolverStats& solver_stats();

} // namespace tfetsram::spice
