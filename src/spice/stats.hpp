#pragma once
// Per-thread solver instrumentation. The DC and transient engines bump
// these counters on the thread doing the solving; the runner's telemetry
// layer snapshots them around each task to report how much Newton work a
// task actually cost (NR iterations per cache miss is the engine's primary
// perf-trajectory metric).
//
// thread_local on purpose: counts attribute cleanly to the task running on
// this thread with no atomic traffic in the Newton hot loop. A task that
// fans work out to other threads (e.g. an inner Monte-Carlo pool) only
// observes the solves made on its own thread — see docs/RUNNER.md.

#include <cstdint>

namespace tfetsram::spice {

struct SolverStats {
    std::uint64_t nr_iterations = 0;   ///< Newton-Raphson iterations
    std::uint64_t dc_solves = 0;       ///< solve_dc calls
    std::uint64_t transient_steps = 0; ///< accepted transient time steps

    SolverStats operator-(const SolverStats& rhs) const {
        return {nr_iterations - rhs.nr_iterations, dc_solves - rhs.dc_solves,
                transient_steps - rhs.transient_steps};
    }
};

/// This thread's running counters (monotonically increasing; snapshot and
/// subtract to meter a region).
SolverStats& solver_stats();

} // namespace tfetsram::spice
