#include "spice/device.hpp"

namespace tfetsram::spice {

Stamper::Stamper(la::Matrix& jac, la::Vector& rhs, std::size_t num_nodes)
    : jac_(jac), rhs_(rhs), num_nodes_(num_nodes) {
    TFET_EXPECTS(jac_.rows() == jac_.cols());
    TFET_EXPECTS(rhs_.size() == jac_.rows());
    TFET_EXPECTS(num_nodes_ >= 1);
}

std::size_t Stamper::idx(NodeId n) const {
    TFET_EXPECTS(n < num_nodes_);
    return n == kGround ? npos : n - 1;
}

std::size_t Stamper::branch_index(std::size_t branch) const {
    const std::size_t i = (num_nodes_ - 1) + branch;
    TFET_EXPECTS(i < jac_.rows());
    return i;
}

void Stamper::add_conductance(NodeId a, NodeId b, double g) {
    const std::size_t ia = idx(a);
    const std::size_t ib = idx(b);
    if (ia != npos)
        jac_(ia, ia) += g;
    if (ib != npos)
        jac_(ib, ib) += g;
    if (ia != npos && ib != npos) {
        jac_(ia, ib) -= g;
        jac_(ib, ia) -= g;
    }
}

void Stamper::add_current(NodeId from, NodeId to, double i) {
    const std::size_t ifrom = idx(from);
    const std::size_t ito = idx(to);
    if (ifrom != npos)
        rhs_[ifrom] -= i;
    if (ito != npos)
        rhs_[ito] += i;
}

void Stamper::add_transconductance(NodeId out_from, NodeId out_to,
                                   NodeId ctrl_pos, NodeId ctrl_neg,
                                   double g) {
    const std::size_t iof = idx(out_from);
    const std::size_t iot = idx(out_to);
    const std::size_t icp = idx(ctrl_pos);
    const std::size_t icn = idx(ctrl_neg);
    if (iof != npos) {
        if (icp != npos)
            jac_(iof, icp) += g;
        if (icn != npos)
            jac_(iof, icn) -= g;
    }
    if (iot != npos) {
        if (icp != npos)
            jac_(iot, icp) -= g;
        if (icn != npos)
            jac_(iot, icn) += g;
    }
}

void Stamper::stamp_voltage_source(std::size_t branch, NodeId pos, NodeId neg,
                                   double volts) {
    const std::size_t ib = branch_index(branch);
    const std::size_t ip = idx(pos);
    const std::size_t in = idx(neg);
    if (ip != npos) {
        jac_(ip, ib) += 1.0;
        jac_(ib, ip) += 1.0;
    }
    if (in != npos) {
        jac_(in, ib) -= 1.0;
        jac_(ib, in) -= 1.0;
    }
    rhs_[ib] += volts;
}

} // namespace tfetsram::spice
