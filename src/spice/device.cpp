#include "spice/device.hpp"

#include "la/sparse_matrix.hpp"

namespace tfetsram::spice {

Stamper::Stamper(la::Matrix& jac, la::Vector& rhs, std::size_t num_nodes)
    : dense_(&jac), rhs_(rhs), num_nodes_(num_nodes) {
    TFET_EXPECTS(jac.rows() == jac.cols());
    TFET_EXPECTS(rhs_.size() == jac.rows());
    TFET_EXPECTS(num_nodes_ >= 1);
}

Stamper::Stamper(la::SparseMatrix& jac, la::Vector& rhs,
                 std::size_t num_nodes, StampPlan* plan)
    : Stamper(jac, rhs, num_nodes, /*pattern_only=*/false) {
    TFET_EXPECTS(jac.finalized());
    plan_ = plan;
    if (plan_ != nullptr) {
        if (plan_->ok && plan_->generation == jac.pattern_generation()) {
            replay_ = true;
        } else {
            plan_->reset();
            plan_->generation = jac.pattern_generation();
        }
    }
}

void Stamper::finish_plan() {
    if (plan_ == nullptr)
        return;
    if (replay_) {
        // A replay that consumed fewer writes than recorded means the
        // stamp sequence shrank; the applied writes were all validated,
        // but the plan no longer describes this assembly mode.
        if (cursor_ != plan_->slots.size())
            plan_->reset();
    } else {
        plan_->ok = true;
    }
}

Stamper::Stamper(la::SparseMatrix& jac, la::Vector& rhs,
                 std::size_t num_nodes, bool pattern_only)
    : sparse_(&jac), pattern_only_(pattern_only), rhs_(rhs),
      num_nodes_(num_nodes) {
    TFET_EXPECTS(jac.rows() == jac.cols());
    TFET_EXPECTS(rhs_.size() == jac.rows());
    TFET_EXPECTS(num_nodes_ >= 1);
}

Stamper Stamper::pattern_recorder(la::SparseMatrix& jac,
                                  la::Vector& rhs_scratch,
                                  std::size_t num_nodes) {
    return Stamper(jac, rhs_scratch, num_nodes, /*pattern_only=*/true);
}

void Stamper::acc(std::size_t r, std::size_t c, double v) {
    if (dense_ != nullptr) {
        (*dense_)(r, c) += v;
    } else if (pattern_only_) {
        sparse_->reserve_entry(r, c);
    } else if (plan_ != nullptr) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint64_t>(c);
        if (replay_) {
            if (cursor_ < plan_->keys.size() && plan_->keys[cursor_] == key) {
                sparse_->val_at(plan_->slots[cursor_]) += v;
                ++cursor_;
                return;
            }
            // The stamp sequence diverged from the recording. Everything
            // replayed so far was key-validated, so the matrix is intact;
            // drop the plan and finish this assembly with searched writes.
            plan_->reset();
            plan_ = nullptr;
            replay_ = false;
            sparse_->add(r, c, v);
            return;
        }
        const std::size_t slot = sparse_->slot_of(r, c);
        plan_->keys.push_back(key);
        plan_->slots.push_back(static_cast<std::uint32_t>(slot));
        sparse_->val_at(slot) += v;
    } else {
        sparse_->add(r, c, v);
    }
}

std::size_t Stamper::idx(NodeId n) const {
    TFET_EXPECTS(n < num_nodes_);
    return n == kGround ? npos : n - 1;
}

std::size_t Stamper::branch_index(std::size_t branch) const {
    const std::size_t i = (num_nodes_ - 1) + branch;
    TFET_EXPECTS(i < rhs_.size());
    return i;
}

void Stamper::add_conductance(NodeId a, NodeId b, double g) {
    const std::size_t ia = idx(a);
    const std::size_t ib = idx(b);
    if (ia != npos)
        acc(ia, ia, g);
    if (ib != npos)
        acc(ib, ib, g);
    if (ia != npos && ib != npos) {
        acc(ia, ib, -g);
        acc(ib, ia, -g);
    }
}

void Stamper::add_current(NodeId from, NodeId to, double i) {
    const std::size_t ifrom = idx(from);
    const std::size_t ito = idx(to);
    if (ifrom != npos)
        rhs_[ifrom] -= i;
    if (ito != npos)
        rhs_[ito] += i;
}

void Stamper::add_transconductance(NodeId out_from, NodeId out_to,
                                   NodeId ctrl_pos, NodeId ctrl_neg,
                                   double g) {
    const std::size_t iof = idx(out_from);
    const std::size_t iot = idx(out_to);
    const std::size_t icp = idx(ctrl_pos);
    const std::size_t icn = idx(ctrl_neg);
    if (iof != npos) {
        if (icp != npos)
            acc(iof, icp, g);
        if (icn != npos)
            acc(iof, icn, -g);
    }
    if (iot != npos) {
        if (icp != npos)
            acc(iot, icp, -g);
        if (icn != npos)
            acc(iot, icn, g);
    }
}

void Stamper::stamp_voltage_source(std::size_t branch, NodeId pos, NodeId neg,
                                   double volts) {
    const std::size_t ib = branch_index(branch);
    const std::size_t ip = idx(pos);
    const std::size_t in = idx(neg);
    if (ip != npos) {
        acc(ip, ib, 1.0);
        acc(ib, ip, 1.0);
    }
    if (in != npos) {
        acc(in, ib, -1.0);
        acc(ib, in, -1.0);
    }
    rhs_[ib] += volts;
}

} // namespace tfetsram::spice
