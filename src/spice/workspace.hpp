#pragma once
// Per-circuit scratch storage for the Newton inner loop. Owning it on the
// Circuit (rather than allocating per solve) makes the hot path of
// newton_raphson_core allocation-free after the first solve: the MNA
// system, candidate iterates, and factorization storage are all reused
// across iterations, solves, and transient steps. One workspace per
// circuit also means one per Monte-Carlo worker thread (each sample
// rebuilds its own cell), so no synchronization is needed.
//
// The workspace carries both linear backends; `kind` records which one
// this circuit was routed to (chosen on the first Newton solve from
// spice::select_solver_kind and then pinned, so a circuit never mixes
// dense and sparse factorizations mid-analysis). The dense members stay
// empty on the sparse path and vice versa.

#include <cstdint>
#include <optional>

#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/sparse_lu.hpp"
#include "la/sparse_matrix.hpp"
#include "spice/device.hpp"
#include "spice/solver_select.hpp"

namespace tfetsram::spice {

struct SolveWorkspace {
    la::Vector rhs;          ///< MNA right-hand side at the current iterate
    la::Vector x_new;        ///< full Newton update target
    la::Vector x_try;        ///< damped/line-search candidate

    // --- dense backend ---
    la::Matrix jac;          ///< MNA system matrix at the current iterate
    la::LuFactorization lu;  ///< factored in place each iteration

    // --- sparse backend ---
    la::SparseMatrix sjac;   ///< CSR MNA system (pattern frozen per circuit)
    la::SparseLu slu;        ///< symbolic once, numeric refactor per iterate
    StampPlan plan_dc;       ///< memoized stamp addresses, DC assemblies
    StampPlan plan_tr;       ///< memoized stamp addresses, transient ones

    /// Backend decided at the circuit's first Newton solve; empty until
    /// then. Pinned until the circuit's topology changes (see
    /// topology_revision below), which re-runs selection and, on the
    /// sparse path, the symbolic analysis.
    std::optional<SolverKind> kind;

    /// Circuit::topology_revision() the decision above (and any frozen
    /// sparse pattern) corresponds to; 0 = never decided.
    std::uint64_t topology_revision = 0;
};

} // namespace tfetsram::spice
