#pragma once
// Per-circuit scratch storage for the Newton inner loop. Owning it on the
// Circuit (rather than allocating per solve) makes the hot path of
// newton_raphson_core allocation-free after the first solve: the MNA
// system, candidate iterates, and LU storage are all reused across
// iterations, solves, and transient steps. One workspace per circuit also
// means one per Monte-Carlo worker thread (each sample rebuilds its own
// cell), so no synchronization is needed.

#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace tfetsram::spice {

struct SolveWorkspace {
    la::Matrix jac;          ///< MNA system matrix at the current iterate
    la::Vector rhs;          ///< MNA right-hand side at the current iterate
    la::Vector x_new;        ///< full Newton update target
    la::Vector x_try;        ///< damped/line-search candidate
    la::LuFactorization lu;  ///< factored in place each iteration
};

} // namespace tfetsram::spice
