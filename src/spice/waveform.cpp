#include "spice/waveform.hpp"

#include <algorithm>

namespace tfetsram::spice {

Waveform Waveform::dc(double level) {
    Waveform w;
    w.points_.push_back({0.0, level});
    return w;
}

Waveform Waveform::pwl(std::vector<PwlPoint> points) {
    TFET_EXPECTS(!points.empty());
    for (std::size_t i = 1; i < points.size(); ++i)
        TFET_EXPECTS(points[i].time > points[i - 1].time);
    Waveform w;
    w.points_ = std::move(points);
    w.breakpoints_.reserve(w.points_.size());
    for (const auto& p : w.points_)
        if (p.time > 0.0)
            w.breakpoints_.push_back(p.time);
    return w;
}

Waveform Waveform::pulse(double base, double active, double t_start,
                         double t_rise, double t_width, double t_fall) {
    TFET_EXPECTS(t_start >= 0.0);
    TFET_EXPECTS(t_rise > 0.0 && t_fall > 0.0 && t_width >= 0.0);
    return pwl({{t_start, base},
                {t_start + t_rise, active},
                {t_start + t_rise + t_width, active},
                {t_start + t_rise + t_width + t_fall, base}});
}

double Waveform::at(double t) const {
    TFET_EXPECTS(!points_.empty());
    if (points_.size() == 1 || t <= points_.front().time)
        return points_.front().value;
    if (t >= points_.back().time)
        return points_.back().value;
    // Binary search for the segment containing t.
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double tt, const PwlPoint& p) { return tt < p.time; });
    const PwlPoint& hi = *it;
    const PwlPoint& lo = *(it - 1);
    const double frac = (t - lo.time) / (hi.time - lo.time);
    return lo.value + frac * (hi.value - lo.value);
}

Waveform Waveform::scaled(double k) const {
    Waveform w = *this;
    for (auto& p : w.points_)
        p.value *= k;
    return w;
}

} // namespace tfetsram::spice
