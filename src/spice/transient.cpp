#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/stats.hpp"

namespace tfetsram::spice {

// ---------------------------------------------------------- TransientResult

const la::Vector& TransientResult::state(std::size_t i) const {
    TFET_EXPECTS(i < states_.size());
    return states_[i];
}

double TransientResult::end_time() const {
    TFET_EXPECTS(!time_.empty());
    return time_.back();
}

const la::Vector& TransientResult::last_state() const {
    TFET_EXPECTS(!states_.empty());
    return states_.back();
}

void TransientResult::append(double t, la::Vector x) {
    TFET_EXPECTS(time_.empty() || t >= time_.back());
    time_.push_back(t);
    states_.push_back(std::move(x));
}

double TransientResult::voltage(NodeId node, std::size_t i) const {
    return node_voltage(state(i), node);
}

double TransientResult::voltage_at(NodeId node, double t) const {
    TFET_EXPECTS(!time_.empty());
    if (t <= time_.front())
        return node_voltage(states_.front(), node);
    if (t >= time_.back())
        return node_voltage(states_.back(), node);
    const auto it = std::upper_bound(time_.begin(), time_.end(), t);
    const std::size_t hi = static_cast<std::size_t>(it - time_.begin());
    const std::size_t lo = hi - 1;
    const double span = time_[hi] - time_[lo];
    const double frac = span > 0.0 ? (t - time_[lo]) / span : 0.0;
    const double v_lo = node_voltage(states_[lo], node);
    const double v_hi = node_voltage(states_[hi], node);
    return v_lo + frac * (v_hi - v_lo);
}

double TransientResult::final_voltage(NodeId node) const {
    TFET_EXPECTS(!states_.empty());
    return node_voltage(states_.back(), node);
}

double TransientResult::min_difference(NodeId a, NodeId b, double t_from,
                                       double t_to) const {
    // A window that misses the trace entirely has no samples to take a
    // minimum over: report NaN ("no data") rather than the +infinity the
    // empty min would produce, which downstream margin metrics would read
    // as an infinitely comfortable margin.
    if (time_.empty() || t_to < t_from || t_to < time_.front() ||
        t_from > time_.back())
        return std::numeric_limits<double>::quiet_NaN();
    double m = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < time_.size(); ++i) {
        if (time_[i] < t_from || time_[i] > t_to)
            continue;
        m = std::min(m, node_voltage(states_[i], a) -
                            node_voltage(states_[i], b));
    }
    // Include the exact window edges via interpolation so narrow windows
    // between samples still produce a value.
    m = std::min(m, voltage_at(a, t_from) - voltage_at(b, t_from));
    m = std::min(m, voltage_at(a, t_to) - voltage_at(b, t_to));
    return m;
}

double TransientResult::first_crossing_below(NodeId a, NodeId b,
                                             double threshold,
                                             double t_from) const {
    double prev_d = std::numeric_limits<double>::quiet_NaN();
    double prev_t = 0.0;
    for (std::size_t i = 0; i < time_.size(); ++i) {
        if (time_[i] < t_from)
            continue;
        const double d =
            node_voltage(states_[i], a) - node_voltage(states_[i], b);
        if (!std::isnan(prev_d) && prev_d > threshold && d <= threshold) {
            const double frac = (prev_d - threshold) / (prev_d - d);
            return prev_t + frac * (time_[i] - prev_t);
        }
        if (std::isnan(prev_d) && d <= threshold)
            return time_[i];
        prev_d = d;
        prev_t = time_[i];
    }
    return std::numeric_limits<double>::quiet_NaN();
}

// ----------------------------------------------------------- transient run

namespace {

/// Comparison tolerance for landing on / consuming breakpoints and for
/// end-of-window detection at time t. The absolute floor (1e-21 s) covers
/// t near zero; beyond ~1 ms that floor is smaller than one ulp of t, so
/// exact-landing tests would never fire — a few ulps of t take over there.
double time_tol(double t) {
    return std::max(1e-21, 8.0 * std::numeric_limits<double>::epsilon() * t);
}

/// Max over node unknowns of |err| / (abstol + reltol*|x|).
double lte_ratio(const la::Vector& x, const la::Vector& x_pred,
                 std::size_t n_node_unknowns, const SolverOptions& opts) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n_node_unknowns; ++i) {
        const double tol =
            opts.lte_abstol + opts.lte_reltol * std::fabs(x[i]);
        worst = std::max(worst, std::fabs(x[i] - x_pred[i]) / tol);
    }
    return worst;
}

} // namespace

TransientResult solve_transient(Circuit& circuit, const SimContext& ctx,
                                double t_end, const StopCondition& stop,
                                const la::Vector* dc_guess) {
    TFET_EXPECTS(t_end > 0.0);
    const ScopedContext bind(ctx);
    const SolverOptions& opts = ctx.options();
    ++ctx.stats().transient_solves;
    TransientResult result;

    // Operating point at t = 0.
    DcResult dc = solve_dc(circuit, ctx, 0.0, dc_guess);
    if (!dc.converged) {
        result.message = "transient: t=0 operating point did not converge";
        result.time_reached = 0.0;
        if (dc.error.has_value()) {
            result.error = std::move(dc.error);
        } else {
            SolveError err;
            err.code = SolveErrorCode::kNonConvergence;
            err.message = result.message;
            result.error = std::move(err);
        }
        return result;
    }
    for (const auto& dev : circuit.devices())
        dev->begin_transient(dc.x);
    result.append(0.0, dc.x);

    const std::size_t n_node_unknowns = circuit.num_nodes() - 1;

    std::vector<double> breakpoints = circuit.source_breakpoints();
    breakpoints.push_back(t_end);
    std::size_t next_bp = 0;

    double t = 0.0;
    double dt = opts.dt_initial;
    la::Vector x = dc.x;       // accepted state at t
    la::Vector x_prev = dc.x;  // accepted state one step earlier
    double dt_prev = 0.0;
    bool history_valid = false; // can we form the LTE predictor?
    bool force_be = true;       // backward Euler on first step / post-break

    AnalysisState as;
    as.mode = AnalysisMode::kTransient;
    as.integrator = opts.integrator;

    for (std::size_t step = 0; step < opts.max_steps; ++step) {
        result.time_reached = t;
        if (t >= t_end - time_tol(t_end)) {
            result.completed = true;
            return result;
        }
        // Cancellation checkpoint: one poll per transient step. Expiry is
        // graceful — everything integrated so far stays in the result
        // (states, time_reached), the error records where the run stopped.
        {
            const SolveErrorCode status = ctx.poll_cancellation();
            if (status != SolveErrorCode::kNone) {
                ++ctx.stats().cancelled_solves;
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "transient: %s at t=%.6e s (%.1f%% of t_end), "
                              "partial waveform preserved",
                              status == SolveErrorCode::kCancelled
                                  ? "cancelled"
                                  : "deadline expired",
                              t, 100.0 * t / t_end);
                result.message = buf;
                SolveError err;
                err.code = status;
                err.message = buf;
                err.time = t;
                err.last_iterate = x; // last accepted state
                result.error = std::move(err);
                return result;
            }
        }
        // Advance past consumed breakpoints; land on the next one.
        while (next_bp < breakpoints.size() &&
               breakpoints[next_bp] <= t + time_tol(t))
            ++next_bp;
        if (next_bp < breakpoints.size())
            dt = std::min(dt, breakpoints[next_bp] - t);
        dt = std::min(dt, t_end - t);
        dt = std::min(dt, opts.dt_max);

        // Newton solve for the candidate step, shrinking dt on failure.
        la::Vector x_new;
        bool solved = false;
        for (int attempt = 0; attempt < 40; ++attempt) {
            as.time = t + dt;
            as.dt = dt;
            // After two failed attempts, drop this step to backward Euler:
            // L-stable and independent of the trapezoidal current history,
            // which can turn hostile across sharp source edges.
            as.first_transient_step = force_be || attempt >= 2;
            x_new = x; // warm start from the current state
            const int iters =
                detail::newton_raphson(circuit, as, ctx, opts.gmin, x_new);
            if (iters > 0) {
                solved = true;
                break;
            }
            // A Newton failure caused by cancellation must not be "fixed"
            // by shrinking dt — every retry would fail at its first poll.
            {
                const SolveErrorCode status = ctx.cancellation_status();
                if (status != SolveErrorCode::kNone) {
                    ++ctx.stats().cancelled_solves;
                    char buf[160];
                    std::snprintf(buf, sizeof(buf),
                                  "transient: %s during Newton at t=%.6e s, "
                                  "partial waveform preserved",
                                  status == SolveErrorCode::kCancelled
                                      ? "cancelled"
                                      : "deadline expired",
                                  t);
                    result.message = buf;
                    SolveError err;
                    err.code = status;
                    err.message = buf;
                    err.time = t;
                    err.last_iterate = x;
                    result.error = std::move(err);
                    return result;
                }
            }
            dt *= 0.25;
            if (dt < opts.dt_min) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "transient: Newton failed at t=%.6e s "
                              "(%.1f%% of t_end) with dt below dt_min "
                              "(step %zu)",
                              t, 100.0 * t / t_end, step);
                result.message = buf;
                SolveError err;
                err.code = SolveErrorCode::kDtUnderflow;
                err.message = buf;
                err.time = t;
                err.last_iterate = x; // last accepted state
                result.error = std::move(err);
                return result;
            }
        }
        if (!solved) {
            result.message = "transient: Newton retries exhausted";
            SolveError err;
            err.code = SolveErrorCode::kNonConvergence;
            err.message = result.message;
            err.time = t;
            err.last_iterate = x;
            result.error = std::move(err);
            return result;
        }

        // Local truncation error control via linear-extrapolation predictor.
        if (history_valid && dt_prev > 0.0) {
            la::Vector x_pred(x.size());
            const double slope = dt / dt_prev;
            for (std::size_t i = 0; i < x.size(); ++i)
                x_pred[i] = x[i] + slope * (x[i] - x_prev[i]);
            const double ratio =
                lte_ratio(x_new, x_pred, n_node_unknowns, opts);
            if (ratio > 4.0 && dt > opts.dt_min * 8.0) {
                dt *= 0.5; // reject and retry with a finer step
                continue;
            }
            const double grow =
                ratio > 0.0 ? 0.9 * std::pow(ratio, -1.0 / 3.0) : 2.0;
            dt_prev = dt;
            dt *= std::clamp(grow, 0.3, 2.0);
        } else {
            dt_prev = dt;
            dt *= 2.0;
        }

        // Accept the step.
        ++ctx.stats().transient_steps;
        for (const auto& dev : circuit.devices())
            dev->accept_step(as, x_new);
        x_prev = std::move(x);
        x = x_new;
        t = as.time;
        result.append(t, x);
        result.time_reached = t;
        history_valid = true;
        force_be = false;

        // A breakpoint lands exactly on t: slope discontinuity ahead, so the
        // predictor and trapezoidal history are invalid.
        if (next_bp < breakpoints.size() &&
            std::fabs(breakpoints[next_bp] - t) <= time_tol(t)) {
            history_valid = false;
            force_be = true;
            dt = opts.dt_initial;
        }

        if (stop && stop(t, x)) {
            result.completed = true;
            result.stopped_early = true;
            return result;
        }
    }
    result.message = "transient: max step count exceeded";
    SolveError err;
    err.code = SolveErrorCode::kMaxStepsExceeded;
    err.message = result.message;
    err.time = t;
    err.last_iterate = x;
    result.error = std::move(err);
    return result;
}

TransientResult solve_transient(Circuit& circuit, const SolverOptions& opts,
                                double t_end, const StopCondition& stop,
                                const la::Vector* dc_guess) {
    const SimContext& ambient = ambient_context();
    if (&opts == &ambient.options())
        return solve_transient(circuit, ambient, t_end, stop, dc_guess);
    // One view for the whole run: every step's Newton work shares it.
    const SimContext view = ambient.with_options(opts);
    return solve_transient(circuit, view, t_end, stop, dc_guess);
}

} // namespace tfetsram::spice
