#pragma once
// SimContext: the explicit, immutable-after-construction simulation
// context threaded through solver → cell → array → MC → runner. One
// context owns everything that used to live in process-global state:
//
//  * the effective SolverOptions,
//  * the solver-mode policy (a context with an explicit mode ignores the
//    process-wide set_solver_mode()/TFETSRAM_SOLVER override entirely —
//    that is what makes concurrent dense-vs-sparse A/B tasks safe),
//  * the RNG seed root plus deterministic derived seeds for child work,
//  * an optional private fault-injection plan,
//  * output/cache directories,
//  * a per-context SolverStats sink, so work fanned out to inner pools is
//    attributed to the context, not to whichever thread happened to run it.
//
// Contexts compose two ways: child(stream) derives an independent context
// (own stats, derived seed) for fan-out work whose counters the parent
// aggregates afterwards, and with_options(opts) makes a cheap view that
// shares the parent's stats sink while swapping the tolerance set — the
// compatibility shim behind every legacy SolverOptions call site.
//
// Threading model: a context is bound to a thread with ScopedContext;
// ambient_context() returns the innermost binding, falling back to a
// per-thread default context built once from the process env snapshot.
// The legacy entry points (solve_dc(circuit, opts), solver_stats(),
// ScopedSolverMode) all delegate to the ambient context, so unported call
// sites keep their exact historical behavior. See docs/ARCHITECTURE.md.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "spice/cancel.hpp"
#include "spice/solve_error.hpp"
#include "spice/solver_options.hpp"
#include "spice/solver_select.hpp"
#include "spice/stats.hpp"
#include "util/env.hpp"

namespace tfetsram::fault {
enum class Site : std::size_t;
class FaultState;
} // namespace tfetsram::fault

namespace tfetsram::spice {

/// Everything a SimContext is built from. Plain data: fill it in (or start
/// from from_env()) and hand it to the SimContext constructor, after which
/// it never changes.
struct SimConfig {
    SolverOptions options;
    /// Backend policy. nullopt defers to the process-wide resolution
    /// (set_solver_mode override → TFETSRAM_SOLVER → auto-by-size), which
    /// is what default/ambient contexts use so ScopedSolverMode keeps
    /// working; a set value is final — the context is isolated from every
    /// global override.
    std::optional<SolverMode> mode;
    /// RNG seed root; derive_seed()/child() mix per-stream seeds from it.
    std::uint64_t seed = 0x746665747372616dull; // "tfetsram"
    /// Private fault-injection plan (TFETSRAM_FAULTS grammar). Empty means
    /// the context consults the process-wide injector, preserving the
    /// ScopedFaultInjection / env-var behavior.
    std::string fault_spec;
    std::filesystem::path out_dir = "bench_csv";
    std::filesystem::path cache_dir = ".tfetsram_cache";
    /// Attribution label (e.g. the runner task id); diagnostic only.
    std::string label;

    // --- cancellation / graceful degradation (docs/ROBUSTNESS.md) ---
    /// Wall-clock budget in seconds, armed at SimContext construction
    /// (TFETSRAM_TASK_TIMEOUT; 0 = unlimited). Views and children inherit
    /// the parent's absolute expiry instant, so a Monte-Carlo fan-out
    /// cannot outlive the task that spawned it. Expiry is graceful: solves
    /// return SolveErrorCode::kDeadlineExceeded with partial results.
    double deadline_s = 0.0;
    /// Deterministic budget on the context's total Newton iterations
    /// (0 = unlimited). Unlike the wall clock, this expires at exactly the
    /// same poll on every rerun — what the deadline tests pin counters on.
    std::uint64_t iteration_budget = 0;
    /// Cooperative cancel/heartbeat token. Shared (not copied) by views
    /// and children; null means "not cancellable" and polls cost only a
    /// counter increment. The runner installs one per task attempt so its
    /// watchdog can cancel stalled work from outside.
    std::shared_ptr<CancelToken> cancel;

    /// Defaults layered from a fresh environment snapshot.
    static SimConfig from_env();
    /// Defaults layered from `snap` (one capture shared across subsystems).
    static SimConfig from_env(const env::EnvSnapshot& snap);
};

class SimContext {
public:
    /// Deliberately explicit and not default-constructible: `solve_dc(ckt,
    /// {})` must keep meaning "default SolverOptions", never silently
    /// become a context overload.
    explicit SimContext(SimConfig config);
    ~SimContext();

    SimContext(const SimContext&) = delete;
    SimContext& operator=(const SimContext&) = delete;
    SimContext(SimContext&& other) noexcept;
    SimContext& operator=(SimContext&&) = delete;

    [[nodiscard]] const SimConfig& config() const { return config_; }
    [[nodiscard]] const SolverOptions& options() const {
        return config_.options;
    }
    [[nodiscard]] std::uint64_t seed() const { return config_.seed; }

    /// This context's counter sink. Owned by the context, except for
    /// with_options() views, which write into their parent's sink.
    [[nodiscard]] SolverStats& stats() const { return *stats_sink_; }

    /// Resolve the linear backend for a system of `num_unknowns`: the
    /// context's own mode when set, else the process-wide policy.
    [[nodiscard]] SolverKind select_kind(std::size_t num_unknowns) const;

    /// Deterministic per-stream seed (splitmix-style mix of the root and
    /// `stream`): two contexts with equal roots derive equal seeds for
    /// equal streams, regardless of threading.
    [[nodiscard]] std::uint64_t derive_seed(std::uint64_t stream) const;

    /// Independent child for fan-out work (one per MC sample): same
    /// options/mode/dirs, seed derived from `stream`, shared fault plan,
    /// and its own zeroed stats — the parent aggregates children in
    /// deterministic order once the fan-out joins (stats() += child.stats()).
    [[nodiscard]] SimContext child(std::uint64_t stream) const;

    /// View with a replacement tolerance set: shares this context's stats
    /// sink and fault plan. The bridge under every legacy
    /// solve_*(circuit, SolverOptions) call.
    [[nodiscard]] SimContext with_options(const SolverOptions& options) const;

    /// Fault hook: the private plan when this context has one, else the
    /// process-wide injector.
    [[nodiscard]] bool should_fail(fault::Site site) const;

    /// Cancellation checkpoint: bumps stats().deadline_polls, ticks the
    /// token's heartbeat, and reports why the solve should stop —
    /// kCancelled (token fired), kDeadlineExceeded (wall clock or
    /// iteration budget expired), or kNone. Engines call this at every
    /// Newton iteration / transient step / MC sample / mixed-level
    /// attempt; callers unwind gracefully, preserving partial results.
    [[nodiscard]] SolveErrorCode poll_cancellation() const;

    /// Side-effect-free re-read of the current cancellation state: no
    /// counter bump, no heartbeat tick. For secondary checks (between DC
    /// fallback strategies, in retry loops) that must not perturb the
    /// deterministic deadline_polls count.
    [[nodiscard]] SolveErrorCode cancellation_status() const;

    /// The shared token (null when the context is not cancellable).
    [[nodiscard]] const std::shared_ptr<CancelToken>& cancel_token() const {
        return config_.cancel;
    }

private:
    struct ViewTag {};
    SimContext(ViewTag, const SimContext& parent, const SolverOptions& opts);

    SimConfig config_;
    mutable SolverStats stats_;
    SolverStats* stats_sink_ = nullptr;
    std::shared_ptr<fault::FaultState> fault_;
    /// Absolute expiry instant, armed once at construction from
    /// config_.deadline_s; children and views copy the parent's instant so
    /// the whole task tree expires together.
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_at_{};
};

/// The context solver work on this thread attributes to: the innermost
/// ScopedContext binding, else a per-thread default built once from
/// env::EnvSnapshot::process().
const SimContext& ambient_context();

/// RAII thread binding. Every context-taking solver entry binds itself on
/// entry so nested legacy calls (and the assembly counters inside the
/// Newton loop) resolve to the right context.
class ScopedContext {
public:
    explicit ScopedContext(const SimContext& ctx);
    /// nullptr is a no-op binding — callers with an optional context
    /// (e.g. SramCell::sim) bind unconditionally.
    explicit ScopedContext(const SimContext* ctx);
    ~ScopedContext();
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

private:
    const SimContext* previous_;
    bool active_;
};

} // namespace tfetsram::spice
