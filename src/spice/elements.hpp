#pragma once
// The linear and source elements: resistor, capacitor, independent voltage
// and current sources. Transistors live in transistor.hpp.

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace tfetsram::spice {

/// Linear resistor between two nodes.
class Resistor final : public Device {
public:
    Resistor(std::string label, NodeId a, NodeId b, double ohms);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;

    [[nodiscard]] double resistance() const { return ohms_; }

private:
    NodeId a_;
    NodeId b_;
    double ohms_;
};

/// Linear capacitor between two nodes. Open circuit in DC; integrates with
/// the engine's trapezoidal/backward-Euler companion in transient.
class Capacitor final : public Device {
public:
    Capacitor(std::string label, NodeId a, NodeId b, double farads);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    void begin_transient(const la::Vector& x0) override;
    void accept_step(const AnalysisState& as, const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;

    [[nodiscard]] double capacitance() const { return farads_; }

private:
    NodeId a_;
    NodeId b_;
    double farads_;
    double v_prev_ = 0.0; ///< accepted branch voltage at the previous step
    double i_prev_ = 0.0; ///< accepted branch current at the previous step
};

/// Independent voltage source driven by a Waveform. Owns one MNA branch.
class VoltageSource final : public Device {
public:
    VoltageSource(std::string label, NodeId pos, NodeId neg, Waveform wave);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;
    [[nodiscard]] bool is_source() const override { return true; }

    /// Replace the stimulus (e.g. to program an SRAM operation).
    void set_waveform(Waveform wave) { wave_ = std::move(wave); }
    [[nodiscard]] const Waveform& waveform() const { return wave_; }

    /// Current delivered into the circuit from the + terminal.
    [[nodiscard]] double delivered_current(const la::Vector& x) const;

    /// Assigned by Circuit: ordinal among voltage sources.
    void set_branch(std::size_t branch, std::size_t unknown_index) {
        branch_ = branch;
        unknown_index_ = unknown_index;
    }
    [[nodiscard]] std::size_t branch() const { return branch_; }

private:
    NodeId pos_;
    NodeId neg_;
    Waveform wave_;
    std::size_t branch_ = 0;
    std::size_t unknown_index_ = 0;
};

/// Independent current source pushing current from `from` to `to` through
/// itself (i.e. it injects current into `to`).
class CurrentSource final : public Device {
public:
    CurrentSource(std::string label, NodeId from, NodeId to, Waveform wave);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;
    [[nodiscard]] bool is_source() const override { return true; }

    void set_waveform(Waveform wave) { wave_ = std::move(wave); }
    [[nodiscard]] const Waveform& waveform() const { return wave_; }

private:
    NodeId from_;
    NodeId to_;
    Waveform wave_;
};

/// Lumped Norton boundary load: the mixed-level array engine's stamp for a
/// population of latched (behaviorally collapsed) cells hanging off one
/// bitline. Models `scale` identical cells, each drawing
///   i(V) = i0 + g * (V - v0)
/// from `node` to ground — the first-order linearization of the latched
/// cells' leakage around the extraction bias v0 (src/hier/latched_cell).
/// The load is linear, so it converges in the same Newton iterate as the
/// rest of the system; DC and transient stamp identically (the latched
/// cells' charge storage is carried by the bitline wire capacitance, which
/// the engine keeps at full-column value). Parameters are mutable: the
/// engine re-linearizes event-style on wordline edges and guard-band
/// excursions (docs/HIERARCHY.md).
class LinearizedLoad final : public Device {
public:
    LinearizedLoad(std::string label, NodeId node);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;

    /// Reprogram the load: `scale` cells each drawing i0 + g*(V - v0).
    /// A scale of 0 turns the load off (stamps nothing but stays in the
    /// sparsity pattern via the diagonal).
    void set_load(double scale, double i0, double g, double v0);

    [[nodiscard]] double scale() const { return scale_; }
    /// Total current drawn from the node at voltage v.
    [[nodiscard]] double current_at(double v) const {
        return scale_ * (i0_ + g_ * (v - v0_));
    }
    [[nodiscard]] double bias() const { return v0_; }

private:
    NodeId node_;
    double scale_ = 0.0;
    double i0_ = 0.0;
    double g_ = 0.0;
    double v0_ = 0.0;
};

/// Time-controlled switch (e.g. a bitline precharge device). The control
/// waveform is interpreted as a conductance blend: 1 -> r_on, 0 -> r_off,
/// interpolated geometrically in resistance so transitions are smooth.
class TimedSwitch final : public Device {
public:
    TimedSwitch(std::string label, NodeId a, NodeId b, double r_on,
                double r_off, Waveform control);

    void stamp(Stamper& st, const AnalysisState& as,
               const la::Vector& x) override;
    [[nodiscard]] double power(const la::Vector& x) const override;

    void set_control(Waveform control) { control_ = std::move(control); }

    /// Resistance at time t.
    [[nodiscard]] double resistance_at(double t) const;

private:
    NodeId a_;
    NodeId b_;
    double r_on_;
    double r_off_;
    Waveform control_;
};

} // namespace tfetsram::spice
