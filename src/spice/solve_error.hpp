#pragma once
// Structured solver-failure taxonomy. A failed solve is data, not a string:
// it carries a machine-readable code, the chain of strategies that were
// attempted (with their iteration counts and final residuals), and the
// context needed to act on the failure — how far the solve got, and where
// the last iterate was stuck. The runner's quarantine journal, the
// Monte-Carlo censoring logic, and the tests all consume this structure
// instead of parsing ad-hoc messages. See docs/ROBUSTNESS.md.

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace tfetsram::spice {

enum class SolveErrorCode {
    kNone = 0,         ///< no error (default-constructed SolveError)
    kNonConvergence,   ///< every Newton strategy exhausted
    kDtUnderflow,      ///< transient step shrank below dt_min
    kMaxStepsExceeded, ///< transient hit the runaway step guard
    kSingularAcSystem, ///< AC phasor system numerically singular
    kInjectedFault,    ///< forced by the fault injector (util/fault.hpp)
    kInvalidConfig,    ///< rejected configuration (e.g. a degenerate
                       ///< 0-row/0-column array that would assemble a
                       ///< malformed MNA system)
    kDeadlineExceeded, ///< the context's wall-clock or iteration budget
                       ///< expired (SimConfig::deadline_s /
                       ///< iteration_budget); partial results preserved
    kCancelled,        ///< the context's CancelToken fired (watchdog,
                       ///< signal handler, or explicit request)
};

/// True for the two graceful-degradation codes: the solve was healthy but
/// told to stop. Retrying under the same expired context is futile, so
/// retry loops (MC sample attempts, transient dt-shrink) bail out on them.
[[nodiscard]] constexpr bool is_cancellation(SolveErrorCode code) {
    return code == SolveErrorCode::kDeadlineExceeded ||
           code == SolveErrorCode::kCancelled;
}
std::string to_string(SolveErrorCode code);

/// One entry of the DC fallback chain ("newton", "gmin-stepping",
/// "source-stepping") as it was actually attempted.
struct StrategyAttempt {
    std::string name;
    int iterations = 0;     ///< NR iterations spent in this strategy
    bool converged = false; ///< did this strategy produce the solution?
    double residual = std::numeric_limits<double>::quiet_NaN();
    ///< true KCL residual norm at the strategy's final iterate
};

/// Full context of a failed solve.
struct SolveError {
    SolveErrorCode code = SolveErrorCode::kNone;
    std::string message; ///< human-readable one-liner (details below)
    std::vector<StrategyAttempt> strategies; ///< chain in attempt order
    double time = 0.0; ///< analysis time of the failure [s]
    double last_residual = std::numeric_limits<double>::quiet_NaN();
    la::Vector last_iterate; ///< where the final strategy got stuck

    [[nodiscard]] explicit operator bool() const {
        return code != SolveErrorCode::kNone;
    }

    /// Flattened rendering: "<code>: <message> [strategy(iters)...]".
    [[nodiscard]] std::string describe() const;
};

/// Exception form of SolveError, for layers where failure must unwind
/// (e.g. a Monte-Carlo metric signalling "this sample cannot be
/// evaluated" so the engine can retry and censor it). what() returns
/// describe().
class SolveException : public std::runtime_error {
public:
    explicit SolveException(SolveError error);
    [[nodiscard]] const SolveError& error() const { return error_; }

private:
    SolveError error_;
};

} // namespace tfetsram::spice
