#pragma once
// Cooperative cancellation primitive for the solve stack. One side — the
// runner's watchdog, a signal handler, a test — requests cancellation; the
// solving side polls at deterministic boundaries (Newton iterations,
// transient steps, Monte-Carlo samples, mixed-level retry attempts) via
// SimContext::poll_cancellation(). The token doubles as the heartbeat the
// watchdog reads: every poll ticks a progress counter, so "progress
// stopped advancing" is observable from outside without touching any
// non-atomic solver state. See docs/ROBUSTNESS.md.

#include <atomic>
#include <cstdint>

namespace tfetsram::spice {

/// Shared cancel/heartbeat cell. All members are lock-free atomics:
/// cancel() is safe from any thread (and, being a plain atomic store,
/// from a signal handler); cancelled()/progress() are safe concurrent
/// reads. Sharing is by std::shared_ptr via SimConfig::cancel — a parent
/// context, its with_options() views, and its child() fan-out all see the
/// same token, so one cancel() stops the whole task tree.
class CancelToken {
public:
    /// Request cancellation. Sticky: there is no un-cancel except an
    /// explicit reset() between runner retry attempts.
    void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_acquire);
    }

    /// Clear a previous cancel() so the owner can retry the work under the
    /// same token (the runner resets between attempts; the watchdog
    /// re-registers the attempt with a fresh heartbeat baseline).
    void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

    /// Heartbeat tick; called from every SimContext::poll_cancellation().
    void tick() noexcept { progress_.fetch_add(1, std::memory_order_relaxed); }

    /// Monotonic progress counter: a watchdog that sees the same value
    /// across its stall window concludes the solve stopped polling —
    /// i.e. it is stuck inside non-cooperative work — and cancels it.
    [[nodiscard]] std::uint64_t progress() const noexcept {
        return progress_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<bool> cancelled_{false};
    std::atomic<std::uint64_t> progress_{0};
};

} // namespace tfetsram::spice
