#pragma once
// Adaptive transient analysis. Starts from the t=0 operating point, steps
// with trapezoidal integration (backward Euler on the first step and after
// waveform breakpoints), controls the step with a predictor-based local
// truncation error estimate, and lands exactly on source breakpoints.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/context.hpp"
#include "spice/solve_error.hpp"
#include "spice/solver_options.hpp"

namespace tfetsram::spice {

/// Optional early-exit predicate evaluated on each accepted step.
using StopCondition = std::function<bool(double t, const la::Vector& x)>;

/// Recorded trajectory of a transient run.
class TransientResult {
public:
    bool completed = false;     ///< reached t_end or the stop condition
    bool stopped_early = false; ///< the stop condition fired before t_end
    std::string message;        ///< failure diagnostics when !completed
    double time_reached = 0.0;  ///< last accepted time, even on failure —
                                ///< distinguishes "failed at t=0" from
                                ///< "failed at 99% of t_end"
    std::optional<SolveError> error; ///< structured cause when !completed

    /// True when at least one operating point was accepted, i.e.
    /// last_state() is callable. False only when the t=0 solve failed.
    [[nodiscard]] bool has_state() const { return !states_.empty(); }

    /// Last accepted state — on failure, the last good solution before
    /// the solver gave up.
    [[nodiscard]] const la::Vector& last_state() const;

    [[nodiscard]] std::size_t size() const { return time_.size(); }
    [[nodiscard]] const std::vector<double>& times() const { return time_; }
    [[nodiscard]] const la::Vector& state(std::size_t i) const;
    [[nodiscard]] double end_time() const;

    /// Voltage of `node` at sample index i.
    [[nodiscard]] double voltage(NodeId node, std::size_t i) const;

    /// Linearly interpolated voltage of `node` at time t (clamped to the
    /// recorded range).
    [[nodiscard]] double voltage_at(NodeId node, double t) const;

    /// Voltage at the final recorded point.
    [[nodiscard]] double final_voltage(NodeId node) const;

    /// Minimum of v(a) - v(b) over times in [t_from, t_to]. NaN when the
    /// window contains no trace data (empty trace, inverted window, or a
    /// window disjoint from [front, back]) — callers must treat NaN as
    /// "no measurement", not as a margin.
    [[nodiscard]] double min_difference(NodeId a, NodeId b, double t_from,
                                        double t_to) const;

    /// Earliest recorded time >= t_from at which v(a) - v(b) crosses below
    /// `threshold` (linear interpolation between samples); NaN if never.
    [[nodiscard]] double first_crossing_below(NodeId a, NodeId b,
                                              double threshold,
                                              double t_from) const;

    void append(double t, la::Vector x);

private:
    std::vector<double> time_;
    std::vector<la::Vector> states_;
};

/// Run a transient to t_end under `ctx` (options, backend policy, stats,
/// faults; bound as this thread's ambient context for the duration). The
/// circuit's sources define the stimulus. `stop` (optional) ends the run
/// early when it returns true. `dc_guess` (optional) seeds the t=0
/// operating point — essential for bistable circuits, where it selects
/// which stable state the cell starts in.
TransientResult solve_transient(Circuit& circuit, const SimContext& ctx,
                                double t_end,
                                const StopCondition& stop = nullptr,
                                const la::Vector* dc_guess = nullptr);

/// Compatibility entry: run under the ambient context with `opts` layered
/// over its options.
TransientResult solve_transient(Circuit& circuit, const SolverOptions& opts,
                                double t_end,
                                const StopCondition& stop = nullptr,
                                const la::Vector* dc_guess = nullptr);

} // namespace tfetsram::spice
