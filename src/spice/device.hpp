#pragma once
// Device abstraction for the MNA engine. Each device knows how to linearize
// itself into the Jacobian / right-hand side at a given candidate solution
// ("stamping", the classic SPICE companion-model formulation), how to carry
// dynamic state across transient steps, and how to report its dissipated
// power for operating-point post-processing.

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "spice/types.hpp"

namespace tfetsram::la {
class SparseMatrix;
} // namespace tfetsram::la

namespace tfetsram::spice {

/// Which analysis the engine is running; transient adds companion models
/// for charge-storage elements.
enum class AnalysisMode { kDc, kTransient };

/// Numerical integration method for transient companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Context handed to Device::stamp for one linearization.
struct AnalysisState {
    AnalysisMode mode = AnalysisMode::kDc;
    double time = 0.0;          ///< time point being solved
    double dt = 0.0;            ///< step size (transient only)
    Integrator integrator = Integrator::kTrapezoidal;
    double source_scale = 1.0;  ///< global source scaling (source stepping)
    bool first_transient_step = false; ///< forces backward Euler on step 1
};

/// Memoized stamp addresses for one sparse assembly mode. The first
/// assembly after a pattern rebuild records, per Jacobian write, the
/// packed (row, col) key and the CSR value slot the position search
/// resolved to; subsequent assemblies of the same mode replay the slots
/// and skip the per-write binary search. Every replayed write is
/// validated against its recorded key, so a device that changes its
/// stamp sequence (different positions or count) can never corrupt the
/// matrix: the replay falls back to searched writes mid-assembly and the
/// plan re-records on the next one. `generation` ties the slots to a
/// specific SparseMatrix::pattern_generation().
struct StampPlan {
    std::vector<std::uint64_t> keys;  ///< (row << 32) | col, per write
    std::vector<std::uint32_t> slots; ///< CSR value index, per write
    std::uint64_t generation = 0;     ///< pattern the slots belong to
    bool ok = false;                  ///< a complete recording is stored
    void reset() {
        keys.clear();
        slots.clear();
        ok = false;
    }
};

/// Accumulates the linearized system. Maps node/branch ids to unknown
/// indices (ground is eliminated) and enforces the KCL sign convention:
/// rows are "sum of currents leaving the node = injected current".
///
/// Three backends behind one stamping interface, so devices never know
/// which kernel the solver picked: dense (into a la::Matrix), sparse
/// numeric (into a finalized la::SparseMatrix pattern), and a
/// pattern-recording mode that registers the positions a stamp touches
/// without writing values (the symbolic pass of spice::build_pattern).
class Stamper {
public:
    Stamper(la::Matrix& jac, la::Vector& rhs, std::size_t num_nodes);

    /// Sparse numeric stamping; `jac`'s pattern must be finalized and
    /// cover every position the circuit stamps. With a non-null `plan`
    /// the stamper records or replays the position searches (see
    /// StampPlan); the plan must be dedicated to this matrix and one
    /// stamping sequence.
    Stamper(la::SparseMatrix& jac, la::Vector& rhs, std::size_t num_nodes,
            StampPlan* plan = nullptr);

    /// Seal the plan after a full stamping sequence: a completed
    /// recording becomes replayable; an under-consumed replay (fewer
    /// writes than recorded) is discarded. No-op without a plan.
    void finish_plan();

    /// Pattern-recording stamper: matrix writes register CSR entries in
    /// the (unfinalized) `jac`; rhs_scratch absorbs RHS writes unread.
    static Stamper pattern_recorder(la::SparseMatrix& jac,
                                    la::Vector& rhs_scratch,
                                    std::size_t num_nodes);

    /// Conductance g between nodes a and b.
    void add_conductance(NodeId a, NodeId b, double g);

    /// Current i forced from node `from` to node `to` (through the device).
    void add_current(NodeId from, NodeId to, double i);

    /// Current g*(v(ctrl_pos) - v(ctrl_neg)) from out_from to out_to.
    void add_transconductance(NodeId out_from, NodeId out_to, NodeId ctrl_pos,
                              NodeId ctrl_neg, double g);

    /// Voltage source constraint v(pos) - v(neg) = volts with its branch
    /// current unknown. `branch` is the source's branch index.
    void stamp_voltage_source(std::size_t branch, NodeId pos, NodeId neg,
                              double volts);

    /// Unknown-vector index of a branch current.
    [[nodiscard]] std::size_t branch_index(std::size_t branch) const;

    /// True in the pattern-recording backend: stamped values are
    /// discarded, so devices may skip expensive model evaluation and
    /// register their positions with placeholder values instead.
    [[nodiscard]] bool pattern_only() const { return pattern_only_; }

private:
    Stamper(la::SparseMatrix& jac, la::Vector& rhs, std::size_t num_nodes,
            bool pattern_only);

    /// Route one Jacobian accumulation to the active backend.
    void acc(std::size_t r, std::size_t c, double v);

    // Returns the unknown index for a node, or npos for ground.
    [[nodiscard]] std::size_t idx(NodeId n) const;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    la::Matrix* dense_ = nullptr;
    la::SparseMatrix* sparse_ = nullptr;
    bool pattern_only_ = false;
    StampPlan* plan_ = nullptr;
    bool replay_ = false;    ///< plan_ holds a recording being replayed
    std::size_t cursor_ = 0; ///< next plan entry to replay
    la::Vector& rhs_;
    std::size_t num_nodes_;
};

/// Base class of every circuit element.
class Device {
public:
    explicit Device(std::string label) : label_(std::move(label)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    [[nodiscard]] const std::string& label() const { return label_; }

    /// Linearize this device at candidate solution x and add its stamps.
    virtual void stamp(Stamper& st, const AnalysisState& as,
                       const la::Vector& x) = 0;

    /// Called once after the t=0 operating point, before transient stepping.
    virtual void begin_transient(const la::Vector& /*x0*/) {}

    /// Called when a transient step is accepted; commit dynamic state.
    virtual void accept_step(const AnalysisState& /*as*/,
                             const la::Vector& /*x*/) {}

    /// Power dissipated by this device at the given solution (DC sense;
    /// negative means the device delivers power, e.g. a source).
    [[nodiscard]] virtual double power(const la::Vector& x) const = 0;

    /// True for independent sources (used by power accounting).
    [[nodiscard]] virtual bool is_source() const { return false; }

private:
    std::string label_;
};

} // namespace tfetsram::spice
