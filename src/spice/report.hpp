#pragma once
// Operating-point post-processing. Static power must be computed from the
// device equations evaluated at the solved node voltages — not from source
// branch currents — because the convergence-aid gmin shunts carry ~1e-12 A,
// which would swamp the 1e-17 A TFET leakage this study measures.

#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace tfetsram::spice {

struct DevicePower {
    std::string label;
    double watts; ///< positive dissipates, negative delivers
};

struct PowerReport {
    double dissipated = 0.0;           ///< sum over non-source devices [W]
    double delivered_by_sources = 0.0; ///< from source branch currents [W]
    std::vector<DevicePower> devices;
};

/// Break down power at a solved operating point.
PowerReport power_report(const Circuit& circuit, const la::Vector& x);

/// Static (leakage) power at the operating point: the device-equation sum,
/// immune to gmin artifacts.
double static_power(const Circuit& circuit, const la::Vector& x);

/// Energy delivered by all voltage sources over [t0, t1] of a recorded
/// transient (trapezoidal integration of v * i using the MNA branch
/// currents). This is the dynamic energy of the operation the transient
/// simulated — e.g. the cost of pulsing an assist rail.
double source_energy(const Circuit& circuit, const TransientResult& result,
                     double t0, double t1);

} // namespace tfetsram::spice
