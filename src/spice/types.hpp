#pragma once
// Shared identifiers and numeric constants for the circuit engine.

#include <cstddef>

namespace tfetsram::spice {

/// Node identifier within a Circuit. Node 0 is always ground.
using NodeId = std::size_t;

inline constexpr NodeId kGround = 0;

/// Boltzmann constant times T over q at 300 K: the thermal voltage.
inline constexpr double kThermalVoltage = 0.02585; // V

} // namespace tfetsram::spice
