#pragma once
// The circuit under analysis: a named node table plus an owned list of
// devices. Factory methods build elements in place and hand back typed
// references so harness code can retune waveforms, widths, or models later
// (e.g. between Monte-Carlo samples).

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/elements.hpp"
#include "spice/transistor.hpp"
#include "spice/workspace.hpp"

namespace tfetsram::spice {

class DeviceEvalBatch;

class Circuit {
public:
    Circuit();
    ~Circuit();

    Circuit(const Circuit&) = delete;
    Circuit& operator=(const Circuit&) = delete;
    Circuit(Circuit&&) noexcept;
    Circuit& operator=(Circuit&&) noexcept;

    /// Create a named node. Names must be unique. "0"/"gnd" is pre-created.
    NodeId add_node(const std::string& name);

    /// Look up a node by name; throws if absent.
    [[nodiscard]] NodeId node(const std::string& name) const;

    /// Name of a node id (for reports).
    [[nodiscard]] const std::string& node_name(NodeId id) const;

    [[nodiscard]] std::size_t num_nodes() const { return node_names_.size(); }
    [[nodiscard]] std::size_t num_branches() const { return vsources_.size(); }

    /// Size of the MNA unknown vector.
    [[nodiscard]] std::size_t num_unknowns() const {
        return (num_nodes() - 1) + num_branches();
    }

    Resistor& add_resistor(const std::string& label, NodeId a, NodeId b,
                           double ohms);
    Capacitor& add_capacitor(const std::string& label, NodeId a, NodeId b,
                             double farads);
    VoltageSource& add_vsource(const std::string& label, NodeId pos, NodeId neg,
                               Waveform wave);
    CurrentSource& add_isource(const std::string& label, NodeId from, NodeId to,
                               Waveform wave);
    Transistor& add_transistor(const std::string& label, TransistorModelPtr model,
                               NodeId drain, NodeId gate, NodeId source,
                               double width_um);
    TimedSwitch& add_switch(const std::string& label, NodeId a, NodeId b,
                            double r_on, double r_off, Waveform control);
    /// Lumped Norton load for the mixed-level engine's latched-cell
    /// populations (starts disabled: scale = 0; see LinearizedLoad).
    LinearizedLoad& add_linearized_load(const std::string& label, NodeId node);

    [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
        return devices_;
    }
    [[nodiscard]] std::vector<std::unique_ptr<Device>>& devices() {
        return devices_;
    }
    [[nodiscard]] const std::vector<VoltageSource*>& voltage_sources() const {
        return vsources_;
    }
    [[nodiscard]] const std::vector<Transistor*>& transistors() const {
        return transistors_;
    }

    /// Assign branch unknown indices to voltage sources. Solvers call this
    /// before assembling; it is idempotent and cheap.
    void prepare();

    /// Sorted, deduplicated union of all source waveform breakpoints.
    [[nodiscard]] std::vector<double> source_breakpoints() const;

    /// Solver scratch reused across Newton iterations and solves. The
    /// solver sizes it on first use; circuits on different threads own
    /// independent workspaces, so no locking is involved.
    [[nodiscard]] SolveWorkspace& workspace() { return workspace_; }

    /// Batched transistor evaluator for this circuit (created lazily).
    /// assemble() runs it once per iterate before the stamp sweep; owned
    /// behind a pointer so transistors' slot references survive Circuit
    /// moves (SramCell holds its Circuit by value).
    [[nodiscard]] DeviceEvalBatch& eval_batch();

    /// Bumped by every add_node/add_* call. The solver compares it to the
    /// revision its frozen sparsity pattern was built against, so a
    /// circuit that grows between solves gets a fresh symbolic analysis
    /// instead of stamping outside a stale pattern.
    [[nodiscard]] std::uint64_t topology_revision() const {
        return topology_revision_;
    }

private:
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, NodeId> node_ids_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<VoltageSource*> vsources_;
    std::vector<CurrentSource*> isources_;
    std::vector<Transistor*> transistors_;
    std::uint64_t topology_revision_ = 1;
    SolveWorkspace workspace_;
    std::unique_ptr<DeviceEvalBatch> eval_batch_;
};

} // namespace tfetsram::spice
