#include "spice/solver_select.hpp"

#include <atomic>
#include <cstring>

#include "util/env.hpp"

namespace tfetsram::spice {

namespace {

/// Programmatic override, encoded as -1 (none) or the SolverMode value.
/// Atomic so a bench thread flipping it does not race Monte-Carlo workers
/// reading it; the env fallback is read once and cached.
std::atomic<int> g_override{-1};

SolverMode env_mode() {
    static const SolverMode cached =
        parse_solver_mode(env::raw("TFETSRAM_SOLVER"));
    return cached;
}

} // namespace

SolverMode parse_solver_mode(const char* text) {
    if (text == nullptr)
        return SolverMode::kAuto;
    if (std::strcmp(text, "dense") == 0)
        return SolverMode::kDense;
    if (std::strcmp(text, "sparse") == 0)
        return SolverMode::kSparse;
    return SolverMode::kAuto;
}

SolverMode solver_mode() {
    const int ov = g_override.load(std::memory_order_relaxed);
    if (ov >= 0)
        return static_cast<SolverMode>(ov);
    return env_mode();
}

void set_solver_mode(SolverMode mode) {
    g_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void clear_solver_mode_override() {
    g_override.store(-1, std::memory_order_relaxed);
}

SolverKind apply_solver_mode(SolverMode mode, std::size_t num_unknowns) {
    switch (mode) {
    case SolverMode::kDense: return SolverKind::kDense;
    case SolverMode::kSparse: return SolverKind::kSparse;
    case SolverMode::kAuto: break;
    }
    return num_unknowns >= kSparseAutoThreshold ? SolverKind::kSparse
                                                : SolverKind::kDense;
}

SolverKind select_solver_kind(std::size_t num_unknowns) {
    return apply_solver_mode(solver_mode(), num_unknowns);
}

ScopedSolverMode::ScopedSolverMode(SolverMode mode)
    : previous_(g_override.load(std::memory_order_relaxed)) {
    set_solver_mode(mode);
}

ScopedSolverMode::~ScopedSolverMode() {
    g_override.store(previous_, std::memory_order_relaxed);
}

} // namespace tfetsram::spice
