#pragma once
// The contract between the circuit engine and device physics: a transistor
// model supplies the channel current (with partial derivatives) and the two
// terminal capacitances, all normalized per micron of width. Concrete models
// (analytic TFET/MOSFET physics and the lookup-table flavor the paper's
// Verilog-A flow uses) live in src/device.

#include <cstddef>
#include <memory>

namespace tfetsram::spice {

/// Channel current and its partial derivatives at one bias point,
/// per micron of device width. Current is taken positive drain->source.
struct IvSample {
    double ids;  ///< drain-source current [A/um]
    double gm;   ///< d ids / d vgs [S/um]
    double gds;  ///< d ids / d vds [S/um]
};

/// Terminal capacitances at one bias point, per micron of width.
struct CvSample {
    double cgs; ///< gate-source capacitance [F/um]
    double cgd; ///< gate-drain capacitance [F/um]
};

/// Abstract transistor characteristics. Implementations must be smooth
/// enough for Newton iteration (C1 in both arguments) and defined for all
/// real (vgs, vds) — including reverse bias, where TFET physics differs
/// fundamentally from MOSFETs.
class TransistorModel {
public:
    virtual ~TransistorModel() = default;

    /// I-V characteristic with derivatives.
    [[nodiscard]] virtual IvSample iv(double vgs, double vds) const = 0;

    /// Batched I-V: out[i] = iv(vgs[i], vds[i]) for i in [0, n). The
    /// default loops the scalar entry point; table-backed models override
    /// with a structure-of-arrays pass over their grids (the per-iterate
    /// hot loop at array scale). Overrides MUST be bitwise-identical to
    /// the scalar path — the dense/sparse differential suite asserts exact
    /// Jacobian equality across assembly backends.
    virtual void iv_many(const double* vgs, const double* vds, std::size_t n,
                         IvSample* out) const {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = iv(vgs[i], vds[i]);
    }

    /// C-V characteristic.
    [[nodiscard]] virtual CvSample cv(double vgs, double vds) const = 0;

    /// Short human-readable name for reports ("nTFET", "pMOS", ...).
    [[nodiscard]] virtual const char* name() const = 0;
};

using TransistorModelPtr = std::shared_ptr<const TransistorModel>;

} // namespace tfetsram::spice
