#pragma once
// The contract between the circuit engine and device physics: a transistor
// model supplies the channel current (with partial derivatives) and the two
// terminal capacitances, all normalized per micron of width. Concrete models
// (analytic TFET/MOSFET physics and the lookup-table flavor the paper's
// Verilog-A flow uses) live in src/device.

#include <memory>

namespace tfetsram::spice {

/// Channel current and its partial derivatives at one bias point,
/// per micron of device width. Current is taken positive drain->source.
struct IvSample {
    double ids;  ///< drain-source current [A/um]
    double gm;   ///< d ids / d vgs [S/um]
    double gds;  ///< d ids / d vds [S/um]
};

/// Terminal capacitances at one bias point, per micron of width.
struct CvSample {
    double cgs; ///< gate-source capacitance [F/um]
    double cgd; ///< gate-drain capacitance [F/um]
};

/// Abstract transistor characteristics. Implementations must be smooth
/// enough for Newton iteration (C1 in both arguments) and defined for all
/// real (vgs, vds) — including reverse bias, where TFET physics differs
/// fundamentally from MOSFETs.
class TransistorModel {
public:
    virtual ~TransistorModel() = default;

    /// I-V characteristic with derivatives.
    [[nodiscard]] virtual IvSample iv(double vgs, double vds) const = 0;

    /// C-V characteristic.
    [[nodiscard]] virtual CvSample cv(double vgs, double vds) const = 0;

    /// Short human-readable name for reports ("nTFET", "pMOS", ...).
    [[nodiscard]] virtual const char* name() const = 0;
};

using TransistorModelPtr = std::shared_ptr<const TransistorModel>;

} // namespace tfetsram::spice
