#include "mc/yield.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace tfetsram::mc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double inv_sqrt_2pi = 0.3989422804014327;

double normal_pdf(double t) { return inv_sqrt_2pi * std::exp(-0.5 * t * t); }
} // namespace

GaussianMixture::GaussianMixture(std::vector<GaussianComponent> components)
    : components_(std::move(components)) {
    TFET_EXPECTS(!components_.empty());
    double total = 0.0;
    for (const GaussianComponent& c : components_) {
        TFET_EXPECTS(c.sigma > 0.0);
        TFET_EXPECTS(c.weight > 0.0);
        total += c.weight;
    }
    for (GaussianComponent& c : components_)
        c.weight /= total;
}

GaussianMixture GaussianMixture::shifted(double shift,
                                         double nominal_fraction) {
    TFET_EXPECTS(nominal_fraction > 0.0 && nominal_fraction < 1.0);
    return GaussianMixture{{GaussianComponent{0.0, 1.0, nominal_fraction},
                            GaussianComponent{shift, 1.0,
                                              1.0 - nominal_fraction}}};
}

GaussianMixture GaussianMixture::shifted_symmetric(double shift,
                                                   double nominal_fraction) {
    TFET_EXPECTS(nominal_fraction > 0.0 && nominal_fraction < 1.0);
    const double half = 0.5 * (1.0 - nominal_fraction);
    return GaussianMixture{{GaussianComponent{0.0, 1.0, nominal_fraction},
                            GaussianComponent{-shift, 1.0, half},
                            GaussianComponent{shift, 1.0, half}}};
}

double GaussianMixture::sample(Rng& rng) const {
    // Component by cumulative weight, then one normal draw — two RNG
    // variates per sample regardless of the component picked, so streams
    // stay aligned across proposals with equal component counts.
    const double r = rng.uniform(0.0, 1.0);
    double cum = 0.0;
    const GaussianComponent* picked = &components_.back();
    for (const GaussianComponent& c : components_) {
        cum += c.weight;
        if (r < cum) {
            picked = &c;
            break;
        }
    }
    return rng.normal(picked->mean, picked->sigma);
}

double GaussianMixture::pdf(double u) const {
    double g = 0.0;
    for (const GaussianComponent& c : components_)
        g += c.weight * normal_pdf((u - c.mean) / c.sigma) / c.sigma;
    return g;
}

double GaussianMixture::importance_weight(double u) const {
    const double g = pdf(u);
    TFET_EXPECTS(g > 0.0);
    return normal_pdf(u) / g;
}

double GaussianMixture::weight_bound() const {
    // g(u) >= a * phi(u) whenever a mass fraction a sits exactly on
    // N(0,1), so w = phi/g <= 1/a everywhere.
    double a = 0.0;
    for (const GaussianComponent& c : components_)
        if (c.mean == 0.0 && c.sigma == 1.0)
            a += c.weight;
    return a > 0.0 ? 1.0 / a : kInf;
}

bool GaussianMixture::is_nominal() const {
    return components_.size() == 1 && components_[0].mean == 0.0 &&
           components_[0].sigma == 1.0;
}

void YieldAccumulator::add(double weight, SampleVerdict verdict) {
    TFET_EXPECTS(weight >= 0.0 && std::isfinite(weight));
    ++n_;
    if (weight != 1.0)
        unit_weights_ = false;
    switch (verdict) {
    case SampleVerdict::kPass:
        sum_w_ += weight;
        sum_w2_ += weight * weight;
        break;
    case SampleVerdict::kFail:
        ++n_fail_;
        sum_w_ += weight;
        sum_w2_ += weight * weight;
        sum_wf_ += weight;
        sum_wf2_ += weight * weight;
        break;
    case SampleVerdict::kCensored:
        ++n_censored_;
        sum_wc_ += weight;
        sum_wc2_ += weight * weight;
        break;
    }
}

namespace {

/// Normal-approximation CI on a mean of weighted indicators: `sum` and
/// `sum2` over `n` samples of x = w * 1{event}. Zero observed events get
/// the Clopper-Pearson zero-count upper bound scaled by the weight cap.
void weighted_interval(double sum, double sum2, std::size_t n,
                       std::size_t events, double z, double alpha,
                       double weight_bound, double& lower, double& upper) {
    const double dn = static_cast<double>(n);
    const double mean = sum / dn;
    if (events == 0) {
        lower = 0.0;
        upper = std::isfinite(weight_bound)
                    ? std::min(1.0, weight_bound *
                                        (1.0 - std::pow(alpha, 1.0 / dn)))
                    : 1.0;
        return;
    }
    const double var =
        n > 1 ? std::max(0.0, (sum2 - dn * mean * mean) / (dn - 1.0)) : 0.0;
    const double half = z * std::sqrt(var / dn);
    lower = std::max(0.0, mean - half);
    upper = std::min(1.0, mean + half);
}

} // namespace

YieldEstimate YieldAccumulator::estimate(double confidence,
                                         double weight_bound) const {
    TFET_EXPECTS(confidence > 0.0 && confidence < 1.0);
    YieldEstimate est;
    est.n_samples = n_;
    est.n_fail = n_fail_;
    est.n_censored = n_censored_;
    const std::size_t evaluated = n_ - n_censored_;
    if (evaluated == 0) {
        // Nothing observed: vacuous interval, NaN point (the same
        // degradation as the statistics helpers — never an abort).
        est.p_fail = kNaN;
        est.sigma_level = kNaN;
        return est;
    }
    const double total_w = sum_w_ + sum_wc_;
    const double total_w2 = sum_w2_ + sum_wc2_;
    est.ess = total_w > 0.0 ? total_w * total_w / total_w2
                            : static_cast<double>(n_);
    const double alpha = 1.0 - confidence;
    if (unit_weights_) {
        // Plain sampling: exact Wilson machinery, including the censored
        // worst-case imputation the Monte-Carlo engine already uses
        // (failure interval = flipped pass interval).
        est.p_fail = static_cast<double>(n_fail_) /
                     static_cast<double>(evaluated);
        const YieldInterval base =
            yield_interval(n_fail_, evaluated, confidence);
        est.lower = base.lower;
        est.upper = base.upper;
        const YieldInterval cens = censored_yield_interval(
            evaluated - n_fail_, evaluated, n_censored_, confidence);
        est.lower_censored = 1.0 - cens.upper;
        est.upper_censored = 1.0 - cens.lower;
    } else {
        const double z = normal_quantile(1.0 - alpha / 2.0);
        const double dn_eval = static_cast<double>(evaluated);
        est.p_fail = sum_wf_ / dn_eval;
        weighted_interval(sum_wf_, sum_wf2_, evaluated, n_fail_, z, alpha,
                          weight_bound, est.lower, est.upper);
        // Conservative bounds over ALL drawn samples: the upper bound
        // counts censored weights as failures, the lower one as passes.
        double scratch = 0.0;
        weighted_interval(sum_wf_ + sum_wc_, sum_wf2_ + sum_wc2_, n_,
                          n_fail_ + n_censored_, z, alpha, weight_bound,
                          scratch, est.upper_censored);
        weighted_interval(sum_wf_, sum_wf2_, n_, n_fail_, z, alpha,
                          weight_bound, est.lower_censored, scratch);
    }
    est.sigma_level = est.p_fail > 0.0 ? -normal_quantile(est.p_fail) : kInf;
    return est;
}

YieldEstimate estimate_yield(const YieldOptions& options, std::uint64_t seed,
                             const YieldBatchProbe& probe) {
    TFET_EXPECTS(probe != nullptr);
    TFET_EXPECTS(options.batch >= 1);
    TFET_EXPECTS(options.max_samples >= 1);
    TFET_EXPECTS(options.target_rel_halfwidth > 0.0);
    Rng rng(seed);
    YieldAccumulator acc;
    YieldEstimate est;
    std::size_t drawn = 0;
    std::vector<double> us;
    while (drawn < options.max_samples) {
        const std::size_t m =
            std::min(options.batch, options.max_samples - drawn);
        us.clear();
        for (std::size_t j = 0; j < m; ++j)
            us.push_back(options.proposal.sample(rng));
        const std::vector<SampleVerdict> verdicts = probe(us, drawn);
        TFET_EXPECTS(verdicts.size() == us.size());
        for (std::size_t j = 0; j < m; ++j)
            acc.add(options.proposal.importance_weight(us[j]), verdicts[j]);
        drawn += m;
        est = acc.estimate(options.confidence,
                           options.proposal.weight_bound());
        if (drawn >= options.min_samples &&
            est.n_fail >= options.min_failures && est.p_fail > 0.0) {
            const double halfwidth = 0.5 * (est.upper - est.lower);
            if (halfwidth <= options.target_rel_halfwidth * est.p_fail) {
                est.converged = true;
                break;
            }
        }
    }
    return est;
}

YieldEstimate estimate_yield(const YieldOptions& options, std::uint64_t seed,
                             const YieldProbe& probe) {
    TFET_EXPECTS(probe != nullptr);
    return estimate_yield(
        options, seed,
        [&probe](std::span<const double> us, std::size_t first) {
            std::vector<SampleVerdict> verdicts;
            verdicts.reserve(us.size());
            for (std::size_t j = 0; j < us.size(); ++j)
                verdicts.push_back(probe(us[j], first + j));
            return verdicts;
        });
}

YieldEstimate estimate_cell_yield(const spice::SimContext& ctx,
                                  const CellYieldProblem& problem,
                                  const YieldOptions& options,
                                  std::uint64_t seed, std::size_t threads,
                                  const McPolicy& policy, BatchStats* stats) {
    TFET_EXPECTS(problem.metric != nullptr);
    TFET_EXPECTS(problem.fails != nullptr);
    const TfetVariationSampler sampler(problem.variation);
    const la::Vector nominal_seed = nominal_hold_seed(ctx, problem.config);
    return estimate_yield(
        options, seed,
        [&](std::span<const double> us, std::size_t first) {
            std::vector<TfetVariationSampler::Draw> draws;
            draws.reserve(us.size());
            for (double u : us)
                draws.push_back(sampler.sample_at(u));
            BatchOptions batch_options;
            batch_options.threads = threads;
            batch_options.policy = policy;
            // Global sample index = child seed stream, unique per round.
            batch_options.stream_offset = first;
            const McResult block =
                run_sample_block(ctx, problem.config, draws, problem.metric,
                                 nominal_seed, batch_options, stats);
            std::vector<SampleVerdict> verdicts;
            verdicts.reserve(us.size());
            for (std::size_t j = 0; j < us.size(); ++j)
                verdicts.push_back(block.censored[j] != 0
                                       ? SampleVerdict::kCensored
                                       : (problem.fails(block.samples[j])
                                              ? SampleVerdict::kFail
                                              : SampleVerdict::kPass));
            return verdicts;
        });
}

} // namespace tfetsram::mc
