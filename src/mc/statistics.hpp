#pragma once
// Statistical post-processing of Monte-Carlo results beyond the basic
// summary: metric-vs-parameter sensitivity regression (how strongly tox
// drives WLcrit) and binomial yield confidence bounds (what a finite
// sample actually proves about the failure rate).

#include <span>

#include "util/stats.hpp"

namespace tfetsram::mc {

/// Least-squares line y = slope * x + intercept with the correlation
/// coefficient, over paired finite samples.
struct Regression {
    double slope = 0.0;
    double intercept = 0.0;
    double correlation = 0.0; ///< Pearson r
    std::size_t count = 0;    ///< pairs used
};

/// Fit y against x, ignoring pairs with non-finite members.
Regression linear_regression(std::span<const double> x,
                             std::span<const double> y);

/// Normalized sensitivity d(ln y)/d(ln x) at the sample means — "percent
/// change of the metric per percent change of the parameter" — computed
/// via regression of ln y on ln x. Requires positive samples.
double log_log_sensitivity(std::span<const double> x,
                           std::span<const double> y);

/// Two-sided Clopper-Pearson-style confidence interval on a pass
/// probability from `passes` successes in `trials` (via the Wilson score
/// approximation, accurate for the sample sizes Monte-Carlo uses here).
struct YieldInterval {
    double point = 0.0; ///< passes / trials
    double lower = 0.0;
    double upper = 0.0;
};
YieldInterval yield_interval(std::size_t passes, std::size_t trials,
                             double confidence = 0.95);

/// Yield interval under censoring. `evaluated` samples produced a verdict
/// (`passes` of them passed); `censored` samples never converged, so their
/// verdicts are unknown. Rather than dropping them (which silently biases
/// the yield toward whatever corners happen to converge), the interval is
/// widened to cover both worst cases: the lower bound assumes every
/// censored sample would have failed, the upper bound that every one would
/// have passed. The point estimate is passes/evaluated (the uncensored
/// rate). With censored == 0 this reduces exactly to yield_interval.
YieldInterval censored_yield_interval(std::size_t passes,
                                      std::size_t evaluated,
                                      std::size_t censored,
                                      double confidence = 0.95);

} // namespace tfetsram::mc
