#pragma once
// Statistical post-processing of Monte-Carlo results beyond the basic
// summary: metric-vs-parameter sensitivity regression (how strongly tox
// drives WLcrit) and binomial yield confidence bounds (what a finite
// sample actually proves about the failure rate).

#include <span>

#include "util/stats.hpp"

namespace tfetsram::mc {

/// Least-squares line y = slope * x + intercept with the correlation
/// coefficient, over paired finite samples.
struct Regression {
    double slope = 0.0;
    double intercept = 0.0;
    double correlation = 0.0; ///< Pearson r
    std::size_t count = 0;    ///< pairs used
};

/// Fit y against x, ignoring pairs with non-finite members.
Regression linear_regression(std::span<const double> x,
                             std::span<const double> y);

/// Normalized sensitivity d(ln y)/d(ln x) at the sample means — "percent
/// change of the metric per percent change of the parameter" — computed
/// via regression of ln y on ln x. Requires positive samples.
double log_log_sensitivity(std::span<const double> x,
                           std::span<const double> y);

/// Standard normal CDF Phi(x), computed through erfc so deep tails keep
/// full relative accuracy (Phi(-8) ~ 6e-16 is still meaningful).
double normal_cdf(double x);

/// Upper tail Q(x) = 1 - Phi(x) = Phi(-x), again via erfc: the quantity
/// rare-event yield targets are expressed in ("a 4 sigma cell fails with
/// probability normal_tail(4)").
double normal_tail(double x);

/// Inverse standard normal CDF: the z with Phi(z) = p. Rational seed
/// (Acklam) polished with one Halley step against normal_cdf, accurate to
/// ~1e-13 relative across (0, 1). p <= 0 maps to -inf, p >= 1 to +inf.
double normal_quantile(double p);

/// Two-sided Clopper-Pearson-style confidence interval on a pass
/// probability from `passes` successes in `trials` (via the Wilson score
/// approximation, accurate for the sample sizes Monte-Carlo uses here).
/// Total in `trials`: zero trials prove nothing, so the interval degrades
/// to the vacuous [0, 1] with a NaN point instead of a contract violation
/// (an all-censored batch must flow into BENCH artifacts, not abort them).
struct YieldInterval {
    double point = 0.0; ///< passes / trials (NaN when trials == 0)
    double lower = 0.0;
    double upper = 0.0;
};
YieldInterval yield_interval(std::size_t passes, std::size_t trials,
                             double confidence = 0.95);

/// Yield interval under censoring. `evaluated` samples produced a verdict
/// (`passes` of them passed); `censored` samples never converged, so their
/// verdicts are unknown. Rather than dropping them (which silently biases
/// the yield toward whatever corners happen to converge), the interval is
/// widened to cover both worst cases: the lower bound assumes every
/// censored sample would have failed, the upper bound that every one would
/// have passed. The point estimate is passes/evaluated (the uncensored
/// rate). With censored == 0 this reduces exactly to yield_interval.
/// Total like yield_interval: evaluated == 0 (every sample censored)
/// yields a NaN point with the bounds worst-case imputation already
/// implies, [0, 1] when nothing at all was observed.
YieldInterval censored_yield_interval(std::size_t passes,
                                      std::size_t evaluated,
                                      std::size_t censored,
                                      double confidence = 0.95);

} // namespace tfetsram::mc
