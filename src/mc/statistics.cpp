#include "mc/statistics.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace tfetsram::mc {

Regression linear_regression(std::span<const double> x,
                             std::span<const double> y) {
    TFET_EXPECTS(x.size() == y.size());
    Regression r;
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (!std::isfinite(x[i]) || !std::isfinite(y[i]))
            continue;
        ++r.count;
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        syy += y[i] * y[i];
        sxy += x[i] * y[i];
    }
    if (r.count < 2)
        return r;
    const double n = static_cast<double>(r.count);
    const double var_x = sxx - sx * sx / n;
    const double var_y = syy - sy * sy / n;
    const double cov = sxy - sx * sy / n;
    if (var_x <= 0.0)
        return r;
    r.slope = cov / var_x;
    r.intercept = (sy - r.slope * sx) / n;
    r.correlation =
        var_y > 0.0 ? cov / std::sqrt(var_x * var_y) : 0.0;
    return r;
}

double log_log_sensitivity(std::span<const double> x,
                           std::span<const double> y) {
    TFET_EXPECTS(x.size() == y.size());
    std::vector<double> lx;
    std::vector<double> ly;
    lx.reserve(x.size());
    ly.reserve(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (std::isfinite(x[i]) && std::isfinite(y[i]) && x[i] > 0.0 &&
            y[i] > 0.0) {
            lx.push_back(std::log(x[i]));
            ly.push_back(std::log(y[i]));
        }
    }
    return linear_regression(lx, ly).slope;
}

YieldInterval yield_interval(std::size_t passes, std::size_t trials,
                             double confidence) {
    TFET_EXPECTS(trials > 0);
    TFET_EXPECTS(passes <= trials);
    TFET_EXPECTS(confidence > 0.0 && confidence < 1.0);
    YieldInterval yi;
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(passes) / n;
    yi.point = p;
    // Wilson score interval. z for the two-sided confidence level via a
    // rational approximation of the normal quantile (Beasley-Springer).
    const double alpha = 1.0 - confidence;
    const double q = 1.0 - alpha / 2.0;
    const double t = std::sqrt(-2.0 * std::log(1.0 - q));
    const double z =
        t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t);
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    yi.lower = std::max(0.0, center - half);
    yi.upper = std::min(1.0, center + half);
    return yi;
}

YieldInterval censored_yield_interval(std::size_t passes,
                                      std::size_t evaluated,
                                      std::size_t censored,
                                      double confidence) {
    TFET_EXPECTS(evaluated > 0);
    TFET_EXPECTS(passes <= evaluated);
    const std::size_t trials = evaluated + censored;
    YieldInterval yi;
    yi.point = static_cast<double>(passes) / static_cast<double>(evaluated);
    // Worst-case imputation in each direction over the full trial count.
    yi.lower = yield_interval(passes, trials, confidence).lower;
    yi.upper = yield_interval(passes + censored, trials, confidence).upper;
    return yi;
}

} // namespace tfetsram::mc
