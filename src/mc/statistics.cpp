#include "mc/statistics.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace tfetsram::mc {

Regression linear_regression(std::span<const double> x,
                             std::span<const double> y) {
    TFET_EXPECTS(x.size() == y.size());
    Regression r;
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (!std::isfinite(x[i]) || !std::isfinite(y[i]))
            continue;
        ++r.count;
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        syy += y[i] * y[i];
        sxy += x[i] * y[i];
    }
    if (r.count < 2)
        return r;
    const double n = static_cast<double>(r.count);
    const double var_x = sxx - sx * sx / n;
    const double var_y = syy - sy * sy / n;
    const double cov = sxy - sx * sy / n;
    if (var_x <= 0.0)
        return r;
    r.slope = cov / var_x;
    r.intercept = (sy - r.slope * sx) / n;
    r.correlation =
        var_y > 0.0 ? cov / std::sqrt(var_x * var_y) : 0.0;
    return r;
}

double log_log_sensitivity(std::span<const double> x,
                           std::span<const double> y) {
    TFET_EXPECTS(x.size() == y.size());
    std::vector<double> lx;
    std::vector<double> ly;
    lx.reserve(x.size());
    ly.reserve(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (std::isfinite(x[i]) && std::isfinite(y[i]) && x[i] > 0.0 &&
            y[i] > 0.0) {
            lx.push_back(std::log(x[i]));
            ly.push_back(std::log(y[i]));
        }
    }
    return linear_regression(lx, ly).slope;
}

double normal_cdf(double x) {
    // Phi(x) = erfc(-x / sqrt(2)) / 2; erfc keeps relative accuracy in the
    // far lower tail where 1 - erf would cancel to zero.
    return 0.5 * std::erfc(-x * (1.0 / std::sqrt(2.0)));
}

double normal_tail(double x) { return 0.5 * std::erfc(x * (1.0 / std::sqrt(2.0))); }

double normal_quantile(double p) {
    if (p <= 0.0)
        return -std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return std::numeric_limits<double>::infinity();
    // Acklam's rational approximation (central + two tail branches), good
    // to ~1e-9 absolute on its own.
    static constexpr double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static constexpr double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double plow = 0.02425;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Halley step against the exact CDF pushes the error to ~1e-13
    // relative — enough for 6-sigma yield targets.
    constexpr double inv_sqrt_2pi = 0.3989422804014327;
    const double e = normal_cdf(x) - p;
    const double u = e / (inv_sqrt_2pi * std::exp(-0.5 * x * x));
    return x - u / (1.0 + 0.5 * x * u);
}

YieldInterval yield_interval(std::size_t passes, std::size_t trials,
                             double confidence) {
    TFET_EXPECTS(passes <= trials);
    TFET_EXPECTS(confidence > 0.0 && confidence < 1.0);
    YieldInterval yi;
    if (trials == 0) {
        // No observations prove nothing: vacuous interval, NaN point.
        yi.point = std::numeric_limits<double>::quiet_NaN();
        yi.lower = 0.0;
        yi.upper = 1.0;
        return yi;
    }
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(passes) / n;
    yi.point = p;
    // Wilson score interval with the exact normal quantile.
    const double alpha = 1.0 - confidence;
    const double z = normal_quantile(1.0 - alpha / 2.0);
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    yi.lower = std::max(0.0, center - half);
    yi.upper = std::min(1.0, center + half);
    return yi;
}

YieldInterval censored_yield_interval(std::size_t passes,
                                      std::size_t evaluated,
                                      std::size_t censored,
                                      double confidence) {
    TFET_EXPECTS(passes <= evaluated);
    const std::size_t trials = evaluated + censored;
    YieldInterval yi;
    // An all-censored batch still widens over the full trial count below;
    // with zero trials both calls degrade to the vacuous [0, 1].
    yi.point = evaluated > 0 ? static_cast<double>(passes) /
                                   static_cast<double>(evaluated)
                             : std::numeric_limits<double>::quiet_NaN();
    // Worst-case imputation in each direction over the full trial count.
    yi.lower = yield_interval(passes, trials, confidence).lower;
    yi.upper = yield_interval(passes + censored, trials, confidence).upper;
    return yi;
}

} // namespace tfetsram::mc
