#pragma once
// Rare-event yield estimation (docs/YIELD.md). Plain Monte-Carlo needs
// ~1/p samples to even see one failure, which makes 4-6 sigma cell
// failure probabilities (p ~ 3e-5 .. 1e-9) intractable with the 64-sample
// histograms of Figs. 9-10. This module estimates them directly:
//
//  * importance sampling over the standardized variation space u (tox =
//    nominal * (1 + sigma_frac * u)) with a defensive Gaussian-mixture
//    proposal shifted toward the failure region — the estimator
//    p = E_g[w(u) 1{fail}] with w = phi(u)/g(u) is unbiased, and keeping
//    a nominal component in the mixture caps the weights;
//  * adaptive stopping: rounds of samples are accumulated until the
//    confidence interval (Wilson on the plain-sampling path, a weighted
//    normal approximation under importance sampling) is tight relative to
//    the estimate, or the sample budget runs out;
//  * censored-sample bookkeeping carried over from the Monte-Carlo
//    engine: samples whose solves never converged contribute worst-case
//    conservative bounds instead of silently biasing the estimate.
//
// The estimators are validated against closed-form Gaussian tail
// probabilities by the statistical harness in tests/test_yield.cpp.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mc/batch.hpp"
#include "mc/statistics.hpp"
#include "util/rng.hpp"

namespace tfetsram::mc {

/// Outcome of one yield sample.
enum class SampleVerdict {
    kPass,
    kFail,
    kCensored, ///< no converged evaluation: verdict unknown
};

struct GaussianComponent {
    double mean = 0.0;
    double sigma = 1.0;
    double weight = 1.0; ///< relative; normalized by GaussianMixture
};

/// Gaussian-mixture proposal density over the standardized variation
/// space. The default is the nominal N(0,1) — plain Monte-Carlo.
class GaussianMixture {
public:
    GaussianMixture() : GaussianMixture({GaussianComponent{}}) {}
    explicit GaussianMixture(std::vector<GaussianComponent> components);

    static GaussianMixture nominal() { return GaussianMixture{}; }
    /// Defensive one-sided shift: `nominal_fraction` of the mass stays on
    /// N(0,1) (capping importance weights at 1/nominal_fraction), the rest
    /// moves to N(shift, 1) centered on the failure region.
    static GaussianMixture shifted(double shift,
                                   double nominal_fraction = 0.1);
    /// Two-sided variant for metrics that can fail in either tail.
    static GaussianMixture shifted_symmetric(double shift,
                                             double nominal_fraction = 0.2);

    [[nodiscard]] double sample(Rng& rng) const;
    [[nodiscard]] double pdf(double u) const;
    /// phi(u) / pdf(u): the importance weight of a draw at u.
    [[nodiscard]] double importance_weight(double u) const;
    /// Upper bound on importance_weight over all u: 1 / (mass on the
    /// exact-nominal component), +inf when the mixture carries none.
    [[nodiscard]] double weight_bound() const;
    /// True for the single-component N(0,1) mixture (plain sampling, so
    /// the estimator can use the exact Wilson interval).
    [[nodiscard]] bool is_nominal() const;

    [[nodiscard]] const std::vector<GaussianComponent>& components() const {
        return components_;
    }

private:
    std::vector<GaussianComponent> components_; ///< weights sum to 1
};

struct YieldOptions {
    GaussianMixture proposal; ///< default: nominal (plain Monte-Carlo)
    double confidence = 0.95;
    /// Stop once the CI half-width is below this fraction of the estimate.
    double target_rel_halfwidth = 0.25;
    std::size_t batch = 64;        ///< samples added per adaptive round
    std::size_t min_samples = 64;  ///< never stop before this many
    std::size_t max_samples = 4096;
    /// Never declare convergence on fewer observed failures than this (a
    /// lucky early CI on 1-2 failures is noise, not convergence).
    std::size_t min_failures = 8;
};

struct YieldEstimate {
    /// Failure probability estimate with its two-sided CI (censored
    /// samples excluded). NaN point when nothing was evaluated.
    double p_fail = 0.0;
    double lower = 0.0;
    double upper = 1.0;
    /// Conservative bounds imputing every censored sample as a failure
    /// (upper) respectively a pass (lower); equal to lower/upper when
    /// nothing was censored.
    double lower_censored = 0.0;
    double upper_censored = 1.0;
    /// -Phi^-1(p_fail): the estimate expressed as a sigma level (+inf
    /// when no failure was observed).
    double sigma_level = 0.0;
    /// Effective sample size (sum w)^2 / sum w^2 — how many plain samples
    /// the weighted draws are worth; equals n_samples under the nominal
    /// proposal.
    double ess = 0.0;
    std::size_t n_samples = 0;
    std::size_t n_fail = 0;
    std::size_t n_censored = 0;
    bool converged = false; ///< stopped on the CI target, not the budget
};

/// Streaming accumulator behind the adaptive loop. add() one weighted
/// verdict at a time; estimate() is valid at any point.
class YieldAccumulator {
public:
    void add(double weight, SampleVerdict verdict);

    /// Interval on P(fail). `weight_bound` (the proposal's weight_bound())
    /// tightens the zero-failure upper bound; pass +inf when unknown.
    [[nodiscard]] YieldEstimate estimate(double confidence,
                                         double weight_bound) const;

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] std::size_t failures() const { return n_fail_; }

private:
    std::size_t n_ = 0;
    std::size_t n_fail_ = 0;
    std::size_t n_censored_ = 0;
    double sum_w_ = 0.0;   ///< all evaluated (non-censored) weights
    double sum_w2_ = 0.0;
    double sum_wf_ = 0.0;  ///< failure-indicator weights
    double sum_wf2_ = 0.0;
    double sum_wc_ = 0.0;  ///< censored weights
    double sum_wc2_ = 0.0;
    bool unit_weights_ = true;
};

/// Verdict oracle for one standardized draw. `index` is the global sample
/// index (deterministic across rounds).
using YieldProbe = std::function<SampleVerdict(double u, std::size_t index)>;

/// Batched oracle: verdicts for a whole round of draws at once (the cell
/// driver fans a round out through the lockstep engine).
using YieldBatchProbe = std::function<std::vector<SampleVerdict>(
    std::span<const double> u, std::size_t first_index)>;

/// Adaptive importance-sampling estimation loop. Draws rounds of
/// options.batch samples from options.proposal (deterministic in `seed`),
/// asks the probe for verdicts, and stops once the interval meets
/// options.target_rel_halfwidth (with at least min_samples drawn and
/// min_failures observed) or max_samples is exhausted.
YieldEstimate estimate_yield(const YieldOptions& options, std::uint64_t seed,
                             const YieldBatchProbe& probe);
YieldEstimate estimate_yield(const YieldOptions& options, std::uint64_t seed,
                             const YieldProbe& probe);

/// A cell yield problem: which cell, which variation model, which metric,
/// and what metric value constitutes failure.
struct CellYieldProblem {
    sram::CellConfig config;  ///< models = the nominal model set
    VariationSpec variation;
    /// Metric under test. Throw spice::SolveException for "could not
    /// evaluate" (the sample is retried, then censored); return the value
    /// otherwise — `fails` sees it verbatim, including +/-inf.
    CellMetric metric;
    std::function<bool(double value)> fails;
};

/// Estimate a cell's failure probability: every adaptive round draws u
/// from the proposal, maps them through TfetVariationSampler::sample_at
/// (untruncated tails), and evaluates the metric through the lockstep
/// engine (run_sample_block) under ctx — sample i of the whole run uses
/// child stream i, so results are deterministic in (seed, ctx seed) for
/// every thread count. Censored samples flow into the conservative
/// bounds. `stats`, when given, accumulates lockstep bookkeeping.
YieldEstimate estimate_cell_yield(const spice::SimContext& ctx,
                                  const CellYieldProblem& problem,
                                  const YieldOptions& options,
                                  std::uint64_t seed,
                                  std::size_t threads = 0,
                                  const McPolicy& policy = {},
                                  BatchStats* stats = nullptr);

} // namespace tfetsram::mc
