#pragma once
// Batched lockstep Monte-Carlo (docs/YIELD.md). The serial engine in
// monte_carlo.hpp rebuilds the whole cell netlist — circuit, workspace,
// symbolic analysis, device-eval slot layout — for every sample, even
// though a draw only swaps device models. The lockstep engine instead
// keeps one persistent cell per worker lane and retargets its TFET models
// in place between samples, so all samples in a lane share one topology,
// one solver workspace (symbolic analysis + static-pivot ordering on the
// sparse path), and one DeviceEvalBatch slot layout.
//
// The contract is differential identity: same seeds produce bitwise-
// identical per-sample results and the same SolverStats counters as
// run_monte_carlo on the default (dense) 6T path, because a retargeted
// cell is numerically indistinguishable from a freshly built one — DC
// stamping carries no companion state, begin_transient() re-derives
// capacitor state from the operating point, and dc_seed is re-planted per
// sample. tests/test_mc_batch.cpp holds the contract; the one documented
// divergence is on a sparse-forced cell, where lane reuse performs one
// symbolic analysis per lane instead of one per sample.

#include <span>

#include "mc/monte_carlo.hpp"

namespace tfetsram::mc {

struct BatchOptions {
    std::size_t threads = 0; ///< worker lanes; 0 = hardware concurrency
    McPolicy policy;
    /// Child-context stream of draws[0]; draw i runs under stream
    /// `stream_offset + i`. The adaptive yield driver bumps this per round
    /// so every sample of a run keeps a globally unique, deterministic
    /// seed stream.
    std::uint64_t stream_offset = 0;
    /// Escape hatch: rebuild the cell for every sample (serial engine
    /// semantics) instead of retargeting lane cells in place.
    bool reuse_cells = true;
};

/// Lockstep bookkeeping for tests and bench counters. Accumulating: one
/// instance can total several run_sample_block rounds.
struct BatchStats {
    std::size_t lanes = 0;           ///< worker lanes spun up
    std::size_t cell_builds = 0;     ///< full netlist constructions
    std::size_t model_retargets = 0; ///< in-place swaps that skipped one
};

/// Evaluate `metric` on every draw through persistent lockstep lanes.
/// Sample i runs under ctx.child(stream_offset + i) with the same
/// cancellation checkpoints, retry policy (retries rebuild fresh cells,
/// exactly like the serial engine), and censoring semantics as
/// run_monte_carlo; child counters fold back into ctx in index order.
/// `nominal_seed` warm-starts each sample's first DC solve (pass
/// nominal_hold_seed(...) or empty for cold starts).
McResult run_sample_block(const spice::SimContext& ctx,
                          const sram::CellConfig& base_config,
                          std::span<const TfetVariationSampler::Draw> draws,
                          const CellMetric& metric,
                          const la::Vector& nominal_seed,
                          const BatchOptions& options = {},
                          BatchStats* stats = nullptr);

/// Drop-in replacement for run_monte_carlo: identical draws, child seed
/// streams, retry/censor behaviour, and (on the dense path) bitwise-
/// identical results and counters — evaluated through lockstep lanes.
McResult run_monte_carlo_batched(const spice::SimContext& ctx,
                                 const sram::CellConfig& base_config,
                                 const TfetVariationSampler& sampler,
                                 std::size_t n, std::uint64_t seed,
                                 const CellMetric& metric,
                                 std::size_t threads = 0,
                                 const McPolicy& policy = {},
                                 BatchStats* stats = nullptr);

} // namespace tfetsram::mc
