#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "runner/thread_pool.hpp"
#include "spice/dc.hpp"
#include "spice/solve_error.hpp"
#include "sram/operations.hpp"
#include "util/env.hpp"

namespace tfetsram::mc {

McResult run_monte_carlo(const spice::SimContext& ctx,
                         const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads, const McPolicy& policy) {
    TFET_EXPECTS(n >= 1);
    TFET_EXPECTS(metric != nullptr);
    TFET_EXPECTS(policy.max_attempts >= 1);

    // Draw all samples up front from one stream: the results are then
    // independent of how the evaluations are scheduled.
    std::vector<TfetVariationSampler::Draw> draws;
    draws.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        draws.push_back(sampler.sample(rng));

    const la::Vector nominal_seed = nominal_hold_seed(ctx, base_config);

    McResult result;
    result.samples.assign(n, 0.0);
    result.tox_values.assign(n, 0.0);
    result.censored.assign(n, 0);
    std::atomic<std::size_t> n_censored{0};
    std::atomic<std::size_t> n_retried{0};

    // One child context per sample: an isolated stats sink plus a seed
    // stream derived deterministically from (ctx seed, sample index). The
    // fault plan is shared, so injection budgets span the whole batch.
    std::vector<std::unique_ptr<spice::SimContext>> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        children.push_back(
            std::make_unique<spice::SimContext>(ctx.child(i)));

    // Fan the evaluations out through the shared concurrency substrate.
    // Each index writes only its own slots and depends only on its own
    // draw, so the result is identical for every thread count.
    threads = std::min(runner::ThreadPool::resolve(threads), n);
    runner::ThreadPool pool(threads);
    pool.parallel_for(n, [&](std::size_t i) {
        spice::SimContext& cctx = *children[i];
        const spice::ScopedContext bind(cctx);
        double value = std::numeric_limits<double>::quiet_NaN();
        bool converged = false;
        int attempt = 1;
        // Sample-boundary cancellation checkpoint: once the batch's token
        // fires or its deadline expires, remaining samples censor without
        // spending a solve — they flow into n_censored exactly like
        // non-converged samples, and censored_yield_interval's worst-case
        // imputation covers them.
        const bool expired =
            cctx.poll_cancellation() != spice::SolveErrorCode::kNone;
        for (; !expired && attempt <= policy.max_attempts; ++attempt) {
            // Rebuild from scratch every attempt: fresh device companion
            // state is itself a re-seeded restart, and the reseed hook can
            // additionally perturb the config before the retry.
            sram::CellConfig cfg = base_config;
            cfg.models = draws[i].models;
            if (attempt > 1 && policy.reseed)
                policy.reseed(cfg, attempt, i);
            sram::SramCell cell = sram::build_cell(cfg, &cctx);
            cell.dc_seed = nominal_seed; // ignored when sizes mismatch
            try {
                value = metric(cell);
                converged = true;
                break;
            } catch (const spice::SolveException& e) {
                // Non-converged solve: this attempt produced no
                // observation. Retry (or censor when attempts run out) —
                // unless the failure was a cancellation, which a retry
                // under the same expired context can only repeat.
                if (spice::is_cancellation(e.error().code) ||
                    cctx.cancellation_status() !=
                        spice::SolveErrorCode::kNone)
                    break;
            }
        }
        if (attempt > 1)
            n_retried.fetch_add(1, std::memory_order_relaxed);
        if (!converged)
            n_censored.fetch_add(1, std::memory_order_relaxed);
        result.samples[i] = value;
        result.censored[i] = converged ? 0 : 1;
        result.tox_values[i] = draws[i].tox;
    });
    // parallel_for is a barrier, so the children's counters are quiescent
    // here; fold them into the parent in index order (deterministic sums,
    // gauges keep the maximum). This closes the attribution gap where MC
    // work done on pool threads vanished from the caller's counters.
    for (const auto& child : children)
        ctx.stats() += child->stats();
    result.n_censored = n_censored.load();
    result.n_retried = n_retried.load();
    // NaN censored slots fall out of the summary on their own (they are
    // neither finite nor infinite).
    result.summary = summarize(result.samples);
    return result;
}

McResult run_monte_carlo(const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads, const McPolicy& policy) {
    return run_monte_carlo(spice::ambient_context(), base_config, sampler,
                           n, seed, metric, threads, policy);
}

la::Vector nominal_hold_seed(const spice::SimContext& ctx,
                             const sram::CellConfig& base_config) {
    sram::SramCell nominal = sram::build_cell(base_config, &ctx);
    sram::program_hold(nominal);
    spice::DcResult d = spice::solve_dc(nominal.circuit, ctx, 0.0);
    if (d.converged)
        return std::move(d.x);
    return {};
}

std::size_t mc_samples_from_env(std::size_t fallback) {
    // Read live (not from the process snapshot): the long benches let a
    // wrapper script resize the batch between runs of one process.
    const long long v = env::get_int("TFETSRAM_MC_SAMPLES", 0);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

} // namespace tfetsram::mc
