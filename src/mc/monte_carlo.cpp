#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <cstdlib>

#include "runner/thread_pool.hpp"

namespace tfetsram::mc {

McResult run_monte_carlo(const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads) {
    TFET_EXPECTS(n >= 1);
    TFET_EXPECTS(metric != nullptr);

    // Draw all samples up front from one stream: the results are then
    // independent of how the evaluations are scheduled.
    std::vector<TfetVariationSampler::Draw> draws;
    draws.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        draws.push_back(sampler.sample(rng));

    McResult result;
    result.samples.assign(n, 0.0);
    result.tox_values.assign(n, 0.0);

    // Fan the evaluations out through the shared concurrency substrate.
    // Each index writes only its own slots and depends only on its own
    // draw, so the result is identical for every thread count.
    threads = std::min(runner::ThreadPool::resolve(threads), n);
    runner::ThreadPool pool(threads);
    pool.parallel_for(n, [&](std::size_t i) {
        sram::CellConfig cfg = base_config;
        cfg.models = draws[i].models;
        sram::SramCell cell = sram::build_cell(cfg);
        result.samples[i] = metric(cell);
        result.tox_values[i] = draws[i].tox;
    });
    result.summary = summarize(result.samples);
    return result;
}

std::size_t mc_samples_from_env(std::size_t fallback) {
    const char* env = std::getenv("TFETSRAM_MC_SAMPLES");
    if (env == nullptr)
        return fallback;
    const long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

} // namespace tfetsram::mc
