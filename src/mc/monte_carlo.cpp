#include "mc/monte_carlo.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace tfetsram::mc {

McResult run_monte_carlo(const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads) {
    TFET_EXPECTS(n >= 1);
    TFET_EXPECTS(metric != nullptr);

    // Draw all samples up front from one stream: the results are then
    // independent of how the evaluations are scheduled.
    std::vector<TfetVariationSampler::Draw> draws;
    draws.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        draws.push_back(sampler.sample(rng));

    McResult result;
    result.samples.assign(n, 0.0);
    result.tox_values.assign(n, 0.0);

    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    threads = std::min(threads, n);

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            sram::CellConfig cfg = base_config;
            cfg.models = draws[i].models;
            sram::SramCell cell = sram::build_cell(cfg);
            result.samples[i] = metric(cell);
            result.tox_values[i] = draws[i].tox;
        }
    };
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }
    result.summary = summarize(result.samples);
    return result;
}

std::size_t mc_samples_from_env(std::size_t fallback) {
    const char* env = std::getenv("TFETSRAM_MC_SAMPLES");
    if (env == nullptr)
        return fallback;
    const long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

} // namespace tfetsram::mc
