#pragma once
// Monte-Carlo driver: rebuilds the cell with per-sample device models and
// evaluates an arbitrary metric, reproducing the occurrence histograms of
// Figs. 9 and 10.

#include <cstdint>
#include <functional>

#include "mc/variation.hpp"
#include "spice/context.hpp"
#include "sram/cell.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace tfetsram::mc {

/// Metric evaluated on each sampled cell. Return +/-inf or NaN for failure
/// outcomes (e.g. a write failure's infinite WLcrit); the summary keeps
/// them out of the moments but counts them. Throw spice::SolveException
/// for a solver failure ("could not evaluate this sample") — the driver
/// retries the sample and censors it if every attempt fails. The
/// distinction matters: a legit failure outcome is data; a non-converged
/// solve is a missing observation and must not contaminate the statistics.
using CellMetric = std::function<double(sram::SramCell&)>;

/// Retry/censoring policy for samples whose metric throws
/// spice::SolveException.
struct McPolicy {
    /// Total evaluation attempts per sample (>= 1). Each attempt rebuilds
    /// the cell from scratch, so device companion state restarts clean.
    int max_attempts = 3;
    /// Optional perturbed-restart hook: called before each retry
    /// (attempt >= 2) to nudge the rebuilt cell's config — e.g. tweak a
    /// solver option — deterministically in (attempt, sample index).
    std::function<void(sram::CellConfig& cfg, int attempt,
                       std::size_t sample_index)>
        reseed;
};

struct McResult {
    std::vector<double> samples; ///< metric values; NaN in censored slots
    std::vector<double> tox_values;
    /// Per-sample censor flag (1 = every attempt failed to converge; the
    /// samples[] slot holds NaN). uint8 rather than bool so concurrent
    /// per-index writes do not race on packed bits.
    std::vector<std::uint8_t> censored;
    std::size_t n_censored = 0; ///< samples with no converged evaluation
    std::size_t n_retried = 0;  ///< samples that needed more than 1 attempt
    SampleSummary summary;      ///< over non-censored samples only

    /// Histogram over the finite samples (paper-style occurrence plot).
    [[nodiscard]] Histogram histogram(std::size_t bins = 20) const {
        return Histogram::of(samples, bins);
    }
};

/// Run `n` samples under `ctx`. Each sample draws perturbed TFET models,
/// rebuilds the cell from `base_config` with them, and evaluates `metric`.
///
/// `threads` = 0 uses the hardware concurrency; 1 runs serially. Results
/// are deterministic in the seed regardless of the thread count (each
/// sample's models are drawn up front from one RNG stream; metric
/// evaluations are independent because every worker gets its own cell).
/// The metric must therefore be safe to call concurrently on distinct
/// cells (all device models are immutable).
///
/// Every worker evaluates its sample under a child context of `ctx`
/// (derived seed stream = sample index), and when all samples finish the
/// children's solver counters are aggregated back into `ctx` in index
/// order — so ctx.stats() reflects the full fan-out, no matter which
/// pool threads did the work.
McResult run_monte_carlo(const spice::SimContext& ctx,
                         const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads = 0,
                         const McPolicy& policy = {});

/// Compatibility entry: run under the caller's ambient context.
McResult run_monte_carlo(const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads = 0,
                         const McPolicy& policy = {});

/// Solve the nominal cell's hold operating point once so every sample's
/// first DC solve can warm-start from it (the draws only perturb tox, so
/// each operating point is a small Newton correction away). A failed
/// nominal solve returns an empty vector — samples fall back to cold
/// starts. Shared by the serial and lockstep engines and the yield
/// estimator so all three spend identical solver work here.
la::Vector nominal_hold_seed(const spice::SimContext& ctx,
                             const sram::CellConfig& base_config);

/// Reads TFETSRAM_MC_SAMPLES from the environment, defaulting to
/// `fallback`; lets the long benches scale their sample counts.
std::size_t mc_samples_from_env(std::size_t fallback);

} // namespace tfetsram::mc
