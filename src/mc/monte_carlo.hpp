#pragma once
// Monte-Carlo driver: rebuilds the cell with per-sample device models and
// evaluates an arbitrary metric, reproducing the occurrence histograms of
// Figs. 9 and 10.

#include <functional>

#include "mc/variation.hpp"
#include "sram/cell.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace tfetsram::mc {

/// Metric evaluated on each sampled cell. Return +/-inf or NaN for failure
/// outcomes (e.g. a write failure's infinite WLcrit); the summary keeps
/// them out of the moments but counts them.
using CellMetric = std::function<double(sram::SramCell&)>;

struct McResult {
    std::vector<double> samples;
    std::vector<double> tox_values;
    SampleSummary summary;

    /// Histogram over the finite samples (paper-style occurrence plot).
    [[nodiscard]] Histogram histogram(std::size_t bins = 20) const {
        return Histogram::of(samples, bins);
    }
};

/// Run `n` samples. Each sample draws perturbed TFET models, rebuilds the
/// cell from `base_config` with them, and evaluates `metric`.
///
/// `threads` = 0 uses the hardware concurrency; 1 runs serially. Results
/// are deterministic in the seed regardless of the thread count (each
/// sample's models are drawn up front from one RNG stream; metric
/// evaluations are independent because every worker gets its own cell).
/// The metric must therefore be safe to call concurrently on distinct
/// cells (all device models are immutable).
McResult run_monte_carlo(const sram::CellConfig& base_config,
                         const TfetVariationSampler& sampler, std::size_t n,
                         std::uint64_t seed, const CellMetric& metric,
                         std::size_t threads = 0);

/// Reads TFETSRAM_MC_SAMPLES from the environment, defaulting to
/// `fallback`; lets the long benches scale their sample counts.
std::size_t mc_samples_from_env(std::size_t fallback);

} // namespace tfetsram::mc
