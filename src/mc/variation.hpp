#pragma once
// Process-variation modeling (Sec. 4.3). Following the paper, only the
// TFET gate-insulator thickness varies: channel-length variation has
// negligible TFET impact [13] and random dopant fluctuation is suppressed
// by the nearly intrinsic channel. Thickness is "controlled to within 5 %"
// [13], modeled as a truncated Gaussian (3 sigma = bound).

#include "device/models.hpp"
#include "util/rng.hpp"

namespace tfetsram::mc {

struct VariationSpec {
    device::TfetParams base;        ///< nominal TFET
    double tox_bound_frac = 0.05;   ///< hard +/- bound as fraction of nominal
    double tox_sigma_frac = 0.05 / 3.0; ///< Gaussian sigma as fraction
    bool tabulated = true;          ///< re-extract lookup tables per sample
    device::TableSpec table_spec;   ///< extraction grid when tabulated
};

/// Draws per-sample model sets with perturbed TFET oxide thickness. The
/// MOSFET baseline is left at nominal (the paper varies only the TFETs).
class TfetVariationSampler {
public:
    explicit TfetVariationSampler(const VariationSpec& spec);

    /// One Monte-Carlo draw.
    struct Draw {
        device::ModelSet models;
        double tox; ///< sampled thickness [m]
    };
    [[nodiscard]] Draw sample(Rng& rng) const;

    /// Deterministic draw at a given standardized deviation u: tox =
    /// nominal * (1 + tox_sigma_frac * u), deliberately NOT truncated at
    /// the +/- bound — the importance-sampling yield estimator owns the
    /// sampling density and must reach tails the truncated Monte-Carlo
    /// draw assigns zero mass. tox is floored at 5 % of nominal so a
    /// pathological |u| cannot build a non-physical device.
    [[nodiscard]] Draw sample_at(double u) const;

    [[nodiscard]] const VariationSpec& spec() const { return spec_; }

private:
    [[nodiscard]] Draw draw_at_tox(double tox) const;

    VariationSpec spec_;
    device::ModelSet nominal_mosfets_;
};

} // namespace tfetsram::mc
