#include "mc/batch.hpp"

#include <limits>
#include <memory>
#include <optional>

#include "runner/thread_pool.hpp"
#include "spice/solve_error.hpp"
#include "util/contracts.hpp"

namespace tfetsram::mc {

McResult run_sample_block(const spice::SimContext& ctx,
                          const sram::CellConfig& base_config,
                          std::span<const TfetVariationSampler::Draw> draws,
                          const CellMetric& metric,
                          const la::Vector& nominal_seed,
                          const BatchOptions& options, BatchStats* stats) {
    const std::size_t n = draws.size();
    TFET_EXPECTS(n >= 1);
    TFET_EXPECTS(metric != nullptr);
    TFET_EXPECTS(options.policy.max_attempts >= 1);

    McResult result;
    result.samples.assign(n, 0.0);
    result.tox_values.assign(n, 0.0);
    result.censored.assign(n, 0);
    std::size_t n_censored = 0;
    std::size_t n_retried = 0;

    // Same child-context scheme as the serial engine: one isolated stats
    // sink per sample, seed stream derived from (ctx seed, global sample
    // index), shared fault plan.
    std::vector<std::unique_ptr<spice::SimContext>> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        children.push_back(std::make_unique<spice::SimContext>(
            ctx.child(options.stream_offset + i)));

    // Contiguous stripes: lane l owns samples [l*n/L, (l+1)*n/L), so the
    // persistent lane cell walks its samples in index order and the
    // sample->result mapping is independent of scheduling.
    const std::size_t lanes =
        std::min(runner::ThreadPool::resolve(options.threads), n);
    std::vector<std::size_t> lane_builds(lanes, 0);
    std::vector<std::size_t> lane_retargets(lanes, 0);
    std::vector<std::size_t> lane_censored(lanes, 0);
    std::vector<std::size_t> lane_retried(lanes, 0);

    runner::ThreadPool pool(lanes);
    pool.parallel_for(lanes, [&](std::size_t lane) {
        const std::size_t lo = lane * n / lanes;
        const std::size_t hi = (lane + 1) * n / lanes;
        std::optional<sram::SramCell> lane_cell;
        std::uint64_t lane_topology = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            spice::SimContext& cctx = *children[i];
            const spice::ScopedContext bind(cctx);
            double value = std::numeric_limits<double>::quiet_NaN();
            bool converged = false;
            int attempt = 1;
            // Sample-boundary cancellation checkpoint, identical to the
            // serial engine: once the batch's token fires, remaining
            // samples censor without spending a solve.
            const bool expired =
                cctx.poll_cancellation() != spice::SolveErrorCode::kNone;
            for (; !expired && attempt <= options.policy.max_attempts;
                 ++attempt) {
                // First attempt runs on the persistent lane cell (built
                // once, then retargeted in place per sample); retries
                // rebuild from scratch exactly like the serial engine, so
                // a perturbed restart gets fresh companion state and the
                // reseed hook's config tweaks.
                const bool lockstep = attempt == 1 && options.reuse_cells;
                std::optional<sram::SramCell> scratch;
                sram::SramCell* cell = nullptr;
                if (lockstep && lane_cell) {
                    sram::retarget_models(*lane_cell, draws[i].models);
                    lane_cell->sim = &cctx; // attribute this sample's work
                    ++lane_retargets[lane];
                    cell = &*lane_cell;
                } else {
                    sram::CellConfig cfg = base_config;
                    cfg.models = draws[i].models;
                    if (attempt > 1 && options.policy.reseed)
                        options.policy.reseed(cfg, attempt, i);
                    ++lane_builds[lane];
                    if (lockstep) {
                        lane_cell.emplace(sram::build_cell(cfg, &cctx));
                        cell = &*lane_cell;
                    } else {
                        scratch.emplace(sram::build_cell(cfg, &cctx));
                        cell = &*scratch;
                    }
                }
                if (lockstep)
                    lane_topology = lane_cell->circuit.topology_revision();
                cell->dc_seed = nominal_seed; // ignored on size mismatch
                bool stop = false;
                try {
                    value = metric(*cell);
                    converged = true;
                    stop = true;
                } catch (const spice::SolveException& e) {
                    // Non-converged solve: retry, unless the failure was a
                    // cancellation a retry under the same expired context
                    // could only repeat.
                    stop = spice::is_cancellation(e.error().code) ||
                           cctx.cancellation_status() !=
                               spice::SolveErrorCode::kNone;
                }
                // A metric that grew the circuit (e.g. SNM's probe source)
                // leaves the lane cell off-topology; drop it so the next
                // sample rebuilds instead of drifting from the serial
                // engine's fresh-cell semantics.
                if (lockstep && lane_cell->circuit.topology_revision() !=
                                    lane_topology)
                    lane_cell.reset();
                if (stop)
                    break;
            }
            if (attempt > 1)
                ++lane_retried[lane];
            if (!converged)
                ++lane_censored[lane];
            result.samples[i] = value;
            result.censored[i] = converged ? 0 : 1;
            result.tox_values[i] = draws[i].tox;
        }
    });
    // parallel_for is a barrier: children are quiescent, fold their
    // counters into the parent in index order (same as serial).
    for (const auto& child : children)
        ctx.stats() += child->stats();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        n_censored += lane_censored[lane];
        n_retried += lane_retried[lane];
    }
    if (stats != nullptr) {
        stats->lanes += lanes;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            stats->cell_builds += lane_builds[lane];
            stats->model_retargets += lane_retargets[lane];
        }
    }
    result.n_censored = n_censored;
    result.n_retried = n_retried;
    result.summary = summarize(result.samples);
    return result;
}

McResult run_monte_carlo_batched(const spice::SimContext& ctx,
                                 const sram::CellConfig& base_config,
                                 const TfetVariationSampler& sampler,
                                 std::size_t n, std::uint64_t seed,
                                 const CellMetric& metric,
                                 std::size_t threads, const McPolicy& policy,
                                 BatchStats* stats) {
    TFET_EXPECTS(n >= 1);
    // Identical up-front draw stream and nominal warm-start solve as the
    // serial engine, so the two are sample-for-sample comparable.
    std::vector<TfetVariationSampler::Draw> draws;
    draws.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        draws.push_back(sampler.sample(rng));
    const la::Vector nominal_seed = nominal_hold_seed(ctx, base_config);

    BatchOptions options;
    options.threads = threads;
    options.policy = policy;
    return run_sample_block(ctx, base_config, draws, metric, nominal_seed,
                            options, stats);
}

} // namespace tfetsram::mc
