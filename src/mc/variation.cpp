#include "mc/variation.hpp"

#include <algorithm>
#include <cmath>

#include "device/table_builder.hpp"

namespace tfetsram::mc {

TfetVariationSampler::TfetVariationSampler(const VariationSpec& spec)
    : spec_(spec) {
    TFET_EXPECTS(spec.tox_bound_frac > 0.0 && spec.tox_bound_frac < 0.5);
    TFET_EXPECTS(spec.tox_sigma_frac >= 0.0);
    nominal_mosfets_.nmos = device::make_nmos();
    nominal_mosfets_.pmos = device::make_pmos();
}

TfetVariationSampler::Draw TfetVariationSampler::sample(Rng& rng) const {
    const double nominal = spec_.base.tox_nom;
    return draw_at_tox(rng.truncated_normal(nominal,
                                            spec_.tox_sigma_frac * nominal,
                                            spec_.tox_bound_frac * nominal));
}

TfetVariationSampler::Draw TfetVariationSampler::sample_at(double u) const {
    TFET_EXPECTS(std::isfinite(u));
    const double nominal = spec_.base.tox_nom;
    return draw_at_tox(
        std::max(nominal * (1.0 + spec_.tox_sigma_frac * u), 0.05 * nominal));
}

TfetVariationSampler::Draw TfetVariationSampler::draw_at_tox(
    double tox) const {
    device::TfetParams p = spec_.base;
    p.tox = tox;

    Draw draw;
    draw.tox = tox;
    draw.models.ntfet = device::make_ntfet(p);
    draw.models.ptfet = device::make_ptfet(p);
    if (spec_.tabulated) {
        draw.models.ntfet =
            device::build_table(*draw.models.ntfet, spec_.table_spec);
        draw.models.ptfet =
            device::build_table(*draw.models.ptfet, spec_.table_spec);
    }
    draw.models.nmos = nominal_mosfets_.nmos;
    draw.models.pmos = nominal_mosfets_.pmos;
    return draw;
}

} // namespace tfetsram::mc
