#pragma once
// SRAM array builder and functional driver: an R x C grid of the paper's
// cells with shared per-column bitline pairs, per-row wordlines, and
// per-column segmented virtual-ground rails (the architecture the paper
// cites, [7], to handle its small-beta drawbacks). This is where the
// half-select discussion becomes concrete: a write to one column
// read-disturbs every other cell on the asserted row; lowering the
// *unselected* columns' virtual grounds (the GND-lowering read assist)
// protects them, while the written column's ground stays at its write
// level.
//
// The driver is stateful: initialize() establishes a DC hold state, and
// each write()/read() runs a transient from the current state, leaving
// the array in the settled aftermath — so sequences of operations compose
// like they would on silicon.

#include <optional>
#include <string>
#include <vector>

#include "spice/solver_info.hpp"
#include "sram/assist.hpp"
#include "sram/cell.hpp"

namespace tfetsram::array {

/// Array shape and cell/assist configuration.
struct ArrayConfig {
    std::size_t rows = 4;
    std::size_t cols = 2;
    sram::CellConfig cell;        ///< per-cell parameters (6T topologies)
    double c_bitline_per_row = 2e-15; ///< bitline wire+junction cap per row [F]
    sram::Assist read_assist = sram::Assist::kNone;  ///< row-applied RA
    sram::Assist write_assist = sram::Assist::kNone; ///< row-applied WA
    double assist_fraction = sram::kDefaultAssistFraction;
    double write_pulse = 400e-12;   ///< wordline assertion for writes [s]
    double read_duration = 400e-12; ///< wordline assertion for reads [s]
    double sense_margin = 0.05;     ///< differential treated as a valid read [V]
};

/// Outcome of one array operation.
struct OpResult {
    bool ok = false;
    std::string message;
    double duration = 0.0; ///< simulated time [s]
};

/// Outcome of a read access.
struct ReadResult {
    bool ok = false;
    bool value = false;
    double differential = 0.0; ///< BL - BLB swing at sense time [V]
    std::string message;
};

/// Which linear kernel this array's circuit was routed to and how big the
/// system is — recorded per point by bench/array_scaling (docs/SOLVER.md).
/// The shared definition lives in spice/solver_info.hpp so the mixed-level
/// engine can report the same structure per active partition.
using SolverInfo = spice::SolverInfo;

/// Validate an ArrayConfig before any MNA system is assembled from it.
/// Throws spice::SolveException with SolveErrorCode::kInvalidConfig on
/// degenerate shapes (rows = 0 or cols = 0), non-finite or negative
/// per-row bitline capacitance, a non-positive supply, or non-positive
/// operation windows — each of which would otherwise produce a malformed
/// (or empty) MNA system with a far less actionable failure downstream.
void validate_config(const ArrayConfig& config);

class SramArray {
public:
    /// Build the array circuit. `sim` (non-owning, optional) pins every
    /// operation to an explicit simulation context — backend policy and
    /// counter attribution included; nullptr defers to the caller's
    /// ambient context at each operation.
    explicit SramArray(const ArrayConfig& config,
                       const spice::SimContext* sim = nullptr);

    [[nodiscard]] std::size_t rows() const { return config_.rows; }
    [[nodiscard]] std::size_t cols() const { return config_.cols; }
    [[nodiscard]] const ArrayConfig& config() const { return config_; }
    [[nodiscard]] spice::Circuit& circuit() { return ckt_; }

    /// Establish the DC hold state with the given data (data[r][c]).
    /// Must be called before operations.
    [[nodiscard]] bool initialize(
        const std::vector<std::vector<bool>>& data);

    /// Write `value` into (row, col). Unselected columns keep their
    /// bitlines clamped at VDD, so their row-mates experience the
    /// half-select disturb.
    OpResult write(std::size_t row, std::size_t col, bool value);

    /// Read (row, col) with floating precharged bitlines on the target
    /// column; returns the sensed value and differential swing.
    ReadResult read(std::size_t row, std::size_t col);

    /// Stored value judged from the current state. Requires initialize().
    [[nodiscard]] bool stored(std::size_t row, std::size_t col) const;

    /// Storage-node separation |v(q) - v(qb)| of a cell (health check).
    [[nodiscard]] double separation(std::size_t row, std::size_t col) const;

    /// Linear-kernel routing of this array's circuit. Meaningful after the
    /// first solve (initialize()); before that it reports the selection
    /// the current policy would make, with zero nnz.
    [[nodiscard]] SolverInfo solver_info();

private:
    struct RowHandles {
        spice::NodeId wl_node = 0;
        spice::VoltageSource* wl = nullptr;
    };
    struct ColHandles {
        spice::NodeId bl = 0;
        spice::NodeId blb = 0;
        spice::NodeId bl_drv = 0;  ///< precharge driver behind sw_bl
        spice::NodeId blb_drv = 0; ///< precharge driver behind sw_blb
        spice::NodeId vss = 0; ///< segmented virtual ground of this column
        spice::VoltageSource* v_bl = nullptr;
        spice::VoltageSource* v_blb = nullptr;
        spice::VoltageSource* v_vss = nullptr;
        spice::TimedSwitch* sw_bl = nullptr;
        spice::TimedSwitch* sw_blb = nullptr;
    };
    struct CellNodes {
        spice::NodeId q = 0;
        spice::NodeId qb = 0;
    };

    void quiesce(); ///< reset all sources to hold levels
    [[nodiscard]] const CellNodes& at(std::size_t row, std::size_t col) const;
    [[nodiscard]] bool run(double t_end, std::string* message);

    ArrayConfig config_;
    const spice::SimContext* sim_ = nullptr;
    spice::Circuit ckt_;
    spice::NodeId vdd_node_ = 0;
    std::vector<RowHandles> row_handles_;
    std::vector<ColHandles> col_handles_;
    std::vector<CellNodes> cells_; // row-major
    la::Vector state_;
    bool initialized_ = false;
};

} // namespace tfetsram::array
