#include "array/array.hpp"

#include <cmath>

#include "sram/operations.hpp"
#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram::array {

namespace {

using spice::Waveform;

constexpr double kSettle = 50e-12;
constexpr double kAssistLead = 500e-12;
constexpr double kAssistEdge = 10e-12;
constexpr double kWlEdge = 5e-12;
constexpr double kPost = 400e-12;

/// Base level until t_on, ramp to active, hold until t_off, ramp back.
Waveform excursion(double base, double active, double t_on, double t_off,
                   double edge) {
    if (base == active)
        return Waveform::dc(base);
    return Waveform::pwl({{t_on, base},
                          {t_on + edge, active},
                          {t_off, active},
                          {t_off + edge, base}});
}

bool wordline_active_low(const sram::CellConfig& cell) {
    return cell.kind == sram::CellKind::kTfet6T &&
           sram::access_is_ptype(cell.access);
}

} // namespace

void validate_config(const ArrayConfig& config) {
    auto reject = [](const std::string& what) {
        spice::SolveError err;
        err.code = spice::SolveErrorCode::kInvalidConfig;
        err.message = "ArrayConfig: " + what;
        throw spice::SolveException(std::move(err));
    };
    if (config.rows == 0 || config.cols == 0)
        reject("degenerate shape " + std::to_string(config.rows) + "x" +
               std::to_string(config.cols) +
               " (rows and cols must both be >= 1)");
    if (!std::isfinite(config.c_bitline_per_row) ||
        config.c_bitline_per_row <= 0.0)
        reject("c_bitline_per_row must be finite and > 0 (got " +
               std::to_string(config.c_bitline_per_row) +
               "); it is stamped per row into each column's lumped "
               "bitline capacitor");
    if (!std::isfinite(config.cell.vdd) || config.cell.vdd <= 0.0)
        reject("cell.vdd must be finite and > 0");
    if (!(config.write_pulse > 0.0) || !(config.read_duration > 0.0))
        reject("write_pulse and read_duration must be > 0");
    if (!std::isfinite(config.sense_margin) || config.sense_margin < 0.0)
        reject("sense_margin must be finite and >= 0");
}

SramArray::SramArray(const ArrayConfig& config, const spice::SimContext* sim)
    : config_(config), sim_(sim) {
    validate_config(config);
    TFET_EXPECTS(config.cell.kind == sram::CellKind::kCmos6T ||
                 config.cell.kind == sram::CellKind::kTfet6T);

    const double vdd = config_.cell.vdd;
    vdd_node_ = ckt_.add_node("vdd");
    ckt_.add_vsource("Vvdd", vdd_node_, spice::kGround, Waveform::dc(vdd));

    col_handles_.resize(config_.cols);
    for (std::size_t c = 0; c < config_.cols; ++c) {
        ColHandles& col = col_handles_[c];
        const std::string id = std::to_string(c);
        col.bl = ckt_.add_node("bl" + id);
        col.blb = ckt_.add_node("blb" + id);
        const spice::NodeId bld = ckt_.add_node("bl" + id + "_drv");
        const spice::NodeId blbd = ckt_.add_node("blb" + id + "_drv");
        col.bl_drv = bld;
        col.blb_drv = blbd;
        col.v_bl = &ckt_.add_vsource("Vbl" + id, bld, spice::kGround,
                                     Waveform::dc(vdd));
        col.v_blb = &ckt_.add_vsource("Vblb" + id, blbd, spice::kGround,
                                      Waveform::dc(vdd));
        col.sw_bl = &ckt_.add_switch("SWbl" + id, bld, col.bl,
                                     config_.cell.r_precharge, 1e12,
                                     Waveform::dc(1.0));
        col.sw_blb = &ckt_.add_switch("SWblb" + id, blbd, col.blb,
                                      config_.cell.r_precharge, 1e12,
                                      Waveform::dc(1.0));
        const double c_bl =
            config_.c_bitline_per_row * static_cast<double>(config_.rows);
        ckt_.add_capacitor("Cbl" + id, col.bl, spice::kGround, c_bl);
        ckt_.add_capacitor("Cblb" + id, col.blb, spice::kGround, c_bl);
        col.vss = ckt_.add_node("vss" + id);
        col.v_vss = &ckt_.add_vsource("Vvss" + id, col.vss, spice::kGround,
                                      Waveform::dc(0.0));
    }

    const bool active_low = wordline_active_low(config_.cell);
    row_handles_.resize(config_.rows);
    cells_.resize(config_.rows * config_.cols);
    for (std::size_t r = 0; r < config_.rows; ++r) {
        RowHandles& row = row_handles_[r];
        const std::string rid = std::to_string(r);
        const spice::NodeId wl = ckt_.add_node("wl" + rid);
        row.wl_node = wl;
        row.wl = &ckt_.add_vsource("Vwl" + rid, wl, spice::kGround,
                                   Waveform::dc(active_low ? vdd : 0.0));
        for (std::size_t c = 0; c < config_.cols; ++c) {
            CellNodes& cell = cells_[r * config_.cols + c];
            const std::string cid = rid + "_" + std::to_string(c);
            cell.q = ckt_.add_node("q" + cid);
            cell.qb = ckt_.add_node("qb" + cid);
            const sram::CellPorts ports{cell.q,
                                        cell.qb,
                                        col_handles_[c].bl,
                                        col_handles_[c].blb,
                                        wl,
                                        vdd_node_,
                                        col_handles_[c].vss};
            sram::build_6t_devices(ckt_, config_.cell, ports, "x" + cid + "_");
        }
    }
    ckt_.prepare();
}

const SramArray::CellNodes& SramArray::at(std::size_t row,
                                          std::size_t col) const {
    TFET_EXPECTS(row < config_.rows && col < config_.cols);
    return cells_[row * config_.cols + col];
}

void SramArray::quiesce() {
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    for (RowHandles& row : row_handles_)
        row.wl->set_waveform(Waveform::dc(active_low ? vdd : 0.0));
    for (ColHandles& col : col_handles_) {
        col.v_bl->set_waveform(Waveform::dc(vdd));
        col.v_blb->set_waveform(Waveform::dc(vdd));
        col.v_vss->set_waveform(Waveform::dc(0.0));
        col.sw_bl->set_control(Waveform::dc(1.0));
        col.sw_blb->set_control(Waveform::dc(1.0));
    }
}

bool SramArray::initialize(const std::vector<std::vector<bool>>& data) {
    TFET_EXPECTS(data.size() == config_.rows);
    for (const auto& row : data)
        TFET_EXPECTS(row.size() == config_.cols);

    quiesce();
    const spice::ScopedContext bind(sim_);
    const spice::SolverOptions opts;
    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);

    // Every quiesced rail is known analytically — wordlines parked,
    // bitlines precharged through closed switches, virtual grounds at 0 —
    // so Newton can start from the imposed data directly instead of paying
    // a cold settling solve just to derive the same periphery.
    la::Vector guess(ckt_.num_unknowns(), 0.0);
    guess[vdd_node_ - 1] = vdd;
    for (const ColHandles& col : col_handles_) {
        guess[col.bl - 1] = vdd;
        guess[col.blb - 1] = vdd;
        guess[col.bl_drv - 1] = vdd;
        guess[col.blb_drv - 1] = vdd;
        guess[col.vss - 1] = 0.0;
    }
    for (const RowHandles& row : row_handles_)
        guess[row.wl_node - 1] = active_low ? vdd : 0.0;
    const auto impose = [&](la::Vector& g) {
        for (std::size_t r = 0; r < config_.rows; ++r) {
            for (std::size_t c = 0; c < config_.cols; ++c) {
                const CellNodes& cell = at(r, c);
                g[cell.q - 1] = data[r][c] ? vdd : 0.0;
                g[cell.qb - 1] = data[r][c] ? 0.0 : vdd;
            }
        }
    };
    impose(guess);
    spice::SolverOptions crawl = opts;
    crawl.dv_limit = 0.05;
    spice::DcResult settled = spice::solve_dc(ckt_, opts, 0.0, &guess);
    if (!settled.converged)
        settled = spice::solve_dc(ckt_, crawl, 0.0, &guess);
    if (!settled.converged) {
        // Analytic seeding failed (an exotic cell/assist combination may
        // quiesce away from the ideal rails): fall back to the historical
        // path — settle cold, impose the data on the settled state, re-solve.
        const spice::DcResult cold = spice::solve_dc(ckt_, opts);
        la::Vector from_cold =
            cold.converged ? cold.x : la::Vector(ckt_.num_unknowns(), 0.0);
        impose(from_cold);
        settled = spice::solve_dc(ckt_, opts, 0.0, &from_cold);
        if (!settled.converged)
            settled = spice::solve_dc(ckt_, crawl, 0.0, &from_cold);
        if (!settled.converged)
            return false;
    }
    state_ = std::move(settled.x);
    initialized_ = true;
    for (std::size_t r = 0; r < config_.rows; ++r)
        for (std::size_t c = 0; c < config_.cols; ++c)
            if (stored(r, c) != data[r][c])
                return false;
    return true;
}

bool SramArray::stored(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(initialized_);
    const CellNodes& cell = at(row, col);
    return spice::branch_voltage(state_, cell.q, cell.qb) > 0.0;
}

double SramArray::separation(std::size_t row, std::size_t col) const {
    TFET_EXPECTS(initialized_);
    const CellNodes& cell = at(row, col);
    return std::fabs(spice::branch_voltage(state_, cell.q, cell.qb));
}

SolverInfo SramArray::solver_info() {
    return spice::probe_solver_info(ckt_, sim_);
}

bool SramArray::run(double t_end, std::string* message) {
    const spice::ScopedContext bind(sim_);
    const spice::SolverOptions opts;
    const spice::TransientResult tr =
        spice::solve_transient(ckt_, opts, t_end, nullptr, &state_);
    if (!tr.completed) {
        if (message != nullptr)
            *message = tr.message;
        return false;
    }
    state_ = tr.state(tr.size() - 1);
    return true;
}

OpResult SramArray::write(std::size_t row, std::size_t col, bool value) {
    TFET_EXPECTS(initialized_);
    OpResult res;
    quiesce();

    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    const double wl_inactive = active_low ? vdd : 0.0;
    const sram::AssistLevels lv = sram::assist_levels(
        vdd, active_low ? 0.0 : vdd, config_.write_assist,
        config_.assist_fraction);

    const double ta_on = kSettle;
    const double wl_start = ta_on + kAssistEdge + kAssistLead;
    const double wl_fall = wl_start + kWlEdge + config_.write_pulse;
    const double wl_end = wl_fall + kWlEdge;
    const double ta_off = wl_end + 30e-12;
    const double t_end = wl_end + kPost;

    row_handles_[row].wl->set_waveform(
        excursion(wl_inactive, lv.wl_active, wl_start, wl_fall, kWlEdge));
    ColHandles& target = col_handles_[col];
    target.v_vss->set_waveform(
        excursion(0.0, lv.vss, ta_on, ta_off, kAssistEdge));
    target.v_bl->set_waveform(excursion(vdd, value ? lv.bl_high : lv.bl_low,
                                        ta_on, ta_off, kAssistEdge));
    target.v_blb->set_waveform(excursion(vdd, value ? lv.bl_low : lv.bl_high,
                                         ta_on, ta_off, kAssistEdge));
    // Unselected columns keep their bitlines clamped at VDD, so their
    // cells on this row see the half-select (pseudo-read) disturb. The
    // segmented virtual grounds let the read assist protect exactly them
    // without touching the written column.
    if (config_.read_assist != sram::Assist::kNone) {
        const sram::AssistLevels ra = sram::assist_levels(
            vdd, active_low ? 0.0 : vdd, config_.read_assist,
            config_.assist_fraction);
        for (std::size_t c = 0; c < config_.cols; ++c)
            if (c != col)
                col_handles_[c].v_vss->set_waveform(
                    excursion(0.0, ra.vss, ta_on, ta_off, kAssistEdge));
    }

    if (!run(t_end, &res.message))
        return res;
    res.duration = t_end;
    res.ok = stored(row, col) == value;
    if (!res.ok)
        res.message = "write did not flip the cell";
    return res;
}

ReadResult SramArray::read(std::size_t row, std::size_t col) {
    TFET_EXPECTS(initialized_);
    ReadResult res;
    quiesce();

    const double vdd = config_.cell.vdd;
    const bool active_low = wordline_active_low(config_.cell);
    const double wl_inactive = active_low ? vdd : 0.0;
    const sram::AssistLevels lv =
        sram::assist_levels(vdd, active_low ? 0.0 : vdd, config_.read_assist,
                            config_.assist_fraction);

    const double ta_on = kSettle;
    const double wl_start = ta_on + kAssistEdge + kAssistLead;
    const double wl_fall = wl_start + kWlEdge + config_.read_duration;
    const double wl_end = wl_fall + kWlEdge;
    const double ta_off = wl_end + 30e-12;
    const double t_end = wl_end + kPost;

    row_handles_[row].wl->set_waveform(
        excursion(wl_inactive, lv.wl_active, wl_start, wl_fall, kWlEdge));
    // During a read every column on the asserted row is disturbed, so the
    // read assist goes on all segmented grounds.
    for (ColHandles& ch : col_handles_)
        ch.v_vss->set_waveform(
            excursion(0.0, lv.vss, ta_on, ta_off, kAssistEdge));
    ColHandles& target = col_handles_[col];
    target.v_bl->set_waveform(
        excursion(vdd, lv.bl_high, ta_on, ta_off, kAssistEdge));
    target.v_blb->set_waveform(
        excursion(vdd, lv.bl_high, ta_on, ta_off, kAssistEdge));
    // Float the target column's bitlines just before the wordline asserts.
    const Waveform open = Waveform::pwl(
        {{wl_start - 4e-12, 1.0}, {wl_start - 2e-12, 0.0}});
    target.sw_bl->set_control(open);
    target.sw_blb->set_control(open);

    if (!run(t_end, &res.message))
        return res;

    // Sense the differential at the end of the access window. The state_
    // vector holds the settled aftermath, so sample via a fresh transient
    // record? Not needed: sample the stored value consistency instead.
    const double dbl = spice::branch_voltage(state_, target.bl, target.blb);
    res.differential = dbl;
    res.value = dbl > 0.0;
    res.ok = std::fabs(dbl) >= config_.sense_margin;
    if (!res.ok)
        res.message = "differential below sense margin";
    return res;
}

} // namespace tfetsram::array
