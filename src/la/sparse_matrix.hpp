#pragma once
// Sparse matrix for array-scale MNA systems. The lifecycle mirrors how the
// circuit solver uses it: a *pattern* phase registers every position a
// device stamp can ever touch (triplets, duplicates collapse), a one-shot
// finalize() compresses them into CSR, and the *numeric* phase then runs
// per Newton iterate — set_zero() + add() into the fixed pattern, with no
// allocation and no pattern changes. The dense Matrix in la/matrix.hpp
// remains the kernel of choice below ~64 unknowns (single cells); this type
// is what makes rows x cols arrays tractable (see docs/SOLVER.md).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "la/matrix.hpp"

namespace tfetsram::la {

/// Compressed-sparse-row matrix of doubles with a frozen pattern.
class SparseMatrix {
public:
    SparseMatrix() = default;
    SparseMatrix(std::size_t rows, std::size_t cols) { reset(rows, cols); }

    /// Drop pattern and values; back to the pattern-building phase.
    void reset(std::size_t rows, std::size_t cols);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    /// Stored entries. Only meaningful after finalize_pattern().
    [[nodiscard]] std::size_t nnz() const { return col_idx_.size(); }

    /// Register position (r, c) in the pattern (pattern phase only).
    /// Duplicate registrations collapse into one stored entry.
    void reserve_entry(std::size_t r, std::size_t c);

    /// Pre-size the raw triplet store for `count` reserve_entry calls
    /// (pattern phase only; purely an allocation hint).
    void reserve_triplets(std::size_t count) { triplets_.reserve(count); }

    /// Compress the registered triplets into CSR (sorted, deduplicated)
    /// and zero all values. Idempotent only via reset().
    void finalize_pattern();

    [[nodiscard]] bool finalized() const { return finalized_; }

    /// Zero every stored value; the pattern is untouched.
    void set_zero();

    /// Accumulate v into entry (r, c). The entry must be in the pattern —
    /// stamping outside it is a contract violation (the symbolic pass in
    /// spice/mna.cpp missed a device position).
    void add(std::size_t r, std::size_t c, double v) { ref(r, c) += v; }

    /// Mutable reference to a stored entry (must exist in the pattern).
    [[nodiscard]] double& ref(std::size_t r, std::size_t c);

    /// Value-array index of stored entry (r, c) — the slot stays valid
    /// until the next finalize_pattern(). Lets repeated writers (the
    /// stamp-replay plan in spice::Stamper) resolve the position search
    /// once and reuse the address.
    [[nodiscard]] std::size_t slot_of(std::size_t r, std::size_t c);

    /// Mutable reference to a stored entry by slot (from slot_of).
    [[nodiscard]] double& val_at(std::size_t slot) {
        TFET_EXPECTS(finalized_ && slot < val_.size());
        return val_[slot];
    }

    /// Monotone counter bumped by every finalize_pattern(); consumers
    /// caching slots can detect that their addresses went stale.
    [[nodiscard]] std::uint64_t pattern_generation() const {
        return generation_;
    }

    /// Value at (r, c); 0.0 for positions outside the pattern.
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// y = A * x, reusing y's storage.
    void multiply_into(const Vector& x, Vector& y) const;
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// Dense copy (tests and diagnostics; O(rows*cols) storage).
    [[nodiscard]] Matrix to_dense() const;

    /// Finalized sparse view of a dense matrix: one entry per nonzero.
    [[nodiscard]] static SparseMatrix from_dense(const Matrix& m);

    // Raw CSR views for kernels (SparseLu, residual evaluation).
    [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
        return row_ptr_;
    }
    [[nodiscard]] const std::vector<std::size_t>& col_idx() const {
        return col_idx_;
    }
    [[nodiscard]] const std::vector<double>& values() const { return val_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    bool finalized_ = false;
    std::uint64_t generation_ = 0;
    std::vector<std::pair<std::size_t, std::size_t>> triplets_;
    std::vector<std::size_t> row_ptr_; ///< size rows_+1 once finalized
    std::vector<std::size_t> col_idx_; ///< sorted within each row
    std::vector<double> val_;
};

} // namespace tfetsram::la
