#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace tfetsram::la {

void Matrix::set_zero() {
    std::fill(data_.begin(), data_.end(), 0.0);
}

Vector Matrix::multiply(const Vector& x) const {
    TFET_EXPECTS(x.size() == cols_);
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double norm2(const Vector& v) {
    double acc = 0.0;
    for (double x : v)
        acc += x * x;
    return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

Vector subtract(const Vector& a, const Vector& b) {
    TFET_EXPECTS(a.size() == b.size());
    Vector r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] - b[i];
    return r;
}

} // namespace tfetsram::la
