#include "la/lu.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace tfetsram::la {

std::optional<LuFactorization> LuFactorization::factor(Matrix a,
                                                       double pivot_tol) {
    TFET_EXPECTS(a.rows() == a.cols());
    const std::size_t n = a.rows();
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude entry in column k.
        std::size_t pivot_row = k;
        double pivot_mag = std::fabs(a(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::fabs(a(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag < pivot_tol)
            return std::nullopt;
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(k, c), a(pivot_row, c));
            std::swap(perm[k], perm[pivot_row]);
        }
        const double inv_pivot = 1.0 / a(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = a(r, k) * inv_pivot;
            a(r, k) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                a(r, c) -= factor * a(k, c);
        }
    }
    return LuFactorization(std::move(a), std::move(perm));
}

Vector LuFactorization::solve(const Vector& b) const {
    const std::size_t n = lu_.rows();
    TFET_EXPECTS(b.size() == n);

    // Forward substitution on the permuted RHS (L has unit diagonal).
    Vector y(n);
    for (std::size_t r = 0; r < n; ++r) {
        double acc = b[perm_[r]];
        for (std::size_t c = 0; c < r; ++c)
            acc -= lu_(r, c) * y[c];
        y[r] = acc;
    }
    // Back substitution.
    Vector x(n);
    for (std::size_t i = n; i-- > 0;) {
        double acc = y[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= lu_(i, c) * x[c];
        x[i] = acc / lu_(i, i);
    }
    return x;
}

double LuFactorization::pivot_spread_log10() const {
    const std::size_t n = lu_.rows();
    double lo = std::fabs(lu_(0, 0));
    double hi = lo;
    for (std::size_t i = 1; i < n; ++i) {
        const double p = std::fabs(lu_(i, i));
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    if (lo == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::log10(hi / lo);
}

std::optional<Vector> solve_linear(Matrix a, const Vector& b) {
    auto lu = LuFactorization::factor(std::move(a));
    if (!lu)
        return std::nullopt;
    return lu->solve(b);
}

} // namespace tfetsram::la
