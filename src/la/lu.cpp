#include "la/lu.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace tfetsram::la {

bool LuFactorization::eliminate(double pivot_tol) {
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), 0);

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude entry in column k.
        std::size_t pivot_row = k;
        double pivot_mag = std::fabs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::fabs(lu_(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag < pivot_tol)
            return false;
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(pivot_row, c));
            std::swap(perm_[k], perm_[pivot_row]);
        }
        const double inv_pivot = 1.0 / lu_(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu_(r, k) * inv_pivot;
            lu_(r, k) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu_(r, c) -= factor * lu_(k, c);
        }
    }
    return true;
}

std::optional<LuFactorization> LuFactorization::factor(Matrix a,
                                                       double pivot_tol) {
    TFET_EXPECTS(a.rows() == a.cols());
    LuFactorization f;
    f.lu_ = std::move(a);
    if (!f.eliminate(pivot_tol))
        return std::nullopt;
    return f;
}

bool LuFactorization::factor_in_place(const Matrix& a, double pivot_tol) {
    TFET_EXPECTS(a.rows() == a.cols());
    lu_ = a; // copy-assign reuses the existing storage when sizes match
    return eliminate(pivot_tol);
}

void LuFactorization::solve_into(const Vector& b, Vector& x) const {
    const std::size_t n = lu_.rows();
    TFET_EXPECTS(b.size() == n);
    TFET_EXPECTS(&b != &x);
    x.resize(n);

    // Forward substitution on the permuted RHS (L has unit diagonal),
    // accumulating y directly in x.
    for (std::size_t r = 0; r < n; ++r) {
        double acc = b[perm_[r]];
        for (std::size_t c = 0; c < r; ++c)
            acc -= lu_(r, c) * x[c];
        x[r] = acc;
    }
    // Back substitution in place.
    for (std::size_t i = n; i-- > 0;) {
        double acc = x[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= lu_(i, c) * x[c];
        x[i] = acc / lu_(i, i);
    }
}

Vector LuFactorization::solve(const Vector& b) const {
    Vector x;
    solve_into(b, x);
    return x;
}

double LuFactorization::pivot_spread_log10() const {
    const std::size_t n = lu_.rows();
    double lo = std::fabs(lu_(0, 0));
    double hi = lo;
    for (std::size_t i = 1; i < n; ++i) {
        const double p = std::fabs(lu_(i, i));
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    if (lo == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::log10(hi / lo);
}

std::optional<Vector> solve_linear(Matrix a, const Vector& b) {
    auto lu = LuFactorization::factor(std::move(a));
    if (!lu)
        return std::nullopt;
    return lu->solve(b);
}

} // namespace tfetsram::la
