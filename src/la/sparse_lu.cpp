#include "la/sparse_lu.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace tfetsram::la {

namespace {

/// Diagonal-preference factor for threshold pivoting: the structural
/// diagonal is kept whenever |a_diag| >= kDiagPreference * |a_max| in its
/// column, trading a bounded element-growth factor for the fill pattern
/// the fill-reducing ordering planned.
constexpr double kDiagPreference = 0.1;

/// Element-growth bound for a threshold-pivoted factor. Growth beyond this
/// means the diagonal preference accepted pivots that amplified roundoff
/// past what an iterative-refinement-free solve can absorb; the factor is
/// redone with pure partial pivoting (growth then bounded by 2^depth of
/// the elimination, in practice tiny for MNA systems).
constexpr double kGrowthLimit = 1e10;

/// Element-growth bound for the static-pivot sweep — tighter than the
/// threshold bound because the sweep performs no pivot search at all, so
/// growth is the only signal that the reused sequence went stale.
constexpr double kStaticGrowthLimit = 1e8;

/// A reused pivot must stay at least this fraction of its column's
/// magnitude. Newton drifts conductances smoothly, so a healthy reused
/// pivot sits near the threshold-pivoting ratio that chose it (>= 0.1);
/// an order-of-magnitude slide past that means the numerics moved enough
/// to re-pivot.
constexpr double kStaticPivotFloor = 1e-3;

/// "No node" sentinel for the ordering algorithms' intrusive lists.
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

} // namespace

// ------------------------------------------------------ minimum degree

std::vector<std::size_t> minimum_degree_order(const SparseMatrix& a) {
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == a.cols());
    const std::size_t n = a.rows();

    // Adjacency of the symmetrized pattern A + A^T, self-loops dropped.
    std::vector<std::vector<std::size_t>> adj(n);
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::size_t c = ci[k];
            if (c == r)
                continue;
            adj[r].push_back(c);
            adj[c].push_back(r);
        }
    }
    for (auto& nb : adj) {
        std::sort(nb.begin(), nb.end());
        nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<unsigned char> alive(n, 1);
    std::vector<unsigned char> mark(n, 0);
    std::vector<std::size_t> nb;     // live neighbours of the eliminated node
    std::vector<std::size_t> merged; // rebuilt adjacency scratch

    constexpr std::size_t knone = static_cast<std::size_t>(-1);
    for (std::size_t step = 0; step < n; ++step) {
        // Greedy pick: smallest live degree, lowest index on ties (the
        // scan keeps the ordering deterministic across platforms).
        std::size_t best = knone;
        std::size_t best_deg = knone;
        for (std::size_t v = 0; v < n; ++v) {
            if (!alive[v])
                continue;
            if (adj[v].size() < best_deg) {
                best_deg = adj[v].size();
                best = v;
            }
        }
        const std::size_t u = best;
        order.push_back(u);
        alive[u] = 0;

        nb.clear();
        for (std::size_t v : adj[u])
            if (alive[v])
                nb.push_back(v);

        // Eliminating u turns its neighbourhood into a clique.
        for (const std::size_t v : nb) {
            merged.clear();
            for (const std::size_t w : adj[v]) {
                if (!alive[w] || w == v || mark[w])
                    continue;
                mark[w] = 1;
                merged.push_back(w);
            }
            for (const std::size_t w : nb) {
                if (w == v || mark[w])
                    continue;
                mark[w] = 1;
                merged.push_back(w);
            }
            adj[v].assign(merged.begin(), merged.end());
            for (const std::size_t w : merged)
                mark[w] = 0;
        }
        adj[u].clear();
        adj[u].shrink_to_fit();
    }
    return order;
}

// ------------------------------------------- approximate minimum degree

std::vector<std::size_t> amd_order(const SparseMatrix& a) {
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == a.cols());
    const std::size_t n = a.rows();
    std::vector<std::size_t> order;
    order.reserve(n);
    if (n == 0)
        return order;

    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();

    // Quotient-graph state, all of it in flat index arenas (one backing
    // vector per list family instead of a vector-of-vectors): eliminating
    // variable p turns it into element p whose member list le[p] stands in
    // for the clique the greedy algorithm would have materialized;
    // elements wholly covered by a new element are absorbed, so list
    // lengths stay near the original pattern's instead of growing toward
    // the filled clique size.
    //
    // A_i (variable adjacency): counting-sorted symmetrized pattern.
    std::vector<std::size_t> astart(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k)
            if (ci[k] != r) {
                ++astart[r + 1];
                ++astart[ci[k] + 1];
            }
    for (std::size_t v = 0; v < n; ++v)
        astart[v + 1] += astart[v];
    std::vector<std::size_t> apool(astart[n]);
    std::vector<std::size_t> alen(n, 0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::size_t c = ci[k];
            if (c == r)
                continue;
            apool[astart[r] + alen[r]++] = c;
            apool[astart[c] + alen[c]++] = r;
        }
    for (std::size_t v = 0; v < n; ++v) {
        const auto first =
            apool.begin() + static_cast<std::ptrdiff_t>(astart[v]);
        const auto last = first + static_cast<std::ptrdiff_t>(alen[v]);
        std::sort(first, last);
        alen[v] = static_cast<std::size_t>(std::unique(first, last) - first);
    }

    // E_i (adjacent elements): grow-by-one arena with doubling relocation
    // to the pool tail (an entry joins one element list per elimination).
    std::vector<std::size_t> epool;
    epool.reserve(4 * n);
    std::vector<std::size_t> estart(n, 0);
    std::vector<std::size_t> elen(n, 0);
    std::vector<std::size_t> ecap(n, 0);
    const auto elist_push = [&](std::size_t v, std::size_t e) {
        if (elen[v] == ecap[v]) {
            const std::size_t ncap = ecap[v] == 0 ? 4 : 2 * ecap[v];
            const std::size_t ns = epool.size();
            epool.resize(ns + ncap);
            for (std::size_t k = 0; k < elen[v]; ++k)
                epool[ns + k] = epool[estart[v] + k];
            estart[v] = ns;
            ecap[v] = ncap;
        }
        epool[estart[v] + elen[v]++] = e;
    };

    // le (element member lists): written once per elimination at the pool
    // tail, truncated to empty on absorption.
    std::vector<std::size_t> lpool;
    lpool.reserve(4 * n);
    std::vector<std::size_t> lstart(n, 0);
    std::vector<std::size_t> llen(n, 0);

    // Bucketed degree lists: head per degree plus intrusive prev/next.
    // Every operation below is index-arithmetic on deterministic inputs,
    // so the pick sequence (and the order) is platform-independent.
    std::vector<std::size_t> head(n, kNone);
    std::vector<std::size_t> nxt(n, kNone);
    std::vector<std::size_t> prv(n, kNone);
    std::vector<std::size_t> degree(n, 0);
    const auto bucket_insert = [&](std::size_t v, std::size_t d) {
        degree[v] = d;
        nxt[v] = head[d];
        prv[v] = kNone;
        if (head[d] != kNone)
            prv[head[d]] = v;
        head[d] = v;
    };
    const auto bucket_remove = [&](std::size_t v) {
        if (prv[v] != kNone)
            nxt[prv[v]] = nxt[v];
        else
            head[degree[v]] = nxt[v];
        if (nxt[v] != kNone)
            prv[nxt[v]] = prv[v];
    };
    for (std::size_t v = 0; v < n; ++v)
        bucket_insert(v, alen[v]);

    std::vector<unsigned char> var_alive(n, 1);
    std::vector<unsigned char> elem_alive(n, 0);
    std::vector<unsigned char> in_lp(n, 0);
    // w[e] = |le[e] \ Lp| per elimination (the Amestoy/Davis/Duff
    // decrement trick); wstamp validates w against the current pivot.
    std::vector<std::size_t> w(n, 0);
    std::vector<std::size_t> wstamp(n, 0);
    std::size_t stamp = 0;
    std::vector<std::size_t> lp; // members of the new element

    std::size_t mindeg = 0;
    for (std::size_t step = 0; step < n; ++step) {
        while (head[mindeg] == kNone)
            ++mindeg;
        const std::size_t p = head[mindeg];
        bucket_remove(p);
        order.push_back(p);
        var_alive[p] = 0;

        // Lp: live variables adjacent to p directly or through any of its
        // elements. Those elements are then absorbed into the new one.
        lp.clear();
        for (std::size_t k = 0; k < alen[p]; ++k) {
            const std::size_t v = apool[astart[p] + k];
            if (var_alive[v] && !in_lp[v]) {
                in_lp[v] = 1;
                lp.push_back(v);
            }
        }
        for (std::size_t k = 0; k < elen[p]; ++k) {
            const std::size_t e = epool[estart[p] + k];
            if (!elem_alive[e])
                continue;
            for (std::size_t j = 0; j < llen[e]; ++j) {
                const std::size_t v = lpool[lstart[e] + j];
                if (var_alive[v] && !in_lp[v]) {
                    in_lp[v] = 1;
                    lp.push_back(v);
                }
            }
            elem_alive[e] = 0;
            llen[e] = 0;
        }
        std::sort(lp.begin(), lp.end()); // canonical member order
        lstart[p] = lpool.size();
        lpool.insert(lpool.end(), lp.begin(), lp.end());
        llen[p] = lp.size();
        elem_alive[p] = 1;
        alen[p] = 0;
        elen[p] = 0;

        // First pass: w[e] = |le[e] \ Lp| for every element touching Lp.
        // le lists may carry long-dead variables (they are only pruned
        // when rebuilt), so w can overestimate — that only makes the
        // *approximate* degree conservative, never wrong.
        ++stamp;
        for (const std::size_t i : lp) {
            for (std::size_t k = 0; k < elen[i]; ++k) {
                const std::size_t e = epool[estart[i] + k];
                if (!elem_alive[e])
                    continue;
                if (wstamp[e] != stamp) {
                    wstamp[e] = stamp;
                    w[e] = llen[e];
                }
                --w[e];
            }
        }

        // Second pass: prune each member's lists against the new element
        // and recompute its approximate degree
        //   d_i = |A_i \ Lp| + (|Lp| - 1) + sum_e |le[e] \ Lp|.
        for (const std::size_t i : lp) {
            std::size_t out = 0;
            for (std::size_t k = 0; k < alen[i]; ++k) {
                const std::size_t v = apool[astart[i] + k];
                if (var_alive[v] && !in_lp[v])
                    apool[astart[i] + out++] = v;
            }
            alen[i] = out;

            std::size_t out2 = 0;
            std::size_t dsum = 0;
            for (std::size_t k = 0; k < elen[i]; ++k) {
                const std::size_t e = epool[estart[i] + k];
                if (!elem_alive[e])
                    continue;
                const std::size_t we = wstamp[e] == stamp ? w[e] : llen[e];
                if (we == 0) {
                    // le[e]'s live members all sit inside Lp: element e is
                    // covered by the new element p — absorb it.
                    elem_alive[e] = 0;
                    llen[e] = 0;
                    continue;
                }
                dsum += we;
                epool[estart[i] + out2++] = e;
            }
            elen[i] = out2;
            elist_push(i, p);

            std::size_t d = alen[i] + (lp.size() - 1) + dsum;
            if (d > n - 1)
                d = n - 1;
            bucket_remove(i);
            bucket_insert(i, d);
            if (d < mindeg)
                mindeg = d;
        }
        for (const std::size_t i : lp)
            in_lp[i] = 0;
    }
    return order;
}

// ------------------------------------------------------------- analyze

void SparseLu::analyze(const SparseMatrix& a) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> order = amd_order(a);
    const auto t1 = std::chrono::steady_clock::now();
    analyze(a, std::move(order));
    ordering_us_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
}

void SparseLu::analyze(const SparseMatrix& a, std::vector<std::size_t> order) {
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == a.cols());
    TFET_EXPECTS(order.size() == a.rows());
    n_ = a.rows();
    analyzed_ = false;
    factored_ = false;
    static_ready_ = false;
    ordering_us_ = 0;

    q_ = std::move(order);

    // CSC view of the CSR pattern: csc_val_[k] indexes a.values() so every
    // refactor gathers fresh numeric values without touching the pattern.
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const std::size_t nnz = a.nnz();
    csc_ptr_.assign(n_ + 1, 0);
    for (std::size_t k = 0; k < nnz; ++k)
        ++csc_ptr_[ci[k] + 1];
    for (std::size_t c = 0; c < n_; ++c)
        csc_ptr_[c + 1] += csc_ptr_[c];
    csc_row_.resize(nnz);
    csc_val_.resize(nnz);
    std::vector<std::size_t> next(csc_ptr_.begin(), csc_ptr_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::size_t c = ci[k];
            const std::size_t dst = next[c]++;
            csc_row_[dst] = r;
            csc_val_[dst] = k;
        }
    }

    l_ptr_.assign(n_ + 1, 0);
    u_ptr_.assign(n_ + 1, 0);
    udiag_.assign(n_, 0.0);
    pinv_.assign(n_, npos);
    p_.assign(n_, npos);
    work_x_.assign(n_, 0.0);
    mark_.assign(n_, 0);
    topo_.clear();
    topo_.reserve(n_);
    stack_.clear();
    stack_.reserve(n_);
    pstack_.clear();
    pstack_.reserve(n_);
    analyzed_ = true;
}

// ------------------------------------------------------------ refactor

bool SparseLu::refactor(const SparseMatrix& a, double pivot_tol) {
    TFET_EXPECTS(analyzed_);
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == n_ && a.cols() == n_);
    TFET_EXPECTS(a.nnz() == csc_row_.size());
    factored_ = false;
    last_ = {};

    double growth = 0.0;
    if (static_enabled_ && static_ready_) {
        if (refactor_static(a, pivot_tol, growth)) {
            last_.static_hit = true;
            last_.growth = growth;
            factored_ = true;
            return true;
        }
        // The reused sequence went stale (pivot decay or growth): the
        // factor arrays are dirty, rebuild them with a full pivot search.
        ++last_.fallbacks;
        static_ready_ = false;
    }

    if (!refactor_full(a, pivot_tol, kDiagPreference, growth))
        return false;
    if (growth > kGrowthLimit) {
        // The diagonal preference traded too much stability for fill:
        // redo with pure partial pivoting before trusting the solve.
        ++last_.fallbacks;
        if (!refactor_full(a, pivot_tol, /*diag_preference=*/0.0, growth))
            return false;
    }
    last_.growth = growth;

    // Every row is pivotal now; remap L's row ids to pivot steps so the
    // substitutions run in step space, and order U's columns by step so
    // the static sweep can replay them as a dependency-ordered run.
    for (std::size_t& r : l_row_)
        r = pinv_[r];
    sort_u_columns();
    static_ready_ = true;
    factored_ = true;
    return true;
}

bool SparseLu::refactor_full(const SparseMatrix& a, double pivot_tol,
                             double diag_preference, double& growth) {
    const std::vector<double>& aval = a.values();
    l_row_.clear();
    l_val_.clear();
    u_row_.clear();
    u_val_.clear();
    std::fill(pinv_.begin(), pinv_.end(), npos);
    std::fill(p_.begin(), p_.end(), npos);

    double amax = 0.0;
    for (const double v : aval)
        amax = std::max(amax, std::fabs(v));
    if (amax == 0.0)
        amax = 1.0;
    double gmax = 0.0;

    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t col = q_[j];

        // ---- symbolic: rows reachable from this column's pattern through
        // the already-built part of L (Gilbert–Peierls DFS). topo_ ends up
        // in post-order; iterating it backwards is a topological order.
        topo_.clear();
        for (std::size_t k = csc_ptr_[col]; k < csc_ptr_[col + 1]; ++k) {
            const std::size_t seed = csc_row_[k];
            if (mark_[seed])
                continue;
            stack_.clear();
            pstack_.clear();
            stack_.push_back(seed);
            pstack_.push_back(0);
            mark_[seed] = 1;
            while (!stack_.empty()) {
                const std::size_t node = stack_.back();
                const std::size_t s = pinv_[node];
                const std::size_t child_begin =
                    s == npos ? 0 : l_ptr_[s];
                const std::size_t child_end = s == npos ? 0 : l_ptr_[s + 1];
                std::size_t pos = pstack_.back();
                bool descended = false;
                while (child_begin + pos < child_end) {
                    const std::size_t child = l_row_[child_begin + pos];
                    ++pos;
                    if (!mark_[child]) {
                        pstack_.back() = pos;
                        stack_.push_back(child);
                        pstack_.push_back(0);
                        mark_[child] = 1;
                        descended = true;
                        break;
                    }
                }
                if (descended)
                    continue;
                stack_.pop_back();
                pstack_.pop_back();
                topo_.push_back(node);
            }
        }

        // ---- numeric: scatter the column, then the sparse triangular
        // solve x = L \ A(:, col) in topological order.
        for (std::size_t k = csc_ptr_[col]; k < csc_ptr_[col + 1]; ++k)
            work_x_[csc_row_[k]] = aval[csc_val_[k]];
        for (std::size_t t = topo_.size(); t-- > 0;) {
            const std::size_t node = topo_[t];
            const std::size_t s = pinv_[node];
            if (s == npos)
                continue;
            const double xj = work_x_[node];
            if (xj == 0.0)
                continue;
            for (std::size_t k = l_ptr_[s]; k < l_ptr_[s + 1]; ++k)
                work_x_[l_row_[k]] -= l_val_[k] * xj;
        }

        // ---- pivot: threshold partial pivoting over the not-yet-pivotal
        // rows, preferring the structural diagonal when it is competitive.
        std::size_t ipiv = npos;
        double max_mag = 0.0;
        for (const std::size_t node : topo_) {
            if (pinv_[node] != npos)
                continue;
            const double mag = std::fabs(work_x_[node]);
            if (mag > max_mag) {
                max_mag = mag;
                ipiv = node;
            }
        }
        if (ipiv == npos || max_mag < pivot_tol) {
            for (const std::size_t node : topo_) {
                work_x_[node] = 0.0;
                mark_[node] = 0;
            }
            return false; // structurally or numerically singular column
        }
        if (diag_preference > 0.0 && ipiv != col && pinv_[col] == npos &&
            std::fabs(work_x_[col]) >= diag_preference * max_mag)
            ipiv = col;
        const double pivot = work_x_[ipiv];

        // ---- store the column: finished rows into U, the rest into L.
        // Exact numeric zeros are stored too — the structure must be the
        // full symbolic structure of this pivot sequence so the static
        // sweep can reuse it under different values.
        for (const std::size_t node : topo_) {
            const std::size_t s = pinv_[node];
            const double xv = work_x_[node];
            const double mag = std::fabs(xv);
            if (mag > gmax)
                gmax = mag;
            if (s != npos) {
                u_row_.push_back(s);
                u_val_.push_back(xv);
            } else if (node != ipiv) {
                l_row_.push_back(node); // original row id; remapped later
                l_val_.push_back(xv / pivot);
            }
            work_x_[node] = 0.0;
            mark_[node] = 0;
        }
        udiag_[j] = pivot;
        u_ptr_[j + 1] = u_row_.size();
        l_ptr_[j + 1] = l_row_.size();
        pinv_[ipiv] = j;
        p_[j] = ipiv;
    }

    growth = gmax / amax;
    return true;
}

void SparseLu::sort_u_columns() {
    // Entries were appended in DFS post-order; the static sweep needs each
    // column ascending by pivot step (solve_into is order-insensitive).
    auto& perm = usort_scratch_;
    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t lo = u_ptr_[j];
        const std::size_t hi = u_ptr_[j + 1];
        const std::size_t len = hi - lo;
        if (len < 2)
            continue;
        const bool sorted =
            std::is_sorted(u_row_.begin() + static_cast<std::ptrdiff_t>(lo),
                           u_row_.begin() + static_cast<std::ptrdiff_t>(hi));
        if (sorted)
            continue;
        perm.resize(len);
        for (std::size_t k = 0; k < len; ++k)
            perm[k] = k;
        std::sort(perm.begin(), perm.end(),
                  [&](std::size_t x, std::size_t y) {
                      return u_row_[lo + x] < u_row_[lo + y];
                  });
        // Apply the permutation out of place via scratch copies (columns
        // are short; simplicity beats in-place cycle chasing here).
        static thread_local std::vector<std::size_t> rows_tmp;
        static thread_local std::vector<double> vals_tmp;
        rows_tmp.assign(u_row_.begin() + static_cast<std::ptrdiff_t>(lo),
                        u_row_.begin() + static_cast<std::ptrdiff_t>(hi));
        vals_tmp.assign(u_val_.begin() + static_cast<std::ptrdiff_t>(lo),
                        u_val_.begin() + static_cast<std::ptrdiff_t>(hi));
        for (std::size_t k = 0; k < len; ++k) {
            u_row_[lo + k] = rows_tmp[perm[k]];
            u_val_[lo + k] = vals_tmp[perm[k]];
        }
    }
}

bool SparseLu::refactor_static(const SparseMatrix& a, double pivot_tol,
                               double& growth) {
    // Branch-free replay of the previous factorization: same column order,
    // same pivot sequence, same L/U structure — only the numbers change.
    // Everything runs in pivot-step space (work_x_[s] is the value at
    // pivot step s), so there is no DFS, no pivot search, and no growth
    // of the factor arrays.
    const std::vector<double>& aval = a.values();
    double amax = 0.0;
    for (const double v : aval)
        amax = std::max(amax, std::fabs(v));
    if (amax == 0.0)
        amax = 1.0;
    double gmax = 0.0;

    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t col = q_[j];
        for (std::size_t k = csc_ptr_[col]; k < csc_ptr_[col + 1]; ++k)
            work_x_[pinv_[csc_row_[k]]] = aval[csc_val_[k]];

        // U part: entries ascend by pivot step, so each x[s] is final when
        // visited; apply its L-column update immediately (left-looking).
        double colmax = 0.0;
        for (std::size_t t = u_ptr_[j]; t < u_ptr_[j + 1]; ++t) {
            const std::size_t s = u_row_[t];
            const double xs = work_x_[s];
            u_val_[t] = xs;
            const double mag = std::fabs(xs);
            if (mag > colmax)
                colmax = mag;
            if (xs == 0.0)
                continue;
            for (std::size_t k = l_ptr_[s]; k < l_ptr_[s + 1]; ++k)
                work_x_[l_row_[k]] -= l_val_[k] * xs;
        }

        const double pivot = work_x_[j];
        const double pmag = std::fabs(pivot);
        if (pmag > colmax)
            colmax = pmag;
        for (std::size_t k = l_ptr_[j]; k < l_ptr_[j + 1]; ++k) {
            const double mag = std::fabs(work_x_[l_row_[k]]);
            if (mag > colmax)
                colmax = mag;
        }
        if (pmag < pivot_tol || pmag < kStaticPivotFloor * colmax) {
            // Reused pivot went stale. Clear this column's scatter (prior
            // columns already cleared theirs) and report the miss; the
            // factor arrays are dirty until the caller's full refactor.
            for (std::size_t t = u_ptr_[j]; t < u_ptr_[j + 1]; ++t)
                work_x_[u_row_[t]] = 0.0;
            work_x_[j] = 0.0;
            for (std::size_t k = l_ptr_[j]; k < l_ptr_[j + 1]; ++k)
                work_x_[l_row_[k]] = 0.0;
            return false;
        }

        udiag_[j] = pivot;
        for (std::size_t k = l_ptr_[j]; k < l_ptr_[j + 1]; ++k) {
            const std::size_t dst = l_row_[k];
            l_val_[k] = work_x_[dst] / pivot;
            work_x_[dst] = 0.0;
        }
        for (std::size_t t = u_ptr_[j]; t < u_ptr_[j + 1]; ++t)
            work_x_[u_row_[t]] = 0.0;
        work_x_[j] = 0.0;
        if (colmax > gmax)
            gmax = colmax;
        if (gmax > kStaticGrowthLimit * amax)
            return false; // growth tripped: abandon, caller re-pivots
    }
    growth = gmax / amax;
    return true;
}

// --------------------------------------------------------------- solve

void SparseLu::solve_into(const Vector& b, Vector& x) const {
    TFET_EXPECTS(factored_);
    TFET_EXPECTS(b.size() == n_);
    TFET_EXPECTS(&b != &x);

    // Forward substitution L y = P b (unit diagonal), column-oriented.
    work_y_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k)
        work_y_[k] = b[p_[k]];
    for (std::size_t k = 0; k < n_; ++k) {
        const double yk = work_y_[k];
        if (yk == 0.0)
            continue;
        for (std::size_t t = l_ptr_[k]; t < l_ptr_[k + 1]; ++t)
            work_y_[l_row_[t]] -= l_val_[t] * yk;
    }
    // Back substitution U z = y, then undo the column ordering.
    for (std::size_t k = n_; k-- > 0;) {
        const double zk = work_y_[k] / udiag_[k];
        work_y_[k] = zk;
        if (zk == 0.0)
            continue;
        for (std::size_t t = u_ptr_[k]; t < u_ptr_[k + 1]; ++t)
            work_y_[u_row_[t]] -= u_val_[t] * zk;
    }
    x.resize(n_);
    for (std::size_t k = 0; k < n_; ++k)
        x[q_[k]] = work_y_[k];
}

Vector SparseLu::solve(const Vector& b) const {
    Vector x;
    solve_into(b, x);
    return x;
}

double SparseLu::fill_ratio() const {
    if (pattern_nnz() == 0)
        return 0.0;
    return static_cast<double>(lu_nnz()) /
           static_cast<double>(pattern_nnz());
}

double SparseLu::pivot_spread_log10() const {
    TFET_EXPECTS(factored_);
    if (n_ == 0)
        return 0.0;
    double lo = std::fabs(udiag_[0]);
    double hi = lo;
    for (std::size_t i = 1; i < n_; ++i) {
        const double p = std::fabs(udiag_[i]);
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    if (lo == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::log10(hi / lo);
}

} // namespace tfetsram::la
