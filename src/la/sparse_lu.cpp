#include "la/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tfetsram::la {

namespace {

/// Diagonal-preference factor for threshold pivoting: the structural
/// diagonal is kept whenever |a_diag| >= kDiagPreference * |a_max| in its
/// column, trading a bounded element-growth factor for the fill pattern
/// the minimum-degree ordering planned.
constexpr double kDiagPreference = 0.1;

} // namespace

// ------------------------------------------------------ minimum degree

std::vector<std::size_t> minimum_degree_order(const SparseMatrix& a) {
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == a.cols());
    const std::size_t n = a.rows();

    // Adjacency of the symmetrized pattern A + A^T, self-loops dropped.
    std::vector<std::vector<std::size_t>> adj(n);
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::size_t c = ci[k];
            if (c == r)
                continue;
            adj[r].push_back(c);
            adj[c].push_back(r);
        }
    }
    for (auto& nb : adj) {
        std::sort(nb.begin(), nb.end());
        nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<unsigned char> alive(n, 1);
    std::vector<unsigned char> mark(n, 0);
    std::vector<std::size_t> nb;     // live neighbours of the eliminated node
    std::vector<std::size_t> merged; // rebuilt adjacency scratch

    constexpr std::size_t knone = static_cast<std::size_t>(-1);
    for (std::size_t step = 0; step < n; ++step) {
        // Greedy pick: smallest live degree, lowest index on ties (the
        // scan keeps the ordering deterministic across platforms).
        std::size_t best = knone;
        std::size_t best_deg = knone;
        for (std::size_t v = 0; v < n; ++v) {
            if (!alive[v])
                continue;
            if (adj[v].size() < best_deg) {
                best_deg = adj[v].size();
                best = v;
            }
        }
        const std::size_t u = best;
        order.push_back(u);
        alive[u] = 0;

        nb.clear();
        for (std::size_t v : adj[u])
            if (alive[v])
                nb.push_back(v);

        // Eliminating u turns its neighbourhood into a clique.
        for (const std::size_t v : nb) {
            merged.clear();
            for (const std::size_t w : adj[v]) {
                if (!alive[w] || w == v || mark[w])
                    continue;
                mark[w] = 1;
                merged.push_back(w);
            }
            for (const std::size_t w : nb) {
                if (w == v || mark[w])
                    continue;
                mark[w] = 1;
                merged.push_back(w);
            }
            adj[v].assign(merged.begin(), merged.end());
            for (const std::size_t w : merged)
                mark[w] = 0;
        }
        adj[u].clear();
        adj[u].shrink_to_fit();
    }
    return order;
}

// ------------------------------------------------------------- analyze

void SparseLu::analyze(const SparseMatrix& a) {
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == a.cols());
    n_ = a.rows();
    analyzed_ = false;
    factored_ = false;

    q_ = minimum_degree_order(a);

    // CSC view of the CSR pattern: csc_val_[k] indexes a.values() so every
    // refactor gathers fresh numeric values without touching the pattern.
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const std::size_t nnz = a.nnz();
    csc_ptr_.assign(n_ + 1, 0);
    for (std::size_t k = 0; k < nnz; ++k)
        ++csc_ptr_[ci[k] + 1];
    for (std::size_t c = 0; c < n_; ++c)
        csc_ptr_[c + 1] += csc_ptr_[c];
    csc_row_.resize(nnz);
    csc_val_.resize(nnz);
    std::vector<std::size_t> next(csc_ptr_.begin(), csc_ptr_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::size_t c = ci[k];
            const std::size_t dst = next[c]++;
            csc_row_[dst] = r;
            csc_val_[dst] = k;
        }
    }

    l_ptr_.assign(n_ + 1, 0);
    u_ptr_.assign(n_ + 1, 0);
    udiag_.assign(n_, 0.0);
    pinv_.assign(n_, npos);
    p_.assign(n_, npos);
    work_x_.assign(n_, 0.0);
    mark_.assign(n_, 0);
    topo_.clear();
    topo_.reserve(n_);
    stack_.clear();
    stack_.reserve(n_);
    pstack_.clear();
    pstack_.reserve(n_);
    analyzed_ = true;
}

// ------------------------------------------------------------ refactor

bool SparseLu::refactor(const SparseMatrix& a, double pivot_tol) {
    TFET_EXPECTS(analyzed_);
    TFET_EXPECTS(a.finalized());
    TFET_EXPECTS(a.rows() == n_ && a.cols() == n_);
    TFET_EXPECTS(a.nnz() == csc_row_.size());
    factored_ = false;

    const std::vector<double>& aval = a.values();
    l_row_.clear();
    l_val_.clear();
    u_row_.clear();
    u_val_.clear();
    std::fill(pinv_.begin(), pinv_.end(), npos);
    std::fill(p_.begin(), p_.end(), npos);

    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t col = q_[j];

        // ---- symbolic: rows reachable from this column's pattern through
        // the already-built part of L (Gilbert–Peierls DFS). topo_ ends up
        // in post-order; iterating it backwards is a topological order.
        topo_.clear();
        for (std::size_t k = csc_ptr_[col]; k < csc_ptr_[col + 1]; ++k) {
            const std::size_t seed = csc_row_[k];
            if (mark_[seed])
                continue;
            stack_.clear();
            pstack_.clear();
            stack_.push_back(seed);
            pstack_.push_back(0);
            mark_[seed] = 1;
            while (!stack_.empty()) {
                const std::size_t node = stack_.back();
                const std::size_t s = pinv_[node];
                const std::size_t child_begin =
                    s == npos ? 0 : l_ptr_[s];
                const std::size_t child_end = s == npos ? 0 : l_ptr_[s + 1];
                std::size_t pos = pstack_.back();
                bool descended = false;
                while (child_begin + pos < child_end) {
                    const std::size_t child = l_row_[child_begin + pos];
                    ++pos;
                    if (!mark_[child]) {
                        pstack_.back() = pos;
                        stack_.push_back(child);
                        pstack_.push_back(0);
                        mark_[child] = 1;
                        descended = true;
                        break;
                    }
                }
                if (descended)
                    continue;
                stack_.pop_back();
                pstack_.pop_back();
                topo_.push_back(node);
            }
        }

        // ---- numeric: scatter the column, then the sparse triangular
        // solve x = L \ A(:, col) in topological order.
        for (std::size_t k = csc_ptr_[col]; k < csc_ptr_[col + 1]; ++k)
            work_x_[csc_row_[k]] = aval[csc_val_[k]];
        for (std::size_t t = topo_.size(); t-- > 0;) {
            const std::size_t node = topo_[t];
            const std::size_t s = pinv_[node];
            if (s == npos)
                continue;
            const double xj = work_x_[node];
            if (xj == 0.0)
                continue;
            for (std::size_t k = l_ptr_[s]; k < l_ptr_[s + 1]; ++k)
                work_x_[l_row_[k]] -= l_val_[k] * xj;
        }

        // ---- pivot: threshold partial pivoting over the not-yet-pivotal
        // rows, preferring the structural diagonal when it is competitive.
        std::size_t ipiv = npos;
        double max_mag = 0.0;
        for (const std::size_t node : topo_) {
            if (pinv_[node] != npos)
                continue;
            const double mag = std::fabs(work_x_[node]);
            if (mag > max_mag) {
                max_mag = mag;
                ipiv = node;
            }
        }
        if (ipiv == npos || max_mag < pivot_tol) {
            for (const std::size_t node : topo_) {
                work_x_[node] = 0.0;
                mark_[node] = 0;
            }
            return false; // structurally or numerically singular column
        }
        if (ipiv != col && pinv_[col] == npos &&
            std::fabs(work_x_[col]) >= kDiagPreference * max_mag)
            ipiv = col;
        const double pivot = work_x_[ipiv];

        // ---- store the column: finished rows into U, the rest into L.
        for (const std::size_t node : topo_) {
            const std::size_t s = pinv_[node];
            if (s != npos) {
                if (work_x_[node] != 0.0) {
                    u_row_.push_back(s);
                    u_val_.push_back(work_x_[node]);
                }
            } else if (node != ipiv && work_x_[node] != 0.0) {
                l_row_.push_back(node); // original row id; remapped below
                l_val_.push_back(work_x_[node] / pivot);
            }
            work_x_[node] = 0.0;
            mark_[node] = 0;
        }
        udiag_[j] = pivot;
        u_ptr_[j + 1] = u_row_.size();
        l_ptr_[j + 1] = l_row_.size();
        pinv_[ipiv] = j;
        p_[j] = ipiv;
    }

    // Every row is pivotal now; remap L's row ids to pivot steps so the
    // substitutions run in step space.
    for (std::size_t& r : l_row_)
        r = pinv_[r];
    factored_ = true;
    return true;
}

// --------------------------------------------------------------- solve

void SparseLu::solve_into(const Vector& b, Vector& x) const {
    TFET_EXPECTS(factored_);
    TFET_EXPECTS(b.size() == n_);
    TFET_EXPECTS(&b != &x);

    // Forward substitution L y = P b (unit diagonal), column-oriented.
    work_y_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k)
        work_y_[k] = b[p_[k]];
    for (std::size_t k = 0; k < n_; ++k) {
        const double yk = work_y_[k];
        if (yk == 0.0)
            continue;
        for (std::size_t t = l_ptr_[k]; t < l_ptr_[k + 1]; ++t)
            work_y_[l_row_[t]] -= l_val_[t] * yk;
    }
    // Back substitution U z = y, then undo the column ordering.
    for (std::size_t k = n_; k-- > 0;) {
        const double zk = work_y_[k] / udiag_[k];
        work_y_[k] = zk;
        if (zk == 0.0)
            continue;
        for (std::size_t t = u_ptr_[k]; t < u_ptr_[k + 1]; ++t)
            work_y_[u_row_[t]] -= u_val_[t] * zk;
    }
    x.resize(n_);
    for (std::size_t k = 0; k < n_; ++k)
        x[q_[k]] = work_y_[k];
}

Vector SparseLu::solve(const Vector& b) const {
    Vector x;
    solve_into(b, x);
    return x;
}

double SparseLu::fill_ratio() const {
    if (pattern_nnz() == 0)
        return 0.0;
    return static_cast<double>(lu_nnz()) /
           static_cast<double>(pattern_nnz());
}

double SparseLu::pivot_spread_log10() const {
    TFET_EXPECTS(factored_);
    if (n_ == 0)
        return 0.0;
    double lo = std::fabs(udiag_[0]);
    double hi = lo;
    for (std::size_t i = 1; i < n_; ++i) {
        const double p = std::fabs(udiag_[i]);
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    if (lo == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::log10(hi / lo);
}

} // namespace tfetsram::la
