#pragma once
// LU factorization with partial pivoting — the linear kernel under every
// Newton iteration of the circuit solver.

#include <optional>

#include "la/matrix.hpp"

namespace tfetsram::la {

/// In-place LU factorization (Doolittle, partial pivoting) of a square
/// matrix, reusable across multiple right-hand sides.
class LuFactorization {
public:
    /// Empty factorization, ready for factor_in_place. Calling solve on it
    /// is a contract violation.
    LuFactorization() = default;

    /// Factor A. Returns std::nullopt if A is numerically singular
    /// (pivot magnitude below the given threshold).
    static std::optional<LuFactorization> factor(Matrix a,
                                                 double pivot_tol = 1e-300);

    /// Re-factor this object from A, reusing the existing storage — the
    /// allocation-free path the Newton inner loop takes (SolveWorkspace).
    /// Returns false if A is numerically singular; the factorization is
    /// then unusable until the next successful factor_in_place.
    bool factor_in_place(const Matrix& a, double pivot_tol = 1e-300);

    /// Solve A x = b for the factored A.
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Allocation-free solve: writes the solution into `x` (resized as
    /// needed). `x` must not alias `b`.
    void solve_into(const Vector& b, Vector& x) const;

    /// log10 of the ratio of largest to smallest pivot magnitude — a cheap
    /// conditioning indicator the Newton loop uses for diagnostics.
    [[nodiscard]] double pivot_spread_log10() const;

private:
    /// Eliminate lu_ in place with partial pivoting, recording row swaps
    /// in perm_. Returns false on a sub-threshold pivot.
    bool eliminate(double pivot_tol);

    Matrix lu_;
    std::vector<std::size_t> perm_;
};

/// One-shot convenience: solve A x = b. Returns nullopt if singular.
std::optional<Vector> solve_linear(Matrix a, const Vector& b);

} // namespace tfetsram::la
