#pragma once
// LU factorization with partial pivoting — the linear kernel under every
// Newton iteration of the circuit solver.

#include <optional>

#include "la/matrix.hpp"

namespace tfetsram::la {

/// In-place LU factorization (Doolittle, partial pivoting) of a square
/// matrix, reusable across multiple right-hand sides.
class LuFactorization {
public:
    /// Factor A. Returns std::nullopt if A is numerically singular
    /// (pivot magnitude below the given threshold).
    static std::optional<LuFactorization> factor(Matrix a,
                                                 double pivot_tol = 1e-300);

    /// Solve A x = b for the factored A.
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// log10 of the ratio of largest to smallest pivot magnitude — a cheap
    /// conditioning indicator the Newton loop uses for diagnostics.
    [[nodiscard]] double pivot_spread_log10() const;

private:
    LuFactorization(Matrix lu, std::vector<std::size_t> perm)
        : lu_(std::move(lu)), perm_(std::move(perm)) {}

    Matrix lu_;
    std::vector<std::size_t> perm_;
};

/// One-shot convenience: solve A x = b. Returns nullopt if singular.
std::optional<Vector> solve_linear(Matrix a, const Vector& b);

} // namespace tfetsram::la
