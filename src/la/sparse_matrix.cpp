#include "la/sparse_matrix.hpp"

#include <algorithm>

namespace tfetsram::la {

void SparseMatrix::reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    finalized_ = false;
    triplets_.clear();
    row_ptr_.clear();
    col_idx_.clear();
    val_.clear();
}

void SparseMatrix::reserve_entry(std::size_t r, std::size_t c) {
    TFET_EXPECTS(!finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    triplets_.emplace_back(r, c);
}

void SparseMatrix::finalize_pattern() {
    TFET_EXPECTS(!finalized_);
    std::sort(triplets_.begin(), triplets_.end());
    triplets_.erase(std::unique(triplets_.begin(), triplets_.end()),
                    triplets_.end());

    row_ptr_.assign(rows_ + 1, 0);
    col_idx_.resize(triplets_.size());
    for (std::size_t k = 0; k < triplets_.size(); ++k) {
        ++row_ptr_[triplets_[k].first + 1];
        col_idx_[k] = triplets_[k].second;
    }
    for (std::size_t r = 0; r < rows_; ++r)
        row_ptr_[r + 1] += row_ptr_[r];
    val_.assign(col_idx_.size(), 0.0);
    triplets_.clear();
    triplets_.shrink_to_fit();
    finalized_ = true;
}

void SparseMatrix::set_zero() {
    TFET_EXPECTS(finalized_);
    std::fill(val_.begin(), val_.end(), 0.0);
}

double& SparseMatrix::ref(std::size_t r, std::size_t c) {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    const auto first = col_idx_.begin() +
                       static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto last = col_idx_.begin() +
                      static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    const auto it = std::lower_bound(first, last, c);
    TFET_EXPECTS(it != last && *it == c);
    return val_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    const auto first = col_idx_.begin() +
                       static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto last = col_idx_.begin() +
                      static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    const auto it = std::lower_bound(first, last, c);
    if (it == last || *it != c)
        return 0.0;
    return val_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void SparseMatrix::multiply_into(const Vector& x, Vector& y) const {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(x.size() == cols_);
    y.assign(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += val_[k] * x[col_idx_[k]];
        y[r] = acc;
    }
}

Vector SparseMatrix::multiply(const Vector& x) const {
    Vector y;
    multiply_into(x, y);
    return y;
}

Matrix SparseMatrix::to_dense() const {
    TFET_EXPECTS(finalized_);
    Matrix m(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            m(r, col_idx_[k]) = val_[k];
    return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& m) {
    SparseMatrix s(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m(r, c) != 0.0)
                s.reserve_entry(r, c);
    s.finalize_pattern();
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m(r, c) != 0.0)
                s.ref(r, c) = m(r, c);
    return s;
}

} // namespace tfetsram::la
