#include "la/sparse_matrix.hpp"

#include <algorithm>

namespace tfetsram::la {

void SparseMatrix::reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    finalized_ = false;
    triplets_.clear();
    row_ptr_.clear();
    col_idx_.clear();
    val_.clear();
}

void SparseMatrix::reserve_entry(std::size_t r, std::size_t c) {
    TFET_EXPECTS(!finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    triplets_.emplace_back(r, c);
}

void SparseMatrix::finalize_pattern() {
    TFET_EXPECTS(!finalized_);
    // Counting sort by row, then sort + dedup each row's short column run.
    // The raw triplet list is heavily duplicated (every device position is
    // registered by both the DC and transient symbolic passes), so this
    // O(raw + sum_r k_r log k_r) pass beats a global comparison sort of
    // the full list by a wide margin on array-scale patterns.
    row_ptr_.assign(rows_ + 1, 0);
    for (const auto& t : triplets_)
        ++row_ptr_[t.first + 1];
    for (std::size_t r = 0; r < rows_; ++r)
        row_ptr_[r + 1] += row_ptr_[r];
    col_idx_.resize(triplets_.size());
    std::vector<std::size_t> next(row_ptr_.begin(), row_ptr_.end() - 1);
    for (const auto& t : triplets_)
        col_idx_[next[t.first]++] = t.second;

    // Compact in place: the write cursor never passes the read cursor
    // because earlier rows only shrink.
    std::size_t w = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t b = row_ptr_[r];
        const std::size_t e = row_ptr_[r + 1];
        std::sort(col_idx_.begin() + static_cast<std::ptrdiff_t>(b),
                  col_idx_.begin() + static_cast<std::ptrdiff_t>(e));
        row_ptr_[r] = w;
        for (std::size_t k = b; k < e; ++k)
            if (w == row_ptr_[r] || col_idx_[w - 1] != col_idx_[k])
                col_idx_[w++] = col_idx_[k];
    }
    row_ptr_[rows_] = w;
    col_idx_.resize(w);
    val_.assign(w, 0.0);
    triplets_.clear();
    triplets_.shrink_to_fit();
    ++generation_;
    finalized_ = true;
}

std::size_t SparseMatrix::slot_of(std::size_t r, std::size_t c) {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    const auto first = col_idx_.begin() +
                       static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto last = col_idx_.begin() +
                      static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    const auto it = std::lower_bound(first, last, c);
    TFET_EXPECTS(it != last && *it == c);
    return static_cast<std::size_t>(it - col_idx_.begin());
}

void SparseMatrix::set_zero() {
    TFET_EXPECTS(finalized_);
    std::fill(val_.begin(), val_.end(), 0.0);
}

double& SparseMatrix::ref(std::size_t r, std::size_t c) {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    const auto first = col_idx_.begin() +
                       static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto last = col_idx_.begin() +
                      static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    const auto it = std::lower_bound(first, last, c);
    TFET_EXPECTS(it != last && *it == c);
    return val_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(r < rows_ && c < cols_);
    const auto first = col_idx_.begin() +
                       static_cast<std::ptrdiff_t>(row_ptr_[r]);
    const auto last = col_idx_.begin() +
                      static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
    const auto it = std::lower_bound(first, last, c);
    if (it == last || *it != c)
        return 0.0;
    return val_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void SparseMatrix::multiply_into(const Vector& x, Vector& y) const {
    TFET_EXPECTS(finalized_);
    TFET_EXPECTS(x.size() == cols_);
    y.assign(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += val_[k] * x[col_idx_[k]];
        y[r] = acc;
    }
}

Vector SparseMatrix::multiply(const Vector& x) const {
    Vector y;
    multiply_into(x, y);
    return y;
}

Matrix SparseMatrix::to_dense() const {
    TFET_EXPECTS(finalized_);
    Matrix m(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            m(r, col_idx_[k]) = val_[k];
    return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& m) {
    SparseMatrix s(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m(r, c) != 0.0)
                s.reserve_entry(r, c);
    s.finalize_pattern();
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (m(r, c) != 0.0)
                s.ref(r, c) = m(r, c);
    return s;
}

} // namespace tfetsram::la
