#pragma once
// Dense matrix/vector types for the MNA solver. Single-cell circuits are
// small (~10 unknowns), where this cache-friendly dense representation
// beats any sparse scheme; array-scale systems switch to the CSR kernel in
// la/sparse_matrix.hpp + la/sparse_lu.hpp above kSparseAutoThreshold
// unknowns (selection in spice/solver_select.hpp, trade documented in
// docs/SOLVER.md).

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace tfetsram::la {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) {
        TFET_EXPECTS(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        TFET_EXPECTS(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /// Reset all entries to zero without reallocating.
    void set_zero();

    /// y = A * x
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// Square identity matrix.
    static Matrix identity(std::size_t n);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Euclidean norm.
double norm2(const Vector& v);

/// Infinity norm.
double norm_inf(const Vector& v);

/// r = a - b (sizes must match).
Vector subtract(const Vector& a, const Vector& b);

} // namespace tfetsram::la
