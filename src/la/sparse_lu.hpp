#pragma once
// Sparse LU for the MNA Jacobian, split the way the Newton loop needs it:
//
//  * analyze()  — symbolic analysis, once per circuit topology: a
//    fill-reducing minimum-degree column ordering on the symmetrized
//    pattern, a CSC view of the CSR pattern, and workspace allocation.
//  * refactor() — numeric factorization, once per Newton iterate:
//    left-looking (Gilbert–Peierls) elimination with threshold partial
//    pivoting, reusing every buffer from the previous call. After the
//    factor storage has grown to its steady state this is allocation-free,
//    the sparse analogue of LuFactorization::factor_in_place.
//
// Pivoting is threshold partial pivoting with a diagonal preference: the
// structural diagonal entry is kept as the pivot whenever its magnitude is
// within a factor of the column maximum, which preserves the fill the
// minimum-degree ordering planned for; otherwise the largest off-diagonal
// candidate is swapped in, so numerically hard columns (the zero-diagonal
// voltage-source rows of MNA) stay stable. Singularity is reported exactly
// like the dense kernel: a pivot below `pivot_tol` fails the
// factorization, and the caller falls through to the solver's fallback
// strategies.

#include <cstddef>
#include <vector>

#include "la/sparse_matrix.hpp"

namespace tfetsram::la {

class SparseLu {
public:
    SparseLu() = default;

    /// Symbolic analysis of a finalized square pattern. Resets any prior
    /// analysis; refactor() afterwards requires the same pattern.
    void analyze(const SparseMatrix& a);

    [[nodiscard]] bool analyzed() const { return analyzed_; }

    /// Numeric refactorization of `a` (same pattern as analyze()).
    /// Returns false if numerically singular (pivot below pivot_tol);
    /// the factorization is then unusable until the next successful
    /// refactor.
    bool refactor(const SparseMatrix& a, double pivot_tol = 1e-300);

    /// Solve A x = b for the last refactored A. `x` must not alias `b`.
    void solve_into(const Vector& b, Vector& x) const;
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// The fill-reducing column elimination order chosen by analyze().
    [[nodiscard]] const std::vector<std::size_t>& column_order() const {
        return q_;
    }

    /// Stored entries of L+U after the last refactor (L's unit diagonal is
    /// implicit and shares the U diagonal position, so this is the nnz of
    /// the filled factor matrix). Comparable against pattern_nnz().
    [[nodiscard]] std::size_t lu_nnz() const {
        return l_row_.size() + u_row_.size() + n_;
    }

    /// nnz of the analyzed pattern.
    [[nodiscard]] std::size_t pattern_nnz() const { return csc_row_.size(); }

    /// lu_nnz / pattern_nnz — the fill-in the ordering could not avoid.
    [[nodiscard]] double fill_ratio() const;

    /// log10 of the ratio of largest to smallest pivot magnitude (same
    /// conditioning diagnostic as the dense kernel).
    [[nodiscard]] double pivot_spread_log10() const;

private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t n_ = 0;
    bool analyzed_ = false;
    bool factored_ = false;

    // --- symbolic (set by analyze) ---
    std::vector<std::size_t> q_;       ///< column elimination order
    std::vector<std::size_t> csc_ptr_; ///< CSC pattern: per original column
    std::vector<std::size_t> csc_row_; ///< row index of each CSC entry
    std::vector<std::size_t> csc_val_; ///< CSR value index of each CSC entry

    // --- numeric factors (rebuilt by refactor; capacity reused) ---
    // Compressed-column L (unit diagonal implicit) and U; U's diagonal
    // (the pivots) lives in udiag_. L/U row indices are pivot steps after
    // refactor() completes.
    std::vector<std::size_t> l_ptr_, l_row_;
    std::vector<double> l_val_;
    std::vector<std::size_t> u_ptr_, u_row_;
    std::vector<double> u_val_;
    std::vector<double> udiag_;
    std::vector<std::size_t> pinv_; ///< original row -> pivot step
    std::vector<std::size_t> p_;    ///< pivot step -> original row

    // --- per-refactor scratch ---
    std::vector<double> work_x_;          ///< dense accumulator
    std::vector<std::size_t> topo_;       ///< DFS post-order of the column
    std::vector<std::size_t> stack_;      ///< DFS node stack
    std::vector<std::size_t> pstack_;     ///< DFS child-position stack
    std::vector<unsigned char> mark_;     ///< DFS visited flags
    mutable std::vector<double> work_y_;  ///< solve scratch
};

/// Fill-reducing elimination order: greedy minimum degree on the
/// symmetrized pattern of `a` (exposed for tests; analyze() calls it).
std::vector<std::size_t> minimum_degree_order(const SparseMatrix& a);

} // namespace tfetsram::la
