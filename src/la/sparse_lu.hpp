#pragma once
// Sparse LU for the MNA Jacobian, split the way the Newton loop needs it:
//
//  * analyze()  — symbolic analysis, once per circuit topology: a
//    fill-reducing approximate-minimum-degree (AMD) column ordering on the
//    symmetrized pattern, a CSC view of the CSR pattern, and workspace
//    allocation.
//  * refactor() — numeric factorization, once per Newton iterate:
//    left-looking (Gilbert–Peierls) elimination with threshold partial
//    pivoting, reusing every buffer from the previous call. After the
//    factor storage has grown to its steady state this is allocation-free,
//    the sparse analogue of LuFactorization::factor_in_place.
//
// Pivoting is threshold partial pivoting with a diagonal preference: the
// structural diagonal entry is kept as the pivot whenever its magnitude is
// within a factor of the column maximum, which preserves the fill the
// fill-reducing ordering planned for; otherwise the largest off-diagonal
// candidate is swapped in, so numerically hard columns (the zero-diagonal
// voltage-source rows of MNA) stay stable. Singularity is reported exactly
// like the dense kernel: a pivot below `pivot_tol` fails the
// factorization, and the caller falls through to the solver's fallback
// strategies.
//
// Two guards make the per-iterate path both fast and safe
// (docs/SOLVER.md):
//
//  * Static-pivot fast path — Newton refactors the same pattern with
//    slowly drifting values, so after one successful pivoted factor the
//    pivot sequence and fill structure are reused verbatim: refactor()
//    skips the depth-first symbolic traversal and the pivot search and
//    runs a branch-free numeric sweep over the stored structure. A pivot
//    that has decayed below a fraction of its column's magnitude, or
//    element growth past a bound, abandons the sweep and falls back to a
//    fresh threshold-pivoted factorization.
//  * Element-growth monitor — every factorization tracks
//    max |reduced entry| / max |A entry|. A threshold-pivoted factor whose
//    growth exceeds a bound is redone with pure partial pivoting (no
//    diagonal preference) before the solve is trusted; the fallback is
//    reported so telemetry can count it.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/sparse_matrix.hpp"

namespace tfetsram::la {

class SparseLu {
public:
    SparseLu() = default;

    /// Symbolic analysis of a finalized square pattern with the default
    /// AMD fill-reducing ordering. Resets any prior analysis; refactor()
    /// afterwards requires the same pattern.
    void analyze(const SparseMatrix& a);

    /// Symbolic analysis under an explicit column elimination order (a
    /// permutation of 0..n-1). Exposed so tests and experiments can
    /// compare orderings through the real factorization kernel.
    void analyze(const SparseMatrix& a, std::vector<std::size_t> order);

    [[nodiscard]] bool analyzed() const { return analyzed_; }

    /// Numeric refactorization of `a` (same pattern as analyze()).
    /// Returns false if numerically singular (pivot below pivot_tol);
    /// the factorization is then unusable until the next successful
    /// refactor. Uses the static-pivot fast path when the previous pivot
    /// sequence is reusable (see set_static_pivoting / last_refactor).
    bool refactor(const SparseMatrix& a, double pivot_tol = 1e-300);

    /// Solve A x = b for the last refactored A. `x` must not alias `b`.
    void solve_into(const Vector& b, Vector& x) const;
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Enable/disable the static-pivot fast path (default on). Tests use
    /// the always-pivot mode as the reference the fast path must match.
    void set_static_pivoting(bool enabled) { static_enabled_ = enabled; }

    /// What the last refactor() did: whether it completed on the
    /// static-pivot fast path, how many times it fell back to a stricter
    /// pivoting mode, and the element growth of the accepted factor.
    struct RefactorInfo {
        bool static_hit = false;
        std::uint32_t fallbacks = 0;
        double growth = 0.0; ///< max |reduced entry| / max |A entry|
    };
    [[nodiscard]] const RefactorInfo& last_refactor() const { return last_; }

    /// Wall microseconds the last analyze() spent computing the
    /// fill-reducing ordering (0 for the explicit-order overload). The
    /// solver layer accumulates this into SolverStats.
    [[nodiscard]] std::uint64_t ordering_us() const { return ordering_us_; }

    /// The fill-reducing column elimination order chosen by analyze().
    [[nodiscard]] const std::vector<std::size_t>& column_order() const {
        return q_;
    }

    /// Stored entries of L+U after the last refactor (L's unit diagonal is
    /// implicit and shares the U diagonal position, so this is the nnz of
    /// the filled factor matrix). Comparable against pattern_nnz().
    [[nodiscard]] std::size_t lu_nnz() const {
        return l_row_.size() + u_row_.size() + n_;
    }

    /// nnz of the analyzed pattern.
    [[nodiscard]] std::size_t pattern_nnz() const { return csc_row_.size(); }

    /// lu_nnz / pattern_nnz — the fill-in the ordering could not avoid.
    [[nodiscard]] double fill_ratio() const;

    /// log10 of the ratio of largest to smallest pivot magnitude (same
    /// conditioning diagnostic as the dense kernel).
    [[nodiscard]] double pivot_spread_log10() const;

private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Full Gilbert–Peierls factorization with threshold pivoting at the
    /// given diagonal preference (0 = pure partial pivoting). On success
    /// l_row_ holds original row ids (remapped by the caller) and
    /// `growth` the factor's element growth.
    bool refactor_full(const SparseMatrix& a, double pivot_tol,
                       double diag_preference, double& growth);

    /// Branch-free numeric sweep reusing the previous factor's pivot
    /// sequence and structure. Returns false (leaving the factor dirty —
    /// the caller re-runs refactor_full) when a reused pivot is no longer
    /// acceptable or growth trips the static bound.
    bool refactor_static(const SparseMatrix& a, double pivot_tol,
                         double& growth);

    /// Sort each U column's entries ascending by pivot step so the static
    /// sweep can process them as a dependency-ordered run.
    void sort_u_columns();

    std::size_t n_ = 0;
    bool analyzed_ = false;
    bool factored_ = false;
    bool static_enabled_ = true;
    bool static_ready_ = false; ///< a pivot sequence is stored and reusable
    RefactorInfo last_;
    std::uint64_t ordering_us_ = 0;

    // --- symbolic (set by analyze) ---
    std::vector<std::size_t> q_;       ///< column elimination order
    std::vector<std::size_t> csc_ptr_; ///< CSC pattern: per original column
    std::vector<std::size_t> csc_row_; ///< row index of each CSC entry
    std::vector<std::size_t> csc_val_; ///< CSR value index of each CSC entry

    // --- numeric factors (rebuilt by refactor; capacity reused) ---
    // Compressed-column L (unit diagonal implicit) and U; U's diagonal
    // (the pivots) lives in udiag_. L/U row indices are pivot steps after
    // refactor() completes. Every symbolically reached entry is stored,
    // exact numeric zeros included: the structure must stay valid for the
    // static-pivot sweep under different values of the same pattern.
    std::vector<std::size_t> l_ptr_, l_row_;
    std::vector<double> l_val_;
    std::vector<std::size_t> u_ptr_, u_row_;
    std::vector<double> u_val_;
    std::vector<double> udiag_;
    std::vector<std::size_t> pinv_; ///< original row -> pivot step
    std::vector<std::size_t> p_;    ///< pivot step -> original row

    // --- per-refactor scratch ---
    std::vector<double> work_x_;          ///< dense accumulator
    std::vector<std::size_t> topo_;       ///< DFS post-order of the column
    std::vector<std::size_t> stack_;      ///< DFS node stack
    std::vector<std::size_t> pstack_;     ///< DFS child-position stack
    std::vector<unsigned char> mark_;     ///< DFS visited flags
    std::vector<std::size_t> usort_scratch_; ///< U-column sort permutation
    mutable std::vector<double> work_y_;  ///< solve scratch
};

/// Fill-reducing elimination order: greedy minimum degree on the
/// symmetrized pattern of `a`. O(n²)-per-pick reference implementation,
/// kept as the quality baseline the AMD ordering is tested against.
std::vector<std::size_t> minimum_degree_order(const SparseMatrix& a);

/// Approximate minimum degree ordering on the symmetrized pattern of `a`:
/// quotient-graph elimination with element absorption and bucketed degree
/// lists (Amestoy/Davis/Duff style, without supervariable compression).
/// Near-linear on the grid-like MNA patterns SRAM arrays produce, where
/// the greedy scan above is quadratic. Deterministic: every decision is
/// index-based, so the order is identical across platforms.
std::vector<std::size_t> amd_order(const SparseMatrix& a);

} // namespace tfetsram::la
