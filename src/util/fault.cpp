#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "util/contracts.hpp"
#include "util/env.hpp"

namespace tfetsram::fault {

namespace {

/// SplitMix64: one deterministic 64-bit mix, enough to turn (seed, site,
/// index) into an unbiased Bernoulli draw without shared RNG state.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

struct Injector {
    std::atomic<bool> armed{false};
    std::mutex mutex; ///< guards plan swaps; reads hold it only when armed
    FaultPlan plan;
    std::atomic<std::uint64_t> counters[kSiteCount] = {};

    void install(FaultPlan new_plan) {
        armed.store(false, std::memory_order_seq_cst);
        {
            std::lock_guard<std::mutex> lock(mutex);
            plan = std::move(new_plan);
            for (auto& c : counters)
                c.store(0, std::memory_order_relaxed);
        }
        if (!plan.empty())
            armed.store(true, std::memory_order_seq_cst);
    }
};

/// Direct accessor without the env bootstrap (used by reload_from_env to
/// avoid recursing through the call_once). Leaked on purpose: hook points
/// may run during static destruction of other translation units.
Injector& raw_injector() {
    static Injector* instance = new Injector();
    return *instance;
}

Injector& injector() {
    static std::once_flag env_once;
    std::call_once(env_once, [] { reload_from_env(); });
    return raw_injector();
}

std::uint64_t parse_u64(std::string_view text) {
    TFET_EXPECTS(!text.empty());
    std::uint64_t value = 0;
    for (char ch : text) {
        TFET_EXPECTS(ch >= '0' && ch <= '9');
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    return value;
}

Site parse_site(std::string_view name) {
    if (name == "newton")
        return Site::kNewton;
    if (name == "dc")
        return Site::kDcSolve;
    if (name == "cache_load")
        return Site::kCacheLoad;
    if (name == "cache_store")
        return Site::kCacheStore;
    if (name == "file_write")
        return Site::kFileWrite;
    if (name == "stall")
        return Site::kStall;
    throw contract_violation("fault: unknown site '" + std::string(name) +
                             "' in TFETSRAM_FAULTS spec");
}

} // namespace

const char* to_string(Site site) {
    switch (site) {
    case Site::kNewton: return "newton";
    case Site::kDcSolve: return "dc";
    case Site::kCacheLoad: return "cache_load";
    case Site::kCacheStore: return "cache_store";
    case Site::kFileWrite: return "file_write";
    case Site::kStall: return "stall";
    }
    return "?";
}

bool FaultPlan::empty() const {
    for (const auto& site_selectors : selectors_)
        if (!site_selectors.empty())
            return false;
    return true;
}

bool FaultPlan::fires(Site site, std::uint64_t index) const {
    for (const Selector& sel : selectors_[static_cast<std::size_t>(site)]) {
        if (std::binary_search(sel.indices.begin(), sel.indices.end(), index))
            return true;
        if (sel.every != 0 && index % sel.every == 0)
            return true;
        if (index >= sel.from)
            return true;
        if (sel.probability > 0.0) {
            const std::uint64_t h = mix64(
                sel.seed ^ mix64(index ^ (static_cast<std::uint64_t>(site)
                                          << 56)));
            const double u =
                static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
            if (u < sel.probability)
                return true;
        }
    }
    return false;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        std::string_view clause = rest.substr(0, semi);
        rest = semi == std::string_view::npos ? std::string_view{}
                                              : rest.substr(semi + 1);
        if (clause.empty())
            continue;
        const std::size_t at = clause.find('@');
        TFET_EXPECTS(at != std::string_view::npos);
        const Site site = parse_site(clause.substr(0, at));
        std::string_view sel_text = clause.substr(at + 1);
        TFET_EXPECTS(!sel_text.empty());

        Selector sel;
        if (sel_text.substr(0, 6) == "every:") {
            sel.every = parse_u64(sel_text.substr(6));
            TFET_EXPECTS(sel.every > 0);
        } else if (sel_text.substr(0, 5) == "from:") {
            sel.from = parse_u64(sel_text.substr(5));
        } else if (sel_text.substr(0, 2) == "p:") {
            std::string_view body = sel_text.substr(2);
            const std::size_t colon = body.find(':');
            TFET_EXPECTS(colon != std::string_view::npos);
            char* end = nullptr;
            const std::string prob_text(body.substr(0, colon));
            sel.probability = std::strtod(prob_text.c_str(), &end);
            TFET_EXPECTS(end != nullptr && *end == '\0');
            TFET_EXPECTS(sel.probability > 0.0 && sel.probability <= 1.0);
            sel.seed = parse_u64(body.substr(colon + 1));
        } else {
            std::string_view list = sel_text;
            while (!list.empty()) {
                const std::size_t comma = list.find(',');
                sel.indices.push_back(parse_u64(list.substr(0, comma)));
                list = comma == std::string_view::npos
                           ? std::string_view{}
                           : list.substr(comma + 1);
            }
            std::sort(sel.indices.begin(), sel.indices.end());
        }
        plan.selectors_[static_cast<std::size_t>(site)].push_back(
            std::move(sel));
    }
    return plan;
}

FaultState::FaultState(const std::string& spec)
    : plan_(spec.empty() ? FaultPlan{} : FaultPlan::parse(spec)) {}

bool FaultState::should_fail(Site site) {
    if (plan_.empty())
        return false;
    const std::size_t s = static_cast<std::size_t>(site);
    const std::uint64_t index =
        counters_[s].fetch_add(1, std::memory_order_relaxed);
    return plan_.fires(site, index);
}

std::uint64_t FaultState::op_count(Site site) const {
    return counters_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
}

bool should_fail(Site site) {
    Injector& in = injector();
    if (!in.armed.load(std::memory_order_relaxed))
        return false;
    const std::size_t s = static_cast<std::size_t>(site);
    const std::uint64_t index =
        in.counters[s].fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(in.mutex);
    return in.plan.fires(site, index);
}

std::uint64_t op_count(Site site) {
    Injector& in = injector();
    return in.counters[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
}

void reload_from_env() {
    const std::string spec = env::get_string("TFETSRAM_FAULTS");
    FaultPlan plan;
    if (!spec.empty())
        plan = FaultPlan::parse(spec);
    raw_injector().install(std::move(plan));
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& spec) {
    Injector& in = injector();
    {
        std::lock_guard<std::mutex> lock(in.mutex);
        previous_ = in.plan;
    }
    previous_armed_ = in.armed.load(std::memory_order_seq_cst);
    in.install(spec.empty() ? FaultPlan{} : FaultPlan::parse(spec));
}

ScopedFaultInjection::~ScopedFaultInjection() {
    injector().install(std::move(previous_));
}

} // namespace tfetsram::fault
