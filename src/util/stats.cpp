#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace tfetsram {

namespace {
std::vector<double> finite_sorted(std::span<const double> samples) {
    std::vector<double> v;
    v.reserve(samples.size());
    for (double x : samples)
        if (std::isfinite(x))
            v.push_back(x);
    std::sort(v.begin(), v.end());
    return v;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
    TFET_EXPECTS(q >= 0.0 && q <= 1.0);
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}
} // namespace

SampleSummary summarize(std::span<const double> samples) {
    SampleSummary s;
    const std::vector<double> v = finite_sorted(samples);
    s.n_infinite = samples.size() - v.size();
    s.count = v.size();
    if (v.empty())
        return s;

    double sum = 0.0;
    for (double x : v)
        sum += x;
    s.mean = sum / static_cast<double>(v.size());

    double ss = 0.0;
    for (double x : v)
        ss += (x - s.mean) * (x - s.mean);
    s.stddev = v.size() > 1
                   ? std::sqrt(ss / static_cast<double>(v.size() - 1))
                   : 0.0;
    s.min = v.front();
    s.max = v.back();
    s.median = percentile_sorted(v, 0.5);
    s.p05 = percentile_sorted(v, 0.05);
    s.p95 = percentile_sorted(v, 0.95);
    return s;
}

double percentile(std::span<const double> samples, double q) {
    return percentile_sorted(finite_sorted(samples), q);
}

} // namespace tfetsram
