#pragma once
// Descriptive statistics over samples produced by Monte-Carlo runs.

#include <span>
#include <vector>

namespace tfetsram {

/// Summary statistics of a sample set. Produced by summarize().
struct SampleSummary {
    std::size_t count = 0;   ///< number of finite samples
    std::size_t n_infinite = 0; ///< samples that were +/-inf (e.g. write failures)
    double mean = 0.0;
    double stddev = 0.0;     ///< sample standard deviation (n-1 denominator)
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p05 = 0.0;        ///< 5th percentile
    double p95 = 0.0;        ///< 95th percentile
};

/// Compute summary statistics. Non-finite samples are counted separately and
/// excluded from the moments; an all-non-finite input yields count == 0.
SampleSummary summarize(std::span<const double> samples);

/// Linear-interpolated percentile (q in [0,1]) of the finite samples.
double percentile(std::span<const double> samples, double q);

} // namespace tfetsram
