#pragma once
// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations throw so that
// tests can observe them; they are never compiled out because every caller of
// this library is an offline analysis tool where correctness dominates speed.

#include <stdexcept>
#include <string>

namespace tfetsram {

/// Thrown when a precondition is violated.
class contract_violation : public std::logic_error {
public:
    explicit contract_violation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw contract_violation(std::string(kind) + " failed: " + expr + " at " +
                             file + ":" + std::to_string(line));
}
} // namespace detail

} // namespace tfetsram

/// Precondition check: argument/state requirements at function entry.
#define TFET_EXPECTS(cond)                                                      \
    ((cond) ? static_cast<void>(0)                                              \
            : ::tfetsram::detail::contract_fail("precondition", #cond,          \
                                                __FILE__, __LINE__))

/// Postcondition check: guarantees at function exit.
#define TFET_ENSURES(cond)                                                      \
    ((cond) ? static_cast<void>(0)                                              \
            : ::tfetsram::detail::contract_fail("postcondition", #cond,         \
                                                __FILE__, __LINE__))

/// Internal invariant check.
#define TFET_ASSERT(cond)                                                       \
    ((cond) ? static_cast<void>(0)                                              \
            : ::tfetsram::detail::contract_fail("invariant", #cond,             \
                                                __FILE__, __LINE__))
