#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace tfetsram {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    TFET_EXPECTS(bins >= 1);
    TFET_EXPECTS(hi > lo);
}

void Histogram::add(double x) {
    ++total_;
    if (!std::isfinite(x)) {
        ++n_nonfinite_;
        return;
    }
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto bin = static_cast<std::size_t>((x - lo_) / width);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
}

void Histogram::add(std::span<const double> xs) {
    for (double x : xs)
        add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
    TFET_EXPECTS(bin < counts_.size());
    return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
    TFET_EXPECTS(bin < counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(bin) + 0.5);
}

std::string Histogram::render(std::size_t bar_width) const {
    std::size_t max_count = 1;
    for (std::size_t c : counts_)
        max_count = std::max(max_count, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t len =
            counts_[i] * bar_width / max_count;
        os << format_si(bin_center(i), "") << " | ";
        os.width(5);
        os << counts_[i] << " | " << std::string(len, '#') << '\n';
    }
    if (underflow_ > 0)
        os << "(underflow: " << underflow_ << ")\n";
    if (overflow_ > 0)
        os << "(overflow: " << overflow_ << ")\n";
    if (n_nonfinite_ > 0)
        os << "(non-finite, e.g. write failure: " << n_nonfinite_ << ")\n";
    return os.str();
}

Histogram Histogram::of(std::span<const double> xs, std::size_t bins) {
    double lo = 0.0;
    double hi = 1.0;
    bool seen = false;
    for (double x : xs) {
        if (!std::isfinite(x))
            continue;
        if (!seen) {
            lo = hi = x;
            seen = true;
        } else {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    if (!seen || hi <= lo) {
        hi = lo + 1.0;
    } else {
        // pad so the max sample lands inside the top bin
        const double pad = (hi - lo) * 1e-6 + 1e-300;
        hi += pad;
    }
    Histogram h(lo, hi, bins);
    h.add(xs);
    return h;
}

} // namespace tfetsram
