#pragma once
// Numeric range helpers used by sweeps throughout the library.

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace tfetsram {

/// n evenly spaced points from lo to hi inclusive. n >= 2, or n == 1 (-> {lo}).
inline std::vector<double> linspace(double lo, double hi, std::size_t n) {
    TFET_EXPECTS(n >= 1);
    std::vector<double> v;
    v.reserve(n);
    if (n == 1) {
        v.push_back(lo);
        return v;
    }
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(lo + step * static_cast<double>(i));
    v.back() = hi; // exact endpoint despite rounding
    return v;
}

/// n logarithmically spaced points from lo to hi inclusive (lo, hi > 0).
inline std::vector<double> logspace(double lo, double hi, std::size_t n) {
    TFET_EXPECTS(lo > 0.0 && hi > 0.0);
    std::vector<double> v = linspace(std::log10(lo), std::log10(hi), n);
    for (double& x : v)
        x = std::pow(10.0, x);
    return v;
}

/// Inclusive arithmetic progression lo, lo+step, ... <= hi (+ tolerance).
inline std::vector<double> arange(double lo, double hi, double step) {
    TFET_EXPECTS(step > 0.0);
    std::vector<double> v;
    const double tol = step * 1e-9;
    for (double x = lo; x <= hi + tol; x += step)
        v.push_back(x);
    return v;
}

} // namespace tfetsram
