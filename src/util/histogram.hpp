#pragma once
// Fixed-bin histogram with an ASCII rendering, used to reproduce the
// Monte-Carlo occurrence plots of the paper (Figs. 9 and 10).

#include <span>
#include <string>
#include <vector>

namespace tfetsram {

/// A histogram over [lo, hi) with uniform bins. Out-of-range samples are
/// counted in underflow/overflow; non-finite samples in n_nonfinite.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void add(std::span<const double> xs);

    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }
    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] std::size_t count(std::size_t bin) const;
    [[nodiscard]] std::size_t underflow() const { return underflow_; }
    [[nodiscard]] std::size_t overflow() const { return overflow_; }
    [[nodiscard]] std::size_t nonfinite() const { return n_nonfinite_; }
    [[nodiscard]] std::size_t total() const { return total_; }

    /// Center of a bin.
    [[nodiscard]] double bin_center(std::size_t bin) const;

    /// Render as rows of "center | count | bar" suitable for console output.
    [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

    /// Convenience: build a histogram spanning the finite sample range.
    static Histogram of(std::span<const double> xs, std::size_t bins);

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t n_nonfinite_ = 0;
    std::size_t total_ = 0;
};

} // namespace tfetsram
