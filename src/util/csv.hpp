#pragma once
// Minimal CSV writer so benchmark sweeps can be exported for plotting.

#include <fstream>
#include <string>
#include <vector>

namespace tfetsram {

/// Streams rows to a CSV file. Cells containing commas/quotes are quoted.
class CsvWriter {
public:
    /// Opens (truncates) the file; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& cells);

private:
    std::ofstream out_;
};

/// Escape one CSV cell (exposed for testing).
std::string csv_escape(const std::string& cell);

} // namespace tfetsram
