#include "util/table_printer.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace tfetsram {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
    TFET_EXPECTS(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> row) {
    TFET_EXPECTS(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string TablePrinter::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](std::ostringstream& os, const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    emit(os, header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit(os, row);
    return os.str();
}

} // namespace tfetsram
