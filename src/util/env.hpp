#pragma once
// Centralized environment access. Every TFETSRAM_* runtime knob is read
// through this module — env::raw() is the repo's single chokepoint around
// the process environment (ci.sh lints that no other translation unit
// calls the libc accessor directly) — so environment values act as
// *defaults layered under programmatic configuration* instead of ambient
// reads scattered across subsystems. EnvSnapshot captures every knob in
// one pass; spice::SimConfig::from_env and runner::RunnerConfig::from_env
// build their effective configuration from a snapshot, after which the
// simulation never consults the environment again.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace tfetsram::env {

/// The one sanctioned wrapper over the libc environment accessor. Returns
/// nullptr when unset. Prefer the typed get_* helpers below.
const char* raw(const char* name);

// ---- pure parse helpers (unit-tested without touching the environment) --

/// Base-10 integer, optional leading '-'/'+'; nullopt on empty text, stray
/// characters, or overflow.
std::optional<long long> parse_int(std::string_view text);

/// Accepts 1/true/on/yes and 0/false/off/no (case-insensitive); nullopt
/// otherwise.
std::optional<bool> parse_bool(std::string_view text);

/// Finite base-10 floating-point value (strtod grammar, full-string match);
/// nullopt on empty text, stray characters, or non-finite results.
std::optional<double> parse_double(std::string_view text);

/// Index of `text` within `names` (exact match); nullopt when absent.
/// The generic helper behind every enum-valued knob (solver mode, cache
/// mode): layers parse once, here, instead of hand-rolling strcmp chains.
std::optional<std::size_t> parse_choice(
    std::string_view text, std::initializer_list<std::string_view> names);

// ---- typed getters (fallback on unset or empty) -------------------------

/// Variable's value, or `fallback` when unset/empty.
std::string get_string(const char* name, std::string_view fallback = {});

/// Parsed integer, or `fallback` when unset/empty/unparseable.
long long get_int(const char* name, long long fallback);

/// Parsed double, or `fallback` when unset/empty/unparseable.
double get_double(const char* name, double fallback);

/// Parsed boolean. Unset/empty returns `fallback`; a recognized literal
/// returns its value; any other non-empty text arms the flag (true) —
/// preserving the historical "TFETSRAM_KEEP_GOING=anything" behavior.
bool get_bool(const char* name, bool fallback);

// ---- the one-pass snapshot ----------------------------------------------

/// Every TFETSRAM_* knob, read in one pass. Zero/empty fields mean
/// "unset — use the built-in default"; consumers layer programmatic
/// configuration on top (see docs/ARCHITECTURE.md).
struct EnvSnapshot {
    std::string solver;    ///< TFETSRAM_SOLVER: dense|sparse|auto ("" unset)
    std::string cache;     ///< TFETSRAM_CACHE: off|rw|ro ("" unset)
    std::string cache_dir; ///< TFETSRAM_CACHE_DIR ("" unset)
    std::string out_dir;   ///< TFETSRAM_OUT_DIR ("" unset)
    std::string faults;    ///< TFETSRAM_FAULTS injection spec ("" unset)
    std::size_t threads = 0;    ///< TFETSRAM_THREADS (0 = hardware)
    int retries = 0;            ///< TFETSRAM_RETRIES (0 = unset)
    bool keep_going = false;    ///< TFETSRAM_KEEP_GOING
    std::size_t mc_samples = 0; ///< TFETSRAM_MC_SAMPLES (0 = unset)
    std::uint64_t seed = 0;     ///< TFETSRAM_SEED RNG root (0 = unset)
    double task_timeout = 0.0;  ///< TFETSRAM_TASK_TIMEOUT wall budget [s]
                                ///< per task (0 = unlimited)
    double stall_timeout = 0.0; ///< TFETSRAM_STALL_TIMEOUT watchdog
                                ///< heartbeat-stall window [s] (0 = off)
    double backoff_base = 0.0;  ///< TFETSRAM_BACKOFF_BASE first retry
                                ///< delay [s] (0 = retry immediately)
    double backoff_max = 0.0;   ///< TFETSRAM_BACKOFF_MAX delay cap [s]
                                ///< (0 = unset, runner default applies)

    /// Read the environment now. from_env()-style entry points capture a
    /// fresh snapshot so tests that setenv() between calls see updates.
    static EnvSnapshot capture();

    /// Process-wide snapshot frozen at first use — what per-thread default
    /// SimContexts are built from.
    static const EnvSnapshot& process();
};

} // namespace tfetsram::env
