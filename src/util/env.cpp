#include "util/env.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>

namespace tfetsram::env {

const char* raw(const char* name) {
    return std::getenv(name); // the repo's only direct environment read
}

std::optional<long long> parse_int(std::string_view text) {
    if (text.empty())
        return std::nullopt;
    std::size_t i = 0;
    bool negative = false;
    if (text[0] == '+' || text[0] == '-') {
        negative = text[0] == '-';
        if (text.size() == 1)
            return std::nullopt;
        i = 1;
    }
    constexpr long long kMax = std::numeric_limits<long long>::max();
    long long value = 0;
    for (; i < text.size(); ++i) {
        const char ch = text[i];
        if (ch < '0' || ch > '9')
            return std::nullopt;
        const int digit = ch - '0';
        if (value > (kMax - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    return negative ? -value : value;
}

std::optional<bool> parse_bool(std::string_view text) {
    std::string lower;
    lower.reserve(text.size());
    for (char ch : text)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    if (lower == "1" || lower == "true" || lower == "on" || lower == "yes")
        return true;
    if (lower == "0" || lower == "false" || lower == "off" || lower == "no")
        return false;
    return std::nullopt;
}

std::optional<double> parse_double(std::string_view text) {
    if (text.empty())
        return std::nullopt;
    const std::string owned(text); // strtod needs a terminator
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == owned.c_str())
        return std::nullopt;
    if (!(value == value) || value > std::numeric_limits<double>::max() ||
        value < -std::numeric_limits<double>::max())
        return std::nullopt; // NaN or infinite
    return value;
}

std::optional<std::size_t> parse_choice(
    std::string_view text, std::initializer_list<std::string_view> names) {
    std::size_t i = 0;
    for (std::string_view name : names) {
        if (text == name)
            return i;
        ++i;
    }
    return std::nullopt;
}

std::string get_string(const char* name, std::string_view fallback) {
    const char* value = raw(name);
    if (value == nullptr || *value == '\0')
        return std::string(fallback);
    return value;
}

long long get_int(const char* name, long long fallback) {
    const char* value = raw(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return parse_int(value).value_or(fallback);
}

double get_double(const char* name, double fallback) {
    const char* value = raw(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return parse_double(value).value_or(fallback);
}

bool get_bool(const char* name, bool fallback) {
    const char* value = raw(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    // Unrecognized non-empty text arms the flag — "KEEP_GOING=please" has
    // always meant yes.
    return parse_bool(value).value_or(true);
}

EnvSnapshot EnvSnapshot::capture() {
    EnvSnapshot snap;
    snap.solver = get_string("TFETSRAM_SOLVER");
    snap.cache = get_string("TFETSRAM_CACHE");
    snap.cache_dir = get_string("TFETSRAM_CACHE_DIR");
    snap.out_dir = get_string("TFETSRAM_OUT_DIR");
    snap.faults = get_string("TFETSRAM_FAULTS");
    const long long threads = get_int("TFETSRAM_THREADS", 0);
    if (threads > 0)
        snap.threads = static_cast<std::size_t>(threads);
    const long long retries = get_int("TFETSRAM_RETRIES", 0);
    if (retries > 0)
        snap.retries = static_cast<int>(retries);
    snap.keep_going = get_bool("TFETSRAM_KEEP_GOING", false);
    const long long samples = get_int("TFETSRAM_MC_SAMPLES", 0);
    if (samples > 0)
        snap.mc_samples = static_cast<std::size_t>(samples);
    const long long seed = get_int("TFETSRAM_SEED", 0);
    if (seed > 0)
        snap.seed = static_cast<std::uint64_t>(seed);
    const double task_timeout = get_double("TFETSRAM_TASK_TIMEOUT", 0.0);
    if (task_timeout > 0)
        snap.task_timeout = task_timeout;
    const double stall_timeout = get_double("TFETSRAM_STALL_TIMEOUT", 0.0);
    if (stall_timeout > 0)
        snap.stall_timeout = stall_timeout;
    const double backoff_base = get_double("TFETSRAM_BACKOFF_BASE", 0.0);
    if (backoff_base > 0)
        snap.backoff_base = backoff_base;
    const double backoff_max = get_double("TFETSRAM_BACKOFF_MAX", 0.0);
    if (backoff_max > 0)
        snap.backoff_max = backoff_max;
    return snap;
}

const EnvSnapshot& EnvSnapshot::process() {
    static const EnvSnapshot frozen = capture();
    return frozen;
}

} // namespace tfetsram::env
