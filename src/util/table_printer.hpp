#pragma once
// Aligned console tables: every benchmark prints the rows/series of the
// corresponding paper table or figure through this one facility, so the
// output format is uniform across the harness.

#include <string>
#include <vector>

namespace tfetsram {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> header);

    /// Append a row; must have the same number of cells as the header.
    void add_row(std::vector<std::string> row);

    /// Number of data rows added so far.
    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    /// Render with a header underline and two-space column gaps.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tfetsram
