#pragma once
// Deterministic fault injection. Recovery code that is never executed is
// recovery code that does not work, so every failure-handling path in this
// repo (DC homotopy fallbacks, transient step retries, runner quarantine,
// cache corruption tolerance, telemetry write failures) can be forced on
// demand — from tests via ScopedFaultInjection, or from the environment via
// TFETSRAM_FAULTS. Injection is deterministic: a site either fires at fixed
// 0-based operation indices or by a seeded hash of the index, never by wall
// clock or unseeded randomness.
//
// Spec grammar (clauses joined by ';'):
//   clause   := site '@' selector
//   selector := index (',' index)*   fire at exactly these operation indices
//             | 'every:' N           fire when index % N == 0
//             | 'from:' N            fire at every index >= N
//             | 'p:' PROB ':' SEED   fire with probability PROB (seeded hash)
//   site     := newton | dc | cache_load | cache_store | file_write | stall
//
// Example: TFETSRAM_FAULTS="newton@from:1;cache_load@0,3"
//
// Overhead when no plan is armed: one relaxed atomic load per hook.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tfetsram::fault {

/// Hook points that consult the injector.
enum class Site : std::size_t {
    kNewton = 0, ///< one detail::newton_raphson call reports non-convergence
    kDcSolve,    ///< an entire solve_dc is forced non-convergent
    kCacheLoad,  ///< a cache entry reads as corrupt (treated as a miss)
    kCacheStore, ///< a cache store fails (entry not persisted)
    kFileWrite,  ///< a telemetry artifact write fails
    kStall,      ///< a solve_dc parks (stops heartbeating) until its
                 ///< context is cancelled — exercises the runner watchdog
};
inline constexpr std::size_t kSiteCount = 6;
const char* to_string(Site site);

/// A parsed injection plan: per-site selectors over operation indices.
class FaultPlan {
public:
    FaultPlan() = default; ///< empty plan: never fires

    /// Parse the TFETSRAM_FAULTS grammar above; throws contract_violation
    /// on a malformed spec (unknown site, empty selector, bad number).
    static FaultPlan parse(const std::string& spec);

    [[nodiscard]] bool empty() const;

    /// Does this plan fire at the `index`-th operation of `site`?
    [[nodiscard]] bool fires(Site site, std::uint64_t index) const;

private:
    struct Selector {
        std::vector<std::uint64_t> indices; ///< explicit indices, sorted
        std::uint64_t every = 0;            ///< index % every == 0 (0 = off)
        std::uint64_t from = ~0ull;         ///< index >= from
        double probability = 0.0;           ///< seeded Bernoulli
        std::uint64_t seed = 0;
    };
    std::vector<Selector> selectors_[kSiteCount];
};

/// A private, context-owned injector: one parsed plan plus its own
/// per-site operation counters, consulted instead of the process-wide
/// injector by simulation contexts carrying a fault_spec
/// (spice::SimContext). The plan is immutable after construction, so the
/// hook is a counter increment and a read — no locking, safe to share
/// across a context's fan-out children.
class FaultState {
public:
    /// Parse `spec` (same grammar as TFETSRAM_FAULTS; empty = never
    /// fires); throws contract_violation on a malformed spec.
    explicit FaultState(const std::string& spec);

    /// Does the plan fire at this site's next operation index?
    bool should_fail(Site site);

    /// Operations observed at `site` since construction.
    [[nodiscard]] std::uint64_t op_count(Site site) const;

private:
    FaultPlan plan_;
    std::atomic<std::uint64_t> counters_[kSiteCount] = {};
};

/// Consult the process-wide injector at a hook point. Increments the
/// site's operation counter iff a plan is armed, so counters are
/// deterministic relative to the arming point.
bool should_fail(Site site);

/// Operations observed at `site` since the current plan was armed.
std::uint64_t op_count(Site site);

/// Re-read TFETSRAM_FAULTS and arm the resulting plan (an unset/empty
/// variable disarms). Called lazily on first use; exposed so tests can
/// exercise the environment path after setenv().
void reload_from_env();

/// RAII plan installation for tests: arms `spec` (resetting counters) and
/// restores the previously armed plan on destruction.
class ScopedFaultInjection {
public:
    explicit ScopedFaultInjection(const std::string& spec);
    ~ScopedFaultInjection();
    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

private:
    FaultPlan previous_;
    bool previous_armed_;
};

} // namespace tfetsram::fault
