#pragma once
// Deterministic random number generation for Monte-Carlo studies. A thin,
// seed-explicit wrapper over std::mt19937_64 so every experiment is
// reproducible from a single integer.

#include <cstdint>
#include <random>

#include "util/contracts.hpp"

namespace tfetsram {

/// Seedable RNG with the distributions the Monte-Carlo engine needs.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        TFET_EXPECTS(hi >= lo);
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev) {
        TFET_EXPECTS(stddev >= 0.0);
        if (stddev == 0.0)
            return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Normal truncated to [mean - bound, mean + bound] by resampling.
    /// Used for "controlled to within +/-5 %" style process windows.
    double truncated_normal(double mean, double stddev, double bound) {
        TFET_EXPECTS(bound > 0.0);
        if (stddev == 0.0)
            return mean;
        for (int i = 0; i < 1000; ++i) {
            const double x = normal(mean, stddev);
            if (x >= mean - bound && x <= mean + bound)
                return x;
        }
        return mean; // pathological stddev/bound ratio; fall back to mean
    }

    /// Uniform integer in [0, n).
    std::uint64_t index(std::uint64_t n) {
        TFET_EXPECTS(n > 0);
        return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
    }

    /// Fork a statistically independent child stream (for per-sample RNGs).
    Rng fork() { return Rng(engine_()); }

private:
    std::mt19937_64 engine_;
};

} // namespace tfetsram
