#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace tfetsram {

std::string format_si(double x, const std::string& unit) {
    if (std::isnan(x))
        return "nan";
    if (std::isinf(x))
        return (x > 0 ? "inf" : "-inf") + (unit.empty() ? "" : " " + unit);
    if (x == 0.0)
        return "0" + (unit.empty() ? "" : " " + unit);

    static const struct {
        double scale;
        const char* prefix;
    } prefixes[] = {
        {1e18, "E"}, {1e15, "P"}, {1e12, "T"}, {1e9, "G"},  {1e6, "M"},
        {1e3, "k"},  {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
        {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"}, {1e-21, "z"}, {1e-24, "y"},
    };

    const double mag = std::fabs(x);
    for (const auto& p : prefixes) {
        if (mag >= p.scale * 0.9995) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3g %s%s", x / p.scale, p.prefix,
                          unit.c_str());
            return buf;
        }
    }
    // Smaller than the smallest prefix: fall back to scientific notation.
    return format_sci(x) + (unit.empty() ? "" : " " + unit);
}

std::string format_sci(double x, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, x);
    return buf;
}

} // namespace tfetsram
