#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "util/units.hpp"

namespace tfetsram {

std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
    if (!out_)
        throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << csv_escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << format_sci(cells[i], 8);
    }
    out_ << '\n';
}

} // namespace tfetsram
