#pragma once
// Engineering-notation formatting for console reports ("45.2 ps", "1.3 fA").

#include <string>

namespace tfetsram {

/// Format x with an SI prefix and optional unit, e.g. format_si(4.5e-11, "s")
/// == "45 ps". Non-finite values render as "inf"/"nan". Values of exactly 0
/// render as "0 <unit>".
std::string format_si(double x, const std::string& unit);

/// Format x in scientific notation with the given significant digits.
std::string format_sci(double x, int digits = 3);

} // namespace tfetsram
