// Solver hot-path microbenchmarks, standalone driver. Runner-ported: see
// microbench.cpp for the workloads and docs/SOLVER.md for the counters.

#include "figures.hpp"

int main() {
    using namespace tfetsram;
    return bench::run_microbench(runner::RunnerConfig::from_env("microbench"));
}
