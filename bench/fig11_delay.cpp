// Fig. 11 reproduction: write delay (a) and read delay (b) versus VDD for
// the four compared designs — the proposed 6T inpTFET SRAM with
// GND-lowering RA, the 32 nm 6T CMOS SRAM, the asymmetric 6T TFET SRAM
// [15], and the 7T TFET SRAM [14].

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Fig. 11", "write and read delay vs VDD");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("fig11_delay");
    csv.write_row(std::vector<std::string>{"vdd", "design", "write_delay",
                                           "read_delay"});

    for (const char* which : {"write", "read"}) {
        TablePrinter table([&] {
            std::vector<std::string> h = {"VDD"};
            for (const auto& d :
                 sram::comparison_designs(0.8, bench::standard_models()))
                h.push_back(d.name);
            return h;
        }());

        for (double vdd : bench::vdd_sweep()) {
            std::vector<std::string> row = {format_sci(vdd, 1)};
            for (const auto& design :
                 sram::comparison_designs(vdd, bench::standard_models())) {
                sram::SramCell cell = sram::build_cell(design.config);
                const double delay =
                    std::string(which) == "write"
                        ? sram::write_delay(cell, design.write_assist, opts)
                        : sram::read_delay(cell, design.read_assist, opts);
                row.push_back(core::format_pulse(delay));
                if (std::string(which) == "write")
                    csv.write_row({format_sci(vdd, 2), design.name,
                                   format_sci(delay, 6), ""});
                else
                    csv.write_row({format_sci(vdd, 2), design.name, "",
                                   format_sci(delay, 6)});
            }
            table.add_row(row);
        }
        std::cout << "-- " << which << " delay --\n" << table.render() << '\n';
    }

    bench::expectation(
        "write: CMOS is fastest over most of the range (bidirectional "
        "access); among the TFET designs the proposed cell wins (sized for "
        "write). read: the proposed cell with its RA is best at low VDD; "
        "CMOS takes over at the top of the range; delays fall steeply with "
        "VDD for every design.");
    return 0;
}
