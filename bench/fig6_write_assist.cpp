// Fig. 6(e) reproduction: WLcrit versus beta for the four write-assist
// techniques (all at 30 % of VDD), on the inward-pTFET 6T cell.

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Fig. 6(e)",
                  "write-assist effectiveness: WLcrit vs beta (VDD = 0.8 V)");
    const sram::MetricOptions opts;
    const std::vector<double> betas = {1.0, 1.5, 2.0, 2.5, 3.0};

    TablePrinter table([&] {
        std::vector<std::string> h = {"beta"};
        for (sram::Assist a : sram::kWriteAssists)
            h.push_back(sram::to_string(a));
        return h;
    }());
    auto csv = bench::open_csv("fig6_write_assist");
    csv.write_row(std::vector<std::string>{"beta", "vdd_lowering",
                                           "gnd_raising", "wl_lowering",
                                           "bl_raising"});

    for (double beta : betas) {
        std::vector<std::string> row = {format_sci(beta, 1)};
        std::vector<double> vals = {beta};
        for (sram::Assist a : sram::kWriteAssists) {
            sram::CellConfig cfg;
            cfg.kind = sram::CellKind::kTfet6T;
            cfg.access = sram::AccessDevice::kInwardP;
            cfg.beta = beta;
            cfg.models = bench::standard_models();
            sram::SramCell cell = sram::build_cell(cfg);
            const double wl = sram::critical_wordline_pulse(cell, a, opts);
            row.push_back(core::format_pulse(wl));
            vals.push_back(wl);
        }
        table.add_row(row);
        csv.write_row(vals);
    }
    std::cout << table.render();

    bench::expectation(
        "at low beta the access-strengthening assists (wordline lowering, "
        "bitline raising) give the smallest WLcrit; their advantage "
        "vanishes as beta grows, where weakening the pull-downs (GND "
        "raising — and in the paper also VDD lowering) wins. Deviation "
        "documented in EXPERIMENTS.md: in our device physics VDD lowering "
        "stays finite but degrades at large beta, because the unidirectional "
        "pull-up limits how fast the internal high node can track the "
        "lowered rail.");
    return 0;
}
