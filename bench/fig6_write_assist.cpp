// Fig. 6(e) reproduction: WLcrit versus beta for the four write-assist
// techniques (all at 30 % of VDD), on the inward-pTFET 6T cell.
// Runner-ported: see figures.cpp for the task graph.

#include "figures.hpp"

int main() {
    using namespace tfetsram;
    return bench::run_fig6_write_assist(
        runner::RunnerConfig::from_env("fig6_write_assist"));
}
