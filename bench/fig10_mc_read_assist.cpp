// Fig. 10 reproduction: Monte-Carlo behaviour of the read-assist
// techniques under +/-5 % tox variation, cell sized at beta = 0.6 (the
// paper's RA study point and final design). Prints the DRNM occurrence
// histograms (a-d) and the WLcrit spread (e), which is much smaller than
// the WA case thanks to the stronger access transistors.
// Runner-ported: see figures.cpp for the task graph.

#include "figures.hpp"

int main() {
    using namespace tfetsram;
    return bench::run_fig10_mc_read_assist(
        runner::RunnerConfig::from_env("fig10_mc_read_assist"));
}
