// Fig. 10 reproduction: Monte-Carlo behaviour of the read-assist
// techniques under +/-5 % tox variation, cell sized at beta = 0.6 (the
// paper's RA study point and final design). Prints the DRNM occurrence
// histograms (a-d) and the WLcrit spread (e), which is much smaller than
// the WA case thanks to the stronger access transistors.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    const std::size_t samples = mc::mc_samples_from_env(60);
    bench::banner("Fig. 10",
                  "process variation vs read assists (beta = 0.6, " +
                      std::to_string(samples) + " samples)");
    const sram::MetricOptions opts;

    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kTfet6T;
    cfg.access = sram::AccessDevice::kInwardP;
    cfg.beta = 0.6;
    cfg.models = bench::standard_models();

    mc::VariationSpec vspec;
    const mc::TfetVariationSampler sampler(vspec);

    auto csv = bench::open_csv("fig10_mc_read_assist");
    csv.write_row(std::vector<std::string>{"technique", "sample", "drnm"});

    TablePrinter summary(
        {"technique", "mean", "stddev", "min", "max", "flips"});
    for (sram::Assist a : sram::kReadAssists) {
        const mc::McResult res = mc::run_monte_carlo(
            cfg, sampler, samples, 0xF10u,
            [&](sram::SramCell& cell) {
                const auto d = sram::dynamic_read_noise_margin(cell, a, opts);
                // Flips report as NaN so the summary counts them.
                if (!d.valid || d.flipped)
                    return std::nan("");
                return d.drnm;
            });
        const std::size_t flips = res.summary.n_infinite;
        for (std::size_t i = 0; i < res.samples.size(); ++i)
            csv.write_row({sram::to_string(a), std::to_string(i),
                           format_sci(res.samples[i], 6)});

        summary.add_row({sram::to_string(a),
                         core::format_margin(res.summary.mean),
                         core::format_margin(res.summary.stddev),
                         core::format_margin(res.summary.min),
                         core::format_margin(res.summary.max),
                         std::to_string(flips)});
        std::cout << "-- DRNM occurrences, " << sram::to_string(a) << " --\n"
                  << res.histogram(12).render() << '\n';
    }
    std::cout << summary.render() << '\n';

    // Fig. 10(e): WLcrit under variation at the RA sizing.
    const mc::McResult wl = mc::run_monte_carlo(
        cfg, sampler, samples, 0xF10u,
        [&](sram::SramCell& cell) {
            return sram::critical_wordline_pulse(cell, sram::Assist::kNone,
                                                 opts);
        });
    std::cout << "-- WLcrit occurrences (beta = 0.6, no WA needed) --\n"
              << wl.histogram(12).render();
    std::cout << "WLcrit spread: mean " << core::format_pulse(wl.summary.mean)
              << ", stddev " << core::format_pulse(wl.summary.stddev)
              << " (cv = "
              << format_sci(wl.summary.stddev / wl.summary.mean, 2)
              << "), failures " << wl.summary.n_infinite << "\n";

    bench::expectation(
        "DRNM is minimally impacted by variation for all RA techniques; the "
        "WLcrit spread at beta = 0.6 is much smaller than in the WA study "
        "(Fig. 9) thanks to the much stronger access transistors. This "
        "motivates the final design: small beta + GND-lowering RA.");
    return 0;
}
