// Fig. 7(e) reproduction: DRNM versus beta for the four read-assist
// techniques (all at 30 % of VDD), on the inward-pTFET 6T cell.

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Fig. 7(e)",
                  "read-assist effectiveness: DRNM vs beta (VDD = 0.8 V)");
    const sram::MetricOptions opts;
    const std::vector<double> betas = {0.3, 0.4, 0.6, 0.8, 1.0};

    TablePrinter table([&] {
        std::vector<std::string> h = {"beta", "no assist"};
        for (sram::Assist a : sram::kReadAssists)
            h.push_back(sram::to_string(a));
        return h;
    }());
    auto csv = bench::open_csv("fig7_read_assist");
    csv.write_row(std::vector<std::string>{"beta", "none", "vdd_raising",
                                           "gnd_lowering", "wl_raising",
                                           "bl_lowering"});

    for (double beta : betas) {
        std::vector<std::string> row = {format_sci(beta, 1)};
        std::vector<double> vals = {beta};
        auto eval = [&](sram::Assist a) {
            sram::CellConfig cfg;
            cfg.kind = sram::CellKind::kTfet6T;
            cfg.access = sram::AccessDevice::kInwardP;
            cfg.beta = beta;
            cfg.models = bench::standard_models();
            sram::SramCell cell = sram::build_cell(cfg);
            const auto d = sram::dynamic_read_noise_margin(cell, a, opts);
            row.push_back(d.flipped ? "flip"
                                    : core::format_margin(d.drnm));
            vals.push_back(d.flipped ? 0.0 : d.drnm);
        };
        eval(sram::Assist::kNone);
        for (sram::Assist a : sram::kReadAssists)
            eval(a);
        table.add_row(row);
        csv.write_row(vals);
    }
    std::cout << table.render();

    bench::expectation(
        "every technique lifts the unassisted margin; the rail assists "
        "(GND lowering, VDD raising) dominate at moderate-to-large beta "
        "while the access-weakening assists (wordline raising, bitline "
        "lowering) are relatively strongest at the smallest beta. GND "
        "lowering — the paper's chosen technique — is best or near-best "
        "everywhere.");
    return 0;
}
