// Array scaling study (extension): functional write/read cost versus array
// size on the dense-MNA engine. Documents where the O(n^3) LU kernel puts
// the practical ceiling for this engine (a sparse factorization is the
// natural next step for macro-scale arrays).

#include <chrono>

#include "array/array.hpp"
#include "bench_common.hpp"

using namespace tfetsram;
using clk = std::chrono::steady_clock;

int main() {
    bench::banner("Array scaling", "write+read wall time vs array size");
    auto csv = bench::open_csv("array_scaling");
    csv.write_row(std::vector<std::string>{"rows", "cols", "transistors",
                                           "unknowns", "init_s", "write_s",
                                           "read_s", "ok"});

    TablePrinter table({"array", "transistors", "unknowns", "init", "write",
                        "read", "functional"});
    for (const auto [rows, cols] :
         {std::pair<std::size_t, std::size_t>{2, 2}, {4, 2}, {4, 4},
          {8, 4}}) {
        array::ArrayConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.cell = sram::proposed_design(0.8, bench::standard_models()).config;
        cfg.read_assist = sram::Assist::kRaGndLowering;
        array::SramArray arr(cfg);
        const std::size_t unknowns = arr.circuit().num_unknowns();

        const auto t0 = clk::now();
        std::vector<std::vector<bool>> zeros(rows,
                                             std::vector<bool>(cols, false));
        const bool init_ok = arr.initialize(zeros);
        const auto t1 = clk::now();
        bool ok = init_ok;
        if (init_ok)
            ok = arr.write(rows / 2, cols / 2, true).ok;
        const auto t2 = clk::now();
        bool read_ok = false;
        if (ok) {
            const array::ReadResult r = arr.read(rows / 2, cols / 2);
            read_ok = r.ok && r.value;
        }
        const auto t3 = clk::now();

        auto secs = [](clk::time_point a, clk::time_point b) {
            return std::chrono::duration<double>(b - a).count();
        };
        table.add_row(
            {std::to_string(rows) + "x" + std::to_string(cols),
             std::to_string(arr.circuit().transistors().size()),
             std::to_string(unknowns), format_si(secs(t0, t1), "s"),
             format_si(secs(t1, t2), "s"), format_si(secs(t2, t3), "s"),
             ok && read_ok ? "yes" : "NO"});
        csv.write_row({static_cast<double>(rows), static_cast<double>(cols),
                       static_cast<double>(arr.circuit().transistors().size()),
                       static_cast<double>(unknowns), secs(t0, t1),
                       secs(t1, t2), secs(t2, t3),
                       ok && read_ok ? 1.0 : 0.0});
    }
    std::cout << table.render();

    bench::expectation(
        "functional behaviour holds at every size; wall time grows roughly "
        "with unknowns^3 per Newton solve (dense LU), flagging sparse "
        "factorization as the next engine milestone for macro arrays.");
    return 0;
}
