// Array scaling study (extension): functional write/read cost versus array
// size on the dense-MNA engine. Documents where the O(n^3) LU kernel puts
// the practical ceiling for this engine (a sparse factorization is the
// natural next step for macro-scale arrays).
// Runner-ported: see figures.cpp for the task graph.

#include "figures.hpp"

int main() {
    using namespace tfetsram;
    return bench::run_array_scaling(
        runner::RunnerConfig::from_env("array_scaling"));
}
