// Unified driver over the runner-ported figures: executes any subset by
// name (default: all), sharing one result cache across figures.
//
//   run_all                      # every ported figure
//   run_all fig6_write_assist array_scaling
//   run_all --list               # what's available
//   run_all --keep-going         # quarantine failed tasks, finish the rest
//
// Cache/output behavior follows the TFETSRAM_* env vars (docs/RUNNER.md);
// failure handling (TFETSRAM_KEEP_GOING, TFETSRAM_RETRIES, TFETSRAM_FAULTS)
// is documented in docs/ROBUSTNESS.md.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "figures.hpp"
#include "runner/signal.hpp"

using namespace tfetsram;

namespace {

void list_figures() {
    std::cout << "ported figures:\n";
    for (const bench::Figure& fig : bench::ported_figures())
        std::cout << "  " << fig.name << " — " << fig.what << "\n";
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> wanted;
    bool keep_going = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list" || arg == "-l") {
            list_figures();
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: run_all [--list] [--keep-going] [figure...]\n";
            list_figures();
            return 0;
        }
        if (arg == "--keep-going" || arg == "-k") {
            keep_going = true;
            continue;
        }
        if (arg != "all")
            wanted.push_back(arg);
    }

    // Resolve the selection up front so a typo fails before hours of sweeps.
    std::vector<const bench::Figure*> selection;
    if (wanted.empty()) {
        for (const bench::Figure& fig : bench::ported_figures())
            selection.push_back(&fig);
    } else {
        for (const std::string& name : wanted) {
            const bench::Figure* found = nullptr;
            for (const bench::Figure& fig : bench::ported_figures())
                if (name == fig.name)
                    found = &fig;
            if (found == nullptr) {
                std::cerr << "run_all: unknown figure '" << name << "'\n";
                list_figures();
                return 2;
            }
            selection.push_back(found);
        }
    }

    // SIGINT/SIGTERM → cooperative drain: the runner's watchdog thread
    // sees the flag, cancels every in-flight task context, queued tasks
    // are journaled as cancelled, and telemetry (journal + BENCH json) is
    // flushed atomically before we exit nonzero. A second signal kills
    // the process outright (the handler re-arms the default disposition).
    runner::install_signal_handlers();

    int rc = 0;
    for (const bench::Figure* fig : selection) {
        runner::RunnerConfig cfg = runner::RunnerConfig::from_env(fig->name);
        cfg.keep_going = cfg.keep_going || keep_going;
        const int figure_rc = fig->fn(cfg);
        if (figure_rc != 0) {
            std::cerr << "run_all: " << fig->name << " exited with "
                      << figure_rc << "\n";
            rc = 1;
        }
        if (runner::shutdown_requested()) {
            std::cerr << "run_all: interrupted — run drained and "
                         "telemetry flushed; remaining figures skipped\n";
            return 130; // conventional fatal-signal exit status
        }
    }
    return rc;
}
