// Ablation beyond the paper: the dynamic-energy price of each assist.
// Sec. 4.3 concedes "dynamic power overhead to generate lowered [GND]"
// without numbers; this bench measures the per-operation energy of every
// WA (during a write at beta = 2) and RA (during a read at beta = 0.6)
// against the unassisted operation, plus the data-retention floor.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Ablation", "per-operation energy of the assists");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("ablation_assist_energy");
    csv.write_row(std::vector<std::string>{"operation", "technique",
                                           "energy_J", "overhead_percent"});

    {
        TablePrinter table({"write assist (beta=2)", "energy / write",
                            "overhead"});
        sram::CellConfig cfg;
        cfg.kind = sram::CellKind::kTfet6T;
        cfg.access = sram::AccessDevice::kInwardP;
        cfg.beta = 2.0;
        cfg.models = bench::standard_models();
        sram::SramCell base = sram::build_cell(cfg);
        const double e0 = sram::write_energy(base, 400e-12, sram::Assist::kNone);
        table.add_row({"none (write fails)", format_si(e0, "J"), "-"});
        csv.write_row({"write", "none", format_sci(e0, 6), "0"});
        for (sram::Assist a : sram::kWriteAssists) {
            sram::SramCell cell = sram::build_cell(cfg);
            const double e = sram::write_energy(cell, 400e-12, a, opts);
            const double pct = (e / e0 - 1.0) * 100.0;
            table.add_row({sram::to_string(a), format_si(e, "J"),
                           format_sci(pct, 2) + " %"});
            csv.write_row({"write", sram::to_string(a), format_sci(e, 6),
                           format_sci(pct, 4)});
        }
        std::cout << table.render() << '\n';
    }

    {
        TablePrinter table({"read assist (beta=0.6)", "energy / read",
                            "overhead"});
        sram::CellConfig cfg = sram::proposed_design(
            0.8, bench::standard_models()).config;
        sram::SramCell base = sram::build_cell(cfg);
        const double e0 = sram::read_energy(base, sram::Assist::kNone, opts);
        table.add_row({"none (read flips)", format_si(e0, "J"), "-"});
        csv.write_row({"read", "none", format_sci(e0, 6), "0"});
        for (sram::Assist a : sram::kReadAssists) {
            sram::SramCell cell = sram::build_cell(cfg);
            const double e = sram::read_energy(cell, a, opts);
            const double pct = (e / e0 - 1.0) * 100.0;
            table.add_row({sram::to_string(a), format_si(e, "J"),
                           format_sci(pct, 2) + " %"});
            csv.write_row({"read", sram::to_string(a), format_sci(e, 6),
                           format_sci(pct, 4)});
        }
        std::cout << table.render() << '\n';
    }

    {
        TablePrinter table({"design", "data-retention voltage"});
        for (const auto& d :
             sram::comparison_designs(0.8, bench::standard_models())) {
            if (d.config.kind == sram::CellKind::kTfet7T)
                continue; // same core as the proposed cell
            const double drv = sram::data_retention_voltage(d.config);
            table.add_row({d.name, core::format_margin(drv)});
            csv.write_row({"drv", d.name, format_sci(drv, 4), ""});
        }
        std::cout << table.render();
    }

    bench::expectation(
        "assists cost tens of percent of extra energy per access — the "
        "overhead the paper concedes qualitatively; GND lowering's price "
        "buys the read margin that makes the beta = 0.6 design viable. "
        "Retention voltages sit far below the 0.5-0.9 V operating range.");
    return 0;
}
