// Sec. 5 static-power comparison: hold power versus VDD for the four
// designs. Reproduces "proposed == 7T, asymmetric 6T at least 4 orders
// higher (at 0.5 V), CMOS 6-7 orders higher".

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Sec. 5 (static power)", "hold static power vs VDD");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("sec5_static_power");
    csv.write_row(std::vector<std::string>{"vdd", "design", "watts"});

    TablePrinter table([&] {
        std::vector<std::string> h = {"VDD"};
        for (const auto& d :
             sram::comparison_designs(0.8, bench::standard_models()))
            h.push_back(d.name);
        return h;
    }());

    double p_prop_05 = 0.0;
    double p_asym_05 = 0.0;
    double p_prop_08 = 0.0;
    double p_cmos_08 = 0.0;
    for (double vdd : bench::vdd_sweep()) {
        std::vector<std::string> row = {format_sci(vdd, 1)};
        for (const auto& design :
             sram::comparison_designs(vdd, bench::standard_models())) {
            sram::SramCell cell = sram::build_cell(design.config);
            const double p = sram::worst_hold_static_power(cell, opts);
            row.push_back(core::format_power(p));
            csv.write_row({format_sci(vdd, 2), design.name, format_sci(p, 6)});
            if (vdd == 0.5 && design.config.kind == sram::CellKind::kTfet6T)
                p_prop_05 = p;
            if (vdd == 0.5 &&
                design.config.kind == sram::CellKind::kTfetAsym6T)
                p_asym_05 = p;
            if (vdd == 0.8 && design.config.kind == sram::CellKind::kTfet6T)
                p_prop_08 = p;
            if (vdd == 0.8 && design.config.kind == sram::CellKind::kCmos6T)
                p_cmos_08 = p;
        }
        table.add_row(row);
    }
    std::cout << table.render();

    std::cout << "\nasymmetric 6T vs proposed at 0.5 V: 10^"
              << format_sci(std::log10(p_asym_05 / p_prop_05), 2)
              << "  (paper: ~4 orders)\n"
              << "CMOS vs proposed at 0.8 V:        10^"
              << format_sci(std::log10(p_cmos_08 / p_prop_08), 2)
              << "  (paper: 6-7 orders)\n";

    bench::expectation(
        "proposed 6T inpTFET and 7T consume the same attowatt-level static "
        "power; the asymmetric 6T pays ~4 orders (outward access under "
        "reverse bias unless its bitlines float); CMOS sits 6-7 orders "
        "above the proposed design.");
    return 0;
}
