// Fig. 8 reproduction: the WLcrit-vs-DRNM tradeoff. For every WA and RA
// technique, sweep beta and report the (DRNM, WLcrit) operating points;
// the best design is the curve closest to the lower-right corner (large
// DRNM, small WLcrit). The paper concludes GND-lowering RA wins.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Fig. 8", "WLcrit vs DRNM tradeoff across all 8 techniques");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("fig8_assist_tradeoff");
    csv.write_row(
        std::vector<std::string>{"technique", "beta", "drnm", "wlcrit"});

    struct Best {
        sram::Assist assist{};
        double beta = 0.0;
        double drnm = 0.0;
        double wlcrit = 0.0;
        double score = -1e300;
    };
    Best overall;

    auto sweep = [&](sram::Assist assist, const std::vector<double>& betas) {
        TablePrinter table({"beta", "DRNM", "WLcrit"});
        for (double beta : betas) {
            sram::CellConfig cfg;
            cfg.kind = sram::CellKind::kTfet6T;
            cfg.access = sram::AccessDevice::kInwardP;
            cfg.beta = beta;
            cfg.models = bench::standard_models();
            sram::SramCell cell = sram::build_cell(cfg);

            const sram::Assist wa =
                sram::is_write_assist(assist) ? assist : sram::Assist::kNone;
            const sram::Assist ra =
                sram::is_read_assist(assist) ? assist : sram::Assist::kNone;
            const double wl = sram::critical_wordline_pulse(cell, wa, opts);
            const auto d = sram::dynamic_read_noise_margin(cell, ra, opts);
            const double drnm = d.flipped ? 0.0 : d.drnm;

            table.add_row({format_sci(beta, 1), core::format_margin(drnm),
                           core::format_pulse(wl)});
            csv.write_row({sram::to_string(assist), format_sci(beta, 2),
                           format_sci(drnm, 6), format_sci(wl, 6)});

            if (std::isfinite(wl) && drnm > 0.0) {
                const double score = drnm / 0.8 - wl / 1e-9;
                if (score > overall.score)
                    overall = {assist, beta, drnm, wl, score};
            }
        }
        std::cout << "-- " << sram::to_string(assist) << " --\n"
                  << table.render() << '\n';
    };

    // WA techniques need beta >= 1 so the read is safe; RA techniques need
    // beta <= 1 so the write is safe (Sec. 4).
    const std::vector<double> wa_betas = {1.0, 1.5, 2.0, 2.5, 3.0};
    const std::vector<double> ra_betas = {0.4, 0.6, 0.8, 1.0};
    for (sram::Assist a : sram::kWriteAssists)
        sweep(a, wa_betas);
    for (sram::Assist a : sram::kReadAssists)
        sweep(a, ra_betas);

    std::cout << "closest to the lower-right corner: "
              << sram::to_string(overall.assist) << " at beta = "
              << overall.beta << "  (DRNM " << core::format_margin(overall.drnm)
              << ", WLcrit " << core::format_pulse(overall.wlcrit) << ")\n";

    bench::expectation(
        "the curve closest to the lower-right corner belongs to the "
        "GND-lowering read assist: size the cell for write (beta ~ 0.6) and "
        "assist the read.");
    return 0;
}
