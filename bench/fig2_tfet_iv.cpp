// Fig. 2 reproduction: (a) forward I-V of the calibrated nTFET and pTFET
// (VGS swept at several VDS), (b) the nTFET under reverse bias, where the
// p-i-n path erodes gate control as |VDS| grows — the "unidirectional
// conduction" at the heart of the paper.

#include <cmath>

#include "bench_common.hpp"
#include "device/models.hpp"

using namespace tfetsram;

namespace {

std::string log10_str(double amps) {
    return format_sci(amps, 2);
}

void forward_iv() {
    bench::banner("Fig. 2(a)", "TFET forward I-V (A/um)");
    const auto ntfet = device::make_ntfet();
    const auto ptfet = device::make_ptfet();

    const std::vector<double> vds_list = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
    TablePrinter table([&] {
        std::vector<std::string> h = {"VGS"};
        for (double vds : vds_list)
            h.push_back("nTFET VDS=" + format_sci(vds, 1));
        h.push_back("pTFET VDS=-1");
        return h;
    }());

    auto csv = bench::open_csv("fig2a_forward_iv");
    csv.write_row(std::vector<std::string>{"vgs", "vds", "ids_n", "ids_p"});
    for (double vgs = 0.0; vgs <= 1.0 + 1e-9; vgs += 0.1) {
        std::vector<std::string> row = {format_sci(vgs, 1)};
        for (double vds : vds_list) {
            row.push_back(log10_str(ntfet->iv(vgs, vds).ids));
            csv.write_row({vgs, vds, ntfet->iv(vgs, vds).ids,
                           ptfet->iv(-vgs, -vds).ids});
        }
        row.push_back(log10_str(-ptfet->iv(-vgs, -1.0).ids));
        table.add_row(row);
    }
    std::cout << table.render();

    const double ion = ntfet->iv(1.0, 1.0).ids;
    const double ioff = ntfet->iv(0.0, 1.0).ids;
    std::cout << "\nIon  = " << format_sci(ion, 2) << " A/um (paper: 1e-4)"
              << "\nIoff = " << format_sci(ioff, 2) << " A/um (paper: 1e-17)"
              << "\non/off = 10^" << std::log10(ion / ioff) << " (paper: 13 decades)\n";
    bench::expectation(
        "steep swing near threshold flattening at high VGS; pTFET is the "
        "exact mirror of the nTFET.");
}

void reverse_iv() {
    bench::banner("Fig. 2(b)", "nTFET reverse-bias I-V (A/um, source/drain swapped)");
    const auto ntfet = device::make_ntfet();

    const std::vector<double> vds_list = {-0.1, -0.2, -0.4, -0.6, -0.8, -1.0};
    TablePrinter table([&] {
        std::vector<std::string> h = {"VGS"};
        for (double vds : vds_list)
            h.push_back("VDS=" + format_sci(vds, 1));
        return h;
    }());

    auto csv = bench::open_csv("fig2b_reverse_iv");
    csv.write_row(std::vector<std::string>{"vgs", "vds", "ids"});
    for (double vgs = 0.0; vgs <= 1.0 + 1e-9; vgs += 0.2) {
        std::vector<std::string> row = {format_sci(vgs, 1)};
        for (double vds : vds_list) {
            const double i = -ntfet->iv(vgs, vds).ids;
            row.push_back(log10_str(i));
            csv.write_row({vgs, vds, i});
        }
        table.add_row(row);
    }
    std::cout << table.render();

    const double ctrl_low = -ntfet->iv(1.0, -0.1).ids / -ntfet->iv(0.0, -0.1).ids;
    const double ctrl_high = -ntfet->iv(1.0, -1.0).ids / -ntfet->iv(0.0, -1.0).ids;
    std::cout << "\ngate control (Ion/Ioff): 10^" << std::log10(ctrl_low)
              << " at VDS=-0.1 vs 10^" << std::log10(ctrl_high)
              << " at VDS=-1.0\n";
    bench::expectation(
        "(i) the gate loses control over the channel at high |VDS| (p-i-n "
        "floor); (ii) reverse on-current is well below the forward "
        "on-current except for VDS close to 1 V or 0 V.");
}

} // namespace

int main() {
    forward_iv();
    reverse_iv();
    return 0;
}
