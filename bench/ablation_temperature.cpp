// Ablation beyond the paper: temperature. The paper's static-power claims
// are quoted at room temperature; this sweep shows they strengthen with
// temperature, because band-to-band tunneling is nearly athermal while
// MOSFET subthreshold leakage rides kT/q.

#include <cmath>

#include "bench_common.hpp"
#include "device/table_builder.hpp"

using namespace tfetsram;

namespace {

device::ModelSet models_at(double temperature) {
    device::TfetParams tp;
    tp.temperature = temperature;
    device::MosfetParams nmos;
    nmos.temperature = temperature;
    device::MosfetParams pmos = device::pmos_defaults();
    pmos.temperature = temperature;
    device::ModelSet set;
    set.ntfet = device::build_table(*device::make_ntfet(tp));
    set.ptfet = device::build_table(*device::make_ptfet(tp));
    set.nmos = device::make_nmos(nmos);
    set.pmos = device::make_pmos(pmos);
    return set;
}

} // namespace

int main() {
    bench::banner("Ablation", "temperature sweep (the athermal-tunneling edge)");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("ablation_temperature");
    csv.write_row(std::vector<std::string>{
        "temperature", "tfet_swing_mv", "mos_swing_mv", "p_tfet", "p_cmos",
        "orders"});

    TablePrinter table({"T [K]", "TFET swing", "MOSFET swing",
                        "P(proposed)", "P(CMOS)", "gap"});
    for (double temp : {250.0, 300.0, 350.0, 400.0}) {
        device::TfetParams tp;
        tp.temperature = temp;
        const device::TfetModel tfet(tp);
        device::MosfetParams mp;
        mp.temperature = temp;
        const device::MosfetModel mos(mp);
        const double sw_t =
            0.1 / std::log10(tfet.iv(0.15, 0.8).ids / tfet.iv(0.05, 0.8).ids) *
            1e3;
        const double sw_m =
            0.1 / std::log10(mos.iv(0.20, 0.8).ids / mos.iv(0.10, 0.8).ids) *
            1e3;

        const device::ModelSet set = models_at(temp);
        sram::SramCell prop =
            sram::build_cell(sram::proposed_design(0.8, set).config);
        sram::SramCell cmos =
            sram::build_cell(sram::cmos_design(0.8, set).config);
        const double p_prop = sram::worst_hold_static_power(prop, opts);
        const double p_cmos = sram::worst_hold_static_power(cmos, opts);
        const double orders = std::log10(p_cmos / p_prop);

        table.add_row({format_sci(temp, 0), format_si(sw_t * 1e-3, "V/dec"),
                       format_si(sw_m * 1e-3, "V/dec"),
                       core::format_power(p_prop), core::format_power(p_cmos),
                       "10^" + format_sci(orders, 2)});
        csv.write_row({temp, sw_t, sw_m, p_prop, p_cmos, orders});
    }
    std::cout << table.render();

    bench::expectation(
        "MOSFET swing and leakage scale with kT/q (the 6-order static-power "
        "gap widens by roughly two more orders from 300 K to 400 K); the "
        "TFET's tunneling swing is nearly flat in temperature.");
    return 0;
}
