// Half-select study (the Sec. 4.3 drawback, quantified). A write to one
// column puts every other cell of the asserted row in a pseudo-read: at
// the paper's write-favoring beta = 0.6 that disturb flips unprotected
// cells. Per-column segmented virtual grounds ([7]) let the GND-lowering
// assist protect exactly the half-selected columns.

#include "array/array.hpp"
#include "bench_common.hpp"

using namespace tfetsram;

namespace {

struct Outcome {
    bool write_ok = false;
    bool victim_held = false;
    double victim_separation = 0.0;
};

Outcome run_case(double beta, bool protect) {
    array::ArrayConfig cfg;
    cfg.rows = 1;
    cfg.cols = 2;
    cfg.cell = sram::proposed_design(0.8, bench::standard_models()).config;
    cfg.cell.beta = beta;
    cfg.read_assist =
        protect ? sram::Assist::kRaGndLowering : sram::Assist::kNone;
    array::SramArray arr(cfg);
    Outcome out;
    if (!arr.initialize({{false, false}}))
        return out;
    const array::OpResult res = arr.write(0, 0, true);
    out.write_ok = res.ok;
    out.victim_held = !arr.stored(0, 1);
    out.victim_separation = arr.separation(0, 1);
    return out;
}

} // namespace

int main() {
    bench::banner("Half-select study",
                  "victim cell during a same-row write (VDD = 0.8 V)");

    auto csv = bench::open_csv("half_select_study");
    csv.write_row(std::vector<std::string>{"beta", "protected", "write_ok",
                                           "victim_held", "separation"});

    TablePrinter table({"beta", "segmented-ground RA", "write", "victim",
                        "victim separation"});
    for (double beta : {0.6, 0.8, 1.0, 1.5}) {
        for (bool protect : {false, true}) {
            const Outcome out = run_case(beta, protect);
            table.add_row({format_sci(beta, 1), protect ? "on" : "off",
                           out.write_ok ? "ok" : "FAIL",
                           out.victim_held ? "held" : "FLIPPED",
                           core::format_margin(out.victim_separation)});
            csv.write_row({format_sci(beta, 2), protect ? "1" : "0",
                           out.write_ok ? "1" : "0",
                           out.victim_held ? "1" : "0",
                           format_sci(out.victim_separation, 4)});
        }
    }
    std::cout << table.render();

    bench::expectation(
        "at the paper's beta = 0.6 the unprotected victim flips (the "
        "drawback the paper concedes); the segmented-virtual-ground "
        "GND-lowering assist restores full retention without disturbing "
        "the written column. At large beta the victim survives unassisted, "
        "but then the write itself needs assistance — the same tension, "
        "array-level.");
    return 0;
}
