// Fig. 12 reproduction: WLcrit (a) and DRNM (b) versus VDD for the
// compared designs. The asymmetric 6T cell has no write separatrix, so its
// WLcrit is undefined and the WLcrit plot carries only three curves — the
// same caveat the paper notes.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Fig. 12", "write and read margins vs VDD");
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("fig12_margins");
    csv.write_row(
        std::vector<std::string>{"vdd", "design", "wlcrit", "drnm"});

    TablePrinter wl_table([&] {
        std::vector<std::string> h = {"VDD"};
        for (const auto& d :
             sram::comparison_designs(0.8, bench::standard_models()))
            if (d.wlcrit_defined)
                h.push_back(d.name);
        return h;
    }());
    TablePrinter dr_table([&] {
        std::vector<std::string> h = {"VDD"};
        for (const auto& d :
             sram::comparison_designs(0.8, bench::standard_models()))
            h.push_back(d.name);
        return h;
    }());

    for (double vdd : bench::vdd_sweep()) {
        std::vector<std::string> wl_row = {format_sci(vdd, 1)};
        std::vector<std::string> dr_row = {format_sci(vdd, 1)};
        for (const auto& design :
             sram::comparison_designs(vdd, bench::standard_models())) {
            sram::SramCell cell = sram::build_cell(design.config);
            double wl = std::nan("");
            if (design.wlcrit_defined) {
                wl = sram::critical_wordline_pulse(cell, design.write_assist,
                                                   opts);
                wl_row.push_back(core::format_pulse(wl));
            }
            const auto d =
                sram::dynamic_read_noise_margin(cell, design.read_assist, opts);
            const double drnm = d.valid && !d.flipped ? d.drnm : 0.0;
            dr_row.push_back(core::format_margin(drnm));
            csv.write_row({format_sci(vdd, 2), design.name,
                           format_sci(wl, 6), format_sci(drnm, 6)});
        }
        wl_table.add_row(wl_row);
        dr_table.add_row(dr_row);
    }
    std::cout << "-- WLcrit (asymmetric 6T: undefined, no separatrix) --\n"
              << wl_table.render() << '\n'
              << "-- DRNM --\n"
              << dr_table.render();

    bench::expectation(
        "all TFET designs have larger WLcrit than CMOS (unidirectional "
        "conduction); among them the proposed cell is smallest. DRNM: the "
        "7T cell leads at high VDD thanks to its read buffer; the proposed "
        "cell with GND-lowering RA takes over at the low-VDD end.");
    return 0;
}
