// Ablation beyond the paper: the paper fixes every assist at 30 % of VDD
// "for the sake of fair comparison". This sweep varies the assist strength
// from 10 % to 50 % for the winning techniques (GND-lowering RA on the
// proposed cell; GND-raising WA on a beta = 2 cell) to expose how much of
// the margin the chosen operating point actually buys.

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Ablation", "assist strength sweep (10-50 % of VDD)");
    sram::MetricOptions opts;
    auto csv = bench::open_csv("ablation_assist_strength");
    csv.write_row(std::vector<std::string>{"fraction", "drnm_gnd_lowering",
                                           "flip", "wlcrit_gnd_raising"});

    TablePrinter table({"assist fraction", "DRNM @ beta=0.6 (GND-lower RA)",
                        "WLcrit @ beta=2 (GND-raise WA)"});
    for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        opts.assist_fraction = frac;

        sram::CellConfig ra_cfg;
        ra_cfg.kind = sram::CellKind::kTfet6T;
        ra_cfg.access = sram::AccessDevice::kInwardP;
        ra_cfg.beta = 0.6;
        ra_cfg.models = bench::standard_models();
        sram::SramCell ra_cell = sram::build_cell(ra_cfg);
        const auto d = sram::dynamic_read_noise_margin(
            ra_cell, frac == 0.0 ? sram::Assist::kNone
                                 : sram::Assist::kRaGndLowering,
            opts);

        sram::CellConfig wa_cfg = ra_cfg;
        wa_cfg.beta = 2.0;
        sram::SramCell wa_cell = sram::build_cell(wa_cfg);
        const double wl = sram::critical_wordline_pulse(
            wa_cell,
            frac == 0.0 ? sram::Assist::kNone : sram::Assist::kWaGndRaising,
            opts);

        table.add_row({format_sci(frac, 1),
                       d.flipped ? "flip" : core::format_margin(d.drnm),
                       core::format_pulse(wl)});
        csv.write_row({frac, d.flipped ? 0.0 : d.drnm,
                       d.flipped ? 1.0 : 0.0, wl});
    }
    std::cout << table.render();

    bench::expectation(
        "reads flip without assist and recover somewhere between 10 % and "
        "30 %; write assistance improves WLcrit monotonically with "
        "strength. The paper's 30 % sits comfortably past the read-rescue "
        "knee for both.");
    return 0;
}
