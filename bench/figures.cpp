// Runner-based implementations of the ported figures. The pattern shared
// by all three: build one setup task for the tabulated model set, one
// cacheable task per sweep point keyed on every input that matters, run
// the graph, then assemble console table + CSV from the (possibly
// replayed) TaskResults — so a warm run is byte-identical to the cold one.

#include "figures.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "array/array.hpp"
#include "bench_common.hpp"
#include "hier/engine.hpp"
#include "mc/statistics.hpp"
#include "mc/yield.hpp"
#include "spice/solve_error.hpp"

namespace tfetsram::bench {

namespace {

/// Setup node shared by every sweep: forces the one-per-process model
/// tables to build before the sweep tasks fan out (they'd otherwise
/// serialize on the magic static the first time through).
runner::TaskId add_models_task(runner::Runner& r) {
    runner::TaskSpec spec;
    spec.id = "build_models";
    spec.setup_only = true;
    spec.fn = [] {
        standard_models();
        return runner::TaskResult{};
    };
    return r.add(std::move(spec));
}

/// Censoring-adjusted 95% yield interval, formatted "p [lo, hi]". `passes`
/// of the `samples - censored` evaluated samples passed; the bounds treat
/// the censored samples as worst-case in each direction.
std::string censored_yield_text(std::size_t passes, std::size_t samples,
                                std::size_t censored) {
    const std::size_t evaluated = samples - censored;
    if (evaluated == 0)
        return "n/a (all censored)";
    const mc::YieldInterval yi =
        mc::censored_yield_interval(passes, evaluated, censored);
    return format_sci(yi.point, 3) + " [" + format_sci(yi.lower, 3) + ", " +
           format_sci(yi.upper, 3) + "]";
}

} // namespace

// ------------------------------------------------------------- Fig. 6(e)

int run_fig6_write_assist(const runner::RunnerConfig& config) {
    runner::RunnerConfig cfg = config;
    cfg.run_name = "fig6_write_assist";
    banner("Fig. 6(e)",
           "write-assist effectiveness: WLcrit vs beta (VDD = 0.8 V)");

    const sram::MetricOptions opts;
    const std::vector<double> betas = {1.0, 1.5, 2.0, 2.5, 3.0};

    runner::Runner r(cfg);
    const runner::TaskId models = add_models_task(r);
    // task ids laid out as points[beta_index][assist_index]
    std::vector<std::vector<runner::TaskId>> points;
    for (double beta : betas) {
        auto& row = points.emplace_back();
        for (sram::Assist a : sram::kWriteAssists) {
            runner::TaskSpec spec;
            spec.id = "wlcrit beta=" + format_sci(beta, 1) + " " +
                      sram::to_string(a);
            spec.deps = {models};
            spec.key = runner::CacheKey("fig6_wlcrit")
                           .add("model", device::kModelSetVersion)
                           .add("cell", "tfet6t")
                           .add("access", "inward_p")
                           .add("beta", beta)
                           .add("assist", sram::to_string(a));
            spec.fn = [beta, a, opts] {
                sram::CellConfig cell_cfg;
                cell_cfg.kind = sram::CellKind::kTfet6T;
                cell_cfg.access = sram::AccessDevice::kInwardP;
                cell_cfg.beta = beta;
                cell_cfg.models = standard_models();
                sram::SramCell cell = sram::build_cell(cell_cfg);
                const double wl =
                    sram::critical_wordline_pulse(cell, a, opts);
                // NaN is the metric's "simulation failed" sentinel (unlike
                // +inf, which is a legit write-failure outcome): surface it
                // as a structured solver error so the runner can retry or
                // quarantine this sweep point.
                if (std::isnan(wl)) {
                    spice::SolveError err;
                    err.code = spice::SolveErrorCode::kNonConvergence;
                    err.message = "wlcrit: transient simulation failed";
                    throw spice::SolveException(std::move(err));
                }
                runner::TaskResult result;
                result.set("csv", format_sci(wl, 8));
                result.set("pulse", core::format_pulse(wl));
                return result;
            };
            row.push_back(r.add(std::move(spec)));
        }
    }
    r.run();

    TablePrinter table([&] {
        std::vector<std::string> h = {"beta"};
        for (sram::Assist a : sram::kWriteAssists)
            h.push_back(sram::to_string(a));
        return h;
    }());
    auto csv = open_csv("fig6_write_assist", cfg);
    csv.write_row(std::vector<std::string>{"beta", "vdd_lowering",
                                           "gnd_raising", "wl_lowering",
                                           "bl_raising"});
    for (std::size_t b = 0; b < betas.size(); ++b) {
        std::vector<std::string> row = {format_sci(betas[b], 1)};
        std::vector<std::string> cells = {format_sci(betas[b], 8)};
        for (runner::TaskId id : points[b]) {
            row.push_back(value_or(r, id, "pulse", "QUARANTINED"));
            cells.push_back(value_or(r, id, "csv", "nan"));
        }
        table.add_row(row);
        csv.write_row(cells);
    }
    std::cout << table.render();

    expectation(
        "at low beta the access-strengthening assists (wordline lowering, "
        "bitline raising) give the smallest WLcrit; their advantage "
        "vanishes as beta grows, where weakening the pull-downs (GND "
        "raising — and in the paper also VDD lowering) wins. Deviation "
        "documented in EXPERIMENTS.md: in our device physics VDD lowering "
        "stays finite but degrades at large beta, because the unidirectional "
        "pull-up limits how fast the internal high node can track the "
        "lowered rail.");
    return 0;
}

// --------------------------------------------------------------- Fig. 10

int run_fig10_mc_read_assist(const runner::RunnerConfig& config) {
    runner::RunnerConfig cfg = config;
    cfg.run_name = "fig10_mc_read_assist";
    const std::size_t samples = mc::mc_samples_from_env(60);
    constexpr std::uint64_t kSeed = 0xF10u;
    banner("Fig. 10", "process variation vs read assists (beta = 0.6, " +
                          std::to_string(samples) + " samples)");
    const sram::MetricOptions opts;

    sram::CellConfig cell_cfg;
    cell_cfg.kind = sram::CellKind::kTfet6T;
    cell_cfg.access = sram::AccessDevice::kInwardP;
    cell_cfg.beta = 0.6;

    runner::Runner r(cfg);
    const runner::TaskId models = add_models_task(r);
    auto base_key = [&](const char* metric_name) {
        return runner::CacheKey("fig10_mc")
            .add("model", device::kModelSetVersion)
            .add("cell", "tfet6t")
            .add("access", "inward_p")
            .add("beta", cell_cfg.beta)
            .add("samples", samples)
            .add("seed", static_cast<std::size_t>(kSeed))
            .add("metric", metric_name);
    };

    // One task per read-assist technique; MC parallelism is across
    // techniques (each task's inner Monte-Carlo runs serially and is
    // deterministic in the seed either way).
    std::vector<runner::TaskId> drnm_tasks;
    for (sram::Assist a : sram::kReadAssists) {
        runner::TaskSpec spec;
        spec.id = std::string("mc_drnm ") + sram::to_string(a);
        spec.deps = {models};
        spec.key = base_key("drnm").add("assist", sram::to_string(a));
        spec.fn = [cell_cfg, a, opts, samples] {
            sram::CellConfig mc_cfg = cell_cfg;
            mc_cfg.models = standard_models();
            mc::VariationSpec vspec;
            const mc::TfetVariationSampler sampler(vspec);
            const mc::McResult res = mc::run_monte_carlo(
                mc_cfg, sampler, samples, kSeed,
                [&](sram::SramCell& cell) {
                    const auto d =
                        sram::dynamic_read_noise_margin(cell, a, opts);
                    // !valid means the solver never produced a verdict:
                    // throw so the MC driver retries and censors, instead
                    // of counting it as if it were a read flip.
                    if (!d.valid) {
                        spice::SolveError err;
                        err.code = spice::SolveErrorCode::kNonConvergence;
                        err.message = "drnm: read transient failed";
                        throw spice::SolveException(std::move(err));
                    }
                    // A flip is a legit failure outcome: report NaN so the
                    // summary counts it out of the moments.
                    if (d.flipped)
                        return std::nan("");
                    return d.drnm;
                },
                /*threads=*/1);
            runner::TaskResult result;
            for (std::size_t i = 0; i < res.samples.size(); ++i)
                result.rows.push_back({sram::to_string(a), std::to_string(i),
                                       res.censored[i]
                                           ? std::string("censored")
                                           : format_sci(res.samples[i], 6)});
            result.set("hist", res.histogram(12).render());
            result.set("mean", core::format_margin(res.summary.mean));
            result.set("stddev", core::format_margin(res.summary.stddev));
            result.set("min", core::format_margin(res.summary.min));
            result.set("max", core::format_margin(res.summary.max));
            result.set("flips", std::to_string(res.summary.n_infinite));
            result.set("censored", std::to_string(res.n_censored));
            result.set("yield", censored_yield_text(
                                    res.summary.count, samples,
                                    res.n_censored));
            return result;
        };
        drnm_tasks.push_back(r.add(std::move(spec)));
    }

    // Fig. 10(e): WLcrit under variation at the RA sizing.
    runner::TaskSpec wl_spec;
    wl_spec.id = "mc_wlcrit";
    wl_spec.deps = {models};
    wl_spec.key = base_key("wlcrit");
    wl_spec.fn = [cell_cfg, opts, samples] {
        sram::CellConfig mc_cfg = cell_cfg;
        mc_cfg.models = standard_models();
        mc::VariationSpec vspec;
        const mc::TfetVariationSampler sampler(vspec);
        const mc::McResult wl = mc::run_monte_carlo(
            mc_cfg, sampler, samples, kSeed,
            [&](sram::SramCell& cell) {
                const double p = sram::critical_wordline_pulse(
                    cell, sram::Assist::kNone, opts);
                // NaN = solver failure (censor via retry); +inf = genuine
                // write failure (legit data, kept).
                if (std::isnan(p)) {
                    spice::SolveError err;
                    err.code = spice::SolveErrorCode::kNonConvergence;
                    err.message = "wlcrit: transient simulation failed";
                    throw spice::SolveException(std::move(err));
                }
                return p;
            },
            /*threads=*/1);
        runner::TaskResult result;
        result.set("hist", wl.histogram(12).render());
        result.set("mean", core::format_pulse(wl.summary.mean));
        result.set("stddev", core::format_pulse(wl.summary.stddev));
        result.set("cv",
                   format_sci(wl.summary.stddev / wl.summary.mean, 2));
        result.set("failures", std::to_string(wl.summary.n_infinite));
        result.set("censored", std::to_string(wl.n_censored));
        result.set("yield", censored_yield_text(wl.summary.count, samples,
                                                wl.n_censored));
        return result;
    };
    const runner::TaskId wl_task = r.add(std::move(wl_spec));

    // Fig. 10 extension (ROADMAP item 3): a true failure-probability
    // estimate for WLcrit instead of a 64-sample histogram. The failure
    // surface is self-calibrated from the metric's log-linear tox
    // sensitivity — wl(u) ~ wl0 * exp(c u) from evaluations at u = 0, +-2
    // — and "failure" means WLcrit beyond its 4-sigma projection (or a
    // genuine +inf write failure). Importance sampling with a defensive
    // mixture shifted to the failing tail makes the tail reachable within
    // a histogram-sized solve budget.
    const std::size_t yield_budget =
        std::max<std::size_t>(mc::mc_samples_from_env(64), 32);
    runner::TaskSpec yield_spec;
    yield_spec.id = "mc_yield_wlcrit";
    yield_spec.deps = {models};
    yield_spec.key = base_key("yield_wlcrit")
                         .add("estimator", "is_shift4_defensive")
                         .add("budget", yield_budget);
    yield_spec.fn = [cell_cfg, opts, yield_budget] {
        sram::CellConfig mc_cfg = cell_cfg;
        mc_cfg.models = standard_models();
        const auto wl_metric = [opts](sram::SramCell& cell) {
            const double p = sram::critical_wordline_pulse(
                cell, sram::Assist::kNone, opts);
            if (std::isnan(p)) {
                spice::SolveError err;
                err.code = spice::SolveErrorCode::kNonConvergence;
                err.message = "yield: wlcrit transient failed";
                throw spice::SolveException(std::move(err));
            }
            return p;
        };

        const mc::TfetVariationSampler sampler(mc::VariationSpec{});
        const auto eval_at = [&](double u) {
            sram::CellConfig c = mc_cfg;
            c.models = sampler.sample_at(u).models;
            sram::SramCell cell = sram::build_cell(c);
            return wl_metric(cell);
        };
        const double wl0 = eval_at(0.0);
        const double wl_hi = eval_at(2.0);
        const double wl_lo = eval_at(-2.0);
        if (!(wl0 > 0.0) || !std::isfinite(wl_hi) || !std::isfinite(wl_lo)) {
            spice::SolveError err;
            err.code = spice::SolveErrorCode::kNonConvergence;
            err.message = "yield: calibration points not finite";
            throw spice::SolveException(std::move(err));
        }
        const double slope = (std::log(wl_hi) - std::log(wl_lo)) / 4.0;
        const double limit = wl0 * std::exp(4.0 * std::abs(slope));
        const double shift = slope < 0.0 ? -4.0 : 4.0;

        mc::CellYieldProblem problem;
        problem.config = mc_cfg;
        problem.variation = mc::VariationSpec{};
        problem.metric = wl_metric;
        problem.fails = [limit](double v) { return !(v <= limit); };

        mc::YieldOptions yopts;
        yopts.proposal = mc::GaussianMixture::shifted(shift);
        yopts.batch = 16;
        yopts.min_samples = 32;
        yopts.max_samples = yield_budget;
        yopts.min_failures = 4;
        yopts.target_rel_halfwidth = 0.5;
        mc::BatchStats bstats;
        const mc::YieldEstimate est = mc::estimate_cell_yield(
            spice::ambient_context(), problem, yopts, kSeed,
            /*threads=*/1, mc::McPolicy{}, &bstats);

        runner::TaskResult result;
        result.set("limit", core::format_pulse(limit));
        result.set("p_fail", format_sci(est.p_fail, 4));
        result.set("ci", "[" + format_sci(est.lower, 3) + ", " +
                             format_sci(est.upper, 3) + "]");
        result.set("sigma", format_sci(est.sigma_level, 3));
        result.set("samples", std::to_string(est.n_samples));
        result.set("fails", std::to_string(est.n_fail));
        result.set("censored", std::to_string(est.n_censored));
        result.set("converged", est.converged ? "yes" : "budget");
        result.set("bench:yield_p_fail", format_sci(est.p_fail, 6));
        result.set("bench:yield_lower", format_sci(est.lower, 6));
        result.set("bench:yield_upper", format_sci(est.upper, 6));
        result.set("bench:yield_upper_censored",
                   format_sci(est.upper_censored, 6));
        result.set("bench:yield_sigma_level", format_sci(est.sigma_level, 6));
        result.set("bench:yield_n_samples", std::to_string(est.n_samples));
        result.set("bench:yield_ess", format_sci(est.ess, 6));
        result.set("bench:yield_model_retargets",
                   std::to_string(bstats.model_retargets));
        return result;
    };
    const runner::TaskId yield_task = r.add(std::move(yield_spec));
    r.run();

    auto csv = open_csv("fig10_mc_read_assist", cfg);
    csv.write_row(std::vector<std::string>{"technique", "sample", "drnm"});
    TablePrinter summary({"technique", "mean", "stddev", "min", "max",
                          "flips", "cens", "yield (95% CI)"});
    for (std::size_t t = 0; t < drnm_tasks.size(); ++t) {
        const runner::TaskId id = drnm_tasks[t];
        const runner::TaskResult& res = r.result(id);
        for (const auto& row : res.rows)
            csv.write_row(row);
        summary.add_row({sram::to_string(sram::kReadAssists[t]),
                         value_or(r, id, "mean", "QUARANTINED"),
                         value_or(r, id, "stddev", "-"),
                         value_or(r, id, "min", "-"),
                         value_or(r, id, "max", "-"),
                         value_or(r, id, "flips", "-"),
                         value_or(r, id, "censored", "-"),
                         value_or(r, id, "yield", "-")});
        std::cout << "-- DRNM occurrences, "
                  << sram::to_string(sram::kReadAssists[t]) << " --\n"
                  << value_or(r, id, "hist", "(quarantined)\n") << '\n';
    }
    std::cout << summary.render() << '\n';

    std::cout << "-- WLcrit occurrences (beta = 0.6, no WA needed) --\n"
              << value_or(r, wl_task, "hist", "(quarantined)\n");
    std::cout << "WLcrit spread: mean "
              << value_or(r, wl_task, "mean", "QUARANTINED") << ", stddev "
              << value_or(r, wl_task, "stddev", "-")
              << " (cv = " << value_or(r, wl_task, "cv", "-")
              << "), failures " << value_or(r, wl_task, "failures", "-")
              << ", censored " << value_or(r, wl_task, "censored", "-")
              << ", yield " << value_or(r, wl_task, "yield", "-") << "\n";

    std::cout << "WLcrit tail risk (importance-sampled, limit "
              << value_or(r, yield_task, "limit", "QUARANTINED")
              << "): p_fail " << value_or(r, yield_task, "p_fail", "-")
              << " 95% CI " << value_or(r, yield_task, "ci", "-") << " ("
              << value_or(r, yield_task, "sigma", "-") << " sigma, "
              << value_or(r, yield_task, "samples", "-") << " samples, "
              << value_or(r, yield_task, "fails", "-") << " fails, "
              << value_or(r, yield_task, "censored", "-") << " censored, "
              << value_or(r, yield_task, "converged", "-") << ")\n";

    expectation(
        "DRNM is minimally impacted by variation for all RA techniques; the "
        "WLcrit spread at beta = 0.6 is much smaller than in the WA study "
        "(Fig. 9) thanks to the much stronger access transistors. This "
        "motivates the final design: small beta + GND-lowering RA.");
    return 0;
}

// --------------------------------------------------------- array scaling

int run_array_scaling(const runner::RunnerConfig& config) {
    runner::RunnerConfig cfg = config;
    cfg.run_name = "array_scaling";
    banner("Array scaling",
           "write+read wall time vs array size (flat and mixed engines)");
    using clk = std::chrono::steady_clock;

    // Sizes up to 16x8 run flat (the regime the differential tests cover);
    // taller arrays route to the mixed-level engine (hier::ArrayEngine
    // kAuto), which is what carries the sweep to the paper-scale
    // 1024-cells-per-bitline column (docs/HIERARCHY.md).
    const std::vector<std::pair<std::size_t, std::size_t>> sizes = {
        {2, 2},  {4, 2},  {4, 4},    {8, 4},    {8, 8},
        {16, 8}, {32, 8}, {128, 16}, {512, 16}, {1024, 16}};

    runner::Runner r(cfg);
    const runner::TaskId models = add_models_task(r);
    std::vector<runner::TaskId> tasks;
    for (const auto& [rows, cols] : sizes) {
        runner::TaskSpec spec;
        spec.id = "array " + std::to_string(rows) + "x" +
                  std::to_string(cols);
        spec.deps = {models};
        // Note the timings below are part of the cached result: a warm run
        // replays the recorded cold measurement (by design — the CSV is a
        // record of the characterization, and byte-identical replay is the
        // cache's contract). Run with TFETSRAM_CACHE=off to re-measure.
        // schema v3: the sweep routes through hier::ArrayEngine; rows grew
        // engine + hier event-counter columns, and the solver columns now
        // describe the active partition on mixed points.
        spec.key = runner::CacheKey("array_scaling")
                       .add("schema", 3)
                       .add("model", device::kModelSetVersion)
                       .add("design", "proposed@0.8")
                       .add("read_assist", "ra_gnd_lowering")
                       .add("rows", rows)
                       .add("cols", cols);
        spec.fn = [rows = rows, cols = cols] {
            array::ArrayConfig acfg;
            acfg.rows = rows;
            acfg.cols = cols;
            acfg.cell = sram::proposed_design(0.8, standard_models()).config;
            acfg.read_assist = sram::Assist::kRaGndLowering;
            // Longer bitlines need a longer sensing window: the read
            // differential develops as one cell discharges a bitline cap
            // proportional to the row count, so at the default 400 ps a
            // >=128-row column never reaches the sense margin (the same
            // would hold flat — it's bitline physics, not the engine).
            // Scale the window with the rows beyond the 32-row reference.
            if (rows > 32)
                acfg.read_duration *= static_cast<double>(rows) / 32.0;
            hier::ArrayEngine eng(acfg);

            const auto t0 = clk::now();
            std::vector<std::vector<bool>> zeros(
                rows, std::vector<bool>(cols, false));
            const bool init_ok = eng.initialize(zeros);
            const auto t1 = clk::now();
            bool ok = init_ok;
            if (init_ok)
                ok = eng.write(rows / 2, cols / 2, true).ok;
            const auto t2 = clk::now();
            bool read_ok = false;
            if (ok) {
                const array::ReadResult rd = eng.read(rows / 2, cols / 2);
                read_ok = rd.ok && rd.value;
            }
            const auto t3 = clk::now();

            auto secs = [](clk::time_point a, clk::time_point b) {
                return std::chrono::duration<double>(b - a).count();
            };
            const bool functional = ok && read_ok;
            // Which linear kernel the governing system ran on — the whole
            // array flat, the per-operation active partition mixed — and
            // how sparse it was (docs/SOLVER.md, docs/HIERARCHY.md).
            const array::SolverInfo si = eng.solver_info();
            const bool sparse = si.kind == spice::SolverKind::kSparse;
            const hier::HierStats* hs = eng.hier_stats();
            runner::TaskResult result;
            result.set("engine", eng.mixed() ? "mixed" : "flat");
            result.set("transistors", std::to_string(eng.transistors()));
            result.set("unknowns", std::to_string(si.unknowns));
            result.set("init", format_si(secs(t0, t1), "s"));
            result.set("write", format_si(secs(t1, t2), "s"));
            result.set("read", format_si(secs(t2, t3), "s"));
            result.set("functional", functional ? "yes" : "NO");
            result.set("solver", sparse ? "sparse" : "dense");
            result.set("pattern_nnz", std::to_string(si.pattern_nnz));
            result.set("lu_nnz", std::to_string(si.lu_nnz));
            result.set("fill_ratio", format_sci(si.fill_ratio, 3));
            result.set("hier_promotions",
                       std::to_string(hs != nullptr ? hs->promotions : 0));
            result.set("hier_demotions",
                       std::to_string(hs != nullptr ? hs->demotions : 0));
            result.set(
                "hier_relinearizations",
                std::to_string(hs != nullptr ? hs->relinearizations : 0));
            result.set("hier_guard_retries",
                       std::to_string(hs != nullptr ? hs->guard_retries : 0));
            result.rows.push_back(
                {format_sci(static_cast<double>(rows), 8),
                 format_sci(static_cast<double>(cols), 8),
                 eng.mixed() ? "mixed" : "flat",
                 format_sci(static_cast<double>(eng.transistors()), 8),
                 format_sci(static_cast<double>(si.unknowns), 8),
                 format_sci(secs(t0, t1), 8), format_sci(secs(t1, t2), 8),
                 format_sci(secs(t2, t3), 8),
                 format_sci(functional ? 1.0 : 0.0, 8),
                 sparse ? "sparse" : "dense",
                 format_sci(static_cast<double>(si.pattern_nnz), 8),
                 format_sci(static_cast<double>(si.lu_nnz), 8),
                 format_sci(si.fill_ratio, 8),
                 format_sci(static_cast<double>(
                                hs != nullptr ? hs->promotions : 0),
                            8),
                 format_sci(static_cast<double>(
                                hs != nullptr ? hs->guard_retries : 0),
                            8)});
            return result;
        };
        tasks.push_back(r.add(std::move(spec)));
    }
    r.run();

    auto csv = open_csv("array_scaling", cfg);
    csv.write_row(std::vector<std::string>{
        "rows", "cols", "engine", "transistors", "unknowns", "init_s",
        "write_s", "read_s", "ok", "solver", "pattern_nnz", "lu_nnz",
        "fill_ratio", "hier_promotions", "hier_guard_retries"});
    TablePrinter table({"array", "engine", "transistors", "unknowns",
                        "solver", "nnz", "fill", "init", "write", "read",
                        "functional"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const runner::TaskId id = tasks[i];
        table.add_row({std::to_string(sizes[i].first) + "x" +
                           std::to_string(sizes[i].second),
                       value_or(r, id, "engine", "QUARANTINED"),
                       value_or(r, id, "transistors", "-"),
                       value_or(r, id, "unknowns", "-"),
                       value_or(r, id, "solver", "-"),
                       value_or(r, id, "pattern_nnz", "-"),
                       value_or(r, id, "fill_ratio", "-"),
                       value_or(r, id, "init", "-"),
                       value_or(r, id, "write", "-"),
                       value_or(r, id, "read", "-"),
                       value_or(r, id, "functional", "-")});
        for (const auto& row : r.result(id).rows)
            csv.write_row(row);
    }
    std::cout << table.render();

    expectation(
        "functional behaviour holds at every size. Flat points stay on the "
        "dense kernel until the ~64-unknown threshold routes them to sparse "
        "LU; mixed points report the *active partition* (accessed row + "
        "sentinels + per-column lumped loads), whose unknown count is set "
        "by the column count rather than the row count — which is what "
        "makes the 1024-cells-per-bitline column tractable.");
    return 0;
}

// --------------------------------------------------------------- registry

const std::vector<Figure>& ported_figures() {
    static const std::vector<Figure> figures = {
        {"fig6_write_assist",
         "Fig. 6(e): WLcrit vs beta for the write assists",
         run_fig6_write_assist},
        {"fig10_mc_read_assist",
         "Fig. 10: Monte-Carlo read-assist study at beta = 0.6",
         run_fig10_mc_read_assist},
        {"array_scaling", "array write/read wall time vs size",
         run_array_scaling},
        {"cell_zoo",
         "cell zoo: every registered design x (VDD, T, Tox) corner grid",
         run_cell_zoo},
        {"microbench", "solver hot-path counters and wall time",
         run_microbench},
    };
    return figures;
}

} // namespace tfetsram::bench
