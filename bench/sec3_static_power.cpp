// Sec. 3 static-power study: hold power of the 6T TFET SRAM for all four
// access-device choices at VDD = 0.6 V and 0.8 V, against the 32 nm CMOS
// baseline. Reproduces the "5 and 9 orders of magnitude" outward penalty
// and the "6-7 orders below CMOS" headline.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Sec. 3", "hold static power by access-device choice");
    const device::ModelSet& models = bench::standard_models();
    const sram::MetricOptions opts;

    auto csv = bench::open_csv("sec3_static_power");
    csv.write_row(std::vector<std::string>{"vdd", "config", "watts"});

    for (double vdd : {0.6, 0.8}) {
        TablePrinter table({"cell (VDD=" + format_sci(vdd, 1) + ")",
                            "static power", "vs inward pTFET"});
        double p_inward_p = 0.0;
        struct Row {
            std::string name;
            double power;
        };
        std::vector<Row> rows;

        for (auto access :
             {sram::AccessDevice::kInwardP, sram::AccessDevice::kInwardN,
              sram::AccessDevice::kOutwardP, sram::AccessDevice::kOutwardN}) {
            sram::CellConfig cfg;
            cfg.kind = sram::CellKind::kTfet6T;
            cfg.access = access;
            cfg.vdd = vdd;
            cfg.models = models;
            sram::SramCell cell = sram::build_cell(cfg);
            const double p = sram::worst_hold_static_power(cell, opts);
            if (access == sram::AccessDevice::kInwardP)
                p_inward_p = p;
            rows.push_back({sram::to_string(access), p});
        }
        {
            sram::SramCell cmos =
                sram::build_cell(sram::cmos_design(vdd, models).config);
            rows.push_back({"6T CMOS (32nm)",
                            sram::worst_hold_static_power(cmos, opts)});
        }

        for (const Row& r : rows) {
            const double orders = std::log10(r.power / p_inward_p);
            table.add_row({r.name, core::format_power(r.power),
                           "10^" + format_sci(orders, 1)});
            csv.write_row({format_sci(vdd, 2), r.name, format_sci(r.power, 6)});
        }
        std::cout << table.render() << '\n';
    }

    bench::expectation(
        "outward access leaks ~5 orders more at 0.6 V and ~9 orders more at "
        "0.8 V (reverse-biased p-i-n path); CMOS sits 6-7 orders above the "
        "inward TFET cells.");
    return 0;
}
