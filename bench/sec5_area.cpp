// Sec. 5 area comparison: the three 6T designs share the minimum area; the
// 7T cell's extra read transistor costs 10-15 %.

#include "bench_common.hpp"
#include "sram/area.hpp"

using namespace tfetsram;

int main() {
    bench::banner("Sec. 5 (area)", "cell area comparison");

    auto csv = bench::open_csv("sec5_area");
    csv.write_row(std::vector<std::string>{"design", "area_um2",
                                           "vs_proposed_percent"});

    const auto designs = sram::comparison_designs(0.8, bench::standard_models());
    double a_prop = 0.0;
    TablePrinter table({"design", "transistors", "area [um^2]",
                        "vs proposed"});
    for (const auto& design : designs) {
        sram::SramCell cell = sram::build_cell(design.config);
        const double a = sram::cell_area(cell);
        if (design.config.kind == sram::CellKind::kTfet6T)
            a_prop = a;
        const double pct = a_prop > 0.0 ? (a / a_prop - 1.0) * 100.0 : 0.0;
        table.add_row({design.name,
                       std::to_string(cell.circuit.transistors().size()),
                       format_sci(a, 3), format_sci(pct, 2) + " %"});
        csv.write_row({design.name, format_sci(a, 6), format_sci(pct, 4)});
    }
    std::cout << table.render();

    // The isolated cost of the read port: compare the 7T cell against a 6T
    // TFET cell with the same internal sizing (beta), as the paper does.
    {
        sram::CellConfig six = sram::proposed_design(0.8, bench::standard_models()).config;
        sram::CellConfig seven = sram::tfet7t_design(0.8, bench::standard_models()).config;
        six.beta = seven.beta;
        sram::SramCell c6 = sram::build_cell(six);
        sram::SramCell c7 = sram::build_cell(seven);
        const double premium =
            (sram::cell_area(c7) / sram::cell_area(c6) - 1.0) * 100.0;
        std::cout << "\n7T read-port premium at matched sizing: "
                  << format_sci(premium, 2) << " %  (paper: 10-15 %)\n";
    }

    bench::expectation(
        "the 6T designs occupy the minimum area; the 7T read port costs an "
        "unavoidable 10-15 % increase.");
    return 0;
}
