// Google-benchmark microbenchmarks of the simulation kernels: device model
// evaluation (analytic vs lookup table), table extraction, dense LU, DC
// operating points, and a full write transient. These quantify the cost
// structure behind the figure-reproduction harness.

#include <benchmark/benchmark.h>

#include "device/models.hpp"
#include "device/table_builder.hpp"
#include "la/lu.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"
#include "util/rng.hpp"

using namespace tfetsram;

namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

void BM_TfetAnalyticEval(benchmark::State& state) {
    const auto m = device::make_ntfet();
    Rng rng(1);
    double vgs = 0.5;
    double vds = 0.5;
    for (auto _ : state) {
        vgs = vgs > 1.0 ? -1.0 : vgs + 1e-3;
        vds = vds > 1.0 ? -1.0 : vds + 1.3e-3;
        benchmark::DoNotOptimize(m->iv(vgs, vds));
    }
}
BENCHMARK(BM_TfetAnalyticEval);

void BM_TfetTableEval(benchmark::State& state) {
    const auto& m = models().ntfet;
    double vgs = 0.5;
    double vds = 0.5;
    for (auto _ : state) {
        vgs = vgs > 1.0 ? -1.0 : vgs + 1e-3;
        vds = vds > 1.0 ? -1.0 : vds + 1.3e-3;
        benchmark::DoNotOptimize(m->iv(vgs, vds));
    }
}
BENCHMARK(BM_TfetTableEval);

void BM_TableExtraction(benchmark::State& state) {
    const auto src = device::make_ntfet();
    device::TableSpec spec;
    spec.points = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(device::build_table(*src, spec));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TableExtraction)->Arg(61)->Arg(121)->Arg(241)->Complexity();

void BM_DenseLu(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    la::Matrix a(n, n);
    la::Vector b(n);
    for (std::size_t r = 0; r < n; ++r) {
        b[r] = rng.uniform(-1, 1);
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
        a(r, r) += 4.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(la::solve_linear(a, b));
}
BENCHMARK(BM_DenseLu)->Arg(8)->Arg(16)->Arg(32);

void BM_HoldOperatingPoint(benchmark::State& state) {
    sram::SramCell cell =
        sram::build_cell(sram::proposed_design(0.8, models()).config);
    sram::program_hold(cell);
    const spice::SolverOptions opts;
    for (auto _ : state) {
        const sram::HoldState hs = sram::solve_hold_state(cell, true, opts);
        benchmark::DoNotOptimize(hs.x);
    }
}
BENCHMARK(BM_HoldOperatingPoint);

void BM_WriteTransient(benchmark::State& state) {
    sram::SramCell cell =
        sram::build_cell(sram::proposed_design(0.8, models()).config);
    const sram::MetricOptions opts;
    for (auto _ : state) {
        const sram::WriteOutcome out =
            sram::attempt_write(cell, 300e-12, sram::Assist::kNone, opts);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_WriteTransient);

void BM_DrnmRead(benchmark::State& state) {
    sram::SramCell cell =
        sram::build_cell(sram::proposed_design(0.8, models()).config);
    const sram::MetricOptions opts;
    for (auto _ : state) {
        const auto d = sram::dynamic_read_noise_margin(
            cell, sram::Assist::kRaGndLowering, opts);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DrnmRead);

} // namespace

BENCHMARK_MAIN();
