// Microbenchmark harness for the solver hot paths. Eleven small, fixed
// workloads — cold DC operating point, warm-started DC re-solve, a full
// write transient, a WLcrit bisection, an SNM butterfly trace, a
// 64-sample Monte-Carlo batch (serial and lockstep variants), an
// 8x8-array DC initialization run
// once per linear kernel (dense vs sparse, pinned per task through
// TaskSpec::sim), a sparse-only 64x64-array DC initialization that
// stresses the ordering/static-pivot/batched-eval fast paths at scale,
// and an adaptive importance-sampled rare-event yield estimate —
// each metered with wall time and the ambient context's
// solver_stats() counters (MNA assemblies, LU factorizations, line-search
// backtracks, NR iterations, DC/transient solves). Results land as a console table, a
// CSV, and BENCH_microbench.json via the runner/telemetry plumbing, so
// successive commits leave comparable trajectory points (docs/SOLVER.md
// explains how to read them).
//
// Every task is uncacheable by construction (empty CacheKey): a
// measurement served from the result cache would be a replay, not a
// measurement. ci.sh additionally runs this under TFETSRAM_CACHE=off.

#include <chrono>
#include <cmath>

#include "array/array.hpp"
#include "bench_common.hpp"
#include "figures.hpp"
#include "mc/yield.hpp"
#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solver_select.hpp"
#include "spice/stats.hpp"
#include "sram/snm.hpp"
#include "util/contracts.hpp"

namespace tfetsram::bench {

namespace {

using clk = std::chrono::steady_clock;

/// Counter/wall-time delta of one metered workload.
struct Meter {
    spice::SolverStats stats;
    double wall_s = 0.0;
    std::size_t ops = 0;
};

/// Run `fn` `ops` times and capture the solver-stat and wall-time deltas
/// on this thread.
template <typename Fn>
Meter metered(std::size_t ops, Fn&& fn) {
    Meter m;
    m.ops = ops;
    const spice::SolverStats before = spice::solver_stats();
    const auto t0 = clk::now();
    for (std::size_t i = 0; i < ops; ++i)
        fn(i);
    m.wall_s = std::chrono::duration<double>(clk::now() - t0).count();
    m.stats = spice::solver_stats() - before;
    return m;
}

/// Serialize a meter into a TaskResult (totals plus the derived per-op and
/// per-iteration ratios the perf trajectory tracks).
runner::TaskResult to_result(const std::string& name, const Meter& m) {
    auto per_op = [&](std::uint64_t v) {
        return format_sci(static_cast<double>(v) /
                              static_cast<double>(m.ops),
                          4);
    };
    runner::TaskResult result;
    result.set("ops", std::to_string(m.ops));
    result.set("wall", format_si(m.wall_s, "s"));
    result.set("assemblies/op", per_op(m.stats.assemblies));
    result.set("lu/op", per_op(m.stats.lu_factorizations));
    result.set("nr_iters/op", per_op(m.stats.nr_iterations));
    result.set("dc_solves/op", per_op(m.stats.dc_solves));
    const double per_iter =
        m.stats.nr_iterations > 0
            ? static_cast<double>(m.stats.assemblies) /
                  static_cast<double>(m.stats.nr_iterations)
            : 0.0;
    result.set("assemblies/nr_iter", format_sci(per_iter, 4));
    result.rows.push_back(
        {name, std::to_string(m.ops), format_sci(m.wall_s, 6),
         std::to_string(m.stats.assemblies),
         std::to_string(m.stats.lu_factorizations),
         std::to_string(m.stats.nr_iterations),
         std::to_string(m.stats.line_search_backtracks),
         std::to_string(m.stats.dc_solves),
         std::to_string(m.stats.transient_solves),
         std::to_string(m.stats.transient_steps)});
    return result;
}

/// Uncacheable task boilerplate: microbenchmarks always re-measure.
runner::TaskSpec bench_task(const std::string& id, runner::TaskId models,
                            std::function<runner::TaskResult()> fn) {
    runner::TaskSpec spec;
    spec.id = id;
    spec.deps = {models};
    spec.fn = std::move(fn);
    return spec;
}

} // namespace

int run_microbench(const runner::RunnerConfig& config) {
    runner::RunnerConfig cfg = config;
    cfg.run_name = "microbench";
    banner("Microbench",
           "solver hot-path baselines (counters per docs/SOLVER.md)");

    const sram::MetricOptions opts;
    const sram::CellConfig cell_cfg =
        sram::proposed_design(0.8, standard_models()).config;

    runner::Runner r(cfg);
    runner::TaskId models;
    {
        runner::TaskSpec spec;
        spec.id = "build_models";
        spec.setup_only = true;
        spec.fn = [] {
            standard_models();
            return runner::TaskResult{};
        };
        models = r.add(std::move(spec));
    }

    std::vector<runner::TaskId> tasks;
    std::vector<std::string> names;

    // 1. Cold DC operating point: hold state from a zero initial guess,
    // the workload behind every sweep point's first solve.
    names.push_back("dc_cold");
    tasks.push_back(r.add(bench_task("dc_cold", models, [cell_cfg, opts] {
        sram::SramCell cell = sram::build_cell(cell_cfg);
        sram::program_hold(cell);
        const Meter m = metered(20, [&](std::size_t) {
            const sram::HoldState hs =
                sram::solve_hold_state(cell, true, opts.solver);
            TFET_ASSERT(hs.converged && hs.state_ok);
        });
        return to_result("dc_cold", m);
    })));

    // 2. Warm DC re-solve: solve once, then re-solve from the solution —
    // the bisection/sweep warm-start scenario the hot-path optimization
    // targets (ideal cost: one assembly, one LU, one NR iteration).
    names.push_back("dc_resolve");
    tasks.push_back(r.add(bench_task("dc_resolve", models, [cell_cfg, opts] {
        sram::SramCell cell = sram::build_cell(cell_cfg);
        sram::program_hold(cell);
        const sram::HoldState hs =
            sram::solve_hold_state(cell, true, opts.solver);
        TFET_ASSERT(hs.converged && hs.state_ok);
        la::Vector x = hs.x;
        const Meter m = metered(100, [&](std::size_t) {
            const spice::DcResult d =
                spice::solve_dc(cell.circuit, opts.solver, 0.0, &x);
            TFET_ASSERT(d.converged);
        });
        return to_result("dc_resolve", m);
    })));

    // 3. One write transient (hold solve + Newton per accepted step).
    names.push_back("transient_write");
    tasks.push_back(
        r.add(bench_task("transient_write", models, [cell_cfg, opts] {
            sram::SramCell cell = sram::build_cell(cell_cfg);
            const Meter m = metered(5, [&](std::size_t) {
                const sram::WriteOutcome out = sram::attempt_write(
                    cell, 300e-12, sram::Assist::kNone, opts);
                TFET_ASSERT(out.simulated);
            });
            return to_result("transient_write", m);
        })));

    // 4. WLcrit bisection: the repeated-write workload whose redundant
    // hold-state solves the caching layer removes (dc_solves/op should
    // track transient_solves/op plus a constant, not a multiple).
    names.push_back("wlcrit_bisection");
    tasks.push_back(
        r.add(bench_task("wlcrit_bisection", models, [cell_cfg, opts] {
            sram::SramCell cell = sram::build_cell(cell_cfg);
            const Meter m = metered(1, [&](std::size_t) {
                const double wl = sram::critical_wordline_pulse(
                    cell, sram::Assist::kNone, opts);
                TFET_ASSERT(std::isfinite(wl));
            });
            return to_result("wlcrit_bisection", m);
        })));

    // 5. SNM butterfly trace: a long warm-started DC continuation sweep.
    names.push_back("snm_trace");
    tasks.push_back(r.add(bench_task("snm_trace", models, [cell_cfg, opts] {
        const Meter m = metered(1, [&](std::size_t) {
            const sram::SnmResult snm = sram::static_noise_margin(
                cell_cfg, sram::SnmMode::kHold, 41, opts.solver);
            TFET_ASSERT(snm.valid);
        });
        return to_result("snm_trace", m);
    })));

    // 6. 64-sample Monte-Carlo batch over a DC-only metric: exercises the
    // per-sample rebuild + nominal-seed warm-start path. Serial so the
    // counters all land on this task's thread.
    names.push_back("mc_batch64");
    tasks.push_back(r.add(bench_task("mc_batch64", models, [cell_cfg, opts] {
        const mc::VariationSpec vspec;
        const mc::TfetVariationSampler sampler(vspec);
        const Meter m = metered(1, [&](std::size_t) {
            const mc::McResult res = mc::run_monte_carlo(
                cell_cfg, sampler, 64, 0xB3Cu,
                [&](sram::SramCell& cell) {
                    return sram::worst_hold_static_power(cell, opts);
                },
                /*threads=*/1);
            TFET_ASSERT(res.n_censored == 0);
        });
        return to_result("mc_batch64", m);
    })));

    // 7/8. Array-scale DC initialization, once per linear kernel: the same
    // 8x8 array (a few hundred MNA unknowns) with the backend pinned
    // through the task's own SimContext (TaskSpec::sim) rather than any
    // process-wide override, so the two tasks could even run concurrently.
    // Identical physics and Newton trajectory, different kernel — the
    // wall-time gap is the kernel-selection trade docs/SOLVER.md
    // documents, and the reason kAuto routes arrays sparse.
    for (const bool sparse : {false, true}) {
        const std::string id = sparse ? "array8x8_sparse" : "array8x8_dense";
        names.push_back(id);
        runner::TaskSpec spec = bench_task(id, models, [cell_cfg, id] {
            array::ArrayConfig acfg;
            acfg.rows = 8;
            acfg.cols = 8;
            acfg.cell = cell_cfg;
            acfg.read_assist = sram::Assist::kRaGndLowering;
            std::vector<std::vector<bool>> data(
                acfg.rows, std::vector<bool>(acfg.cols));
            for (std::size_t rr = 0; rr < acfg.rows; ++rr)
                for (std::size_t cc = 0; cc < acfg.cols; ++cc)
                    data[rr][cc] = (rr + cc) % 2 == 0;
            const Meter m = metered(3, [&](std::size_t) {
                array::SramArray arr(acfg);
                TFET_ASSERT(arr.initialize(data));
            });
            return to_result(id, m);
        });
        spice::SimConfig sim = cfg.sim;
        sim.mode = sparse ? spice::SolverMode::kSparse
                          : spice::SolverMode::kDense;
        spec.sim = std::move(sim);
        tasks.push_back(r.add(std::move(spec)));
    }

    // 9. Array-scale stress point for the sparse kernel alone: a flat
    // 64x64 array (thousands of MNA unknowns — far past dense viability)
    // initialized once. This is where the fill-reducing ordering, the
    // static-pivot refactor path, and the batched device sweep earn their
    // keep; ci.sh gates its wall time against the checked-in baseline.
    {
        names.push_back("array64x64");
        runner::TaskSpec spec = bench_task("array64x64", models, [cell_cfg] {
            array::ArrayConfig acfg;
            acfg.rows = 64;
            acfg.cols = 64;
            acfg.cell = cell_cfg;
            acfg.read_assist = sram::Assist::kRaGndLowering;
            std::vector<std::vector<bool>> data(
                acfg.rows, std::vector<bool>(acfg.cols));
            for (std::size_t rr = 0; rr < acfg.rows; ++rr)
                for (std::size_t cc = 0; cc < acfg.cols; ++cc)
                    data[rr][cc] = (rr + cc) % 2 == 0;
            const Meter m = metered(1, [&](std::size_t) {
                array::SramArray arr(acfg);
                TFET_ASSERT(arr.initialize(data));
            });
            return to_result("array64x64", m);
        });
        spice::SimConfig sim = cfg.sim;
        sim.mode = spice::SolverMode::kSparse;
        spec.sim = std::move(sim);
        tasks.push_back(r.add(std::move(spec)));
    }

    // 10. The same 64-sample Monte-Carlo through the lockstep engine: one
    // persistent cell per lane, per-sample model retargeting instead of
    // rebuilds. Differential identity with workload 6 is a test
    // (test_mc_batch); this task tracks what the reuse buys in wall time.
    names.push_back("mc_batch64_lockstep");
    tasks.push_back(
        r.add(bench_task("mc_batch64_lockstep", models, [cell_cfg, opts] {
            const mc::VariationSpec vspec;
            const mc::TfetVariationSampler sampler(vspec);
            mc::BatchStats bstats;
            const Meter m = metered(1, [&](std::size_t) {
                const mc::McResult res = mc::run_monte_carlo_batched(
                    spice::ambient_context(), cell_cfg, sampler, 64, 0xB3Cu,
                    [&](sram::SramCell& cell) {
                        return sram::worst_hold_static_power(cell, opts);
                    },
                    /*threads=*/1, mc::McPolicy{}, &bstats);
                TFET_ASSERT(res.n_censored == 0);
            });
            TFET_ASSERT(bstats.model_retargets > 0);
            return to_result("mc_batch64_lockstep", m);
        })));

    // 11. Rare-event yield estimation end to end: adaptive
    // importance-sampled tail probability of worst-case hold power through
    // the lockstep engine, on coarse 121-point tables so the workload
    // meters estimator overhead rather than table extraction. The failure
    // surface is self-calibrated (metric beyond its own 4-sigma log-linear
    // projection), so the workload stays meaningful if the hold-power
    // model shifts. ci.sh gates its wall time against the baseline.
    names.push_back("mc_yield");
    tasks.push_back(r.add(bench_task("mc_yield", models, [cell_cfg, opts] {
        mc::VariationSpec vspec;
        vspec.table_spec.points = 121;
        const mc::TfetVariationSampler sampler(vspec);
        const auto metric = [&](sram::SramCell& cell) {
            return sram::worst_hold_static_power(cell, opts);
        };
        const auto eval_at = [&](double u) {
            sram::CellConfig c = cell_cfg;
            c.models = sampler.sample_at(u).models;
            sram::SramCell cell = sram::build_cell(c);
            return metric(cell);
        };
        const double p0 = eval_at(0.0);
        const double slope =
            (std::log(eval_at(2.0)) - std::log(eval_at(-2.0))) / 4.0;
        TFET_ASSERT(p0 > 0.0 && std::isfinite(slope) && slope != 0.0);

        mc::CellYieldProblem problem;
        problem.config = cell_cfg;
        problem.variation = vspec;
        problem.metric = metric;
        problem.fails = [p0, slope](double v) {
            return (std::log(v) - std::log(p0)) / slope > 4.0;
        };
        // t(u) ~ u under the log-linear model — the slope's sign cancels
        // in t, so the failure region sits at u > 4 for either polarity.
        mc::YieldOptions yopts;
        yopts.proposal = mc::GaussianMixture::shifted(4.0);
        yopts.batch = 16;
        yopts.min_samples = 32;
        yopts.max_samples = 192;
        yopts.min_failures = 4;
        yopts.target_rel_halfwidth = 0.5;

        mc::YieldEstimate est;
        const Meter m = metered(1, [&](std::size_t) {
            est = mc::estimate_cell_yield(spice::ambient_context(), problem,
                                          yopts, 0x71E1Du, /*threads=*/1);
        });
        TFET_ASSERT(est.n_samples >= 32 && est.n_censored == 0);
        runner::TaskResult result = to_result("mc_yield", m);
        result.set("bench:yield_p_fail", format_sci(est.p_fail, 6));
        result.set("bench:yield_lower", format_sci(est.lower, 6));
        result.set("bench:yield_upper", format_sci(est.upper, 6));
        result.set("bench:yield_sigma_level",
                   format_sci(est.sigma_level, 6));
        result.set("bench:yield_n_samples", std::to_string(est.n_samples));
        result.set("bench:yield_ess", format_sci(est.ess, 6));
        return result;
    })));

    r.run();

    auto csv = open_csv("microbench", cfg);
    csv.write_row(std::vector<std::string>{
        "workload", "ops", "wall_s", "assemblies", "lu_factorizations",
        "nr_iterations", "line_search_backtracks", "dc_solves",
        "transient_solves", "transient_steps"});
    TablePrinter table({"workload", "ops", "wall", "asm/op", "lu/op",
                        "nr/op", "dc/op", "asm/nr_iter"});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const runner::TaskId id = tasks[i];
        table.add_row({names[i], value_or(r, id, "ops", "QUARANTINED"),
                       value_or(r, id, "wall", "-"),
                       value_or(r, id, "assemblies/op", "-"),
                       value_or(r, id, "lu/op", "-"),
                       value_or(r, id, "nr_iters/op", "-"),
                       value_or(r, id, "dc_solves/op", "-"),
                       value_or(r, id, "assemblies/nr_iter", "-")});
        for (const auto& row : r.result(id).rows)
            csv.write_row(row);
    }
    std::cout << table.render();

    expectation(
        "assemblies/nr_iter stays at 1.0 plus the backtrack rate (one "
        "assembly per accepted Newton iterate); dc_resolve costs one "
        "assembly/LU/iteration per warm re-solve; wlcrit_bisection's "
        "dc_solves track its transient count plus a small constant (the "
        "hold state is solved once, not once per bisection step); "
        "array8x8_sparse beats array8x8_dense on wall time at identical "
        "iteration counts (same Newton trajectory, cheaper linear kernel).");
    return 0;
}

} // namespace tfetsram::bench
