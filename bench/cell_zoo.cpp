// Cell-zoo multi-corner sweep: every registered design (sram::cell_zoo())
// evaluated across a (VDD x temperature x Tox) corner grid on its own
// model-set flavor. One cacheable task per (cell, corner) point; the
// "bench:" metrics land in BENCH_cell_zoo.json per task, giving the
// per-cell x per-corner table the zoo CI job checks.
//
// Grid selection: TFETSRAM_ZOO_CORNERS=smoke|default|full (default:
// "default"). smoke is the single nominal corner CI uses.

#include "figures.hpp"

#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "device/model_zoo.hpp"
#include "runner/sweep.hpp"
#include "spice/solve_error.hpp"
#include "sram/cell_zoo.hpp"
#include "util/env.hpp"

namespace tfetsram::bench {

namespace {

runner::CornerAxes zoo_axes(const std::string& grid) {
    runner::CornerAxes axes;
    if (grid == "smoke") {
        axes.vdd = {0.8};
        axes.temperature = {300.0};
        axes.tox_scale = {1.0};
    } else if (grid == "full") {
        axes.vdd = {0.5, 0.7, 0.9};
        axes.temperature = {300.0, 400.0};
        axes.tox_scale = {0.95, 1.0, 1.05};
    } else {
        axes.vdd = {0.6, 0.8};
        axes.temperature = {300.0, 350.0};
        axes.tox_scale = {1.0};
    }
    return axes;
}

} // namespace

int run_cell_zoo(const runner::RunnerConfig& config) {
    runner::RunnerConfig cfg = config;
    cfg.run_name = "cell_zoo";
    const std::string grid =
        env::get_string("TFETSRAM_ZOO_CORNERS", "default");
    const std::vector<runner::Corner> corners =
        runner::make_corner_grid(zoo_axes(grid));
    banner("Cell zoo", "per-cell x per-corner sweep (" + grid + " grid, " +
                           std::to_string(corners.size()) + " corners, " +
                           std::to_string(sram::cell_zoo().size()) +
                           " cells)");
    const sram::MetricOptions opts;

    // Model sets are shared across cells and corners: build each needed
    // (flavor, temperature, tox) combination once, up front, so the sweep
    // tasks never race on table extraction.
    std::map<std::string, device::ModelSet> model_cache;
    auto models_for = [&](const std::string& set_name,
                          const runner::Corner& c) -> const device::ModelSet& {
        const std::string key = set_name + "@" + c.tag();
        auto it = model_cache.find(key);
        if (it == model_cache.end())
            it = model_cache
                     .emplace(key, device::make_model_set_at(
                                       device::find_model_set(set_name),
                                       c.temperature, c.tox_scale))
                     .first;
        return it->second;
    };
    for (const sram::ZooEntry& entry : sram::cell_zoo())
        for (const runner::Corner& c : corners)
            models_for(entry.model_set, c);

    runner::Runner r(cfg);
    // task ids laid out as points[entry_index][corner_index]
    std::vector<std::vector<runner::TaskId>> points;
    for (const sram::ZooEntry& entry : sram::cell_zoo()) {
        auto& row = points.emplace_back();
        for (const runner::Corner& c : corners) {
            const device::ModelSetSpec& ms =
                device::find_model_set(entry.model_set);
            runner::TaskSpec spec;
            spec.id = "zoo " + entry.id + " " + c.tag();
            runner::CacheKey key("cell_zoo");
            key.add("model", ms.version).add("cell", entry.id);
            c.add_to(key);
            spec.key = std::move(key);
            const device::ModelSet* models = &models_for(entry.model_set, c);
            spec.fn = [&entry, c, models, opts] {
                const sram::DesignSpec design =
                    sram::make_zoo_design(entry, c.vdd, *models);
                sram::SramCell cell = sram::build_cell(design.config);

                runner::TaskResult result;
                if (design.wlcrit_defined) {
                    const double wl = sram::critical_wordline_pulse(
                        cell, design.write_assist, opts);
                    // NaN is the "simulation failed" sentinel (+inf is a
                    // legit write failure): surface it as a solver error so
                    // the runner can retry or quarantine the point.
                    if (std::isnan(wl)) {
                        spice::SolveError err;
                        err.code = spice::SolveErrorCode::kNonConvergence;
                        err.message = "zoo wlcrit: simulation failed";
                        throw spice::SolveException(std::move(err));
                    }
                    result.set("wlcrit", core::format_pulse(wl));
                    result.set("bench:wlcrit", format_sci(wl, 8));
                } else {
                    result.set("wlcrit", "n/a");
                    result.set("bench:wlcrit", "nan");
                }
                const sram::DrnmResult d = sram::dynamic_read_noise_margin(
                    cell, design.read_assist, opts);
                const double drnm = d.valid && !d.flipped ? d.drnm : 0.0;
                result.set("drnm", core::format_margin(drnm));
                result.set("bench:drnm", format_sci(drnm, 8));
                const double p = sram::worst_hold_static_power(cell, opts);
                result.set("p_hold", core::format_power(p));
                result.set("bench:p_hold", format_sci(p, 8));
                return result;
            };
            row.push_back(r.add(std::move(spec)));
        }
    }
    r.run();

    TablePrinter table({"cell", "model set", "VDD", "T [K]", "Tox", "WLcrit",
                        "DRNM", "P_hold"});
    auto csv = open_csv("cell_zoo", cfg);
    csv.write_row(std::vector<std::string>{"cell", "model_set", "vdd",
                                           "temperature", "tox_scale",
                                           "wlcrit", "drnm", "p_hold"});
    for (std::size_t e = 0; e < sram::cell_zoo().size(); ++e) {
        const sram::ZooEntry& entry = sram::cell_zoo()[e];
        for (std::size_t ci = 0; ci < corners.size(); ++ci) {
            const runner::Corner& c = corners[ci];
            const runner::TaskId id = points[e][ci];
            table.add_row({entry.id, entry.model_set, format_sci(c.vdd, 1),
                           format_sci(c.temperature, 0),
                           "x" + format_sci(c.tox_scale, 2),
                           value_or(r, id, "wlcrit", "QUARANTINED"),
                           value_or(r, id, "drnm", "QUARANTINED"),
                           value_or(r, id, "p_hold", "QUARANTINED")});
            csv.write_row(std::vector<std::string>{
                entry.id, entry.model_set, format_sci(c.vdd, 8),
                format_sci(c.temperature, 8), format_sci(c.tox_scale, 8),
                value_or(r, id, "bench:wlcrit", "nan"),
                value_or(r, id, "bench:drnm", "nan"),
                value_or(r, id, "bench:p_hold", "nan")});
        }
    }
    std::cout << table.render();

    expectation(
        "the read-port cells (7T/8T/9T) decouple read stability from the "
        "storage nodes, so their DRNM stays high at every corner while the "
        "differential 6T cells trade margin against VDD; the CNTFET flavor "
        "buys write speed (higher drive) at a static-power penalty from its "
        "raised off-current.");
    return 0;
}

} // namespace tfetsram::bench
