// Fig. 4 reproduction: DRNM (a) and WLcrit (b) versus cell ratio beta for
// the 6T TFET SRAM with inward nTFET and inward pTFET access, against the
// 32 nm 6T CMOS SRAM.

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

namespace {

sram::SramCell make(sram::CellKind kind, sram::AccessDevice access,
                    double beta) {
    sram::CellConfig cfg;
    cfg.kind = kind;
    cfg.access = access;
    cfg.beta = beta;
    cfg.models = bench::standard_models();
    return sram::build_cell(cfg);
}

} // namespace

int main() {
    bench::banner("Fig. 4", "DRNM and WLcrit vs cell ratio beta (VDD = 0.8 V)");
    const sram::MetricOptions opts;
    const std::vector<double> betas = {0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 2.5, 3.0};

    TablePrinter table({"beta", "DRNM in-p", "DRNM in-n", "DRNM CMOS",
                        "WLcrit in-p", "WLcrit in-n", "WLcrit CMOS"});
    auto csv = bench::open_csv("fig4_cell_stability");
    csv.write_row(std::vector<std::string>{
        "beta", "drnm_inp", "drnm_inn", "drnm_cmos", "wlcrit_inp",
        "wlcrit_inn", "wlcrit_cmos"});

    for (double beta : betas) {
        sram::SramCell inp = make(sram::CellKind::kTfet6T,
                                  sram::AccessDevice::kInwardP, beta);
        sram::SramCell inn = make(sram::CellKind::kTfet6T,
                                  sram::AccessDevice::kInwardN, beta);
        sram::SramCell cmos =
            make(sram::CellKind::kCmos6T, sram::AccessDevice::kCmos, beta);

        const auto d_inp =
            sram::dynamic_read_noise_margin(inp, sram::Assist::kNone, opts);
        const auto d_inn =
            sram::dynamic_read_noise_margin(inn, sram::Assist::kNone, opts);
        const auto d_cmos =
            sram::dynamic_read_noise_margin(cmos, sram::Assist::kNone, opts);
        const double w_inp =
            sram::critical_wordline_pulse(inp, sram::Assist::kNone, opts);
        const double w_inn =
            sram::critical_wordline_pulse(inn, sram::Assist::kNone, opts);
        const double w_cmos =
            sram::critical_wordline_pulse(cmos, sram::Assist::kNone, opts);

        table.add_row({format_sci(beta, 1), core::format_margin(d_inp.drnm),
                       core::format_margin(d_inn.drnm),
                       core::format_margin(d_cmos.drnm),
                       core::format_pulse(w_inp), core::format_pulse(w_inn),
                       core::format_pulse(w_cmos)});
        csv.write_row({beta, d_inp.drnm, d_inn.drnm, d_cmos.drnm, w_inp,
                       w_inn, w_cmos});
    }
    std::cout << table.render();

    bench::expectation(
        "WLcrit: infinite for inward nTFET at every beta and for inward "
        "pTFET beyond beta ~ 1; grows steeply with beta for inward pTFET; "
        "CMOS stays small and nearly flat. DRNM: grows with beta; CMOS "
        "clearly better at small beta where the pTFET access overpowers the "
        "pull-down.");
    return 0;
}
