// Read-path study (extension): the proposed cell read through real
// transistor periphery — precharge network, latch sense amplifier — with
// the sense-enable timing swept to find the minimum safe sensing delay
// and the bitline differential available at each candidate fire time.

#include <cmath>

#include "bench_common.hpp"
#include "sram/operations.hpp"
#include "sram/periphery.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

using namespace tfetsram;

namespace {

struct Path {
    spice::Circuit ckt;
    spice::NodeId vdd = 0;
    spice::NodeId bl = 0;
    spice::NodeId blb = 0;
    spice::NodeId q = 0;
    spice::NodeId qb = 0;
    spice::VoltageSource* v_vss = nullptr;
    spice::VoltageSource* v_wl = nullptr;
    sram::Precharge pre;
    sram::SenseAmp sa;
};

Path build_path(double vdd_level) {
    Path p;
    sram::CellConfig cc =
        sram::proposed_design(vdd_level, bench::standard_models()).config;
    spice::Circuit& ckt = p.ckt;
    p.vdd = ckt.add_node("vdd");
    const auto vss = ckt.add_node("vss");
    p.bl = ckt.add_node("bl");
    p.blb = ckt.add_node("blb");
    const auto wl = ckt.add_node("wl");
    p.q = ckt.add_node("q");
    p.qb = ckt.add_node("qb");
    ckt.add_vsource("Vvdd", p.vdd, spice::kGround,
                    spice::Waveform::dc(vdd_level));
    p.v_vss = &ckt.add_vsource("Vvss", vss, spice::kGround,
                               spice::Waveform::dc(0.0));
    p.v_wl = &ckt.add_vsource("Vwl", wl, spice::kGround,
                              spice::Waveform::dc(vdd_level));
    ckt.add_capacitor("Cbl", p.bl, spice::kGround, 10e-15);
    ckt.add_capacitor("Cblb", p.blb, spice::kGround, 10e-15);
    sram::build_6t_devices(ckt, cc, {p.q, p.qb, p.bl, p.blb, wl, p.vdd, vss},
                           "");
    sram::PeripheryConfig pc;
    pc.vdd = vdd_level;
    pc.models = bench::standard_models();
    // Adversarial 10 % latch mismatch: the offset fights the polarity the
    // read should resolve (q = 0 pulls BL low; the skew favours BLB low),
    // so the cell must develop a real differential before SAE fires.
    pc.w_sense_skew = -0.10;
    p.pre = sram::attach_precharge(ckt, "p_", p.bl, p.blb, p.vdd, pc);
    p.sa = sram::attach_sense_amp(ckt, "s_", p.bl, p.blb, p.vdd, pc);
    // State-initialization clamp: holding q at ground during the t = 0
    // operating point makes the bistable DC solution unique; the switch
    // opens at 20 ps, well before any signal moves.
    ckt.add_switch("Sinit", p.q, spice::kGround, 1e2, 1e12,
                   spice::Waveform::pwl({{20e-12, 1.0}, {25e-12, 0.0}}));
    ckt.prepare();
    return p;
}

struct Sense {
    bool ok = false;
    bool correct = false;
    double differential = 0.0; ///< at SAE fire time [V]
};

Sense run_once(double vdd_level, double sae_delay) {
    Path p = build_path(vdd_level);
    const double wl_on = 0.7e-9;
    const double t_sae = wl_on + sae_delay;
    // The latch regeneration current falls steeply with VDD (tunneling
    // kernel), so the settle window scales accordingly.
    const double t_end =
        t_sae + 0.6e-9 * std::pow(0.8 / vdd_level, 5.0);
    p.pre.v_pre->set_waveform(spice::Waveform::pwl(
        {{0.05e-9, vdd_level}, {0.06e-9, 0.0}, {0.55e-9, 0.0},
         {0.56e-9, vdd_level}}));
    p.v_vss->set_waveform(spice::Waveform::pwl(
        {{0.1e-9, 0.0}, {0.12e-9, -0.3 * vdd_level},
         {t_end - 0.1e-9, -0.3 * vdd_level}, {t_end - 0.08e-9, 0.0}}));
    p.v_wl->set_waveform(spice::Waveform::pwl(
        {{wl_on, vdd_level}, {wl_on + 5e-12, 0.0},
         {t_sae + 0.3e-9, 0.0}, {t_sae + 0.305e-9, vdd_level}}));
    p.sa.v_sae->set_waveform(
        spice::Waveform::pwl({{t_sae, 0.0}, {t_sae + 10e-12, vdd_level}}));

    la::Vector guess(p.ckt.num_unknowns(), 0.0);
    guess[p.vdd - 1] = vdd_level;
    guess[p.qb - 1] = vdd_level; // q = 0: BL side discharges
    guess[p.bl - 1] = vdd_level;
    guess[p.blb - 1] = vdd_level;
    const spice::TransientResult tr =
        spice::solve_transient(p.ckt, {}, t_end, nullptr, &guess);
    Sense s;
    if (!tr.completed)
        return s;
    s.ok = true;
    s.differential =
        tr.voltage_at(p.blb, t_sae) - tr.voltage_at(p.bl, t_sae);
    // q = 0: BL must end low, BLB high, and the cell must survive.
    s.correct = tr.final_voltage(p.bl) < 0.1 * vdd_level &&
                tr.final_voltage(p.blb) > 0.9 * vdd_level &&
                tr.final_voltage(p.q) < tr.final_voltage(p.qb);
    return s;
}

} // namespace

int main() {
    bench::banner("Read-path study",
                  "sense-enable timing with transistor periphery");
    auto csv = bench::open_csv("readpath_study");
    csv.write_row(std::vector<std::string>{"vdd", "sae_delay", "differential",
                                           "correct"});

    for (double vdd : {0.6, 0.8}) {
        TablePrinter table({"SAE delay after WL", "differential at fire",
                            "sensed correctly"});
        double min_safe = -1.0;
        for (double delay : {10e-12, 20e-12, 40e-12, 80e-12, 160e-12,
                             320e-12}) {
            const Sense s = run_once(vdd, delay);
            table.add_row({format_si(delay, "s"),
                           core::format_margin(s.differential),
                           !s.ok ? "sim fail" : (s.correct ? "yes" : "NO")});
            csv.write_row({format_sci(vdd, 2), format_sci(delay, 4),
                           format_sci(s.differential, 4),
                           s.correct ? "1" : "0"});
            if (s.ok && s.correct && min_safe < 0.0)
                min_safe = delay;
        }
        std::cout << "-- VDD = " << format_sci(vdd, 1) << " V --\n"
                  << table.render();
        if (min_safe > 0.0)
            std::cout << "minimum safe SAE delay: " << format_si(min_safe, "s")
                      << "\n\n";
    }

    bench::expectation(
        "the differential grows with sensing delay; once it overcomes the "
        "latch's (adversarial 10 %) offset the read resolves correctly. "
        "The minimum safe sensing delay shrinks as VDD rises with the "
        "steeply growing cell current.");
    return 0;
}
