#pragma once
// Shared plumbing for the per-figure benchmark binaries: the standard model
// set, the supply sweep the paper uses, and uniform output conventions
// (console table + CSV dump under ./bench_csv for replotting).

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "device/models.hpp"
#include "mc/monte_carlo.hpp"
#include "runner/runner.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram::bench {

/// The tabulated standard models (built once per process).
inline const device::ModelSet& standard_models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

/// The paper's preferred TFET operating range (Sec. 5).
inline const std::vector<double>& vdd_sweep() {
    static const std::vector<double> v = {0.5, 0.6, 0.7, 0.8, 0.9};
    return v;
}

/// Open a CSV sink in `dir` (created on demand).
inline CsvWriter open_csv(const std::string& name,
                          const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    return CsvWriter((dir / (name + ".csv")).string());
}

/// Open a CSV sink for this benchmark under TFETSRAM_OUT_DIR, falling back
/// to the historical ./bench_csv (relative to the cwd).
inline CsvWriter open_csv(const std::string& name) {
    return open_csv(name, runner::out_dir_from_env());
}

/// Runner-ported benches route their CSV through the telemetry config so
/// journal, BENCH json, and CSV all land in the same out dir.
inline CsvWriter open_csv(const std::string& name,
                          const runner::RunnerConfig& cfg) {
    return open_csv(name, cfg.out_dir);
}

/// Read a named value from a task's result, degrading to `placeholder`
/// when the task was quarantined (keep-going mode) or cancelled (watchdog
/// / shutdown drain) and holds no result — so a degraded run still renders
/// its tables and CSVs with explicit placeholder points instead of
/// crashing on the missing value.
inline std::string value_or(const runner::Runner& r, runner::TaskId id,
                            std::string_view name,
                            const std::string& placeholder) {
    if (r.status(id) == runner::TaskStatus::kQuarantined ||
        r.status(id) == runner::TaskStatus::kCancelled)
        return placeholder;
    return r.result(id).get(name);
}

/// Standard banner.
inline void banner(const std::string& id, const std::string& what) {
    std::cout << "==================================================\n"
              << id << ": " << what << "\n"
              << "==================================================\n";
}

/// Closing note comparing against the paper's reported shape.
inline void expectation(const std::string& text) {
    std::cout << "\n[paper] " << text << "\n\n";
}

} // namespace tfetsram::bench
