// Fig. 9 reproduction: Monte-Carlo behaviour of the write-assist
// techniques under +/-5 % gate-insulator-thickness variation, cell sized
// at beta = 2 (the paper's WA study point). Prints the WLcrit occurrence
// histograms (a-c), write-failure counts (wordline lowering fails outright
// in the paper), and the near-invariant DRNM (d).

#include <cmath>

#include "bench_common.hpp"

using namespace tfetsram;

int main() {
    // Explicit simulation context for the whole figure: env-derived
    // defaults (solver mode, seed root, fault plan) frozen once, every
    // Monte-Carlo batch below attributed to it.
    const spice::SimContext ctx(spice::SimConfig::from_env());
    const std::size_t samples = mc::mc_samples_from_env(60);
    bench::banner("Fig. 9", "process variation vs write assists (beta = 2, " +
                                std::to_string(samples) + " samples)");
    const sram::MetricOptions opts;

    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kTfet6T;
    cfg.access = sram::AccessDevice::kInwardP;
    cfg.beta = 2.0;
    cfg.models = bench::standard_models();

    mc::VariationSpec vspec;
    const mc::TfetVariationSampler sampler(vspec);

    auto csv = bench::open_csv("fig9_mc_write_assist");
    csv.write_row(std::vector<std::string>{"technique", "sample", "wlcrit"});

    TablePrinter summary({"technique", "mean", "stddev", "min", "max",
                          "write failures"});
    for (sram::Assist a : sram::kWriteAssists) {
        const mc::McResult res = mc::run_monte_carlo(
            ctx, cfg, sampler, samples, 0xF19u,
            [&](sram::SramCell& cell) {
                return sram::critical_wordline_pulse(cell, a, opts);
            });
        for (std::size_t i = 0; i < res.samples.size(); ++i)
            csv.write_row({sram::to_string(a), std::to_string(i),
                           format_sci(res.samples[i], 6)});

        summary.add_row({sram::to_string(a),
                         core::format_pulse(res.summary.mean),
                         core::format_pulse(res.summary.stddev),
                         core::format_pulse(res.summary.min),
                         core::format_pulse(res.summary.max),
                         std::to_string(res.summary.n_infinite)});

        std::cout << "-- WLcrit occurrences, " << sram::to_string(a) << " --\n"
                  << res.histogram(12).render() << '\n';
    }
    std::cout << summary.render() << '\n';

    // Fig. 9(d): DRNM under the same variation, cell sized for WA use.
    const mc::McResult drnm = mc::run_monte_carlo(
        ctx, cfg, sampler, samples, 0xF19u,
        [&](sram::SramCell& cell) {
            const auto d = sram::dynamic_read_noise_margin(
                cell, sram::Assist::kNone, opts);
            return d.valid ? d.drnm : std::nan("");
        });
    std::cout << "-- DRNM occurrences (no assist needed at beta = 2) --\n"
              << drnm.histogram(12).render();
    std::cout << "DRNM spread: mean " << core::format_margin(drnm.summary.mean)
              << ", stddev " << core::format_margin(drnm.summary.stddev)
              << " (cv = "
              << format_sci(drnm.summary.stddev / drnm.summary.mean, 2)
              << ")\n";

    bench::expectation(
        "WLcrit varies greatly under tox variation for every WA technique "
        "(the paper even sees write failures for wordline lowering), while "
        "DRNM is hardly influenced.");
    return 0;
}
