#pragma once
// Runner-ported figure reproductions. Each entry builds a task graph over
// the experiment runner (src/runner/): sweep points execute concurrently,
// results are served from the content-addressed cache on warm runs, and
// every run leaves a JSONL journal + BENCH_<name>.json in the out dir.
// The remaining single-shot benches still run standalone; they migrate
// here as they grow sweeps worth caching.

#include <string>
#include <vector>

#include "runner/runner.hpp"

namespace tfetsram::bench {

/// Fig. 6(e): WLcrit vs beta for the four write-assist techniques.
int run_fig6_write_assist(const runner::RunnerConfig& config);

/// Fig. 10: Monte-Carlo read-assist study + WLcrit spread at beta = 0.6.
int run_fig10_mc_read_assist(const runner::RunnerConfig& config);

/// Array scaling study: write/read wall time vs array size.
int run_array_scaling(const runner::RunnerConfig& config);

/// Cell zoo: every registered design (sram::cell_zoo()) evaluated over a
/// (VDD x temperature x Tox) corner grid on its own model-set flavor.
int run_cell_zoo(const runner::RunnerConfig& config);

/// Solver hot-path microbenchmarks: assembly/LU/iteration counters and
/// wall time for fixed DC, transient, SNM, and MC workloads (uncacheable
/// by construction; see docs/SOLVER.md).
int run_microbench(const runner::RunnerConfig& config);

/// Registry for the unified bench/run_all driver.
struct Figure {
    const char* name; ///< CLI name == run_name == CSV stem
    const char* what; ///< one-line description
    int (*fn)(const runner::RunnerConfig&);
};

const std::vector<Figure>& ported_figures();

} // namespace tfetsram::bench
