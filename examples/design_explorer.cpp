// Design-space exploration: runs the paper's full methodology as an
// automated flow — access-device study, write/read-assist sweeps, scoring,
// and an optional Monte-Carlo robustness check — and prints the
// recommendation. With the default models this rediscovers the paper's
// design: inward pTFET access, write-favoring beta, GND-lowering RA.
//
// Usage: design_explorer [vdd] [mc_samples]

#include <cstdlib>
#include <iostream>

#include "core/explorer.hpp"

using namespace tfetsram;

int main(int argc, char** argv) {
    core::ExplorerOptions opt;
    if (argc > 1)
        opt.vdd = std::atof(argv[1]);
    if (argc > 2)
        opt.mc_samples = static_cast<std::size_t>(std::atol(argv[2]));

    std::cout << "Exploring robust 6T TFET SRAM designs at VDD = " << opt.vdd
              << " V";
    if (opt.mc_samples > 0)
        std::cout << " with " << opt.mc_samples << " Monte-Carlo samples";
    std::cout << "...\n\n";

    const core::RobustDesignReport report = core::explore(opt);
    std::cout << report.to_text();

    if (!report.chosen_assist) {
        std::cerr << "exploration did not find a workable design\n";
        return 1;
    }
    return 0;
}
