// Design-space exploration: runs the paper's full methodology as an
// automated flow — access-device study, write/read-assist sweeps, scoring,
// and an optional Monte-Carlo robustness check — and prints the
// recommendation. With the default models this rediscovers the paper's
// design: inward pTFET access, write-favoring beta, GND-lowering RA.
//
// Runs through the experiment runner: the flow is one cached task keyed on
// (model version, vdd, MC settings), so re-running at an already-explored
// operating point replays the stored report instantly. TFETSRAM_CACHE=off
// forces a fresh exploration.
//
// Usage: design_explorer [vdd] [mc_samples]

#include <cstdlib>
#include <iostream>

#include "core/explorer.hpp"
#include "runner/runner.hpp"
#include "runner/signal.hpp"
#include "util/units.hpp"

using namespace tfetsram;

int main(int argc, char** argv) {
    core::ExplorerOptions opt;
    if (argc > 1)
        opt.vdd = std::atof(argv[1]);
    if (argc > 2)
        opt.mc_samples = static_cast<std::size_t>(std::atol(argv[2]));

    std::cout << "Exploring robust 6T TFET SRAM designs at VDD = " << opt.vdd
              << " V";
    if (opt.mc_samples > 0)
        std::cout << " with " << opt.mc_samples << " Monte-Carlo samples";
    std::cout << "...\n\n";

    // Ctrl-C cancels the in-flight exploration cooperatively: the runner
    // drains, flushes its journal/BENCH artifacts, and we exit nonzero.
    runner::install_signal_handlers();

    runner::Runner r(runner::RunnerConfig::from_env("design_explorer"));
    runner::TaskSpec spec;
    spec.id = "explore vdd=" + format_sci(opt.vdd, 3);
    spec.key = runner::CacheKey("design_explorer")
                   .add("model", device::kModelSetVersion)
                   .add("tabulated", opt.tabulated_models)
                   .add("vdd", opt.vdd)
                   .add("assist_fraction", opt.assist_fraction)
                   .add("mc_samples", opt.mc_samples)
                   .add("mc_seed", static_cast<std::size_t>(opt.mc_seed));
    spec.fn = [opt] {
        const core::RobustDesignReport report = core::explore(opt);
        runner::TaskResult result;
        result.set("report", report.to_text());
        result.set("ok", report.chosen_assist ? "yes" : "no");
        return result;
    };
    const runner::TaskId explore_task = r.add(std::move(spec));
    r.run();

    const runner::TaskStatus status = r.status(explore_task);
    if (status != runner::TaskStatus::kExecuted &&
        status != runner::TaskStatus::kHit) {
        std::cerr << "design_explorer: exploration "
                  << runner::to_string(status)
                  << (runner::shutdown_requested() ? " (interrupted)" : "")
                  << " — no report produced\n";
        return runner::shutdown_requested() ? 130 : 1;
    }

    const runner::TaskResult& result = r.result(explore_task);
    std::cout << result.get("report");

    if (result.get("ok") != "yes") {
        std::cerr << "exploration did not find a workable design\n";
        return 1;
    }
    return 0;
}
