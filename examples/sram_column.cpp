// A four-row SRAM column built directly on the circuit API: four of the
// paper's proposed cells share a bitline pair with a precharge network.
// The example writes a pattern row by row, then reads each row back with
// the GND-lowering read assist, verifying that unaccessed rows hold their
// data — an end-to-end functional demonstration beyond single-cell metrics.

#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "device/models.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"
#include "sram/assist.hpp"
#include "util/units.hpp"

using namespace tfetsram;
using spice::NodeId;
using spice::Waveform;

namespace {

constexpr double kVdd = 0.8;
constexpr double kBeta = 0.6;
constexpr int kRows = 4;

struct Row {
    NodeId q = 0;
    NodeId qb = 0;
    spice::VoltageSource* wl = nullptr;
    spice::VoltageSource* vss = nullptr; // per-row virtual ground (for RA)
};

struct Column {
    spice::Circuit ckt;
    NodeId bl = 0;
    NodeId blb = 0;
    spice::VoltageSource* v_bl = nullptr;
    spice::VoltageSource* v_blb = nullptr;
    spice::TimedSwitch* sw_bl = nullptr;
    spice::TimedSwitch* sw_blb = nullptr;
    std::array<Row, kRows> rows;
};

Column build_column(const device::ModelSet& m) {
    Column col;
    spice::Circuit& c = col.ckt;
    const NodeId vdd = c.add_node("vdd");
    c.add_vsource("Vvdd", vdd, spice::kGround, Waveform::dc(kVdd));

    col.bl = c.add_node("bl");
    col.blb = c.add_node("blb");
    const NodeId bld = c.add_node("bl_drv");
    const NodeId blbd = c.add_node("blb_drv");
    col.v_bl = &c.add_vsource("Vbl", bld, spice::kGround, Waveform::dc(kVdd));
    col.v_blb = &c.add_vsource("Vblb", blbd, spice::kGround, Waveform::dc(kVdd));
    col.sw_bl = &c.add_switch("SWbl", bld, col.bl, 1e3, 1e12, Waveform::dc(1.0));
    col.sw_blb =
        &c.add_switch("SWblb", blbd, col.blb, 1e3, 1e12, Waveform::dc(1.0));
    c.add_capacitor("Cbl", col.bl, spice::kGround, 20e-15);
    c.add_capacitor("Cblb", col.blb, spice::kGround, 20e-15);

    for (int r = 0; r < kRows; ++r) {
        Row& row = col.rows[r];
        const std::string id = std::to_string(r);
        row.q = c.add_node("q" + id);
        row.qb = c.add_node("qb" + id);
        const NodeId wl = c.add_node("wl" + id);
        const NodeId vss = c.add_node("vss" + id);
        row.wl = &c.add_vsource("Vwl" + id, wl, spice::kGround,
                                Waveform::dc(kVdd)); // inactive (p access)
        row.vss = &c.add_vsource("Vvss" + id, vss, spice::kGround,
                                 Waveform::dc(0.0));
        // Cross-coupled inverters, beta = 0.6.
        c.add_transistor("PDL" + id, m.ntfet, row.q, row.qb, vss, kBeta);
        c.add_transistor("PUL" + id, m.ptfet, row.q, row.qb, vdd, 0.5);
        c.add_transistor("PDR" + id, m.ntfet, row.qb, row.q, vss, kBeta);
        c.add_transistor("PUR" + id, m.ptfet, row.qb, row.q, vdd, 0.5);
        // Inward pTFET access devices (source at the bitline).
        c.add_transistor("AXL" + id, m.ptfet, row.q, wl, col.bl, 1.0);
        c.add_transistor("AXR" + id, m.ptfet, row.qb, wl, col.blb, 1.0);
        c.add_capacitor("Cq" + id, row.q, spice::kGround, 0.25e-15);
        c.add_capacitor("Cqb" + id, row.qb, spice::kGround, 0.25e-15);
    }
    c.prepare();
    return col;
}

/// DC hold state with each row holding the given value.
la::Vector settle(Column& col, const spice::SimContext& ctx,
                  const std::array<bool, kRows>& data) {
    spice::DcResult d0 = spice::solve_dc(col.ckt, ctx);
    la::Vector guess = d0.x;
    for (int r = 0; r < kRows; ++r) {
        guess[col.rows[r].q - 1] = data[r] ? kVdd : 0.0;
        guess[col.rows[r].qb - 1] = data[r] ? 0.0 : kVdd;
    }
    const spice::DcResult d1 = spice::solve_dc(col.ckt, ctx, 0.0, &guess);
    TFET_ASSERT(d1.converged);
    return d1.x;
}

/// Program a write of `value` into `row`; everything quiescent otherwise.
double program_write(Column& col, int row, bool value) {
    for (Row& r : col.rows) {
        r.wl->set_waveform(Waveform::dc(kVdd));
        r.vss->set_waveform(Waveform::dc(0.0));
    }
    col.sw_bl->set_control(Waveform::dc(1.0));
    col.sw_blb->set_control(Waveform::dc(1.0));
    const double t0 = 50e-12;
    const double pulse = 300e-12;
    col.rows[row].wl->set_waveform(
        Waveform::pulse(kVdd, 0.0, t0, 5e-12, pulse, 5e-12));
    col.v_bl->set_waveform(
        Waveform::pulse(kVdd, value ? kVdd : 0.0, t0 - 30e-12, 10e-12,
                        pulse + 80e-12, 10e-12));
    col.v_blb->set_waveform(
        Waveform::pulse(kVdd, value ? 0.0 : kVdd, t0 - 30e-12, 10e-12,
                        pulse + 80e-12, 10e-12));
    return t0 + pulse + 400e-12; // t_end
}

/// Program a read of `row` with the GND-lowering assist on that row;
/// returns {t_end, sense start}. Bitlines float from the precharge.
struct ReadPlan {
    double t_end;
    double t_sense;
};
ReadPlan program_read(Column& col, int row) {
    for (Row& r : col.rows) {
        r.wl->set_waveform(Waveform::dc(kVdd));
        r.vss->set_waveform(Waveform::dc(0.0));
    }
    col.v_bl->set_waveform(Waveform::dc(kVdd));
    col.v_blb->set_waveform(Waveform::dc(kVdd));
    const double t0 = 100e-12;
    const double dur = 300e-12;
    // GND-lowering RA on the accessed row, led before the wordline.
    col.rows[row].vss->set_waveform(Waveform::pwl({{20e-12, 0.0},
                                                   {30e-12, -0.3 * kVdd},
                                                   {t0 + dur + 50e-12, -0.3 * kVdd},
                                                   {t0 + dur + 60e-12, 0.0}}));
    col.rows[row].wl->set_waveform(
        Waveform::pulse(kVdd, 0.0, t0, 5e-12, dur, 5e-12));
    col.sw_bl->set_control(Waveform::pwl({{t0 - 8e-12, 1.0}, {t0 - 4e-12, 0.0}}));
    col.sw_blb->set_control(
        Waveform::pwl({{t0 - 8e-12, 1.0}, {t0 - 4e-12, 0.0}}));
    return {t0 + dur + 200e-12, t0 + dur};
}

} // namespace

int main() {
    const device::ModelSet models = device::make_model_set();
    Column col = build_column(models);
    std::cout << "Built a " << kRows << "-row column: "
              << col.ckt.transistors().size() << " transistors, "
              << col.ckt.num_nodes() << " nodes\n\n";

    // One explicit simulation context for the whole demo (env-derived
    // solver policy; every solve below is attributed to it).
    const spice::SimContext ctx(spice::SimConfig::from_env());
    std::array<bool, kRows> stored = {false, false, false, false};
    la::Vector state = settle(col, ctx, stored);

    // Write the pattern 1,0,1,1 row by row.
    const std::array<bool, kRows> pattern = {true, false, true, true};
    for (int r = 0; r < kRows; ++r) {
        if (pattern[r] == stored[r])
            continue; // nothing to flip
        const double t_end = program_write(col, r, pattern[r]);
        const spice::TransientResult tr =
            spice::solve_transient(col.ckt, ctx, t_end, nullptr, &state);
        if (!tr.completed) {
            std::cerr << "write failed: " << tr.message << "\n";
            return 1;
        }
        state = tr.state(tr.size() - 1);
        stored[r] = pattern[r];
        std::printf("write %d -> row %d: q=%5.3f qb=%5.3f\n", int(pattern[r]),
                    r, tr.final_voltage(col.rows[r].q),
                    tr.final_voltage(col.rows[r].qb));
    }

    // Verify every row holds the pattern, then read each row back.
    std::cout << '\n';
    bool all_ok = true;
    for (int r = 0; r < kRows; ++r) {
        const double q = spice::node_voltage(state, col.rows[r].q);
        const bool held = (q > kVdd / 2) == pattern[r];
        all_ok = all_ok && held;
        std::printf("row %d holds %d (q=%5.3f) %s\n", r, int(pattern[r]), q,
                    held ? "OK" : "CORRUPTED");
    }

    std::cout << "\nreading back with GND-lowering RA:\n";
    for (int r = 0; r < kRows; ++r) {
        const ReadPlan plan = program_read(col, r);
        const spice::TransientResult tr =
            spice::solve_transient(col.ckt, ctx, plan.t_end, nullptr, &state);
        if (!tr.completed) {
            std::cerr << "read failed: " << tr.message << "\n";
            return 1;
        }
        // Differential bitline swing at the end of the access: the bitline
        // on the 0-storing side droops (charge flows into the cell).
        const double dbl = tr.voltage_at(col.bl, plan.t_sense) -
                           tr.voltage_at(col.blb, plan.t_sense);
        const bool read_value = dbl > 0.0;
        const bool still_held =
            (tr.final_voltage(col.rows[r].q) > kVdd / 2) == pattern[r];
        all_ok = all_ok && read_value == pattern[r] && still_held;
        std::printf("row %d: dBL=%+7.1f mV -> read %d (expect %d) %s%s\n", r,
                    dbl * 1e3, int(read_value), int(pattern[r]),
                    read_value == pattern[r] ? "OK" : "WRONG",
                    still_held ? "" : " (state corrupted!)");
        state = tr.state(tr.size() - 1);
    }

    std::cout << (all_ok ? "\ncolumn demo PASSED\n" : "\ncolumn demo FAILED\n");
    return all_ok ? 0 : 1;
}
