// Sign-off example: qualify the paper's proposed design (and optionally
// the CMOS baseline) against a production-style requirements table across
// supply corners, temperature corners, and Monte-Carlo variation.
//
// Usage: signoff [proposed|cmos|7t] [mc_samples]

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/signoff.hpp"

using namespace tfetsram;

int main(int argc, char** argv) {
    const std::string which = argc > 1 ? argv[1] : "proposed";
    // The full qualification (corners, statics, MC) runs under one
    // explicit simulation context built from the environment.
    const spice::SimContext ctx(spice::SimConfig::from_env());
    core::SignoffConditions cond;
    cond.sim = &ctx;
    if (argc > 2)
        cond.mc_samples = static_cast<std::size_t>(std::atol(argv[2]));

    const device::ModelSet models = device::make_model_set();
    sram::DesignSpec design = sram::proposed_design(0.8, models);
    core::SignoffRequirements req;
    if (which == "cmos") {
        design = sram::cmos_design(0.8, models);
        // CMOS cannot hit the TFET leakage target; qualify to its own.
        req.max_static_power = 1e-10;
    } else if (which == "7t") {
        design = sram::tfet7t_design(0.8, models);
    } else if (which != "proposed") {
        std::cerr << "usage: signoff [proposed|cmos|7t] [mc_samples]\n";
        return 2;
    }

    // Low-VDD corners need longer write pulses (Fig. 12a: ~2-3 ns at 0.5 V).
    req.max_wlcrit = 4e-9;
    req.max_write_delay = 4e-9;

    std::cout << "Qualifying \"" << design.name << "\" (" << cond.mc_samples
              << " MC samples)...\n\n";
    const core::SignoffReport rep = core::signoff(design, {}, req, cond);
    std::cout << rep.to_text();
    return rep.passed() ? 0 : 1;
}
