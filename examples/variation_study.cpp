// Process-variation study of the proposed design: Monte-Carlo over the
// gate-insulator thickness (+/-5 %, Sec. 4.3 of the paper), reporting
// WLcrit and DRNM distributions, histograms, and a yield estimate against
// user-specified margin requirements.
//
// Usage: variation_study [samples] [wlcrit_budget_ps] [drnm_floor_mv]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "mc/monte_carlo.hpp"
#include "mc/statistics.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "util/units.hpp"

using namespace tfetsram;

int main(int argc, char** argv) {
    const std::size_t samples =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1]))
                 : mc::mc_samples_from_env(40);
    const double wl_budget =
        (argc > 2 ? std::atof(argv[2]) : 400.0) * 1e-12;
    const double drnm_floor = (argc > 3 ? std::atof(argv[3]) : 300.0) * 1e-3;

    const device::ModelSet models = device::make_model_set();
    const sram::DesignSpec design = sram::proposed_design(0.8, models);
    std::cout << "Design: " << design.name << ", " << samples
              << " Monte-Carlo samples, tox +/-5 %\n\n";

    mc::VariationSpec vspec;
    const mc::TfetVariationSampler sampler(vspec);
    const sram::MetricOptions opts;

    // One explicit context for the study: env-derived defaults, and both
    // batches' solver work lands on its counters.
    const spice::SimContext ctx(spice::SimConfig::from_env());
    const mc::McResult wl = mc::run_monte_carlo(
        ctx, design.config, sampler, samples, 2024,
        [&](sram::SramCell& cell) {
            return sram::critical_wordline_pulse(cell, design.write_assist,
                                                 opts);
        });
    const mc::McResult dr = mc::run_monte_carlo(
        ctx, design.config, sampler, samples, 2024,
        [&](sram::SramCell& cell) {
            const auto d = sram::dynamic_read_noise_margin(
                cell, design.read_assist, opts);
            return d.valid && !d.flipped ? d.drnm : std::nan("");
        });

    std::cout << "WLcrit: mean " << format_si(wl.summary.mean, "s")
              << ", stddev " << format_si(wl.summary.stddev, "s") << ", range ["
              << format_si(wl.summary.min, "s") << ", "
              << format_si(wl.summary.max, "s") << "], write failures "
              << wl.summary.n_infinite << "\n"
              << wl.histogram(14).render() << "\n";
    std::cout << "DRNM:   mean " << format_si(dr.summary.mean, "V")
              << ", stddev " << format_si(dr.summary.stddev, "V") << ", range ["
              << format_si(dr.summary.min, "V") << ", "
              << format_si(dr.summary.max, "V") << "]\n"
              << dr.histogram(14).render() << "\n";

    // Sensitivity: how strongly the oxide thickness drives each metric.
    const double s_wl =
        mc::log_log_sensitivity(wl.tox_values, wl.samples);
    const double s_dr =
        mc::log_log_sensitivity(dr.tox_values, dr.samples);
    std::cout << "Sensitivity d(ln metric)/d(ln tox):  WLcrit "
              << format_sci(s_wl, 2) << "   DRNM " << format_sci(s_dr, 2)
              << "\n(the paper's Sec. 4.3 contrast, quantified)\n\n";

    std::size_t pass = 0;
    for (std::size_t i = 0; i < samples; ++i)
        if (std::isfinite(wl.samples[i]) && wl.samples[i] <= wl_budget &&
            std::isfinite(dr.samples[i]) && dr.samples[i] >= drnm_floor)
            ++pass;
    const mc::YieldInterval yi = mc::yield_interval(pass, samples);
    std::cout << "Yield vs (WLcrit <= " << format_si(wl_budget, "s")
              << ", DRNM >= " << format_si(drnm_floor, "V") << "): "
              << pass << "/" << samples << " = " << 100.0 * yi.point
              << " %  (95 % CI: " << 100.0 * yi.lower << " .. "
              << 100.0 * yi.upper << " %)\n";
    return 0;
}
