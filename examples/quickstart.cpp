// Quickstart: build the paper's proposed cell (6T SRAM with inward pTFET
// access, beta = 0.6, GND-lowering read assist), exercise a hold, a write,
// and a read, and print what happened. This is the smallest end-to-end tour
// of the public API.

#include <cstdio>
#include <iostream>

#include "sram/area.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "spice/transient.hpp"
#include "util/units.hpp"

using namespace tfetsram;

int main() {
    std::cout << "Building device models (TCAD-like extraction into lookup "
                 "tables)...\n";
    const device::ModelSet models = device::make_model_set();

    // An explicit simulation context pinned to the cell: every operation
    // and metric below runs under it (options, solver policy, counters).
    const spice::SimContext ctx(spice::SimConfig::from_env());
    const sram::DesignSpec design = sram::proposed_design(0.8, models);
    sram::SramCell cell = sram::build_cell(design.config, &ctx);
    std::cout << "Cell: " << design.name << " at VDD = " << design.config.vdd
              << " V, beta = " << design.config.beta << "\n\n";

    // --- Hold: static power ---
    const sram::MetricOptions opts;
    const double p_hold = sram::worst_hold_static_power(cell, opts);
    std::cout << "Hold static power: " << format_sci(p_hold, 2) << " W\n";

    // --- Write: flip the cell and watch the storage nodes ---
    const sram::OperationWindow w =
        sram::program_write(cell, /*value=*/true, /*pulse_width=*/300e-12);
    const sram::HoldState hs = sram::solve_hold_state(cell, /*q_high=*/false,
                                                      opts.solver);
    if (!hs.converged || !hs.state_ok) {
        std::cerr << "could not establish the initial hold state\n";
        return 1;
    }
    const spice::TransientResult wr = spice::solve_transient(
        cell.circuit, ctx, w.t_end, nullptr, &hs.x);
    if (!wr.completed) {
        std::cerr << "write transient failed: " << wr.message << "\n";
        return 1;
    }
    std::cout << "\nWrite 1 with a 300 ps wordline pulse:\n";
    std::printf("  %10s  %8s  %8s\n", "t", "v(q)", "v(qb)");
    for (double t : {0.0, w.wl_start, w.wl_mid + 50e-12, w.wl_end, w.t_end})
        std::printf("  %10s  %7.3f V %7.3f V\n", format_si(t, "s").c_str(),
                    wr.voltage_at(cell.q, t), wr.voltage_at(cell.qb, t));
    const bool flipped =
        wr.final_voltage(cell.q) > wr.final_voltage(cell.qb);
    std::cout << "  -> cell " << (flipped ? "flipped: write OK" : "DID NOT flip")
              << "\n";

    // --- Metrics: the paper's figures of merit ---
    std::cout << "\nFigures of merit (with the design's assists):\n";
    const double wlcrit =
        sram::critical_wordline_pulse(cell, design.write_assist, opts);
    std::cout << "  WLcrit      = " << format_si(wlcrit, "s") << "\n";
    const sram::DrnmResult drnm =
        sram::dynamic_read_noise_margin(cell, design.read_assist, opts);
    std::cout << "  DRNM        = " << format_si(drnm.drnm, "V")
              << (drnm.flipped ? "  (read disturb flip!)" : "") << "\n";
    const double td_w = sram::write_delay(cell, design.write_assist, opts);
    std::cout << "  write delay = " << format_si(td_w, "s") << "\n";
    const double td_r = sram::read_delay(cell, design.read_assist, opts);
    std::cout << "  read delay  = " << format_si(td_r, "s") << "\n";
    std::cout << "  cell area   = " << sram::cell_area(cell) << " um^2\n";

    return flipped ? 0 : 1;
}
