* TFET common-source amplifier: gain and bandwidth via .ac
.model tn NTFET ()
Vdd vdd 0 DC 0.8
Vin in  0 DC 0.45 AC 1
RL  vdd out 200k
M1  out in 0 tn W=1
CL  out 0 2f
.op
.ac dec 10 1k 100g
.print v(out)
.end
