* TFET inverter: steep transfer, attowatt leakage
.model tfet_n NTFET ()
.model tfet_p PTFET ()
Vdd vdd 0 DC 0.8
Vin in  0 PWL(0 0 0.5n 0 0.8n 0.8 1.6n 0.8 1.9n 0)
MP  out in vdd tfet_p W=1
MN  out in 0   tfet_n W=1
Cl  out 0 0.5f
.op
.tran 2.4n
.print v(in) v(out)
.end
