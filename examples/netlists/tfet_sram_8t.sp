8T TFET SRAM (deck-loaded cell spec): write side + decoupled read stack
* Loadable via sram::load_cell_spec — the .ports directive below is the
* port contract; the conventional source/switch labels (Vvdd, Vbl, SWbl,
* ...) bind the SramCell handles so the full metric suite runs on it.
.model tn NTFET ()
.model tp PTFET ()
.ports q qb bl blb wl vdd vss rbl rwl
* rails
Vvdd vdd 0 DC 0.8
Vvss vss 0 DC 0
* write bitlines: driver -> precharge switch -> line; clamped low during
* hold so the outward access devices never see reverse bias
Vbl bl_drv 0 DC 0
SWbl bl_drv bl 1k 1e12 DC 1
Cbl bl 0 10f
Vblb blb_drv 0 DC 0
SWblb blb_drv blb 1k 1e12 DC 1
Cblb blb 0 10f
* write wordline stays off; read wordline pulses high at 0.5 ns
Vwl wl 0 DC 0
Vrwl rwl 0 PWL(0 0 0.5n 0 0.51n 0.8 1.5n 0.8 1.51n 0)
* read bitline precharged to VDD, floated just before the RWL pulse
Vrbl rbl_drv 0 DC 0.8
SWrbl rbl_drv rbl 1k 1e12 PWL(0 1 0.45n 1 0.46n 0)
Crbl rbl 0 10f
* cross-coupled core (beta = 0.8)
MPDL q qb vss tn W=0.8
MPUL q qb vdd tp W=0.5
MPDR qb q vss tn W=0.8
MPUR qb q vdd tp W=0.5
* outward nTFET write access devices (drain at the storage node)
MAXL q wl bl tn W=1
MAXR qb wl blb tn W=1
* decoupled read stack: RBL -> MRAX(g=RWL) -> rint -> MRPD(g=QB) -> VSS
MRPD rint qb vss tn W=1.5
MRAX rbl rwl rint tn W=1.5
Cq q 0 0.25f
Cqb qb 0 0.25f
Crint rint 0 0.25f
* keeps the stack's internal node DC-defined when both devices are off
Rrint rint vss 1e12
* hold q = 0: qb = 1 turns the read pull-down on, so the RWL pulse
* discharges RBL (a read-1 on QB)
.nodeset v(q)=0 v(qb)=0.8 v(vdd)=0.8 v(rbl)=0.8
.op
.tran 2n
.print v(q) v(qb) v(rbl)
.end
