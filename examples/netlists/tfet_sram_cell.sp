* The paper's 6T inpTFET SRAM cell (beta = 0.6): hold, then write 1
.model tn NTFET ()
.model tp PTFET ()
Vdd vdd 0 DC 0.8
* wordline: active low, 300 ps pulse
Vwl wl 0 PWL(0 0.8 0.6n 0.8 0.605n 0 0.905n 0 0.91n 0.8)
* bitlines: differential write levels applied before the pulse
Vbl  bl  0 DC 0.8
Vblb blb 0 PWL(0 0.8 0.1n 0.8 0.11n 0 1.0n 0 1.01n 0.8)
* cross-coupled inverters, pull-downs 0.6 um
MPDL q  qb 0   tn W=0.6
MPUL q  qb vdd tp W=0.5
MPDR qb q  0   tn W=0.6
MPUR qb q  vdd tp W=0.5
* inward pTFET access devices (source at the bitline)
MAXL q  wl bl  tp W=1
MAXR qb wl blb tp W=1
Cq  q  0 0.25f
Cqb qb 0 0.25f
* start holding q = 0 (selects the bistable state)
.nodeset v(q)=0 v(qb)=0.8 v(vdd)=0.8 v(bl)=0.8 v(blb)=0.8 v(wl)=0.8
.op
.tran 1.4n
.print v(q) v(qb)
.end
