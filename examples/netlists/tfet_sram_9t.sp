9T near-threshold TFET SRAM (deck-loaded cell spec)
* The 8T write scheme plus an RWL-gated footer under the read pull-down:
* with RWL low the read stack is cut off at both ends, which is what makes
* large cells-per-bitline counts workable at near-threshold supplies.
* Loadable via sram::load_cell_spec (see the .ports contract below).
.model tn NTFET ()
.model tp PTFET ()
.ports q qb bl blb wl vdd vss rbl rwl
* rails (near-threshold supply)
Vvdd vdd 0 DC 0.5
Vvss vss 0 DC 0
* write bitlines clamped low during hold (outward access devices)
Vbl bl_drv 0 DC 0
SWbl bl_drv bl 1k 1e12 DC 1
Cbl bl 0 10f
Vblb blb_drv 0 DC 0
SWblb blb_drv blb 1k 1e12 DC 1
Cblb blb 0 10f
* write wordline off; read wordline pulses high at 0.5 ns
Vwl wl 0 DC 0
Vrwl rwl 0 PWL(0 0 0.5n 0 0.51n 0.5 2.5n 0.5 2.51n 0)
* read bitline precharged, floated just before the RWL pulse
Vrbl rbl_drv 0 DC 0.5
SWrbl rbl_drv rbl 1k 1e12 PWL(0 1 0.45n 1 0.46n 0)
Crbl rbl 0 10f
* cross-coupled core (beta = 0.8)
MPDL q qb vss tn W=0.8
MPUL q qb vdd tp W=0.5
MPDR qb q vss tn W=0.8
MPUR qb q vdd tp W=0.5
* outward nTFET write access devices
MAXL q wl bl tn W=1
MAXR qb wl blb tn W=1
* three-transistor read stack: RBL -> MRAX -> rint -> MRPD -> rfoot -> MRFT -> VSS
MRPD rint qb rfoot tn W=1.5
MRAX rbl rwl rint tn W=1.5
MRFT rfoot rwl vss tn W=1.5
Cq q 0 0.25f
Cqb qb 0 0.25f
Crint rint 0 0.25f
Crfoot rfoot 0 0.25f
* bleeders keep the stack's internal nodes DC-defined when it is cut off
Rrint rint vss 1e12
Rrfoot rfoot vss 1e12
* hold q = 0: the RWL pulse discharges RBL through the full stack
.nodeset v(q)=0 v(qb)=0.5 v(vdd)=0.5 v(rbl)=0.5
.op
.tran 3n
.print v(q) v(qb) v(rbl)
.end
