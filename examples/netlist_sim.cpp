// netlist_sim: a small command-line circuit simulator over the netlist
// front-end. Reads a SPICE-dialect deck, runs its .op/.tran analyses, and
// prints the .print nodes (operating-point values and transient series).
//
// Usage: netlist_sim <deck.sp> [--points N]
//
// Demo decks live in examples/netlists/.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "netlist/netlist.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/report.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"
#include "util/units.hpp"

using namespace tfetsram;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: netlist_sim <deck.sp> [--points N]\n";
        return 2;
    }
    std::size_t points = 25;
    for (int i = 2; i + 1 < argc; i += 2)
        if (std::strcmp(argv[i], "--points") == 0)
            points = static_cast<std::size_t>(std::atol(argv[i + 1]));

    try {
        // All analyses below run under one explicit simulation context
        // (solver options, backend policy, stats) built from the
        // environment once.
        const spice::SimContext ctx(spice::SimConfig::from_env());
        const netlist::Netlist deck = netlist::Netlist::parse_file(argv[1]);
        std::cout << "* " << deck.title() << "\n"
                  << "* " << deck.element_count() << " elements, "
                  << deck.analyses().size() << " analyses\n";
        if (!deck.ports().empty()) {
            std::cout << "* ports:";
            for (const std::string& name : deck.ports())
                std::cout << ' ' << name;
            std::cout << "\n";
        }
        std::cout << "\n";

        for (const netlist::Analysis& an : deck.analyses()) {
            spice::Circuit ckt = deck.build();
            std::vector<spice::NodeId> nodes;
            for (const std::string& name : deck.print_nodes())
                nodes.push_back(ckt.node(name));

            const la::Vector guess = deck.initial_guess(ckt);
            const la::Vector* guess_ptr =
                deck.nodesets().empty() ? nullptr : &guess;

            if (an.kind == netlist::Analysis::Kind::kAc) {
                const spice::VoltageSource* stim = nullptr;
                for (const spice::VoltageSource* v : ckt.voltage_sources())
                    if (v->label() == deck.ac_source())
                        stim = v;
                if (stim == nullptr) {
                    std::cerr << ".ac without an AC-marked V source\n";
                    return 1;
                }
                const spice::AcResult ac = spice::solve_ac(
                    ckt, ctx, {stim, deck.ac_magnitude()}, an.f_start,
                    an.f_stop, an.points_per_decade, guess_ptr);
                if (!ac.ok) {
                    std::cerr << "ac failed: " << ac.message << "\n";
                    return 1;
                }
                std::cout << "=== .ac dec " << an.points_per_decade << " "
                          << format_si(an.f_start, "Hz") << " .. "
                          << format_si(an.f_stop, "Hz") << " ===\nf";
                for (const std::string& name : deck.print_nodes())
                    std::cout << "\t|v(" << name << ")| dB";
                std::cout << "\n";
                const auto& freqs = ac.frequencies();
                for (std::size_t i = 0; i < freqs.size(); ++i) {
                    std::cout << format_si(freqs[i], "Hz");
                    for (spice::NodeId n : nodes) {
                        char buf[32];
                        std::snprintf(buf, sizeof(buf), "\t%+.2f",
                                      ac.magnitude_db(n, i));
                        std::cout << buf;
                    }
                    std::cout << "\n";
                }
                for (spice::NodeId n : nodes) {
                    const double fc = ac.corner_frequency(n);
                    if (!std::isnan(fc))
                        std::cout << "corner(" << ckt.node_name(n)
                                  << ") = " << format_si(fc, "Hz") << "\n";
                }
                std::cout << "\n";
                continue;
            }
            if (an.kind == netlist::Analysis::Kind::kOperatingPoint) {
                const spice::DcResult r =
                    spice::solve_dc(ckt, ctx, 0.0, guess_ptr);
                if (!r.converged) {
                    std::cerr << "operating point did not converge\n";
                    return 1;
                }
                std::cout << "=== .op (" << r.strategy << ", "
                          << r.iterations << " iterations) ===\n";
                for (std::size_t i = 0; i < nodes.size(); ++i)
                    std::cout << "  v(" << deck.print_nodes()[i]
                              << ") = " << spice::node_voltage(r.x, nodes[i])
                              << " V\n";
                std::cout << "  static power = "
                          << format_si(spice::static_power(ckt, r.x), "W")
                          << "\n\n";
            } else {
                const spice::TransientResult tr = spice::solve_transient(
                    ckt, ctx, an.tstop, nullptr, guess_ptr);
                if (!tr.completed) {
                    std::cerr << "transient failed: " << tr.message << "\n";
                    return 1;
                }
                std::cout << "=== .tran " << format_si(an.tstop, "s")
                          << " (" << tr.size() << " accepted steps) ===\n";
                std::cout << "t";
                for (const std::string& name : deck.print_nodes())
                    std::cout << "\tv(" << name << ")";
                std::cout << "\n";
                for (std::size_t i = 0; i <= points; ++i) {
                    const double t =
                        an.tstop * static_cast<double>(i) /
                        static_cast<double>(points);
                    std::cout << format_si(t, "s");
                    for (spice::NodeId n : nodes) {
                        char buf[32];
                        std::snprintf(buf, sizeof(buf), "\t%+.4f",
                                      tr.voltage_at(n, t));
                        std::cout << buf;
                    }
                    std::cout << "\n";
                }
                std::cout << "\n";
            }
        }
    } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
    return 0;
}
