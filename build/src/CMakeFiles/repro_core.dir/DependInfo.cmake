
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explorer.cpp" "src/CMakeFiles/repro_core.dir/core/explorer.cpp.o" "gcc" "src/CMakeFiles/repro_core.dir/core/explorer.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/repro_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/repro_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/signoff.cpp" "src/CMakeFiles/repro_core.dir/core/signoff.cpp.o" "gcc" "src/CMakeFiles/repro_core.dir/core/signoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
