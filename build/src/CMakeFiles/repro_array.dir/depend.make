# Empty dependencies file for repro_array.
# This may be replaced when dependencies are built.
