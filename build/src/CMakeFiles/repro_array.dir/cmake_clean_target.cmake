file(REMOVE_RECURSE
  "librepro_array.a"
)
