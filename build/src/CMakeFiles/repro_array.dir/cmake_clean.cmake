file(REMOVE_RECURSE
  "CMakeFiles/repro_array.dir/array/array.cpp.o"
  "CMakeFiles/repro_array.dir/array/array.cpp.o.d"
  "librepro_array.a"
  "librepro_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
