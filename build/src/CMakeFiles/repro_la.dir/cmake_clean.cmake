file(REMOVE_RECURSE
  "CMakeFiles/repro_la.dir/la/lu.cpp.o"
  "CMakeFiles/repro_la.dir/la/lu.cpp.o.d"
  "CMakeFiles/repro_la.dir/la/matrix.cpp.o"
  "CMakeFiles/repro_la.dir/la/matrix.cpp.o.d"
  "librepro_la.a"
  "librepro_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
