file(REMOVE_RECURSE
  "librepro_la.a"
)
