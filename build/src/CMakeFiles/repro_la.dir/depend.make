# Empty dependencies file for repro_la.
# This may be replaced when dependencies are built.
