file(REMOVE_RECURSE
  "CMakeFiles/repro_mc.dir/mc/monte_carlo.cpp.o"
  "CMakeFiles/repro_mc.dir/mc/monte_carlo.cpp.o.d"
  "CMakeFiles/repro_mc.dir/mc/statistics.cpp.o"
  "CMakeFiles/repro_mc.dir/mc/statistics.cpp.o.d"
  "CMakeFiles/repro_mc.dir/mc/variation.cpp.o"
  "CMakeFiles/repro_mc.dir/mc/variation.cpp.o.d"
  "librepro_mc.a"
  "librepro_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
