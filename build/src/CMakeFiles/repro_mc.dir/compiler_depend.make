# Empty compiler generated dependencies file for repro_mc.
# This may be replaced when dependencies are built.
