file(REMOVE_RECURSE
  "librepro_mc.a"
)
