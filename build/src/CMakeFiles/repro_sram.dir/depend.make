# Empty dependencies file for repro_sram.
# This may be replaced when dependencies are built.
