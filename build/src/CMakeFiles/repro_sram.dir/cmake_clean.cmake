file(REMOVE_RECURSE
  "CMakeFiles/repro_sram.dir/sram/area.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/area.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/assist.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/assist.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/cell.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/cell.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/designs.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/designs.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/metrics.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/metrics.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/operations.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/operations.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/periphery.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/periphery.cpp.o.d"
  "CMakeFiles/repro_sram.dir/sram/snm.cpp.o"
  "CMakeFiles/repro_sram.dir/sram/snm.cpp.o.d"
  "librepro_sram.a"
  "librepro_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
