
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sram/area.cpp" "src/CMakeFiles/repro_sram.dir/sram/area.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/area.cpp.o.d"
  "/root/repo/src/sram/assist.cpp" "src/CMakeFiles/repro_sram.dir/sram/assist.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/assist.cpp.o.d"
  "/root/repo/src/sram/cell.cpp" "src/CMakeFiles/repro_sram.dir/sram/cell.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/cell.cpp.o.d"
  "/root/repo/src/sram/designs.cpp" "src/CMakeFiles/repro_sram.dir/sram/designs.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/designs.cpp.o.d"
  "/root/repo/src/sram/metrics.cpp" "src/CMakeFiles/repro_sram.dir/sram/metrics.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/metrics.cpp.o.d"
  "/root/repo/src/sram/operations.cpp" "src/CMakeFiles/repro_sram.dir/sram/operations.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/operations.cpp.o.d"
  "/root/repo/src/sram/periphery.cpp" "src/CMakeFiles/repro_sram.dir/sram/periphery.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/periphery.cpp.o.d"
  "/root/repo/src/sram/snm.cpp" "src/CMakeFiles/repro_sram.dir/sram/snm.cpp.o" "gcc" "src/CMakeFiles/repro_sram.dir/sram/snm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
