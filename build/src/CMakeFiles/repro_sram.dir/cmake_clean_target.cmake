file(REMOVE_RECURSE
  "librepro_sram.a"
)
