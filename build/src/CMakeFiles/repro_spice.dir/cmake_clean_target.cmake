file(REMOVE_RECURSE
  "librepro_spice.a"
)
