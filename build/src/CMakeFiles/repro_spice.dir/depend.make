# Empty dependencies file for repro_spice.
# This may be replaced when dependencies are built.
