file(REMOVE_RECURSE
  "CMakeFiles/repro_spice.dir/spice/ac.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/ac.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/circuit.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/circuit.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/dc.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/dc.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/device.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/device.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/elements.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/elements.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/mna.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/mna.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/report.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/report.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/transient.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/transient.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/transistor.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/transistor.cpp.o.d"
  "CMakeFiles/repro_spice.dir/spice/waveform.cpp.o"
  "CMakeFiles/repro_spice.dir/spice/waveform.cpp.o.d"
  "librepro_spice.a"
  "librepro_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
