
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/CMakeFiles/repro_spice.dir/spice/ac.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/ac.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/CMakeFiles/repro_spice.dir/spice/circuit.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/circuit.cpp.o.d"
  "/root/repo/src/spice/dc.cpp" "src/CMakeFiles/repro_spice.dir/spice/dc.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/dc.cpp.o.d"
  "/root/repo/src/spice/device.cpp" "src/CMakeFiles/repro_spice.dir/spice/device.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/device.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "src/CMakeFiles/repro_spice.dir/spice/elements.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/elements.cpp.o.d"
  "/root/repo/src/spice/mna.cpp" "src/CMakeFiles/repro_spice.dir/spice/mna.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/mna.cpp.o.d"
  "/root/repo/src/spice/report.cpp" "src/CMakeFiles/repro_spice.dir/spice/report.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/report.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/CMakeFiles/repro_spice.dir/spice/transient.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/transient.cpp.o.d"
  "/root/repo/src/spice/transistor.cpp" "src/CMakeFiles/repro_spice.dir/spice/transistor.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/transistor.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/CMakeFiles/repro_spice.dir/spice/waveform.cpp.o" "gcc" "src/CMakeFiles/repro_spice.dir/spice/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
