file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/util/csv.cpp.o"
  "CMakeFiles/repro_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/histogram.cpp.o"
  "CMakeFiles/repro_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/stats.cpp.o"
  "CMakeFiles/repro_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/table_printer.cpp.o"
  "CMakeFiles/repro_util.dir/util/table_printer.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/units.cpp.o"
  "CMakeFiles/repro_util.dir/util/units.cpp.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
