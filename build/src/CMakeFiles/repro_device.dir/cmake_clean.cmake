file(REMOVE_RECURSE
  "CMakeFiles/repro_device.dir/device/device_table.cpp.o"
  "CMakeFiles/repro_device.dir/device/device_table.cpp.o.d"
  "CMakeFiles/repro_device.dir/device/grid2d.cpp.o"
  "CMakeFiles/repro_device.dir/device/grid2d.cpp.o.d"
  "CMakeFiles/repro_device.dir/device/models.cpp.o"
  "CMakeFiles/repro_device.dir/device/models.cpp.o.d"
  "CMakeFiles/repro_device.dir/device/mosfet_model.cpp.o"
  "CMakeFiles/repro_device.dir/device/mosfet_model.cpp.o.d"
  "CMakeFiles/repro_device.dir/device/table_builder.cpp.o"
  "CMakeFiles/repro_device.dir/device/table_builder.cpp.o.d"
  "CMakeFiles/repro_device.dir/device/tfet_model.cpp.o"
  "CMakeFiles/repro_device.dir/device/tfet_model.cpp.o.d"
  "librepro_device.a"
  "librepro_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
