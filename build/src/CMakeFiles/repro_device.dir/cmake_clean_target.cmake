file(REMOVE_RECURSE
  "librepro_device.a"
)
