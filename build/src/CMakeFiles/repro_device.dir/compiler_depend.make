# Empty compiler generated dependencies file for repro_device.
# This may be replaced when dependencies are built.
